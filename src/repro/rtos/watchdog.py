"""Watchdog timer: the control-flow-error complement to the assertions.

The paper's discussion (Sections 5.2 and 6) attributes the low detection
coverage for stack errors to control-flow errors, *"and the evaluated
mechanisms are not aimed at detecting such errors."*  The canonical
mechanism that *is* aimed at them — a hardware watchdog that fires when
the software stops kicking it — is provided here as an extension, so the
``bench_ablation_watchdog`` benchmark can quantify how much of the
stack-error gap it closes.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["WatchdogTimer"]


class WatchdogTimer:
    """A deadline watchdog over a periodic liveness kick.

    The supervised software calls :meth:`kick` on every healthy cycle;
    the platform calls :meth:`poll` on every tick.  When more than
    ``timeout_ms`` elapses between kicks the watchdog fires once and
    latches (a real watchdog would reset the node; the experiments only
    need the detection time-stamp).
    """

    __slots__ = ("timeout_ms", "_last_kick_ms", "fired_at_ms")

    def __init__(self, timeout_ms: int = 50) -> None:
        if timeout_ms <= 0:
            raise ValueError(f"timeout_ms must be positive, got {timeout_ms}")
        self.timeout_ms = timeout_ms
        self._last_kick_ms = 0
        self.fired_at_ms: Optional[int] = None

    @property
    def fired(self) -> bool:
        return self.fired_at_ms is not None

    def kick(self, now_ms: int) -> None:
        """Refresh the liveness deadline (called by the healthy software)."""
        self._last_kick_ms = now_ms

    def poll(self, now_ms: int) -> bool:
        """Check the deadline; returns True on the firing edge."""
        if self.fired_at_ms is not None:
            return False
        if now_ms - self._last_kick_ms > self.timeout_ms:
            self.fired_at_ms = now_ms
            return True
        return False

    def reset(self) -> None:
        self._last_kick_ms = 0
        self.fired_at_ms = None
