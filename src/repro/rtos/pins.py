"""Digital output pins.

The paper's error-detection mechanisms report detection by setting a
digital output pin high, which the FIC3 time-stamps.  :class:`DigitalPin`
is that reporting channel: edge times are recorded with the simulation
clock so campaign code can read first-detection latencies.
"""

from __future__ import annotations

from typing import List, Optional

__all__ = ["DigitalPin"]


class DigitalPin:
    """A latching digital output with time-stamped rising edges."""

    __slots__ = ("name", "_high", "rise_times")

    def __init__(self, name: str) -> None:
        self.name = name
        self._high = False
        self.rise_times: List[float] = []

    @property
    def is_high(self) -> bool:
        return self._high

    @property
    def first_rise_time(self) -> Optional[float]:
        """Time of the first rising edge since the last reset, or ``None``."""
        return self.rise_times[0] if self.rise_times else None

    def raise_high(self, time: float) -> None:
        """Drive the pin high; records an edge only on a low-to-high change."""
        if not self._high:
            self._high = True
            self.rise_times.append(time)

    def lower(self) -> None:
        """Drive the pin low (the experiment controller's acknowledge)."""
        self._high = False

    def pulse(self, time: float) -> None:
        """A rising edge followed by an immediate lowering.

        The target raises-and-clears per detection so consecutive
        detections each produce a time-stamped edge.
        """
        self.raise_high(time)
        self.lower()

    def reset(self) -> None:
        """Clear state and recorded edges (new experiment run)."""
        self._high = False
        self.rise_times.clear()
