"""Tasks for the slot scheduler.

The target software is a set of periodic modules plus one background
process (Section 3.1).  A :class:`Task` wraps a module's step function
with the identity the scheduler and the control-flow-error emulation
need.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["Task"]


class Task:
    """A schedulable unit: a named step function with a module id.

    ``module_id`` is the byte identifying the module in dispatch/control
    words (see :class:`repro.memory.stack.ControlWordTable`); it must be
    unique within a node.
    """

    __slots__ = ("name", "module_id", "step", "invocations")

    def __init__(self, name: str, module_id: int, step: Callable[[int], None]) -> None:
        if not 0 <= module_id <= 0xFF:
            raise ValueError(f"module_id must fit in one byte, got {module_id}")
        self.name = name
        self.module_id = module_id
        self.step = step
        self.invocations = 0

    def run(self, now_ms: int) -> None:
        self.invocations += 1
        self.step(now_ms)

    def __repr__(self) -> str:
        return f"Task({self.name!r}, id=0x{self.module_id:02X})"
