"""Minimal real-time executive: slot scheduler, tasks, output pins."""

from repro.rtos.pins import DigitalPin
from repro.rtos.scheduler import SlotScheduler
from repro.rtos.task import Task

__all__ = ["DigitalPin", "SlotScheduler", "Task"]

from repro.rtos.watchdog import WatchdogTimer  # noqa: E402

__all__.append("WatchdogTimer")
