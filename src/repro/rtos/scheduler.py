"""The slot scheduler: seven 1-ms slots, periodic + background tasks.

Section 3.1 of the paper: *"The system operates in seven 1-ms slots.  In
each slot, one or more of the other modules (except for CALC) are
invoked.  ...  CLOCK and DIST_S both have a period of 1 ms and the other
modules have periods of 7 ms.  All modules are periodic except for CALC,
which ... runs in the background."*

:class:`SlotScheduler` reproduces that structure:

* *every-tick tasks* run on each 1-ms tick (CLOCK's time-keeping runs
  outside the scheduler in :mod:`repro.arrestor.clock`; DIST_S registers
  here);
* *slot tasks* run when their slot comes around, i.e. every
  ``n_slots`` ms;
* the *background task* runs once per tick after the periodic work —
  the discrete-time analogue of "runs when the other modules are
  dormant".

Control-flow-error emulation: slot dispatch can be routed through a
:class:`repro.memory.stack.ControlWordTable` stored in the emulated
stack.  A corrupted control word then redirects, skips, or wedges the
dispatch — see :mod:`repro.memory.stack`.  Every-tick and background
tasks also stop when the node is wedged (the CPU has left its program).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.memory.stack import ControlWordTable
from repro.rtos.task import Task

__all__ = ["SlotScheduler"]


class SlotScheduler:
    """Cyclic executive over ``n_slots`` one-millisecond slots."""

    def __init__(self, n_slots: int = 7) -> None:
        if n_slots < 1:
            raise ValueError(f"n_slots must be positive, got {n_slots}")
        self.n_slots = n_slots
        self._every_tick: List[Task] = []
        self._slot_tasks: List[Optional[Task]] = [None] * n_slots
        self._background: Optional[Task] = None
        self._by_id: Dict[int, Task] = {}
        self._control_words: Optional[ControlWordTable] = None
        self.wedged = False
        self.ticks = 0

    # -- configuration -----------------------------------------------------

    def _register(self, task: Task) -> None:
        if task.module_id in self._by_id:
            raise ValueError(
                f"module id 0x{task.module_id:02X} already used by "
                f"{self._by_id[task.module_id].name!r}"
            )
        self._by_id[task.module_id] = task

    def add_every_tick(self, task: Task) -> None:
        """Register a 1-ms-period task (the paper's DIST_S)."""
        self._register(task)
        self._every_tick.append(task)

    def add_slot_task(self, slot: int, task: Task) -> None:
        """Register a task to run in slot *slot* (period = ``n_slots`` ms)."""
        if not 0 <= slot < self.n_slots:
            raise ValueError(f"slot must be in 0..{self.n_slots - 1}, got {slot}")
        if self._slot_tasks[slot] is not None:
            raise ValueError(f"slot {slot} already holds {self._slot_tasks[slot].name!r}")
        self._register(task)
        self._slot_tasks[slot] = task

    def set_background(self, task: Task) -> None:
        """Register the background task (the paper's CALC)."""
        if self._background is not None:
            raise ValueError(f"background task already set to {self._background.name!r}")
        self._register(task)
        self._background = task

    def attach_control_words(self, table: ControlWordTable) -> None:
        """Route slot dispatch through stack-resident control words.

        The table must have one word per slot; its module ids name the
        slot tasks (0 for an empty slot).
        """
        if len(table) != self.n_slots:
            raise ValueError(
                f"control word table has {len(table)} words; scheduler has "
                f"{self.n_slots} slots"
            )
        self._control_words = table

    def expected_control_ids(self) -> List[int]:
        """The per-slot module ids a pristine control table should hold."""
        return [
            task.module_id if task is not None else 0 for task in self._slot_tasks
        ]

    # -- execution -----------------------------------------------------------

    def tick(self, now_ms: int, slot: int) -> None:
        """Run one 1-ms tick: every-tick tasks, slot dispatch, background."""
        if self.wedged:
            return
        self.ticks += 1
        for task in self._every_tick:
            task.run(now_ms)
        self._dispatch_slot(now_ms, slot)
        if not self.wedged and self._background is not None:
            self._background.run(now_ms)

    def _dispatch_slot(self, now_ms: int, slot: int) -> None:
        task = self._slot_tasks[slot]
        table = self._control_words
        if table is None:
            if task is not None:
                task.run(now_ms)
            return
        outcome = table.consult(slot)
        kind = outcome.kind
        if kind == "ok":
            if task is not None:
                task.run(now_ms)
        elif kind == "redirect":
            target = self._by_id.get(outcome.target)
            if target is not None:
                target.run(now_ms)
        elif kind == "wedge":
            self.wedged = True
        # "skip": run nothing this slot.

    def reset(self) -> None:
        """Clear run-time state (node reboot); configuration is kept."""
        self.wedged = False
        self.ticks = 0
        for task in self._by_id.values():
            task.invocations = 0
        if self._control_words is not None:
            self._control_words.reset()
