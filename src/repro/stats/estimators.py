"""Coverage estimators (Powell, Martins, Arlat & Crouzet [18]).

The evaluation reports, for each error set, the estimate ``p = nd / ne``
of a detection probability together with a 95 % confidence interval.  The
paper's tables use the normal-approximation interval and print no interval
for measured probabilities of exactly 100 % (Table 7 caption); this module
implements that convention plus the exact Clopper-Pearson interval for
small samples, where the normal approximation degrades.

All probabilities are returned on the 0-100 scale used by the paper's
tables; see :class:`CoverageEstimate`.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

__all__ = [
    "CoverageEstimate",
    "estimate_coverage",
    "normal_interval",
    "clopper_pearson_interval",
    "wilson_interval",
    "Z_95",
]

#: Two-sided 95 % quantile of the standard normal distribution.
Z_95 = 1.959963984540054


def normal_interval(nd: int, ne: int, z: float = Z_95) -> float:
    """Half-width of the normal-approximation CI for ``p = nd/ne``, in percent.

    This is the estimator used in the paper's tables (``p ± half_width``).
    """
    if ne <= 0:
        raise ValueError(f"ne must be positive, got {ne}")
    if not 0 <= nd <= ne:
        raise ValueError(f"nd must be in [0, ne]; got nd={nd}, ne={ne}")
    p = nd / ne
    return 100.0 * z * math.sqrt(p * (1.0 - p) / ne)


def wilson_interval(nd: int, ne: int, z: float = Z_95) -> tuple:
    """Wilson score CI for ``p = nd/ne`` in percent: ``(lower, upper)``.

    Unlike the normal approximation, the Wilson interval stays inside
    [0, 100] and remains informative at ``p`` of exactly 0 or 1, which
    makes it the right tool for regression comparisons between two
    campaigns where perfect detection is common (the normal interval
    degenerates to zero width there and every change would look
    significant).
    """
    if ne <= 0:
        raise ValueError(f"ne must be positive, got {ne}")
    if not 0 <= nd <= ne:
        raise ValueError(f"nd must be in [0, ne]; got nd={nd}, ne={ne}")
    p = nd / ne
    z2 = z * z
    denominator = 1.0 + z2 / ne
    centre = (p + z2 / (2.0 * ne)) / denominator
    half = (
        z * math.sqrt(p * (1.0 - p) / ne + z2 / (4.0 * ne * ne)) / denominator
    )
    return (100.0 * max(0.0, centre - half), 100.0 * min(1.0, centre + half))


def _beta_ppf(q: float, a: float, b: float) -> float:
    """Quantile of the Beta(a, b) distribution.

    Uses scipy when importable; otherwise falls back to a bisection on the
    regularised incomplete beta function computed by continued fractions.
    """
    try:
        from scipy.stats import beta as _beta

        return float(_beta.ppf(q, a, b))
    except ImportError:  # pragma: no cover - scipy is installed in CI
        lo, hi = 0.0, 1.0
        for _ in range(200):
            mid = (lo + hi) / 2.0
            if _reg_inc_beta(a, b, mid) < q:
                lo = mid
            else:
                hi = mid
        return (lo + hi) / 2.0


def _reg_inc_beta(a: float, b: float, x: float) -> float:  # pragma: no cover
    """Regularised incomplete beta I_x(a, b) via Lentz's continued fraction."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log(1.0 - x)
    )
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _beta_cf(a, b, x) / a
    return 1.0 - math.exp(
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + b * math.log(1.0 - x)
        + a * math.log(x)
    ) * _beta_cf(b, a, 1.0 - x) / b


def _beta_cf(a: float, b: float, x: float) -> float:  # pragma: no cover
    tiny = 1e-30
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c, d = 1.0, 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, 200):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-12:
            break
    return h


def clopper_pearson_interval(nd: int, ne: int, confidence: float = 0.95) -> tuple:
    """Exact two-sided CI for ``p = nd/ne`` in percent: ``(lower, upper)``."""
    if ne <= 0:
        raise ValueError(f"ne must be positive, got {ne}")
    if not 0 <= nd <= ne:
        raise ValueError(f"nd must be in [0, ne]; got nd={nd}, ne={ne}")
    alpha = 1.0 - confidence
    lower = 0.0 if nd == 0 else _beta_ppf(alpha / 2.0, nd, ne - nd + 1)
    upper = 1.0 if nd == ne else _beta_ppf(1.0 - alpha / 2.0, nd + 1, ne - nd)
    return (100.0 * lower, 100.0 * upper)


@dataclasses.dataclass(frozen=True)
class CoverageEstimate:
    """A ``nd / ne`` coverage estimate with its 95 % confidence interval.

    ``percent`` and ``half_width`` are on the paper's 0-100 scale.
    ``half_width`` is ``None`` when the table convention omits the
    interval (measured probability exactly 100 %, or the estimate is
    undefined because ``ne == 0``).
    """

    nd: int
    ne: int

    def __post_init__(self) -> None:
        if self.ne < 0:
            raise ValueError(f"ne must be non-negative, got {self.ne}")
        if not 0 <= self.nd <= max(self.ne, 0) and self.ne > 0:
            raise ValueError(f"nd must be in [0, ne]; got nd={self.nd}, ne={self.ne}")
        if self.ne == 0 and self.nd != 0:
            raise ValueError("nd must be 0 when ne is 0")

    @property
    def defined(self) -> bool:
        """Whether any runs back this estimate."""
        return self.ne > 0

    @property
    def fraction(self) -> Optional[float]:
        """``nd / ne`` on the 0-1 scale, ``None`` when undefined."""
        return self.nd / self.ne if self.ne > 0 else None

    @property
    def percent(self) -> Optional[float]:
        """``nd / ne`` on the paper's 0-100 scale, ``None`` when undefined."""
        return 100.0 * self.nd / self.ne if self.ne > 0 else None

    @property
    def half_width(self) -> Optional[float]:
        """95 % normal-approximation half width in percent (table convention)."""
        if self.ne == 0:
            return None
        if self.nd in (0, self.ne):
            # Degenerate estimate: the paper prints no interval for 100.0
            # (and symmetrically none is meaningful for 0 with this formula).
            return None
        return normal_interval(self.nd, self.ne)

    def exact_interval(self, confidence: float = 0.95) -> Optional[tuple]:
        """Clopper-Pearson ``(lower, upper)`` in percent."""
        if self.ne == 0:
            return None
        return clopper_pearson_interval(self.nd, self.ne, confidence)

    def format(self, digits: int = 1) -> str:
        """Render in the paper's table style, e.g. ``"55.5±4.1"``.

        Undefined estimates render as ``"-"``; degenerate 100 %/0 % render
        without an interval, matching the Table 7 caption.
        """
        if self.ne == 0:
            return "-"
        value = self.percent
        if self.half_width is None:
            return f"{value:.{digits}f}"
        return f"{value:.{digits}f}±{self.half_width:.{digits}f}"


def estimate_coverage(nd: int, ne: int) -> CoverageEstimate:
    """Convenience constructor mirroring the paper's ``P(d) = nd/ne``."""
    return CoverageEstimate(nd, ne)
