"""Latency summaries for detection experiments (Tables 8 and 9).

The paper reports detection latency — the time from the first injection
of an error to the first reported detection — as minimum, average and
maximum over the detecting runs, in milliseconds.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional

__all__ = ["LatencySummary", "summarize_latencies"]


@dataclasses.dataclass(frozen=True)
class LatencySummary:
    """Min/average/max of a latency sample, in the sample's unit."""

    count: int
    minimum: Optional[float]
    average: Optional[float]
    maximum: Optional[float]

    @property
    def defined(self) -> bool:
        return self.count > 0

    def format(self, digits: int = 0) -> str:
        """Render as ``min/avg/max`` in the paper's integer-millisecond style."""
        if not self.defined:
            return "-"
        return (
            f"{self.minimum:.{digits}f}/"
            f"{self.average:.{digits}f}/"
            f"{self.maximum:.{digits}f}"
        )


def summarize_latencies(latencies: Iterable[float]) -> LatencySummary:
    """Summarise a sample of first-detection latencies.

    Negative latencies are rejected: detection cannot precede the first
    injection in a well-formed experiment record.
    """
    values: List[float] = []
    for value in latencies:
        if value < 0:
            raise ValueError(f"latency must be non-negative, got {value}")
        values.append(value)
    if not values:
        return LatencySummary(0, None, None, None)
    return LatencySummary(
        count=len(values),
        minimum=min(values),
        average=sum(values) / len(values),
        maximum=max(values),
    )
