"""Statistical estimators for fault-injection experiments."""

from repro.stats.estimators import (
    Z_95,
    CoverageEstimate,
    clopper_pearson_interval,
    estimate_coverage,
    normal_interval,
    wilson_interval,
)
from repro.stats.compare import Agreement, compare_to_published
from repro.stats.summary import LatencySummary, summarize_latencies

__all__ = [
    "Z_95",
    "CoverageEstimate",
    "clopper_pearson_interval",
    "estimate_coverage",
    "normal_interval",
    "wilson_interval",
    "Agreement",
    "compare_to_published",
    "LatencySummary",
    "summarize_latencies",
]
