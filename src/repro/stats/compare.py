"""Comparing a measured coverage estimate against a published value.

Used by EXPERIMENTS.md tooling and benchmark assertions: given a coverage
estimate from a (scaled) campaign and the value a paper reports, decide
whether the reproduction is consistent — the published point value falls
inside the measurement's confidence interval (or within a tolerance band
when the estimate is degenerate).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.stats.estimators import CoverageEstimate

__all__ = ["Agreement", "compare_to_published"]


@dataclasses.dataclass(frozen=True)
class Agreement:
    """Outcome of comparing a measurement with a published value."""

    published_percent: float
    measured_percent: Optional[float]
    interval_low: Optional[float]
    interval_high: Optional[float]
    consistent: bool

    def format(self) -> str:
        if self.measured_percent is None:
            return f"published {self.published_percent:.1f}, no measurement"
        verdict = "consistent" if self.consistent else "DIFFERS"
        return (
            f"published {self.published_percent:.1f} vs measured "
            f"{self.measured_percent:.1f} "
            f"[{self.interval_low:.1f}, {self.interval_high:.1f}] -> {verdict}"
        )


def compare_to_published(
    estimate: CoverageEstimate,
    published_percent: float,
    degenerate_tolerance: float = 5.0,
) -> Agreement:
    """Check whether *published_percent* is consistent with *estimate*.

    Consistency uses the exact Clopper-Pearson interval of the
    measurement — valid even for the degenerate 0 %/100 % estimates where
    the paper's normal-approximation interval collapses.
    ``degenerate_tolerance`` additionally accepts a published value within
    that many points of a degenerate measurement (the paper prints 100.0
    for cells our scaled run may measure as 100.0 with a wide exact
    interval).
    """
    if not 0.0 <= published_percent <= 100.0:
        raise ValueError(f"published value must be a percentage, got {published_percent}")
    if not estimate.defined:
        return Agreement(published_percent, None, None, None, consistent=False)
    low, high = estimate.exact_interval()
    consistent = low <= published_percent <= high
    if not consistent and estimate.nd in (0, estimate.ne):
        consistent = abs(estimate.percent - published_percent) <= degenerate_tolerance
    return Agreement(
        published_percent=published_percent,
        measured_percent=estimate.percent,
        interval_low=low,
        interval_high=high,
        consistent=consistent,
    )
