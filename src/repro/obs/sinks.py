"""Trace sinks: where published events go.

* :class:`NullSink` — drops everything; with it attached, an *enabled*
  bus still costs only event construction, and a disabled bus (no bus at
  all) costs one predicate check — the invariant the campaign benchmark
  guards.
* :class:`RingBufferSink` — the last *capacity* events in memory, for
  interactive use and tests.
* :class:`JSONLSink` — one JSON object per line.  Under the process pool
  each worker writes its chunk's events to a private part file
  (``<trace>.part<chunk>``), which the dispatcher merges into the main
  file when the chunk's records reach the checkpoint — a crashed or
  retried chunk simply rewrites its part file, so the merged trace never
  holds duplicate events for a run.
"""

from __future__ import annotations

import collections
from pathlib import Path
from typing import Deque, Iterator, List, Optional, Union

from repro.obs.events import TraceEvent, event_from_json

__all__ = ["NullSink", "RingBufferSink", "JSONLSink", "read_trace"]


class NullSink:
    """Swallows every event (the tracing-enabled-but-discarded path)."""

    __slots__ = ()

    def emit(self, event: TraceEvent) -> None:
        pass


class RingBufferSink:
    """Keeps the most recent *capacity* events (None = unbounded)."""

    __slots__ = ("_events",)

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._events: Deque[TraceEvent] = collections.deque(maxlen=capacity)

    def emit(self, event: TraceEvent) -> None:
        self._events.append(event)

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)


class JSONLSink:
    """Appends events to a JSON-lines file, one event per line."""

    __slots__ = ("path", "_handle")

    def __init__(self, path: Union[str, Path], mode: str = "w") -> None:
        if mode not in ("w", "a"):
            raise ValueError(f"mode must be 'w' or 'a', got {mode!r}")
        self.path = Path(path)
        self._handle = self.path.open(mode, encoding="utf-8")

    def emit(self, event: TraceEvent) -> None:
        self._handle.write(event.to_json())
        self._handle.write("\n")

    def write_raw(self, text: str) -> None:
        """Append pre-serialised JSONL *text* (worker part-file merge)."""
        if text and not text.endswith("\n"):
            text += "\n"
        self._handle.write(text)

    def flush(self) -> None:
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JSONLSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_trace(path: Union[str, Path]) -> List[TraceEvent]:
    """Parse a JSONL trace file back into events (skips blank lines)."""
    events = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(event_from_json(line))
    return events
