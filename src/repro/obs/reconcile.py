"""Trace/result reconciliation: the audit between the two artifacts.

A campaign emits two independent records of itself: the per-run CSV
(:class:`~repro.experiments.results.RunRecord` rows) and the structured
trace (JSONL events).  They are produced by different code paths, so
agreement between them is a strong end-to-end check — every detection
the CSV claims must appear in the trace at the right sim-time, and vice
versa.  The acceptance test of the observability layer asserts an empty
discrepancy list.

Records are duck-typed (``version``, ``error_name``, ``mass_kg``,
``velocity_mps``, ``detected``, ``latency_ms``, ``wedged`` attributes)
so this module has no dependency on the experiments package.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.obs.events import TraceEvent, run_id_for

__all__ = ["reconcile_trace"]


def _index_by_run(events: Iterable[TraceEvent]) -> Dict[str, Dict[str, List[TraceEvent]]]:
    by_run: Dict[str, Dict[str, List[TraceEvent]]] = {}
    for event in events:
        if not event.run_id:
            continue
        by_run.setdefault(event.run_id, {}).setdefault(event.kind, []).append(event)
    return by_run


def reconcile_trace(events: Iterable[TraceEvent], records: Iterable) -> List[str]:
    """Cross-check trace *events* against campaign run *records*.

    Returns a list of human-readable discrepancies (empty = the two
    artifacts agree).  Checked per run:

    * a traced run has exactly one ``run-start`` and one terminal event
      (``run-end`` or ``run-timeout``);
    * the CSV ``detected`` flag matches the presence of ``detection``
      events, and the ``run-end`` event's own ``detected`` field;
    * the CSV latency equals first-detection sim-time minus
      first-injection sim-time as seen by the trace;
    * a wedged CSV record has a ``run-timeout`` event when the trace
      covers that run (in-simulation wedging ends in a normal run-end);
    * no traced run is missing from the records.

    Runs restored from a checkpoint on resume have no trace events in
    the current file; they are skipped rather than flagged.
    """
    issues: List[str] = []
    by_run = _index_by_run(events)
    seen_runs = set()

    for record in records:
        rid = run_id_for(
            record.version, record.error_name, record.mass_kg, record.velocity_mps
        )
        seen_runs.add(rid)
        kinds = by_run.get(rid)
        if kinds is None:
            continue  # restored from checkpoint; trace predates this file

        starts = kinds.get("run-start", [])
        ends = kinds.get("run-end", [])
        timeouts = kinds.get("run-timeout", [])
        if len(starts) != 1:
            issues.append(f"{rid}: expected 1 run-start event, got {len(starts)}")
        if len(ends) + len(timeouts) != 1:
            issues.append(
                f"{rid}: expected exactly one terminal event, got "
                f"{len(ends)} run-end + {len(timeouts)} run-timeout"
            )

        if timeouts:
            # A timed-out run's CSV record is synthetic (no detection, no
            # latency); events emitted before the wall-clock abort are
            # legitimately present in the trace, so only the lifecycle
            # shape is checked above.
            continue

        detections = kinds.get("detection", [])
        if record.detected != bool(detections):
            issues.append(
                f"{rid}: CSV detected={record.detected} but trace has "
                f"{len(detections)} detection events"
            )
        if ends:
            end = ends[0].data
            if end.get("detected") != record.detected:
                issues.append(
                    f"{rid}: run-end detected={end.get('detected')} "
                    f"!= CSV detected={record.detected}"
                )
            first_injection = end.get("first_injection_ms")
            if detections and first_injection is not None:
                latency = min(e.time_ms for e in detections) - first_injection
                if record.latency_ms is None or abs(latency - record.latency_ms) > 1e-9:
                    issues.append(
                        f"{rid}: trace latency {latency} ms "
                        f"!= CSV latency {record.latency_ms} ms"
                    )
        if record.wedged and not timeouts and ends:
            end = ends[0].data
            if not end.get("wedged"):
                issues.append(f"{rid}: CSV wedged but trace shows a healthy run-end")

    for rid in by_run:
        if rid not in seen_runs:
            issues.append(f"{rid}: traced run missing from the result records")
    return issues
