"""The trace bus: publishers on one side, sinks on the other.

Publishers (monitors, recovery, injectors, the campaign engine) hold an
optional bus reference that is ``None`` when tracing is disabled — the
entire disabled-path cost is one ``is not None`` predicate, benchmarked
by ``benchmarks/bench_campaign.py``.  When enabled, :meth:`TraceBus.emit`
stamps a monotonic sequence number and the current run id onto the event
and fans it out to every attached sink.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.obs.events import TraceEvent

__all__ = ["TraceBus"]


class TraceBus:
    """Orders, stamps and dispatches :class:`TraceEvent` s to sinks.

    The bus carries the *current run id* so per-sample publishers (a
    monitor deep inside the simulation loop) need not know which
    campaign run they serve; the campaign controller sets
    :attr:`run_id` when it boots a run.
    """

    __slots__ = ("_sinks", "_seq", "run_id")

    def __init__(self, sinks: Optional[List[Any]] = None, run_id: str = "") -> None:
        self._sinks: List[Any] = list(sinks) if sinks is not None else []
        self._seq = 0
        self.run_id = run_id

    def attach(self, sink: Any) -> Any:
        """Add *sink* (anything with ``emit(event)``); returns it."""
        self._sinks.append(sink)
        return sink

    @property
    def sinks(self) -> List[Any]:
        return list(self._sinks)

    @property
    def events_published(self) -> int:
        return self._seq

    def emit(
        self,
        subsystem: str,
        kind: str,
        time_ms: Optional[float] = None,
        run_id: Optional[str] = None,
        **data: Any,
    ) -> TraceEvent:
        """Build, stamp and dispatch one event; returns it."""
        event = TraceEvent(
            subsystem=subsystem,
            kind=kind,
            run_id=self.run_id if run_id is None else run_id,
            time_ms=time_ms,
            seq=self._seq,
            data=data,
        )
        self._seq += 1
        for sink in self._sinks:
            sink.emit(event)
        return event

    def close(self) -> None:
        """Close every sink that supports closing (file writers)."""
        for sink in self._sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "TraceBus":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
