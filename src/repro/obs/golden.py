"""Golden-trace recorder: a byte-stable reference arrestment trace.

Runs one fault-free arrestment on the grid-midpoint test case and
records it as a structured trace — run lifecycle plus a periodic
``monitor``/``signal-sample`` event for every :class:`TargetSystem`
signal-trace sample.  The output is fully deterministic (sim-time only,
no wall clock, sorted JSON keys), so the committed copy at
``tests/data/golden_arrestment.jsonl`` doubles as a regression oracle:
any change to the control loop, the signal map or the event schema
shows up as a byte diff.

Regenerate deliberately with ``make regen-golden`` (or ``python -m
repro.obs.golden tests/data/golden_arrestment.jsonl``) and review the
diff like any other behavioural change.
"""

from __future__ import annotations

import sys
from typing import List, Optional

from repro.arrestor.system import RunConfig, TargetSystem, TestCase
from repro.obs.bus import TraceBus
from repro.obs.events import TraceEvent, run_id_for
from repro.obs.sinks import JSONLSink, RingBufferSink

__all__ = ["GOLDEN_CASE", "GOLDEN_SAMPLE_PERIOD_MS", "record_golden_trace", "main"]

#: Midpoint of the paper's 5x5 test-case grid (mass 8-20 t, velocity
#: 40-70 m/s): representative without favouring any grid corner.
GOLDEN_CASE = TestCase(mass_kg=14000.0, velocity_mps=55.0)

#: Signal sampling period for the golden run; coarse enough to keep the
#: committed file small, fine enough to cover the whole arrestment.
GOLDEN_SAMPLE_PERIOD_MS = 250

_SAMPLE_FIELDS = (
    "mscnt",
    "ms_slot_nbr",
    "pulscnt",
    "i",
    "set_value",
    "is_value",
    "out_value",
)


def record_golden_trace(tracer: Optional[TraceBus] = None) -> List[TraceEvent]:
    """Run the golden arrestment and publish its trace into *tracer*.

    Returns the event list; with no *tracer*, events are collected in a
    throwaway ring buffer.  Every emitted value derives from the
    simulation alone, so two calls produce byte-identical traces.
    """
    if tracer is None:
        tracer = TraceBus([RingBufferSink()])
    buffer = RingBufferSink()
    tracer.attach(buffer)

    case = GOLDEN_CASE
    system = TargetSystem(
        case, RunConfig(signal_trace_period_ms=GOLDEN_SAMPLE_PERIOD_MS)
    )
    tracer.run_id = run_id_for("All", None, case.mass_kg, case.velocity_mps)
    tracer.emit(
        "campaign",
        "run-start",
        time_ms=0.0,
        version="All",
        error=None,
        signal=None,
        mass_kg=case.mass_kg,
        velocity_mps=case.velocity_mps,
    )
    result = system.run()
    for sample in system.signal_trace:
        now, *values = sample
        tracer.emit(
            "monitor",
            "signal-sample",
            time_ms=float(now),
            **dict(zip(_SAMPLE_FIELDS, values)),
        )
    summary = result.summary
    tracer.emit(
        "campaign",
        "run-end",
        time_ms=float(result.duration_ms),
        detected=result.detected,
        failed=result.failed,
        wedged=result.wedged,
        first_detection_ms=result.first_detection_ms,
        first_injection_ms=result.first_injection_ms,
        latency_ms=result.detection_latency_ms,
        detections=result.detection_count,
        injections=result.injection_count,
        duration_ms=result.duration_ms,
        stop_distance_m=round(summary.stop_distance_m, 6),
        max_retardation_g=round(summary.max_retardation_g, 6),
        stopped=summary.stopped,
    )
    tracer.run_id = ""
    return list(buffer)


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.obs.golden <path>`` — (re)write the golden trace."""
    args = sys.argv[1:] if argv is None else argv
    if len(args) != 1:
        print("usage: python -m repro.obs.golden <output.jsonl>", file=sys.stderr)
        return 2
    with JSONLSink(args[0], mode="w") as sink:
        events = record_golden_trace(TraceBus([sink]))
    print(f"golden trace: {len(events)} events -> {args[0]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
