"""The trace-event schema: what the subsystems publish.

A :class:`TraceEvent` is the software analogue of one time-stamped pulse
on the FIC3's logging channel: *which* subsystem observed *what*, at
*which* monotonic sim-time, inside *which* run.  Events are plain data —
JSON-serialisable with a stable key order so a recorded trace is
byte-stable across replays (the golden-trace regression relies on this).

Event kinds (the ``subsystem``/``kind`` vocabulary; see
``docs/architecture.md`` for the per-kind data fields):

===========  ================  ==============================================
subsystem    kind              emitted when
===========  ================  ==============================================
monitor      detection         an executable assertion flags a sample
recovery     recovery          a recovery strategy replaces a rejected sample
injection    injection         an injector flips/forces the target bit
campaign     run-start         a run begins on a freshly booted system
campaign     run-end           a run's readouts are packaged
campaign     run-timeout       a run exceeded its wall-clock budget (wedged)
campaign     campaign-start    the engine starts executing a spec list
campaign     resume-restored   checkpointed runs were skipped on resume
campaign     chunk-retry       a worker chunk failed and was resubmitted
campaign     campaign-end      the engine assembled the final result set
===========  ================  ==============================================

``run-start`` and ``run-timeout`` events carry a ``target`` data field —
the registry name of the workload the run executes on (e.g.
``"arrestor"``, ``"tanklevel"``) — so multi-target trace files remain
attributable run by run.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Mapping, Optional

__all__ = [
    "TraceEvent",
    "event_from_json",
    "run_id_for",
    "SUBSYSTEM_MONITOR",
    "SUBSYSTEM_RECOVERY",
    "SUBSYSTEM_INJECTION",
    "SUBSYSTEM_CAMPAIGN",
    "EVENT_KINDS",
]

SUBSYSTEM_MONITOR = "monitor"
SUBSYSTEM_RECOVERY = "recovery"
SUBSYSTEM_INJECTION = "injection"
SUBSYSTEM_CAMPAIGN = "campaign"

#: Every (subsystem, kind) pair the repository emits.
EVENT_KINDS = (
    (SUBSYSTEM_MONITOR, "detection"),
    (SUBSYSTEM_MONITOR, "signal-sample"),
    (SUBSYSTEM_RECOVERY, "recovery"),
    (SUBSYSTEM_INJECTION, "injection"),
    (SUBSYSTEM_CAMPAIGN, "run-start"),
    (SUBSYSTEM_CAMPAIGN, "run-end"),
    (SUBSYSTEM_CAMPAIGN, "run-timeout"),
    (SUBSYSTEM_CAMPAIGN, "campaign-start"),
    (SUBSYSTEM_CAMPAIGN, "resume-restored"),
    (SUBSYSTEM_CAMPAIGN, "store-restored"),
    (SUBSYSTEM_CAMPAIGN, "snapshot-prewarm"),
    (SUBSYSTEM_CAMPAIGN, "chunk-retry"),
    (SUBSYSTEM_CAMPAIGN, "campaign-end"),
    (SUBSYSTEM_CAMPAIGN, "node-start"),
    (SUBSYSTEM_CAMPAIGN, "node-cached"),
    (SUBSYSTEM_CAMPAIGN, "node-done"),
)


def run_id_for(
    version: str, error_name: str, mass_kg: float, velocity_mps: float
) -> str:
    """The canonical run identity as a compact string.

    Mirrors :func:`repro.experiments.results.canonical_key`, so trace
    events reconcile 1:1 with campaign CSV records.
    """
    return f"{version}|{error_name}|m{mass_kg:g}|v{velocity_mps:g}"


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One structured observation of the detection pipeline.

    ``time_ms`` is monotonic *simulated* time within the run (the
    target's 1-ms time base), not wall clock — traces must replay
    byte-identically.  ``seq`` is the bus-assigned publication index
    (monotonic per bus; part files merged from workers keep their own
    worker-local sequences).
    """

    subsystem: str
    kind: str
    run_id: str = ""
    time_ms: Optional[float] = None
    seq: int = 0
    data: Mapping[str, Any] = dataclasses.field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "run_id": self.run_id,
            "time_ms": self.time_ms,
            "subsystem": self.subsystem,
            "kind": self.kind,
            "data": dict(self.data),
        }

    def to_json(self) -> str:
        """One compact JSON line; keys sorted for byte-stable replay."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":"), default=repr
        )


def event_from_json(line: str) -> TraceEvent:
    """Parse one JSONL trace line back into a :class:`TraceEvent`."""
    raw = json.loads(line)
    return TraceEvent(
        subsystem=raw["subsystem"],
        kind=raw["kind"],
        run_id=raw.get("run_id", ""),
        time_ms=raw.get("time_ms"),
        seq=raw.get("seq", 0),
        data=raw.get("data", {}),
    )
