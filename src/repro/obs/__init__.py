"""Observability layer: structured tracing + metrics for the reproduction.

The paper's evaluation hinges on *when* and *where* an assertion fires —
detection latency, first-detecting monitor, propagation path — yet a
campaign's CSV records only the per-run aggregate.  :mod:`repro.obs`
exposes the detection pipeline the way a production system would:

* :class:`TraceEvent` / :class:`TraceBus` — a structured event stream
  with monotonic sim-time, run id, subsystem and kind, published into by
  the monitors (detections), recovery strategies, injectors (bit flips)
  and the campaign engine (run lifecycle, chunk dispatch, timeouts);
* :class:`MetricsRegistry` — counters, gauges and fixed-bucket
  histograms (detection latency per monitor id, wedged-run counter,
  runs/sec, ...) snapshotable to a plain dict and additively mergeable
  across worker processes;
* sinks — :class:`RingBufferSink` (in memory), :class:`JSONLSink` (one
  JSON object per line; under the process pool each worker writes a
  per-chunk part file merged at checkpoint time), and :class:`NullSink`
  so that tracing disabled costs exactly one predicate check on the hot
  path.

Everything is stdlib-only.  Wire-through: ``CampaignConfig(trace_path,
metrics)`` / ``REPRO_TRACE``, CLI ``--trace`` / ``--metrics-out``.
"""

from repro.obs.bus import TraceBus
from repro.obs.events import (
    EVENT_KINDS,
    SUBSYSTEM_CAMPAIGN,
    SUBSYSTEM_INJECTION,
    SUBSYSTEM_MONITOR,
    SUBSYSTEM_RECOVERY,
    TraceEvent,
    event_from_json,
    run_id_for,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.reconcile import reconcile_trace
from repro.obs.sinks import JSONLSink, NullSink, RingBufferSink, read_trace

__all__ = [
    "TraceEvent",
    "TraceBus",
    "event_from_json",
    "run_id_for",
    "EVENT_KINDS",
    "SUBSYSTEM_MONITOR",
    "SUBSYSTEM_RECOVERY",
    "SUBSYSTEM_INJECTION",
    "SUBSYSTEM_CAMPAIGN",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "NullSink",
    "RingBufferSink",
    "JSONLSink",
    "read_trace",
    "reconcile_trace",
]
