"""Metrics: counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` is the numeric side of the observability
layer: where the trace answers *what happened*, the registry answers
*how often and how fast*.  It is deliberately Prometheus-shaped —
``name{label=value}`` keys, cumulative bucket counts — but stdlib-only:

* counters and histograms are **additive**, so per-worker registries
  snapshot to plain dicts and merge into the dispatcher's registry at
  checkpoint time (the same rendezvous the trace part files use);
* gauges are last-write-wins (a merged snapshot overwrites).

Snapshots are JSON-serialisable; :meth:`MetricsRegistry.render` gives
the human summary ``python -m repro.experiments`` prints at campaign
end.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_MS",
]

Number = Union[int, float]

#: Detection latencies (ms): sub-slot to multi-second, then +Inf.
DEFAULT_LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0,
)


def metric_key(name: str, labels: Dict[str, str]) -> str:
    """Canonical ``name{k=v,...}`` key (labels sorted; no labels = bare name)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value (runs/sec, queue depth, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram with cumulative counts and a sum.

    ``buckets`` are upper bounds; an implicit +Inf bucket catches the
    overflow.  ``counts[i]`` is the number of observations ``<=
    buckets[i]`` (non-cumulative per-bucket storage; :meth:`snapshot`
    exposes it as-is, which keeps merging a plain element-wise add).
    """

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS) -> None:
        ordered = tuple(float(b) for b in buckets)
        if not ordered or any(nxt <= prev for prev, nxt in zip(ordered, ordered[1:])):
            raise ValueError(f"buckets must be strictly increasing, got {buckets!r}")
        self.buckets = ordered
        self.counts = [0] * (len(ordered) + 1)  # last = +Inf overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value: Number) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None


class MetricsRegistry:
    """Named metrics with get-or-create accessors and dict snapshots."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- accessors -------------------------------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        return self._counters.setdefault(metric_key(name, labels), Counter())

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._gauges.setdefault(metric_key(name, labels), Gauge())

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
        **labels: str,
    ) -> Histogram:
        key = metric_key(name, labels)
        found = self._histograms.get(key)
        if found is None:
            found = self._histograms[key] = Histogram(buckets)
        elif found.buckets != tuple(float(b) for b in buckets):
            raise ValueError(f"histogram {key!r} already exists with other buckets")
        return found

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # -- snapshot / merge ------------------------------------------------

    def snapshot(self) -> dict:
        """A plain-dict, JSON-serialisable copy of every metric."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: {
                    "buckets": list(h.buckets),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                }
                for k, h in sorted(self._histograms.items())
            },
        }

    def merge(self, snapshot: dict) -> None:
        """Fold a worker's :meth:`snapshot` into this registry.

        Counters and histograms add; gauges take the snapshot's value.
        Histogram bucket layouts must match (they come from the same
        code, so a mismatch means incompatible versions).
        """
        for key, value in snapshot.get("counters", {}).items():
            self._counters.setdefault(key, Counter()).value += value
        for key, value in snapshot.get("gauges", {}).items():
            self._gauges.setdefault(key, Gauge()).value = value
        for key, data in snapshot.get("histograms", {}).items():
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = Histogram(data["buckets"])
            if list(hist.buckets) != list(data["buckets"]):
                raise ValueError(f"histogram {key!r}: incompatible bucket layout")
            for index, count in enumerate(data["counts"]):
                hist.counts[index] += count
            hist.sum += data["sum"]
            hist.count += data["count"]

    # -- presentation ----------------------------------------------------

    def render(self) -> str:
        """Human-readable summary (the campaign-end printout)."""
        lines: List[str] = []
        for key, counter in sorted(self._counters.items()):
            lines.append(f"{key} {counter.value}")
        for key, gauge in sorted(self._gauges.items()):
            value = gauge.value
            text = f"{value:.3f}" if isinstance(value, float) else str(value)
            lines.append(f"{key} {text}")
        for key, hist in sorted(self._histograms.items()):
            mean = f"{hist.mean:.1f}" if hist.count else "-"
            lines.append(f"{key} count={hist.count} mean={mean} sum={hist.sum:.1f}")
        return "\n".join(lines)
