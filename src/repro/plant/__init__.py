"""Environment simulator: aircraft, cable/drums, hydraulics, failure rules."""

from repro.plant.aircraft import BRAKE_FORCE_PER_PA, DRAG_COEFF, GRAVITY, Aircraft
from repro.plant.drum import PULSE_PITCH_M, RotationSensor
from repro.plant.environment import Environment
from repro.plant.failure import (
    RETARDATION_LIMIT_G,
    RUNWAY_LENGTH_M,
    ArrestmentSummary,
    FailureClassifier,
    FailureVerdict,
)
from repro.plant.hydraulics import (
    PA_PER_COUNT,
    VALVE_MAX_PA,
    VALVE_TIME_CONSTANT_S,
    PressureSensor,
    PressureValve,
)
from repro.plant.milspec import ForceLimitTable, default_force_limits

__all__ = [
    "BRAKE_FORCE_PER_PA",
    "DRAG_COEFF",
    "GRAVITY",
    "Aircraft",
    "PULSE_PITCH_M",
    "RotationSensor",
    "Environment",
    "RETARDATION_LIMIT_G",
    "RUNWAY_LENGTH_M",
    "ArrestmentSummary",
    "FailureClassifier",
    "FailureVerdict",
    "PA_PER_COUNT",
    "VALVE_MAX_PA",
    "VALVE_TIME_CONSTANT_S",
    "PressureSensor",
    "PressureValve",
    "ForceLimitTable",
    "default_force_limits",
]
