"""Failure classification of an arrestment (Section 3.3).

The specification dictates physical constraints the system must honour;
their violation is *defined* as a failure:

1. **Retardation** ``r < 2.8 g`` — the pilot must not be harmed;
2. **Retardation force** ``Fret < Fmax(m, v)`` — the airframe's
   structural limits, interpolated from the force-limit table;
3. **Stopping distance** ``d < 335 m`` — the runway is finite.

As in the paper this is a pessimistic classification: a 3-g blip would
rarely hurt in reality, but it counts as failure here.  An aircraft that
is still rolling when the experiment's observation window closes has, by
constraint 3's logic, not been arrested — its distance will exceed the
runway — and is classified as failed.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from repro.plant.milspec import ForceLimitTable, default_force_limits

__all__ = [
    "RETARDATION_LIMIT_G",
    "RUNWAY_LENGTH_M",
    "ArrestmentSummary",
    "FailureVerdict",
    "FailureClassifier",
]

#: Constraint 1 of Section 3.3.
RETARDATION_LIMIT_G = 2.8

#: Constraint 3 of Section 3.3.
RUNWAY_LENGTH_M = 335.0


@dataclasses.dataclass(frozen=True)
class ArrestmentSummary:
    """What the environment simulator's readouts say about one run."""

    mass_kg: float
    engagement_velocity_mps: float
    max_retardation_g: float
    max_cable_force_n: float
    stop_distance_m: float
    stopped: bool
    duration_s: float


@dataclasses.dataclass(frozen=True)
class FailureVerdict:
    """Classification outcome: failed or not, and which constraints broke."""

    failed: bool
    violated: Tuple[str, ...] = ()

    def __bool__(self) -> bool:
        return self.failed


class FailureClassifier:
    """Applies the Section-3.3 constraints to an arrestment summary."""

    def __init__(
        self,
        force_limits: Optional[ForceLimitTable] = None,
        retardation_limit_g: float = RETARDATION_LIMIT_G,
        runway_length_m: float = RUNWAY_LENGTH_M,
    ) -> None:
        if retardation_limit_g <= 0:
            raise ValueError(f"retardation limit must be positive, got {retardation_limit_g}")
        if runway_length_m <= 0:
            raise ValueError(f"runway length must be positive, got {runway_length_m}")
        self.force_limits = force_limits if force_limits is not None else default_force_limits()
        self.retardation_limit_g = retardation_limit_g
        self.runway_length_m = runway_length_m

    def force_limit_for(self, mass_kg: float, velocity_mps: float) -> float:
        """Fmax for an engagement, via the table's interpolation."""
        return self.force_limits.limit(mass_kg, velocity_mps)

    def classify(self, summary: ArrestmentSummary) -> FailureVerdict:
        """Check all three constraints; any violation is a failure."""
        violated = []
        if summary.max_retardation_g >= self.retardation_limit_g:
            violated.append("retardation")
        fmax = self.force_limit_for(summary.mass_kg, summary.engagement_velocity_mps)
        if summary.max_cable_force_n >= fmax:
            violated.append("force")
        if summary.stop_distance_m >= self.runway_length_m or not summary.stopped:
            violated.append("distance")
        return FailureVerdict(bool(violated), tuple(violated))
