"""Aircraft-and-cable dynamics.

The arrested aircraft is modelled as a point mass pulling the cable off
the tape drums; the drums' brake force (from the hydraulic pressure on
both drums) plus a small aerodynamic/rolling drag decelerate it.  Drum
and cable inertia are absorbed into the brake-force constant — the
standard reduction for runout-style arresting-gear models.
"""

from __future__ import annotations

__all__ = ["Aircraft", "BRAKE_FORCE_PER_PA", "DRAG_COEFF", "GRAVITY"]

#: Brake force (N) per pascal of hydraulic pressure, per drum.  With the
#: 10 MPa full-scale valve this yields up to 200 kN per drum, 400 kN for
#: the pair — enough to violently exceed every structural limit of the
#: default MIL-substitute table when a data error pins the pressure high.
BRAKE_FORCE_PER_PA = 0.02

#: Aerodynamic + rolling drag, N per (m/s)^2.
DRAG_COEFF = 2.0

#: Standard gravity, m/s^2.
GRAVITY = 9.80665


class Aircraft:
    """Point-mass aircraft on the runway, hooked to the cable at x = 0."""

    __slots__ = (
        "mass_kg",
        "velocity_mps",
        "position_m",
        "deceleration_mps2",
        "cable_force_n",
        "stopped",
    )

    def __init__(self, mass_kg: float, velocity_mps: float) -> None:
        if mass_kg <= 0:
            raise ValueError(f"mass must be positive, got {mass_kg}")
        if velocity_mps <= 0:
            raise ValueError(f"engagement velocity must be positive, got {velocity_mps}")
        self.mass_kg = mass_kg
        self.velocity_mps = velocity_mps
        self.position_m = 0.0
        self.deceleration_mps2 = 0.0
        self.cable_force_n = 0.0
        self.stopped = False

    def advance(self, dt: float, master_pressure_pa: float, slave_pressure_pa: float) -> None:
        """Integrate one step of the arrestment under the given pressures.

        The cable cannot push: once the aircraft has stopped it stays
        stopped (the drums' friction holds it), so velocity clamps at 0.
        """
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        if self.stopped:
            self.deceleration_mps2 = 0.0
            self.cable_force_n = 0.0
            return
        self.cable_force_n = BRAKE_FORCE_PER_PA * (master_pressure_pa + slave_pressure_pa)
        drag_n = DRAG_COEFF * self.velocity_mps * self.velocity_mps
        total_n = self.cable_force_n + drag_n
        self.deceleration_mps2 = total_n / self.mass_kg
        new_velocity = self.velocity_mps - self.deceleration_mps2 * dt
        if new_velocity <= 0.0:
            # Stop inside the step: advance by the exact stopping fraction.
            fraction = self.velocity_mps / (self.deceleration_mps2 * dt)
            self.position_m += self.velocity_mps * dt * fraction / 2.0
            self.velocity_mps = 0.0
            self.stopped = True
            return
        self.position_m += (self.velocity_mps + new_velocity) * dt / 2.0
        self.velocity_mps = new_velocity

    @property
    def deceleration_g(self) -> float:
        """Current retardation in multiples of standard gravity."""
        return self.deceleration_mps2 / GRAVITY

    @property
    def kinetic_energy_j(self) -> float:
        return 0.5 * self.mass_kg * self.velocity_mps * self.velocity_mps
