"""Structural force limits Fmax(mass, velocity).

The paper takes the maximum allowed retarding force per aircraft mass and
engaging velocity from MIL-A-38202C [15] and interpolates/extrapolates
between the tabulated combinations.  The MIL table itself is not publicly
distributable, so this module substitutes a physically-plausible grid:
the limit force scales with the kinetic energy of the engagement (an
ideal constant-force stop over a nominal distance) times a structural
margin.  The interpolation/extrapolation machinery is the part the paper
exercises, and that is reproduced exactly: bilinear inside the grid,
linear continuation outside.
"""

from __future__ import annotations

import bisect
from typing import List, Sequence

__all__ = ["ForceLimitTable", "default_force_limits"]


class ForceLimitTable:
    """Bilinear interpolation / extrapolation over an Fmax(m, v) grid.

    ``masses`` (kg) and ``velocities`` (m/s) must be strictly increasing;
    ``limits[i][j]`` is the maximum allowed force (N) for ``masses[i]``
    and ``velocities[j]``.
    """

    def __init__(
        self,
        masses: Sequence[float],
        velocities: Sequence[float],
        limits: Sequence[Sequence[float]],
    ) -> None:
        if len(masses) < 2 or len(velocities) < 2:
            raise ValueError("force limit table needs at least a 2x2 grid")
        if any(b <= a for a, b in zip(masses, masses[1:])):
            raise ValueError("masses must be strictly increasing")
        if any(b <= a for a, b in zip(velocities, velocities[1:])):
            raise ValueError("velocities must be strictly increasing")
        if len(limits) != len(masses) or any(len(row) != len(velocities) for row in limits):
            raise ValueError("limits grid shape must be len(masses) x len(velocities)")
        if any(value <= 0 for row in limits for value in row):
            raise ValueError("force limits must be positive")
        self.masses = [float(m) for m in masses]
        self.velocities = [float(v) for v in velocities]
        self.limits = [[float(x) for x in row] for row in limits]

    @staticmethod
    def _bracket(axis: List[float], value: float) -> int:
        """Index ``i`` such that the segment ``[axis[i], axis[i+1]]`` is used.

        Values outside the axis clamp to the first/last segment, which
        turns the bilinear formula into linear extrapolation — the
        behaviour the paper describes for combinations outside [15].
        """
        i = bisect.bisect_right(axis, value) - 1
        return max(0, min(i, len(axis) - 2))

    def limit(self, mass: float, velocity: float) -> float:
        """Fmax in newtons for an engagement of *mass* kg at *velocity* m/s."""
        if mass <= 0:
            raise ValueError(f"mass must be positive, got {mass}")
        if velocity <= 0:
            raise ValueError(f"velocity must be positive, got {velocity}")
        i = self._bracket(self.masses, mass)
        j = self._bracket(self.velocities, velocity)
        m0, m1 = self.masses[i], self.masses[i + 1]
        v0, v1 = self.velocities[j], self.velocities[j + 1]
        tm = (mass - m0) / (m1 - m0)
        tv = (velocity - v0) / (v1 - v0)
        f00 = self.limits[i][j]
        f01 = self.limits[i][j + 1]
        f10 = self.limits[i + 1][j]
        f11 = self.limits[i + 1][j + 1]
        f0 = f00 + (f01 - f00) * tv
        f1 = f10 + (f11 - f10) * tv
        return f0 + (f1 - f0) * tm


#: Nominal stop distance (m) behind the default limit grid: the limit is the
#: force of an ideal constant-force stop over this distance, with margin.
_NOMINAL_STOP_DISTANCE_M = 260.0

#: Structural margin above the ideal constant-force stop.
_STRUCTURAL_MARGIN = 1.35


def default_force_limits() -> ForceLimitTable:
    """The substitute Fmax grid used throughout the reproduction.

    ``Fmax(m, v) = margin * m * v^2 / (2 * d_nominal)`` evaluated on a
    mass x velocity grid that brackets the evaluation's test-case space
    (m in [8000, 20000] kg, v in [40, 70] m/s) with room for
    extrapolation queries.
    """
    masses = [6000.0, 10000.0, 14000.0, 18000.0, 22000.0, 26000.0]
    velocities = [30.0, 40.0, 50.0, 60.0, 70.0, 80.0]
    limits = [
        [
            _STRUCTURAL_MARGIN * m * v * v / (2.0 * _NOMINAL_STOP_DISTANCE_M)
            for v in velocities
        ]
        for m in masses
    ]
    return ForceLimitTable(masses, velocities, limits)
