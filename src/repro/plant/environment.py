"""The environment simulator.

Plays the role of the paper's environment simulator (Figure 7): it *"acts
as the barrier (i.e. cable and tape drums) and as the incoming aircraft.
This simulator is initialised using test case data (mass and incoming
velocity) ... feeds the system with sensory data (rotation sensor and
pressure sensor) and receives actuator data (pressure value)."*

The control nodes interact with it only through the sensor/actuator
surface (rotation pulses, pressure sensor counts, valve commands); the
summary of each run is analysed afterwards for system failure, exactly
as the FIC3 analyses its experiment readouts.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.plant.aircraft import Aircraft
from repro.plant.drum import PULSE_PITCH_M, RotationSensor
from repro.plant.failure import ArrestmentSummary
from repro.plant.hydraulics import PressureSensor, PressureValve

__all__ = ["Environment"]


class Environment:
    """Cable, tape drums, hydraulics and aircraft for one arrestment."""

    def __init__(
        self,
        mass_kg: float,
        velocity_mps: float,
        pulse_pitch_m: float = PULSE_PITCH_M,
        sensor_ripple_counts: int = 0,
        trace_period_s: Optional[float] = None,
    ) -> None:
        self.aircraft = Aircraft(mass_kg, velocity_mps)
        self._engagement_velocity_mps = velocity_mps
        self.rotation_sensor = RotationSensor(pulse_pitch_m)
        self.master_valve = PressureValve()
        self.slave_valve = PressureValve()
        self.master_pressure_sensor = PressureSensor(
            self.master_valve, ripple_counts=sensor_ripple_counts
        )
        self.slave_pressure_sensor = PressureSensor(
            self.slave_valve, ripple_counts=sensor_ripple_counts
        )
        self.time_s = 0.0
        self.max_retardation_g = 0.0
        self.max_cable_force_n = 0.0
        self._trace_period_s = trace_period_s
        self._next_trace_s = 0.0
        #: Optional (time, position, velocity, retardation_g, force_n) trace.
        self.trace: List[Tuple[float, float, float, float, float]] = []

    def enable_trajectory_trace(self, period_s: float) -> None:
        """Start recording (t, x, v, g, F) samples every *period_s* seconds.

        May be called after construction (e.g. on the environment inside a
        :class:`~repro.arrestor.system.TargetSystem`) as long as the run
        has not started.
        """
        if period_s <= 0:
            raise ValueError(f"trace period must be positive, got {period_s}")
        self._trace_period_s = period_s
        self._next_trace_s = self.time_s

    # -- actuator surface (driven by PRES_A of each node) ------------------

    def command_master_valve_counts(self, counts: int) -> None:
        self.master_valve.command_counts(counts)

    def command_slave_valve_counts(self, counts: int) -> None:
        self.slave_valve.command_counts(counts)

    # -- sensor surface ------------------------------------------------------

    def poll_rotation_pulses(self) -> int:
        """New rotation pulses since the last poll (DIST_S's read)."""
        return self.rotation_sensor.poll()

    def read_master_pressure_counts(self) -> int:
        return self.master_pressure_sensor.read_counts(self.time_s)

    def read_slave_pressure_counts(self) -> int:
        return self.slave_pressure_sensor.read_counts(self.time_s)

    # -- simulation ------------------------------------------------------------

    def advance(self, dt: float) -> None:
        """Advance the physical world by *dt* seconds."""
        self.master_valve.advance(dt)
        self.slave_valve.advance(dt)
        self.aircraft.advance(
            dt, self.master_valve.pressure_pa, self.slave_valve.pressure_pa
        )
        self.rotation_sensor.update(self.aircraft.position_m)
        self.time_s += dt
        if self.aircraft.deceleration_g > self.max_retardation_g:
            self.max_retardation_g = self.aircraft.deceleration_g
        if self.aircraft.cable_force_n > self.max_cable_force_n:
            self.max_cable_force_n = self.aircraft.cable_force_n
        if self._trace_period_s is not None and self.time_s >= self._next_trace_s:
            self.trace.append(
                (
                    self.time_s,
                    self.aircraft.position_m,
                    self.aircraft.velocity_mps,
                    self.aircraft.deceleration_g,
                    self.aircraft.cable_force_n,
                )
            )
            self._next_trace_s += self._trace_period_s

    @property
    def arrestment_complete(self) -> bool:
        """Whether the aircraft has come to a halt."""
        return self.aircraft.stopped

    def summary(self) -> ArrestmentSummary:
        """The readout summary the failure classifier consumes."""
        return ArrestmentSummary(
            mass_kg=self.aircraft.mass_kg,
            engagement_velocity_mps=self._engagement_velocity_mps,
            max_retardation_g=self.max_retardation_g,
            max_cable_force_n=self.max_cable_force_n,
            stop_distance_m=self.aircraft.position_m,
            stopped=self.aircraft.stopped,
            duration_s=self.time_s,
        )
