"""Hydraulic pressure valves and pressure sensors.

Each tape drum is braked by a hydraulic pressure valve driven by its
node's ``OutValue``; a pressure sensor on the valve feeds the actually
applied pressure back as ``IsValue`` so the software PID can track the
set point.  The valve is modelled as a first-order lag — the standard
reduced model for a proportional pressure valve — and the sensor as a
quantising transducer with optional bounded ripple.
"""

from __future__ import annotations

import math

__all__ = [
    "PressureValve",
    "PressureSensor",
    "VALVE_MAX_PA",
    "VALVE_TIME_CONSTANT_S",
    "PA_PER_COUNT",
]

#: Full-scale valve pressure.
VALVE_MAX_PA = 10.0e6

#: First-order lag time constant of the valve.
VALVE_TIME_CONSTANT_S = 0.15

#: Scaling between the 16-bit pressure signals (SetValue / IsValue /
#: OutValue) and physical pressure: one count = 1 kPa, so full scale
#: 10 MPa = 10000 counts, comfortably inside 16 bits.
PA_PER_COUNT = 1000.0


class PressureValve:
    """Proportional pressure valve with first-order dynamics.

    ``d P/dt = (command - P) / tau`` with the command clamped to
    ``[0, max_pa]``.  The exact discrete solution is used so behaviour is
    independent of the caller's step size.
    """

    __slots__ = ("max_pa", "tau", "pressure_pa", "_command_pa")

    def __init__(
        self,
        max_pa: float = VALVE_MAX_PA,
        tau: float = VALVE_TIME_CONSTANT_S,
    ) -> None:
        if max_pa <= 0:
            raise ValueError(f"max_pa must be positive, got {max_pa}")
        if tau <= 0:
            raise ValueError(f"valve time constant must be positive, got {tau}")
        self.max_pa = max_pa
        self.tau = tau
        self.pressure_pa = 0.0
        self._command_pa = 0.0

    @property
    def command_pa(self) -> float:
        return self._command_pa

    def command(self, pressure_pa: float) -> None:
        """Set the commanded pressure (clamped to the valve's range)."""
        self._command_pa = min(max(pressure_pa, 0.0), self.max_pa)

    def command_counts(self, counts: int) -> None:
        """Command in signal counts (the PRES_A output operation)."""
        self.command(counts * PA_PER_COUNT)

    def advance(self, dt: float) -> float:
        """Advance the valve by *dt* seconds; returns the new pressure."""
        if dt < 0:
            raise ValueError(f"dt must be non-negative, got {dt}")
        alpha = 1.0 - math.exp(-dt / self.tau)
        self.pressure_pa += (self._command_pa - self.pressure_pa) * alpha
        return self.pressure_pa

    def max_slew_per_interval(self, dt: float) -> float:
        """Largest possible pressure change over *dt* seconds, in Pa.

        Used when deriving the EA2 rate envelope for ``IsValue``: the
        first-order lag cannot move faster than a full-scale step decayed
        over *dt*.
        """
        return self.max_pa * (1.0 - math.exp(-dt / self.tau))

    def reset(self) -> None:
        self.pressure_pa = 0.0
        self._command_pa = 0.0


class PressureSensor:
    """Quantising pressure transducer.

    Reads the valve pressure in signal counts (kPa).  ``ripple_counts``
    adds a deterministic bounded ripple (a slow sinusoid) emulating
    sampling noise; it defaults to zero so the evaluation's "no detection
    without injection" precondition holds by construction.
    """

    __slots__ = ("valve", "ripple_counts", "ripple_period_s")

    def __init__(
        self,
        valve: PressureValve,
        ripple_counts: int = 0,
        ripple_period_s: float = 0.037,
    ) -> None:
        if ripple_counts < 0:
            raise ValueError(f"ripple_counts must be non-negative, got {ripple_counts}")
        if ripple_period_s <= 0:
            raise ValueError(f"ripple_period_s must be positive, got {ripple_period_s}")
        self.valve = valve
        self.ripple_counts = ripple_counts
        self.ripple_period_s = ripple_period_s

    def read_counts(self, now_s: float = 0.0) -> int:
        """Sample the sensor; returns pressure in counts, clamped to 16 bits."""
        counts = self.valve.pressure_pa / PA_PER_COUNT
        if self.ripple_counts:
            counts += self.ripple_counts * math.sin(
                2.0 * math.pi * now_s / self.ripple_period_s
            )
        quantised = int(round(counts))
        if quantised < 0:
            return 0
        if quantised > 0xFFFF:
            return 0xFFFF
        return quantised
