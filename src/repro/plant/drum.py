"""Tape drums and the rotation sensor.

The cable is strapped between two tape drums; a rotation sensor on the
master drum generates pulses from a tooth wheel as cable pays out, and
DIST_S accumulates them into ``pulscnt``.  We model the sensor as an
ideal incremental encoder on the cable payout distance: one pulse per
``pulse_pitch`` metres.
"""

from __future__ import annotations

__all__ = ["RotationSensor", "PULSE_PITCH_M"]

#: Metres of cable payout per rotation-sensor pulse.  At the evaluation's
#: maximum engagement speed (70 m/s) this yields 1.4 pulses/ms, so the
#: 1-ms DIST_S poll sees 0..2 new pulses — the envelope EA4 encodes.
PULSE_PITCH_M = 0.05


class RotationSensor:
    """Incremental encoder on the master tape drum.

    :meth:`poll` returns the number of *new* pulses since the previous
    poll, which is what the DIST_S hardware interface delivers.  The total
    is also kept for test convenience; the target's own total lives in
    its ``pulscnt`` memory variable.
    """

    __slots__ = ("pulse_pitch", "_emitted", "total_pulses")

    def __init__(self, pulse_pitch: float = PULSE_PITCH_M) -> None:
        if pulse_pitch <= 0:
            raise ValueError(f"pulse pitch must be positive, got {pulse_pitch}")
        self.pulse_pitch = pulse_pitch
        self._emitted = 0
        self.total_pulses = 0

    def update(self, payout_m: float) -> None:
        """Advance the sensor to the current cable payout distance."""
        if payout_m < 0:
            raise ValueError(f"cable payout cannot be negative, got {payout_m}")
        self.total_pulses = int(payout_m / self.pulse_pitch)

    def poll(self) -> int:
        """New pulses since the last poll (the DIST_S read operation)."""
        new = self.total_pulses - self._emitted
        self._emitted = self.total_pulses
        return new

    def reset(self) -> None:
        self._emitted = 0
        self.total_pulses = 0
