"""The emulated target memory: a byte array with typed accessors.

All program state of the simulated target lives here, so a bit-flip at an
(address, bit) pair — the paper's SWIFI error model — corrupts exactly
the state the software computes with.  Accessors are deliberately plain
functions over a ``bytearray``: they sit on the 1-ms simulation hot path.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional

from repro.memory.layout import MemoryRegion, Symbol

__all__ = ["MemoryMap", "Variable"]


class MemoryMap:
    """Byte-addressable memory composed of named, non-overlapping regions."""

    def __init__(self, regions: List[MemoryRegion]) -> None:
        if not regions:
            raise ValueError("a memory map needs at least one region")
        for i, a in enumerate(regions):
            for b in regions[i + 1 :]:
                if a.overlaps(b):
                    raise ValueError(f"regions {a.name!r} and {b.name!r} overlap")
            if a.name in {r.name for r in regions if r is not a}:
                raise ValueError(f"duplicate region name {a.name!r}")
        self.regions: Dict[str, MemoryRegion] = {r.name: r for r in regions}
        self._ordered = sorted(regions, key=lambda r: r.start)
        self._starts = [r.start for r in self._ordered]
        self._size = max(r.end for r in regions)
        self.data = bytearray(self._size)

    # -- geometry ---------------------------------------------------------

    @property
    def size(self) -> int:
        """Highest mapped address + 1 (regions may leave holes below it)."""
        return self._size

    def region_of(self, address: int) -> Optional[MemoryRegion]:
        """The region containing *address*, or ``None`` for unmapped holes.

        Regions are kept sorted by start address, so the lookup is a
        binary search: the candidate is the last region starting at or
        below *address*, and a miss (a hole between regions, or an
        address below/above all of them) returns ``None``.
        """
        index = bisect.bisect_right(self._starts, address) - 1
        if index < 0:
            return None
        region = self._ordered[index]
        return region if region.contains(address) else None

    def check_mapped(self, address: int, size: int = 1) -> None:
        """Raise when ``[address, address + size)`` leaves mapped memory."""
        region = self.region_of(address)
        if region is None or address + size > region.end:
            raise IndexError(
                f"access of {size} byte(s) at 0x{address:04X} is outside mapped regions"
            )

    # -- byte/word access (hot path: no mapping checks) -------------------

    def read_u8(self, address: int) -> int:
        return self.data[address]

    def write_u8(self, address: int, value: int) -> None:
        self.data[address] = value & 0xFF

    def read_u16(self, address: int) -> int:
        data = self.data
        return data[address] | (data[address + 1] << 8)

    def write_u16(self, address: int, value: int) -> None:
        value &= 0xFFFF
        data = self.data
        data[address] = value & 0xFF
        data[address + 1] = value >> 8

    def read_i16(self, address: int) -> int:
        value = self.data[address] | (self.data[address + 1] << 8)
        return value - 0x10000 if value >= 0x8000 else value

    def write_i16(self, address: int, value: int) -> None:
        self.write_u16(address, value & 0xFFFF)

    # -- fault injection ----------------------------------------------------

    def flip_bit(self, address: int, bit: int) -> None:
        """Flip one bit — the FIC3's injection primitive."""
        if not 0 <= bit <= 7:
            raise ValueError(f"bit position must be 0..7 within a byte, got {bit}")
        self.check_mapped(address)
        self.data[address] ^= 1 << bit

    def flip_bit16(self, symbol: Symbol, bit: int) -> None:
        """Flip bit 0..15 of a 16-bit little-endian symbol."""
        if not 0 <= bit <= 15:
            raise ValueError(f"bit position must be 0..15 for a 16-bit symbol, got {bit}")
        if symbol.size != 2:
            raise ValueError(f"symbol {symbol.name!r} is not 16-bit")
        self.flip_bit(symbol.address + (bit >> 3), bit & 7)

    # -- state management ---------------------------------------------------

    def clear(self) -> None:
        """Zero all memory (power-on reset)."""
        for i in range(len(self.data)):
            self.data[i] = 0

    def snapshot(self) -> bytes:
        return bytes(self.data)

    def restore(self, snapshot: bytes) -> None:
        if len(snapshot) != len(self.data):
            raise ValueError(
                f"snapshot size {len(snapshot)} does not match memory size {len(self.data)}"
            )
        self.data[:] = snapshot


class Variable:
    """A typed handle binding a :class:`Symbol` to a :class:`MemoryMap`.

    The control software manipulates its state exclusively through these
    handles, so every read observes injected corruption and every write
    lands in injectable memory.
    """

    __slots__ = ("memory", "symbol", "_addr", "_data", "signed")

    def __init__(self, memory: MemoryMap, symbol: Symbol, signed: bool = False) -> None:
        if symbol.size != 2:
            raise ValueError(
                f"Variable supports 16-bit symbols; {symbol.name!r} has size {symbol.size}"
            )
        memory.check_mapped(symbol.address, symbol.size)
        self.memory = memory
        self.symbol = symbol
        self._addr = symbol.address
        self._data = memory.data
        self.signed = signed

    @property
    def name(self) -> str:
        return self.symbol.name

    @property
    def address(self) -> int:
        return self._addr

    def get(self) -> int:
        addr = self._addr
        data = self._data
        value = data[addr] | (data[addr + 1] << 8)
        if self.signed and value >= 0x8000:
            return value - 0x10000
        return value

    def set(self, value: int) -> None:
        value &= 0xFFFF
        addr = self._addr
        data = self._data
        data[addr] = value & 0xFF
        data[addr + 1] = value >> 8

    def add(self, delta: int) -> int:
        """Read-modify-write increment with 16-bit wrap; returns new value."""
        self.set(self.get() + delta)
        return self.get()

    def __repr__(self) -> str:
        return f"Variable({self.symbol.name}@0x{self._addr:04X}={self.get()})"
