"""Stack-area semantics for the emulated target.

On the paper's target the 1008-byte stack holds call frames: return
addresses and transient locals.  Bit-flips there predominantly cause
*control-flow errors* — which the evaluated mechanisms are explicitly not
aimed at detecting — explaining the low stack coverage of Table 9.

We reproduce those semantics at module granularity:

* a :class:`ControlWordTable` occupies part of the stack and holds the
  dispatch words the scheduler consults each slot (the moral equivalent
  of return addresses).  A corrupted word makes the dispatch misbehave —
  run the wrong module, skip the slot, or wedge the node — exactly the
  class of consequence a smashed return address has;
* a :class:`ScratchArena` provides the transient locals: modules write
  temporaries to stack bytes and read them back within the same
  invocation, so injected corruption only matters when it lands inside
  that short write-to-read window (hence mostly benign, as in the paper).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.memory.layout import MemoryRegion, RegionAllocator
from repro.memory.memmap import MemoryMap, Variable

__all__ = ["DispatchOutcome", "ControlWordTable", "ScratchArena"]


@dataclasses.dataclass(frozen=True)
class DispatchOutcome:
    """Result of consulting one control word.

    ``kind`` is ``"ok"`` (run the intended module), ``"redirect"`` (run
    module ``target`` instead), ``"skip"`` (run nothing this slot) or
    ``"wedge"`` (the node's control flow is lost: it stops executing).
    """

    kind: str
    target: Optional[int] = None


_OK = DispatchOutcome("ok")
_SKIP = DispatchOutcome("skip")
_WEDGE = DispatchOutcome("wedge")


class ControlWordTable:
    """Dispatch/return words stored in stack memory.

    Each slot ``k`` holds the 16-bit word ``BASE + module_id``.  The
    consult logic deterministically maps a corrupted word onto a
    control-flow consequence:

    * low byte still names a valid module id → **redirect** (a wild jump
      that happens to land at another routine's entry);
    * word inside the table's value space but invalid id → **skip** (jump
      into dead code that falls through);
    * tag byte corrupted in its low nibble → **skip** (the jump lands
      near the code region and falls through);
    * tag byte corrupted in its high nibble → **wedge** (the jump lands
      far from any code; the node never returns — on real hardware a
      watchdog-less hang).
    """

    #: Tag placed in the high bits of every valid control word.
    BASE = 0xA500

    def __init__(
        self,
        memory: MemoryMap,
        allocator: RegionAllocator,
        module_ids: List[int],
        name: str = "dispatch",
    ) -> None:
        if not module_ids:
            raise ValueError("control word table needs at least one module id")
        if any(not 0 <= mid <= 0xFF for mid in module_ids):
            raise ValueError("module ids must fit in one byte")
        self.memory = memory
        self.module_ids = list(module_ids)
        self._valid = frozenset(module_ids)
        self._words = [
            Variable(memory, allocator.allocate(f"{name}[{k}]", 2))
            for k in range(len(module_ids))
        ]
        self.reset()

    def reset(self) -> None:
        """Write the pristine control words (node boot)."""
        for word, mid in zip(self._words, self.module_ids):
            word.set(self.BASE + mid)

    def __len__(self) -> int:
        return len(self._words)

    def word_variable(self, slot: int) -> Variable:
        return self._words[slot]

    def consult(self, slot: int) -> DispatchOutcome:
        """Read slot *slot*'s word and derive the dispatch consequence."""
        word = self._words[slot].get()
        expected = self.BASE + self.module_ids[slot]
        if word == expected:
            return _OK
        low = word & 0xFF
        high = word & 0xFF00
        if high == self.BASE:
            if low in self._valid:
                return DispatchOutcome("redirect", low)
            return _SKIP
        # The tag byte itself is corrupted: the "return address" no longer
        # points at the routine.  Low-nibble damage keeps the target near
        # the code region (execution falls through: skip); high-nibble
        # damage throws the program counter far into the weeds (wedge).
        if (high ^ self.BASE) & 0xF000:
            return _WEDGE
        return _SKIP


class ScratchArena:
    """Transient locals in stack memory.

    Modules allocate named 16-bit scratch slots once (at 'link time') and
    then use :meth:`Variable.set`/``get`` as their push/pop.  The window
    between a write and its read-back is the only time corruption of a
    scratch slot can influence the computation — matching the short
    lifetime of real stack locals.
    """

    def __init__(self, memory: MemoryMap, allocator: RegionAllocator) -> None:
        self.memory = memory
        self._allocator = allocator
        self._slots = {}

    def slot(self, name: str) -> Variable:
        """Get (allocating on first use) the scratch slot *name*."""
        variable = self._slots.get(name)
        if variable is None:
            variable = Variable(self.memory, self._allocator.allocate(f"scratch.{name}", 2))
            self._slots[name] = variable
        return variable

    def fill_remainder(self, region: MemoryRegion) -> int:
        """Claim all remaining free bytes as anonymous deep-stack space.

        Real stacks are sized for the worst-case call depth; the bytes are
        present (and injectable) even when no frame currently uses them.
        Returns the number of bytes claimed.
        """
        free = self._allocator.free_bytes
        remaining = free
        index = 0
        while remaining >= 2:
            self._allocator.allocate(f"deep[{index}]", 2)
            remaining -= 2
            index += 1
        if remaining == 1:
            self._allocator.allocate("deep.pad", 1)
            remaining = 0
        return free
