"""Emulated target memory: regions, symbols, typed access, stack semantics."""

from repro.memory.layout import (
    APP_RAM_SIZE,
    STACK_SIZE,
    MemoryRegion,
    RegionAllocator,
    Symbol,
)
from repro.memory.memmap import MemoryMap, Variable
from repro.memory.stack import ControlWordTable, DispatchOutcome, ScratchArena

__all__ = [
    "APP_RAM_SIZE",
    "STACK_SIZE",
    "MemoryRegion",
    "RegionAllocator",
    "Symbol",
    "MemoryMap",
    "Variable",
    "ControlWordTable",
    "DispatchOutcome",
    "ScratchArena",
]
