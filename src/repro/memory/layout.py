"""Memory regions and symbol tables for the emulated target memory.

The paper's target stores its variables and signal values in an
application RAM area of 417 bytes and a stack area of 1008 bytes; the
FIC3 injects bit-flips by (address, bit position).  To reproduce that
error model faithfully the control software of :mod:`repro.arrestor`
keeps its state in an emulated byte-addressable memory, laid out through
the classes in this module.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional

__all__ = [
    "MemoryRegion",
    "Symbol",
    "RegionAllocator",
    "APP_RAM_SIZE",
    "STACK_SIZE",
]

#: Sizes of the paper's injected areas (Section 3.4).
APP_RAM_SIZE = 417
STACK_SIZE = 1008


@dataclasses.dataclass(frozen=True)
class MemoryRegion:
    """A contiguous, named address range ``[start, start + size)``."""

    name: str
    start: int
    size: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"region start must be non-negative, got {self.start}")
        if self.size <= 0:
            raise ValueError(f"region size must be positive, got {self.size}")

    @property
    def end(self) -> int:
        """One past the last address of the region."""
        return self.start + self.size

    def contains(self, address: int) -> bool:
        return self.start <= address < self.end

    def overlaps(self, other: "MemoryRegion") -> bool:
        return self.start < other.end and other.start < self.end

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.start, self.end))


@dataclasses.dataclass(frozen=True)
class Symbol:
    """A named variable at a fixed address.

    ``size`` is in bytes; the target's signals are 16-bit (size 2) and
    stored little-endian, matching the paper's 16-bit signal model.
    """

    name: str
    address: int
    size: int = 2

    def __post_init__(self) -> None:
        if self.size not in (1, 2, 4):
            raise ValueError(f"symbol size must be 1, 2 or 4 bytes, got {self.size}")
        if self.address < 0:
            raise ValueError(f"symbol address must be non-negative, got {self.address}")

    @property
    def end(self) -> int:
        return self.address + self.size

    def covers(self, address: int) -> bool:
        return self.address <= address < self.end


class RegionAllocator:
    """Sequential symbol allocator inside one region.

    Keeps the symbol table of a region; unallocated bytes remain as
    padding/spare (they are still valid injection targets, mirroring the
    unused bytes of a real application RAM map).
    """

    def __init__(self, region: MemoryRegion) -> None:
        self.region = region
        self._next = region.start
        self._symbols: Dict[str, Symbol] = {}

    def allocate(self, name: str, size: int = 2) -> Symbol:
        """Allocate *size* bytes for symbol *name*; raises when full."""
        if name in self._symbols:
            raise ValueError(f"symbol {name!r} already allocated in {self.region.name}")
        if self._next + size > self.region.end:
            raise MemoryError(
                f"region {self.region.name!r} exhausted: cannot allocate "
                f"{size} bytes for {name!r} (free: {self.region.end - self._next})"
            )
        symbol = Symbol(name, self._next, size)
        self._next += size
        self._symbols[name] = symbol
        return symbol

    def allocate_array(self, name: str, count: int, element_size: int = 2) -> List[Symbol]:
        """Allocate *count* consecutive elements named ``name[k]``."""
        if count <= 0:
            raise ValueError(f"array length must be positive, got {count}")
        return [self.allocate(f"{name}[{k}]", element_size) for k in range(count)]

    @property
    def allocated_bytes(self) -> int:
        return self._next - self.region.start

    @property
    def free_bytes(self) -> int:
        return self.region.end - self._next

    @property
    def symbols(self) -> List[Symbol]:
        return list(self._symbols.values())

    def __getitem__(self, name: str) -> Symbol:
        return self._symbols[name]

    def __contains__(self, name: str) -> bool:
        return name in self._symbols

    def symbol_at(self, address: int) -> Optional[Symbol]:
        """The symbol covering *address*, or ``None`` for padding bytes."""
        for symbol in self._symbols.values():
            if symbol.covers(address):
                return symbol
        return None
