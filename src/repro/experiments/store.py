"""Incremental, content-addressed campaign result store.

A checkpoint file remembers the runs of *one campaign invocation*; the
result store remembers the runs of *every campaign ever executed with
this code* — and forgets them the moment the code changes.  Each stored
record is addressed by

* the **run identity** — ``(version, error name, test case)``, the same
  :func:`~repro.experiments.results.canonical_key` that keys checkpoint
  resume, and
* the **context fingerprint** — a SHA-256 over the target's simulation
  source code (:meth:`Target.fingerprint_sources`) plus the run
  configuration and injection parameters.

Editing any fingerprinted source file, changing the run config, or
moving ``injection_start_ms`` therefore invalidates exactly the affected
records: the store resolves to a different per-context CSV file and
re-simulates.  Re-running an unchanged campaign executes **zero** new
runs and reproduces the same tables from stored records.

On disk a store is a directory of checkpoint-format CSV files, one per
``(target, context fingerprint)`` — the same tolerant, append-only
format as :mod:`repro.experiments.persistence`, so a store file can be
inspected (or rescued) with the ordinary result tooling.

The store complements, not replaces, the checkpoint: the engine still
appends every record (stored or fresh) to the campaign's checkpoint
file, so resume semantics and the campaign artifact are unchanged.
Pass ``force=True`` (CLI ``--force``) to bypass lookups and re-simulate
while still refreshing the store.
"""

from __future__ import annotations

import hashlib
import importlib
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.experiments.persistence import append_records, load_checkpoint
from repro.experiments.results import RunRecord, canonical_key
from repro.targets.base import Target
from repro.targets.registry import get_target

__all__ = ["ResultStore", "StoreStats", "code_fingerprint", "context_fingerprint"]


def _module_source_files(module_name: str) -> List[Path]:
    """Every ``.py`` file belonging to *module_name* (package or module)."""
    module = importlib.import_module(module_name)
    module_file = getattr(module, "__file__", None)
    if module_file is None:  # namespace/builtin: nothing to hash
        return []
    path = Path(module_file)
    if path.name == "__init__.py":
        return sorted(path.parent.rglob("*.py"))
    return [path]


def code_fingerprint(target: Target) -> str:
    """SHA-256 over the source code that determines *target*'s run results.

    Files are hashed in sorted path order, each prefixed by its
    package-relative name, so renames and content edits both change the
    digest while the absolute checkout location does not.
    """
    digest = hashlib.sha256()
    seen = set()
    for module_name in target.fingerprint_sources():
        for path in _module_source_files(module_name):
            if path in seen:
                continue
            seen.add(path)
            anchor = path.parts.index(module_name.split(".", 1)[0])
            digest.update("/".join(path.parts[anchor:]).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
    return digest.hexdigest()


def context_fingerprint(
    target: Target,
    run_config=None,
    injection_start_ms: int = 0,
    code: Optional[str] = None,
) -> str:
    """The full content address of one experimental context.

    ``repr(run_config)`` is a complete rendering of a frozen dataclass's
    fields (the same convention the snapshot cache keys by), so two
    campaigns differ in context fingerprint iff they could differ in
    results: different code, different configuration, or a different
    injection start.
    """
    digest = hashlib.sha256()
    digest.update((code or code_fingerprint(target)).encode("utf-8"))
    digest.update(b"\0")
    digest.update(target.name.encode("utf-8"))
    digest.update(b"\0")
    digest.update(repr(run_config).encode("utf-8"))
    digest.update(b"\0")
    digest.update(str(injection_start_ms).encode("utf-8"))
    return digest.hexdigest()


class StoreStats:
    """Lookup accounting for one engine invocation."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0

    def as_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}


class ResultStore:
    """A directory of stored run records, addressed by content.

    One instance is bound to a single context — target, run config,
    injection start — and reads/writes that context's CSV file
    (``<target>-<fingerprint[:16]>.csv`` under *root*).  Lookups verify
    the stored record's error-descriptor fields against the requesting
    spec, so a stale record whose error name collides across error-set
    seeds is treated as a miss rather than silently returned.
    """

    def __init__(
        self,
        root: Union[str, Path],
        target=None,
        run_config=None,
        injection_start_ms: int = 0,
    ) -> None:
        self.root = Path(root)
        self.target = get_target(target)
        self.fingerprint = context_fingerprint(
            self.target, run_config, injection_start_ms
        )
        self.path = self.root / f"{self.target.name}-{self.fingerprint[:16]}.csv"
        self.stats = StoreStats()
        self._records: Optional[Dict[Tuple, RunRecord]] = None

    # -- persistence ---------------------------------------------------------

    def _load(self) -> Dict[Tuple, RunRecord]:
        # Lenient: a store file is shared by every campaign of one
        # context, including concurrent shards — a writer killed
        # mid-append must cost one torn row, not the whole context.
        if self._records is None:
            self._records = {
                canonical_key(record): record
                for record in load_checkpoint(self.path, lenient=True).records
            }
        return self._records

    def __len__(self) -> int:
        return len(self._load())

    # -- lookup / insert -----------------------------------------------------

    @staticmethod
    def _matches(record: RunRecord, spec) -> bool:
        """The stored record describes the same error the spec injects."""
        return (
            record.signal == spec.signal
            and record.signal_bit == spec.signal_bit
            and record.area == spec.area
        )

    def lookup(self, spec) -> Optional[RunRecord]:
        """The stored record for *spec*, or ``None`` (counted as a miss)."""
        record = self._load().get(spec.key)
        if record is not None and self._matches(record, spec):
            self.stats.hits += 1
            return record
        self.stats.misses += 1
        return None

    def add(self, records: Iterable[RunRecord]) -> int:
        """Persist *records* not yet stored; returns how many were appended."""
        known = self._load()
        fresh = []
        for record in records:
            key = canonical_key(record)
            if key in known:
                continue
            known[key] = record
            fresh.append(record)
        if fresh:
            self.root.mkdir(parents=True, exist_ok=True)
            # Locked: concurrent same-directory writers (shards) must
            # not interleave rows within a batch.
            append_records(self.path, fresh, locked=True)
        return len(fresh)
