"""Empirical validation of the Section-2.4 coverage model.

The paper derives ``Pdetect = (Pen * Pprop + Pem) * Pds`` analytically
and measures ``Pds`` (error set E1) and ``Pdetect`` (error set E2); the
middle quantity — ``Pprop``, the probability that an error *outside* the
monitored signals propagates *into* one — is never measured directly.
This module measures it: an error has propagated when the injected run's
monitored-signal trajectory deviates from the fault-free trajectory of
the same test case.

With ``Pem`` computed from the memory layout, measured ``Pprop`` and the
E1-measured ``Pds``, the model's predicted ``Pdetect`` can be compared
against the E2-measured detection probability — the
``bench_model_validation`` benchmark does exactly that.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Tuple

from repro.arrestor.signals_map import MONITORED_SIGNALS, MasterMemory
from repro.arrestor.system import RunConfig, TargetSystem, TestCase
from repro.core.coverage import CoverageModel
from repro.injection.errors import ErrorSpec
from repro.injection.injector import TimeTriggeredInjector
from repro.stats.estimators import CoverageEstimate

__all__ = [
    "monitored_address_set",
    "compute_pem",
    "PropagationOutcome",
    "measure_propagation",
    "PropagationStudy",
    "run_propagation_study",
]


def monitored_address_set(memory: Optional[MasterMemory] = None) -> frozenset:
    """The byte addresses occupied by the seven monitored signals."""
    if memory is None:
        memory = MasterMemory()
    addresses = set()
    for signal in MONITORED_SIGNALS:
        var = memory.signal_variable(signal)
        addresses.update(range(var.address, var.address + 2))
    return frozenset(addresses)


def compute_pem(memory: Optional[MasterMemory] = None) -> float:
    """``Pem`` under the E2 error model: uniform over RAM + stack bytes."""
    if memory is None:
        memory = MasterMemory()
    monitored = len(monitored_address_set(memory))
    total = sum(region.size for region in memory.map.regions.values())
    return monitored / total


@dataclasses.dataclass(frozen=True)
class PropagationOutcome:
    """One error's propagation measurement."""

    error: ErrorSpec
    propagated: bool
    detected: bool
    failed: bool
    first_divergence_ms: Optional[int]


class _CleanTraceCache:
    """Fault-free monitored-signal trajectories, one per test case."""

    def __init__(self, trace_period_ms: int) -> None:
        self.trace_period_ms = trace_period_ms
        self._cache: Dict[Tuple[float, float], List[tuple]] = {}

    def get(self, case: TestCase) -> List[tuple]:
        key = (case.mass_kg, case.velocity_mps)
        if key not in self._cache:
            config = RunConfig(signal_trace_period_ms=self.trace_period_ms)
            system = TargetSystem(case, config=config)
            system.run()
            self._cache[key] = system.signal_trace
        return self._cache[key]


def _first_divergence(
    clean: List[tuple], injected: List[tuple]
) -> Optional[int]:
    """Time of the first differing sample, or ``None`` if none differs.

    A truncated injected trace (the run ended on a different schedule)
    counts as divergence at the truncation point: the system's behaviour
    visibly changed.
    """
    for clean_sample, injected_sample in zip(clean, injected):
        if clean_sample != injected_sample:
            return injected_sample[0]
    if len(injected) != len(clean):
        shorter = min(len(injected), len(clean))
        if shorter == 0:
            return 0
        return min(injected[-1][0], clean[-1][0])
    return None


def measure_propagation(
    error: ErrorSpec,
    case: TestCase,
    clean_cache: Optional[_CleanTraceCache] = None,
    trace_period_ms: int = 20,
) -> PropagationOutcome:
    """Measure whether *error* propagates into the monitored signals."""
    if clean_cache is None:
        clean_cache = _CleanTraceCache(trace_period_ms)
    clean = clean_cache.get(case)
    config = RunConfig(signal_trace_period_ms=trace_period_ms)
    system = TargetSystem(case, config=config)
    result = system.run(TimeTriggeredInjector(error))
    divergence = _first_divergence(clean, system.signal_trace)
    return PropagationOutcome(
        error=error,
        propagated=divergence is not None,
        detected=result.detected,
        failed=result.failed,
        first_divergence_ms=divergence,
    )


@dataclasses.dataclass(frozen=True)
class PropagationStudy:
    """Aggregate of a propagation campaign over non-monitored locations."""

    pem: float
    pprop: CoverageEstimate
    detected: CoverageEstimate
    outcomes: Tuple[PropagationOutcome, ...]

    def model(self, pds: float) -> CoverageModel:
        """The Section-2.4 model instantiated with this study's estimates."""
        return CoverageModel(pem=self.pem, pprop=self.pprop.fraction, pds=pds)

    def predicted_pdetect(self, pds: float) -> float:
        return self.model(pds).pdetect


def run_propagation_study(
    errors: Iterable[ErrorSpec],
    case: TestCase,
    trace_period_ms: int = 20,
) -> PropagationStudy:
    """Measure ``Pprop`` over *errors*, skipping monitored-signal locations.

    Errors whose address lies inside a monitored signal measure ``Pem``'s
    side of the model, not ``Pprop``; they are excluded here.
    """
    monitored = monitored_address_set()
    cache = _CleanTraceCache(trace_period_ms)
    outcomes = []
    for error in errors:
        if error.address in monitored:
            continue
        outcomes.append(measure_propagation(error, case, cache, trace_period_ms))
    propagated = sum(1 for o in outcomes if o.propagated)
    detected = sum(1 for o in outcomes if o.detected)
    return PropagationStudy(
        pem=compute_pem(),
        pprop=CoverageEstimate(propagated, len(outcomes)),
        detected=CoverageEstimate(detected, len(outcomes)),
        outcomes=tuple(outcomes),
    )
