"""Command-line campaign runner: ``python -m repro.experiments``.

Runs the paper's experiments and prints the corresponding tables.

Usage::

    python -m repro.experiments e1 [--cases-all N] [--cases-ea N] [--signal S]
                                   [--workers N] [--checkpoint CSV] [--resume]
                                   [--store DIR] [--force] [--no-snapshots]
                                   [--injection-start MS] [--batch]
                                   [--trace JSONL] [--metrics-out JSON]
    python -m repro.experiments e2 [--cases N] [--workers N]
                                   [--checkpoint CSV] [--resume]
                                   [--store DIR] [--force] [--no-snapshots]
                                   [--injection-start MS] [--batch]
                                   [--trace JSONL] [--metrics-out JSON]
    python -m repro.experiments reference
    python -m repro.experiments table6
    python -m repro.experiments merge DEST SHARD [SHARD ...]
    python -m repro.experiments diff STORE_A STORE_B

``e1`` regenerates Tables 7 and 8, ``e2`` Table 9, ``reference`` checks
the fault-free precondition over the full 25-case grid, and ``table6``
prints the error-set composition.  ``--target`` selects the workload
(default ``$REPRO_TARGET`` or the arrestor; ``--list-targets`` shows the
registry), accepted both before and after the subcommand.  ``--signal``
restricts E1 to one monitored signal (a quick partial campaign); with
``--load`` it filters the loaded records the same way.  ``--workers``
fans the campaign out
over a process pool, and ``--checkpoint``/``--resume`` stream completed
runs to an append-only CSV so an interrupted campaign picks up where it
left off.  ``--store`` points at the content-addressed result store: a
re-run with unchanged code and configuration restores every record from
the store and executes zero new runs (``--force`` re-simulates anyway
while refreshing the store).  ``--no-snapshots`` disables warm-target
snapshot reuse (strict reboot-per-run), and ``--injection-start``
delays the first injection, letting the snapshot layer fast-forward
every run through the shared fault-free prefix.  ``--batch`` runs the
eligible part of the grid (bit-flips on monitored RAM signals) through
the target's vectorized kernel — record-for-record identical to the
serial path, which stays the oracle.  ``--trace`` streams
the structured event trace (detections,
injections, run lifecycle) to a JSONL file; a campaign always ends with
a metrics summary, and ``--metrics-out`` additionally writes the full
metrics snapshot as JSON.

``--graph`` routes the campaign through the content-addressed task
graph (``--store`` then names a per-node completion-record store, and
an unchanged re-run replays everything from cache); ``--shard I/N``
executes one content-address partition of the grid, ``merge`` unions
shard stores (refusing stores produced by different code), and ``diff``
compares the per-signal detection probabilities of two captured
campaigns with Wilson confidence intervals, exiting non-zero on
significant regressions.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.obs.metrics import MetricsRegistry

from repro.experiments.analysis import (
    detection_by_bit,
    detection_threshold_bit,
    failure_rate_by_signal,
)
from repro.experiments.persistence import load_results, save_results
from repro.experiments.campaign import (
    CampaignConfig,
    run_campaign_graph,
    run_e1_campaign,
    run_e2_campaign,
    run_reference_grid,
)
from repro.experiments.results import ResultSet
from repro.experiments.tables import (
    render_table6,
    render_table7,
    render_table8,
    render_table9,
)
from repro.targets.registry import default_target_name, get_target, target_names


def _default_workers() -> int:
    raw = os.environ.get("REPRO_WORKERS")
    try:
        return max(1, int(raw)) if raw else 1
    except ValueError:
        return 1


def _add_target_option(parser: argparse.ArgumentParser) -> None:
    # SUPPRESS keeps an unused subcommand option from writing its default
    # into the namespace, which would clobber a --target given before the
    # subcommand (the subparser namespace is copied over the parent's).
    parser.add_argument(
        "--target",
        default=argparse.SUPPRESS,
        metavar="NAME",
        help="registered workload to run against "
        "(default: $REPRO_TARGET or 'arrestor'; see --list-targets)",
    )


def _list_targets() -> int:
    default = default_target_name()
    for name in target_names():
        target = get_target(name)
        marker = "  (default)" if name == default else ""
        print(f"{name:12s} {target.description}{marker}")
    return 0


def _add_campaign_options(parser: argparse.ArgumentParser) -> None:
    _add_target_option(parser)
    parser.add_argument(
        "--workers",
        type=int,
        default=_default_workers(),
        metavar="N",
        help="worker processes (default: $REPRO_WORKERS or 1 = serial)",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="CSV",
        help="stream completed runs to this append-only CSV as they finish",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip runs already recorded in the --checkpoint file",
    )
    parser.add_argument(
        "--store",
        default=os.environ.get("REPRO_STORE") or None,
        metavar="DIR",
        help="content-addressed result store directory: restore records "
        "computed by earlier campaigns with the same code/config and add "
        "fresh ones (default: $REPRO_STORE or off)",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="bypass --store lookups and re-simulate (the store is still "
        "refreshed with the new records)",
    )
    parser.add_argument(
        "--injection-start",
        type=int,
        default=int(os.environ.get("REPRO_INJECTION_START") or 0),
        metavar="MS",
        help="sim-time of the first injection in ms; a positive value lets "
        "the snapshot layer fast-forward the shared fault-free prefix "
        "(default: $REPRO_INJECTION_START or 0)",
    )
    parser.add_argument(
        "--no-snapshots",
        action="store_true",
        help="disable warm-target snapshot reuse (strict reboot-per-run)",
    )
    parser.add_argument(
        "--trace",
        default=os.environ.get("REPRO_TRACE") or None,
        metavar="JSONL",
        help="stream structured trace events to this JSONL file "
        "(default: $REPRO_TRACE or off)",
    )
    parser.add_argument(
        "--batch",
        action="store_true",
        default=os.environ.get("REPRO_BATCH") == "1",
        help="vectorized batch execution of eligible runs (bit-flips on "
        "monitored RAM signals); incompatible with --trace, which falls "
        "back to the serial path (default: $REPRO_BATCH or off)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="JSON",
        help="write the campaign metrics snapshot to this JSON file",
    )
    parser.add_argument(
        "--graph",
        action="store_true",
        default=os.environ.get("REPRO_GRAPH") == "1",
        help="run through the content-addressed task graph: --store names "
        "a node-store directory, per-node completion records replace "
        "--checkpoint/--resume, and an unchanged re-run replays every "
        "node from cache (default: $REPRO_GRAPH or off)",
    )
    parser.add_argument(
        "--shard",
        default=None,
        metavar="I/N",
        help="execute only shard I of N of the run grid, partitioned by "
        "node content address (implies --graph; skips aggregation — "
        "union shard stores with the 'merge' command, then re-run "
        "unsharded to aggregate from cache)",
    )


def _print_metrics(registry: MetricsRegistry, out_path) -> None:
    """The campaign-end metrics summary (and optional JSON snapshot)."""
    print("\nCampaign metrics:")
    for line in registry.render().splitlines():
        print(f"  {line}")
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(registry.snapshot(), handle, indent=2, default=repr)
            handle.write("\n")
        print(f"metrics snapshot written to {out_path}")


def _progress(done: int, total: int) -> None:
    if done % 25 == 0 or done == total:
        sys.stderr.write(f"\r{done}/{total} runs")
        if done == total:
            sys.stderr.write("\n")
        sys.stderr.flush()


def _run_graph_campaign(args: argparse.Namespace, config, experiment, error_filter):
    """The --graph/--shard execution path shared by e1 and e2.

    Returns ``(outcome, exit_code)``; a non-None exit code means a usage
    error already reported to the user.
    """
    if args.checkpoint or args.resume:
        print(
            "--checkpoint/--resume are subsumed by per-node completion "
            "records on the graph path; point --store at a node-store "
            "directory instead",
            file=sys.stderr,
        )
        return None, 2
    start = time.time()
    outcome = run_campaign_graph(
        config,
        experiment,
        progress=_progress,
        error_filter=error_filter,
        store=args.store,
        force=args.force,
        shard=args.shard,
    )
    stats = outcome.stats
    shard_note = f" [shard {args.shard}]" if args.shard else ""
    hit_rate = stats.hit_rate
    print(
        f"\n{experiment.upper()} campaign (graph{shard_note}): "
        f"{len(outcome.results)} runs in {time.time() - start:.0f}s — "
        f"{stats.executed} nodes executed, {stats.cached} replayed"
        + (f" (hit rate {hit_rate:.0%})" if hit_rate is not None else "")
        + "\n"
    )
    return outcome, None


def _cmd_e1(args: argparse.Namespace) -> int:
    target = get_target(args.target)
    versions = tuple(args.versions.split(",")) if args.versions else None
    metrics = MetricsRegistry()
    config = CampaignConfig(
        cases_all=args.cases_all,
        cases_per_ea=args.cases_ea,
        workers=args.workers,
        trace_path=args.trace,
        metrics=metrics,
        target=target.name,
        injection_start_ms=args.injection_start,
        snapshots=False if args.no_snapshots else None,
        batch=args.batch,
        **({"versions": versions} if versions else {}),
    )
    error_filter = None
    if args.signal is not None:
        if args.signal not in target.monitored_signals:
            print(
                f"unknown signal {args.signal!r}; "
                f"pick one of {tuple(target.monitored_signals)}"
            )
            return 2
        error_filter = lambda e: e.signal == args.signal  # noqa: E731
    if args.load:
        results = load_results(args.load)
        print(f"loaded {len(results)} runs from {args.load}\n")
        if args.signal is not None:
            results = ResultSet(results.subset(signal=args.signal))
            print(f"filtered to {len(results)} runs on signal {args.signal}\n")
    elif args.graph or args.shard:
        outcome, code = _run_graph_campaign(args, config, "e1", error_filter)
        if code is not None:
            return code
        results = outcome.results
        if args.save:
            save_results(results, args.save)
            print(f"saved run records to {args.save}\n")
        if args.trace:
            print(f"trace events written to {args.trace}\n")
        _print_metrics(metrics, args.metrics_out)
        if args.shard:
            print(
                f"shard {args.shard} complete: {len(results)} runs recorded in "
                f"{args.store or 'memory (no --store!)'}; merge shard stores "
                "and re-run unsharded to aggregate"
            )
            return 0
        if outcome.tables is not None:
            print(outcome.tables)
            return 0
    else:
        start = time.time()
        results = run_e1_campaign(
            config,
            progress=_progress,
            error_filter=error_filter,
            checkpoint=args.checkpoint,
            resume=args.resume,
            store=args.store,
            force=args.force,
        )
        print(f"\nE1 campaign: {len(results)} runs in {time.time() - start:.0f}s\n")
        if args.save:
            save_results(results, args.save)
            print(f"saved run records to {args.save}\n")
        if args.trace:
            print(f"trace events written to {args.trace}\n")
        _print_metrics(metrics, args.metrics_out)
    shown = versions if versions else tuple(config.versions)
    signals = tuple(target.monitored_signals)
    print("Table 7. Error detection probabilities (%)")
    print(render_table7(results, shown, signals=signals))
    print()
    print("Table 8. Error detection latencies (ms)")
    print(render_table8(results, shown, signals=signals))
    return 0


def _cmd_e2(args: argparse.Namespace) -> int:
    metrics = MetricsRegistry()
    config = CampaignConfig(
        cases_e2=args.cases,
        workers=args.workers,
        trace_path=args.trace,
        metrics=metrics,
        target=args.target,
        injection_start_ms=args.injection_start,
        snapshots=False if args.no_snapshots else None,
        batch=args.batch,
    )
    if args.load:
        results = load_results(args.load)
        print(f"loaded {len(results)} runs from {args.load}\n")
    elif args.graph or args.shard:
        outcome, code = _run_graph_campaign(args, config, "e2", None)
        if code is not None:
            return code
        results = outcome.results
        if args.save:
            save_results(results, args.save)
            print(f"saved run records to {args.save}\n")
        if args.trace:
            print(f"trace events written to {args.trace}\n")
        _print_metrics(metrics, args.metrics_out)
        if args.shard:
            print(
                f"shard {args.shard} complete: {len(results)} runs recorded in "
                f"{args.store or 'memory (no --store!)'}; merge shard stores "
                "and re-run unsharded to aggregate"
            )
            return 0
        if outcome.tables is not None:
            print(outcome.tables)
            return 0
    else:
        start = time.time()
        results = run_e2_campaign(
            config,
            progress=_progress,
            checkpoint=args.checkpoint,
            resume=args.resume,
            store=args.store,
            force=args.force,
        )
        print(f"\nE2 campaign: {len(results)} runs in {time.time() - start:.0f}s\n")
        if args.save:
            save_results(results, args.save)
            print(f"saved run records to {args.save}\n")
        if args.trace:
            print(f"trace events written to {args.trace}\n")
        _print_metrics(metrics, args.metrics_out)
    print("Table 9. Results for error set E2")
    print(render_table9(results))
    return 0


def _cmd_reference(args: argparse.Namespace) -> int:
    records = run_reference_grid(target=args.target)
    bad = [r for r in records if r.detected or r.failed]
    print(f"fault-free grid: {len(records)} runs, {len(bad)} anomalies")
    for record in bad:
        case = record.result.test_case
        print(
            f"  ANOMALY m={case.mass_kg} v={case.velocity_mps} "
            f"detected={record.detected} verdict={record.result.verdict}"
        )
    return 1 if bad else 0


def _cmd_report(args: argparse.Namespace) -> int:
    results = load_results(args.results)
    print(f"report over {len(results)} saved runs\n")
    versions = results.versions

    print("Table 7. Error detection probabilities (%)")
    print(render_table7(results, versions))
    print()
    print("Table 8. Error detection latencies (ms)")
    print(render_table8(results, versions))

    e1_signals = [s for s in results.signals if s is not None]
    if e1_signals:
        print()
        print("Detection threshold bit per signal (lowest bit with total")
        print("detection upward; '-' = no such threshold):")
        for signal in e1_signals:
            threshold = detection_threshold_bit(results, signal, version=versions[-1])
            per_bit = detection_by_bit(results, signal, version=versions[-1])
            probed = len(per_bit)
            shown = threshold if threshold is not None else "-"
            print(f"  {signal:12s} threshold bit {shown}  ({probed} bit positions probed)")
        print()
        print("Failure rate per injected signal:")
        for signal, rate in failure_rate_by_signal(results, version=versions[-1]).items():
            print(f"  {signal:12s} {rate.format()} %")
    else:
        print()
        print("Table 9. Results for error set E2")
        print(render_table9(results))
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    from repro.experiments.graph import StoreMergeError, merge_stores

    try:
        merged, present = merge_stores(args.dest, args.sources)
    except StoreMergeError as error:
        print(f"merge refused: {error}", file=sys.stderr)
        return 1
    print(
        f"merged {merged} node record(s) from {len(args.sources)} store(s) "
        f"into {args.dest} ({present} already present)"
    )
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.experiments.diff import diff_results, load_records, render_diff

    try:
        records_a = load_records(args.store_a)
        records_b = load_records(args.store_b)
    except (FileNotFoundError, ValueError) as error:
        print(f"diff failed: {error}", file=sys.stderr)
        return 2
    print(f"A: {len(records_a)} runs from {args.store_a}")
    print(f"B: {len(records_b)} runs from {args.store_b}\n")
    deltas = diff_results(records_a, records_b)
    print(render_diff(deltas, label_a=args.store_a, label_b=args.store_b))
    return 1 if any(delta.regression for delta in deltas) else 0


def _cmd_table6(args: argparse.Namespace) -> int:
    target = get_target(args.target)
    errors = target.e1_error_set()
    plan, _ = target.lint_target()
    ea_by_signal = {planned.signal: planned.monitor_id for planned in plan}
    print("Table 6. The distribution of errors in the error set E1.")
    print(render_table6(errors, cases_per_error=25, ea_by_signal=ea_by_signal))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Fault-injection campaign runner (Hiller, DSN 2000 reproduction)",
    )
    _add_target_option(parser)
    parser.set_defaults(target=None)
    parser.add_argument(
        "--list-targets",
        action="store_true",
        help="list the registered workloads and exit",
    )
    sub = parser.add_subparsers(dest="command")

    p_e1 = sub.add_parser("e1", help="run the E1 experiment (Tables 7 and 8)")
    p_e1.add_argument("--cases-all", type=int, default=3, metavar="N")
    p_e1.add_argument("--cases-ea", type=int, default=1, metavar="N")
    p_e1.add_argument("--signal", default=None, help="restrict to one signal")
    p_e1.add_argument(
        "--versions",
        default=None,
        help="comma-separated system versions (e.g. 'EA4,All'); default all eight",
    )
    p_e1.add_argument("--save", default=None, metavar="CSV", help="write run records to a CSV file")
    p_e1.add_argument("--load", default=None, metavar="CSV", help="render tables from saved run records instead of running")
    _add_campaign_options(p_e1)
    p_e1.set_defaults(func=_cmd_e1)

    p_e2 = sub.add_parser("e2", help="run the E2 experiment (Table 9)")
    p_e2.add_argument("--cases", type=int, default=3, metavar="N")
    p_e2.add_argument("--save", default=None, metavar="CSV", help="write run records to a CSV file")
    p_e2.add_argument("--load", default=None, metavar="CSV", help="render tables from saved run records instead of running")
    _add_campaign_options(p_e2)
    p_e2.set_defaults(func=_cmd_e2)

    p_ref = sub.add_parser("reference", help="fault-free precondition check")
    _add_target_option(p_ref)
    p_ref.set_defaults(func=_cmd_reference)

    p_rep = sub.add_parser("report", help="render tables/analyses from saved run records")
    p_rep.add_argument("results", help="CSV file written with --save")
    p_rep.set_defaults(func=_cmd_report)

    p_t6 = sub.add_parser("table6", help="print the E1 error-set composition")
    _add_target_option(p_t6)
    p_t6.set_defaults(func=_cmd_table6)

    p_merge = sub.add_parser(
        "merge",
        help="union shard node stores into one (descriptor-verified)",
    )
    p_merge.add_argument("dest", help="destination node-store directory")
    p_merge.add_argument(
        "sources", nargs="+", help="shard node-store directories to merge in"
    )
    p_merge.set_defaults(func=_cmd_merge)

    p_diff = sub.add_parser(
        "diff",
        help="per-signal P(d) regression diff between two captured campaigns",
    )
    p_diff.add_argument(
        "store_a", help="baseline: result-store dir, node-store dir, or CSV"
    )
    p_diff.add_argument(
        "store_b", help="candidate: result-store dir, node-store dir, or CSV"
    )
    p_diff.set_defaults(func=_cmd_diff)

    args = parser.parse_args(argv)
    if args.list_targets:
        return _list_targets()
    if args.command is None:
        parser.error(
            "a command is required (e1, e2, reference, report, table6, merge, diff)"
        )
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
