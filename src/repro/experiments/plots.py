"""Standalone SVG renderings of the reproduction's figures.

Generates self-contained SVG files (no plotting dependencies) for the
figure-shaped artefacts of the evaluation:

* :func:`svg_line_chart` — time series, used for Figure-2-style signal
  traces and arrestment trajectories;
* :func:`svg_bit_detection_chart` — the Section-5.1 view: detection per
  injected bit position, one column per bit.

The markup is deliberately simple (axes, polyline/rects, labels) so the
files are small, diffable and render identically everywhere.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.stats.estimators import CoverageEstimate

__all__ = ["svg_line_chart", "svg_bit_detection_chart", "write_svg"]

_WIDTH = 640
_HEIGHT = 360
_MARGIN = 48

_STYLE = (
    "text{font-family:sans-serif;font-size:12px;fill:#333}"
    ".title{font-size:14px;font-weight:bold}"
    ".axis{stroke:#333;stroke-width:1}"
    ".grid{stroke:#ddd;stroke-width:0.5}"
    ".series{fill:none;stroke-width:1.5}"
)

_SERIES_COLOURS = ("#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#8c564b")


def _scale(values: Sequence[float]) -> Tuple[float, float]:
    lo, hi = min(values), max(values)
    if hi == lo:
        hi = lo + 1.0
    return lo, hi


def _fmt(value: float) -> str:
    return f"{value:.6g}"


def svg_line_chart(
    series: Dict[str, List[Tuple[float, float]]],
    title: str,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render named (x, y) series as an SVG line chart."""
    if not series or all(not points for points in series.values()):
        raise ValueError("svg_line_chart needs at least one non-empty series")
    xs = [x for points in series.values() for x, _ in points]
    ys = [y for points in series.values() for _, y in points]
    x_lo, x_hi = _scale(xs)
    y_lo, y_hi = _scale(ys)
    plot_w = _WIDTH - 2 * _MARGIN
    plot_h = _HEIGHT - 2 * _MARGIN

    def px(x: float) -> float:
        return _MARGIN + (x - x_lo) / (x_hi - x_lo) * plot_w

    def py(y: float) -> float:
        return _HEIGHT - _MARGIN - (y - y_lo) / (y_hi - y_lo) * plot_h

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" height="{_HEIGHT}" '
        f'viewBox="0 0 {_WIDTH} {_HEIGHT}">',
        f"<style>{_STYLE}</style>",
        f'<text class="title" x="{_MARGIN}" y="20">{title}</text>',
        f'<line class="axis" x1="{_MARGIN}" y1="{_HEIGHT - _MARGIN}" '
        f'x2="{_WIDTH - _MARGIN}" y2="{_HEIGHT - _MARGIN}"/>',
        f'<line class="axis" x1="{_MARGIN}" y1="{_MARGIN}" '
        f'x2="{_MARGIN}" y2="{_HEIGHT - _MARGIN}"/>',
    ]
    # Min/max tick labels on both axes.
    parts.append(
        f'<text x="{_MARGIN}" y="{_HEIGHT - _MARGIN + 16}">{_fmt(x_lo)}</text>'
    )
    parts.append(
        f'<text x="{_WIDTH - _MARGIN - 24}" y="{_HEIGHT - _MARGIN + 16}">{_fmt(x_hi)}</text>'
    )
    parts.append(f'<text x="4" y="{_HEIGHT - _MARGIN}">{_fmt(y_lo)}</text>')
    parts.append(f'<text x="4" y="{_MARGIN + 4}">{_fmt(y_hi)}</text>')
    if x_label:
        parts.append(
            f'<text x="{_WIDTH // 2}" y="{_HEIGHT - 8}">{x_label}</text>'
        )
    if y_label:
        parts.append(
            f'<text x="8" y="{_MARGIN - 12}">{y_label}</text>'
        )

    for index, (name, points) in enumerate(series.items()):
        if not points:
            continue
        colour = _SERIES_COLOURS[index % len(_SERIES_COLOURS)]
        coords = " ".join(f"{px(x):.1f},{py(y):.1f}" for x, y in points)
        parts.append(
            f'<polyline class="series" stroke="{colour}" points="{coords}"/>'
        )
        parts.append(
            f'<text x="{_WIDTH - _MARGIN + 4}" '
            f'y="{py(points[-1][1]):.1f}" fill="{colour}">{name}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def svg_bit_detection_chart(
    per_bit: Dict[int, CoverageEstimate],
    title: str,
) -> str:
    """Render per-bit detection probabilities as an SVG column chart.

    The Section-5.1 picture: one column per bit position (LSB left),
    column height = P(d) for errors injected into that bit.
    """
    if not per_bit:
        raise ValueError("svg_bit_detection_chart needs at least one bit entry")
    bits = sorted(per_bit)
    plot_w = _WIDTH - 2 * _MARGIN
    plot_h = _HEIGHT - 2 * _MARGIN
    column_w = plot_w / len(bits)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" height="{_HEIGHT}" '
        f'viewBox="0 0 {_WIDTH} {_HEIGHT}">',
        f"<style>{_STYLE}</style>",
        f'<text class="title" x="{_MARGIN}" y="20">{title}</text>',
        f'<line class="axis" x1="{_MARGIN}" y1="{_HEIGHT - _MARGIN}" '
        f'x2="{_WIDTH - _MARGIN}" y2="{_HEIGHT - _MARGIN}"/>',
        f'<line class="axis" x1="{_MARGIN}" y1="{_MARGIN}" '
        f'x2="{_MARGIN}" y2="{_HEIGHT - _MARGIN}"/>',
        f'<text x="4" y="{_MARGIN + 4}">100%</text>',
        f'<text x="4" y="{_HEIGHT - _MARGIN}">0%</text>',
        f'<text x="{_WIDTH // 2 - 40}" y="{_HEIGHT - 8}">injected bit position</text>',
    ]
    for index, bit in enumerate(bits):
        estimate = per_bit[bit]
        fraction = estimate.fraction if estimate.defined else 0.0
        height = plot_h * fraction
        x = _MARGIN + index * column_w + column_w * 0.15
        y = _HEIGHT - _MARGIN - height
        parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{column_w * 0.7:.1f}" '
            f'height="{height:.1f}" fill="#1f77b4"/>'
        )
        parts.append(
            f'<text x="{x:.1f}" y="{_HEIGHT - _MARGIN + 16}">{bit}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def write_svg(markup: str, path: Union[str, Path]) -> Path:
    """Write SVG markup to *path*; returns the resolved path."""
    if not markup.lstrip().startswith("<svg"):
        raise ValueError("write_svg expects SVG markup")
    path = Path(path)
    path.write_text(markup, encoding="utf-8")
    return path
