"""Persistence of campaign results.

Full-scale campaigns take hours; their run records should outlive the
process.  A :class:`~repro.experiments.results.ResultSet` round-trips
through a plain CSV file (one row per run, stable column order) so a
finished campaign can be re-aggregated, re-rendered, or merged with
later runs without re-simulating anything.
"""

from __future__ import annotations

import csv
import io
import os
import tempfile
from pathlib import Path
from typing import Iterable, List, Union

from repro.experiments.results import ResultSet, RunRecord

__all__ = [
    "CSV_COLUMNS",
    "save_results",
    "load_results",
    "results_to_csv",
    "results_from_csv",
    "encode_record",
    "decode_row",
    "append_records",
    "load_checkpoint",
]

#: Column order of the CSV representation (one column per record field).
CSV_COLUMNS = (
    "error_name",
    "signal",
    "signal_bit",
    "area",
    "version",
    "mass_kg",
    "velocity_mps",
    "detected",
    "failed",
    "latency_ms",
    "wedged",
    "duration_ms",
)

_NONE = ""


def encode_record(record: RunRecord) -> List[str]:
    """One CSV row (list of cells) for *record*, in :data:`CSV_COLUMNS` order."""
    row = []
    for column in CSV_COLUMNS:
        value = getattr(record, column)
        row.append(_NONE if value is None else str(value))
    return row


# Backwards-compatible private alias (pre-checkpoint API).
_encode = encode_record


def _parse_optional_int(text: str):
    return None if text == _NONE else int(text)


def _parse_optional_float(text: str):
    return None if text == _NONE else float(text)


def _parse_bool(text: str) -> bool:
    if text == "True":
        return True
    if text == "False":
        return False
    raise ValueError(f"malformed boolean field {text!r}")


def decode_row(row: List[str]) -> RunRecord:
    """Parse one CSV row back into a :class:`RunRecord` (raises on malformed)."""
    if len(row) != len(CSV_COLUMNS):
        raise ValueError(
            f"malformed results row: expected {len(CSV_COLUMNS)} fields, got {len(row)}"
        )
    data = dict(zip(CSV_COLUMNS, row))
    return RunRecord(
        error_name=data["error_name"],
        signal=None if data["signal"] == _NONE else data["signal"],
        signal_bit=_parse_optional_int(data["signal_bit"]),
        area=data["area"],
        version=data["version"],
        mass_kg=float(data["mass_kg"]),
        velocity_mps=float(data["velocity_mps"]),
        detected=_parse_bool(data["detected"]),
        failed=_parse_bool(data["failed"]),
        latency_ms=_parse_optional_float(data["latency_ms"]),
        wedged=_parse_bool(data["wedged"]),
        duration_ms=int(data["duration_ms"]),
    )


# Backwards-compatible private alias (pre-checkpoint API).
_decode = decode_row


def results_to_csv(results: ResultSet) -> str:
    """Serialise a result set to CSV text (header + one row per run)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(CSV_COLUMNS)
    for record in results.records:
        writer.writerow(_encode(record))
    return buffer.getvalue()


def results_from_csv(text: str) -> ResultSet:
    """Parse CSV text produced by :func:`results_to_csv`."""
    reader = csv.reader(io.StringIO(text))
    try:
        header = next(reader)
    except StopIteration:
        raise ValueError("empty results file") from None
    if tuple(header) != CSV_COLUMNS:
        raise ValueError(
            f"unexpected results header {header!r}; this file was not written "
            "by results_to_csv (or by an incompatible version)"
        )
    return ResultSet(decode_row(row) for row in reader if row)


def save_results(results: ResultSet, path: Union[str, Path]) -> Path:
    """Write a result set to *path* atomically; returns the resolved path.

    The CSV is written to a temporary file in the same directory and
    renamed into place, so a crash mid-write can never leave a truncated
    file where an hours-long campaign's only artifact used to be.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent or "."
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8", newline="") as handle:
            handle.write(results_to_csv(results))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def load_results(path: Union[str, Path]) -> ResultSet:
    """Read a result set written by :func:`save_results`."""
    return results_from_csv(Path(path).read_text(encoding="utf-8"))


# -- checkpoint files -------------------------------------------------------
#
# A checkpoint is the same CSV format written incrementally: the header
# plus one appended row per completed run.  Appends are flushed per
# batch, so after a crash the file holds every finished run (plus at
# most one torn final line, which the tolerant loader drops).


try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None


def append_records(
    path: Union[str, Path], records: Iterable[RunRecord], locked: bool = False
) -> Path:
    """Append *records* to the checkpoint at *path*, creating it if needed.

    A new (or empty) file gets the :data:`CSV_COLUMNS` header first; an
    existing one must carry that exact header.  The batch is flushed and
    fsynced before returning so completed runs survive a crash.

    With *locked*, the whole append (header check included) runs under an
    exclusive ``flock`` on the file, so concurrent same-file writers —
    two campaign shards sharing a result-store directory — serialise
    batch-atomically instead of interleaving rows.  On platforms without
    ``fcntl`` the flag silently degrades to the unlocked path.
    """
    path = Path(path)
    with path.open("a+", encoding="utf-8", newline="") as handle:
        hold_lock = locked and fcntl is not None
        if hold_lock:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        try:
            handle.seek(0, os.SEEK_END)
            fresh = handle.tell() == 0
            if not fresh:
                handle.seek(0)
                header = next(csv.reader(handle), None)
                if header is None or tuple(header) != CSV_COLUMNS:
                    raise ValueError(
                        f"unexpected results header {header!r} in checkpoint "
                        f"{path}; refusing to append"
                    )
                handle.seek(0, os.SEEK_END)
            writer = csv.writer(handle)
            if fresh:
                writer.writerow(CSV_COLUMNS)
            for record in records:
                writer.writerow(encode_record(record))
            handle.flush()
            os.fsync(handle.fileno())
        finally:
            if hold_lock:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
    return path


def load_checkpoint(path: Union[str, Path], lenient: bool = False) -> ResultSet:
    """Read a (possibly torn) checkpoint written by :func:`append_records`.

    Unlike :func:`load_results` this tolerates an interrupted final
    write: a trailing row that does not parse is dropped rather than
    rejected, because resuming will simply re-run that spec.  A missing
    file yields an empty result set; a malformed row *before* the end
    still raises (the file is not a checkpoint of ours) — unless
    *lenient*, which drops every malformed row instead.  Lenient loading
    is for multi-writer store files, where a writer killed mid-append
    can leave a torn row in the *middle* of the file once a later writer
    appends past it; the intact rows are still worth restoring.
    """
    path = Path(path)
    if not path.exists():
        return ResultSet()
    reader = csv.reader(io.StringIO(path.read_text(encoding="utf-8")))
    header = next(reader, None)
    if header is None:
        return ResultSet()
    if tuple(header) != CSV_COLUMNS:
        raise ValueError(
            f"unexpected results header {header!r}; {path} was not written "
            "by this campaign engine"
        )
    rows = [row for row in reader if row]
    records = []
    for index, row in enumerate(rows):
        try:
            records.append(decode_row(row))
        except ValueError:
            if lenient or index == len(rows) - 1:
                continue  # torn row from an interrupted append
            raise
    return ResultSet(records)
