"""Persistence of campaign results.

Full-scale campaigns take hours; their run records should outlive the
process.  A :class:`~repro.experiments.results.ResultSet` round-trips
through a plain CSV file (one row per run, stable column order) so a
finished campaign can be re-aggregated, re-rendered, or merged with
later runs without re-simulating anything.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import List, Union

from repro.experiments.results import ResultSet, RunRecord

__all__ = ["CSV_COLUMNS", "save_results", "load_results", "results_to_csv", "results_from_csv"]

#: Column order of the CSV representation (one column per record field).
CSV_COLUMNS = (
    "error_name",
    "signal",
    "signal_bit",
    "area",
    "version",
    "mass_kg",
    "velocity_mps",
    "detected",
    "failed",
    "latency_ms",
    "wedged",
    "duration_ms",
)

_NONE = ""


def _encode(record: RunRecord) -> List[str]:
    row = []
    for column in CSV_COLUMNS:
        value = getattr(record, column)
        row.append(_NONE if value is None else str(value))
    return row


def _parse_optional_int(text: str):
    return None if text == _NONE else int(text)


def _parse_optional_float(text: str):
    return None if text == _NONE else float(text)


def _parse_bool(text: str) -> bool:
    if text == "True":
        return True
    if text == "False":
        return False
    raise ValueError(f"malformed boolean field {text!r}")


def _decode(row: List[str]) -> RunRecord:
    if len(row) != len(CSV_COLUMNS):
        raise ValueError(
            f"malformed results row: expected {len(CSV_COLUMNS)} fields, got {len(row)}"
        )
    data = dict(zip(CSV_COLUMNS, row))
    return RunRecord(
        error_name=data["error_name"],
        signal=None if data["signal"] == _NONE else data["signal"],
        signal_bit=_parse_optional_int(data["signal_bit"]),
        area=data["area"],
        version=data["version"],
        mass_kg=float(data["mass_kg"]),
        velocity_mps=float(data["velocity_mps"]),
        detected=_parse_bool(data["detected"]),
        failed=_parse_bool(data["failed"]),
        latency_ms=_parse_optional_float(data["latency_ms"]),
        wedged=_parse_bool(data["wedged"]),
        duration_ms=int(data["duration_ms"]),
    )


def results_to_csv(results: ResultSet) -> str:
    """Serialise a result set to CSV text (header + one row per run)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(CSV_COLUMNS)
    for record in results.records:
        writer.writerow(_encode(record))
    return buffer.getvalue()


def results_from_csv(text: str) -> ResultSet:
    """Parse CSV text produced by :func:`results_to_csv`."""
    reader = csv.reader(io.StringIO(text))
    try:
        header = next(reader)
    except StopIteration:
        raise ValueError("empty results file") from None
    if tuple(header) != CSV_COLUMNS:
        raise ValueError(
            f"unexpected results header {header!r}; this file was not written "
            "by results_to_csv (or by an incompatible version)"
        )
    return ResultSet(_decode(row) for row in reader if row)


def save_results(results: ResultSet, path: Union[str, Path]) -> Path:
    """Write a result set to *path*; returns the resolved path."""
    path = Path(path)
    path.write_text(results_to_csv(results), encoding="utf-8")
    return path


def load_results(path: Union[str, Path]) -> ResultSet:
    """Read a result set written by :func:`save_results`."""
    return results_from_csv(Path(path).read_text(encoding="utf-8"))
