"""Aggregation of experiment runs into the paper's measures.

The evaluation reports, per cell (signal x mechanism version for E1,
memory area for E2):

* ``P(d)        = nd / ne``          — detection probability,
* ``P(d|fail)   = nd,fail / ne,fail`` — detection given system failure,
* ``P(d|no fail)= nd,nofail / ne,nofail`` — detection given no failure,

each with the 95 % confidence interval of
:mod:`repro.stats.estimators`, plus min/average/max first-injection-to-
first-detection latencies.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Tuple

from repro.injection.fic import ExperimentRecord
from repro.stats.estimators import CoverageEstimate
from repro.stats.summary import LatencySummary, summarize_latencies

__all__ = [
    "RunRecord",
    "CoverageTriple",
    "ResultSet",
    "flatten_record",
    "canonical_key",
]


@dataclasses.dataclass(frozen=True)
class RunRecord:
    """One experiment run, flattened for aggregation."""

    error_name: str
    signal: Optional[str]
    signal_bit: Optional[int]
    area: str
    version: str
    mass_kg: float
    velocity_mps: float
    detected: bool
    failed: bool
    latency_ms: Optional[float]
    wedged: bool
    duration_ms: int


def canonical_key(record: RunRecord) -> Tuple[str, str, float, float]:
    """The identity of a run within a campaign, as a sortable tuple.

    ``(version, error_name, mass, velocity)`` uniquely names one run of
    the E1/E2 grids (error names are unique per set, test cases are
    distinct grid points), so it keys checkpoint resume and defines the
    canonical order campaigns are compared in regardless of execution
    order (serial, parallel, or resumed).
    """
    return (record.version, record.error_name, record.mass_kg, record.velocity_mps)


def flatten_record(record: ExperimentRecord) -> RunRecord:
    """Flatten a controller's :class:`ExperimentRecord` for aggregation."""
    error = record.error
    result = record.result
    return RunRecord(
        error_name=error.name if error is not None else "-",
        signal=error.signal if error is not None else None,
        signal_bit=error.signal_bit if error is not None else None,
        area=error.area if error is not None else "-",
        version=record.version,
        mass_kg=result.test_case.mass_kg,
        velocity_mps=result.test_case.velocity_mps,
        detected=result.detected,
        failed=result.failed,
        latency_ms=result.detection_latency_ms,
        wedged=result.wedged,
        duration_ms=result.duration_ms,
    )


@dataclasses.dataclass(frozen=True)
class CoverageTriple:
    """The three detection-probability measures of one table cell."""

    p_d: CoverageEstimate
    p_d_fail: CoverageEstimate
    p_d_no_fail: CoverageEstimate

    @classmethod
    def from_records(cls, records: Iterable[RunRecord]) -> "CoverageTriple":
        ne = nd = ne_fail = nd_fail = 0
        for record in records:
            ne += 1
            if record.detected:
                nd += 1
            if record.failed:
                ne_fail += 1
                if record.detected:
                    nd_fail += 1
        return cls(
            p_d=CoverageEstimate(nd, ne),
            p_d_fail=CoverageEstimate(nd_fail, ne_fail),
            p_d_no_fail=CoverageEstimate(nd - nd_fail, ne - ne_fail),
        )


class ResultSet:
    """A bag of run records with the groupings the tables need."""

    def __init__(self, records: Optional[Iterable[RunRecord]] = None) -> None:
        self.records: List[RunRecord] = list(records) if records is not None else []

    def add(self, record: RunRecord) -> None:
        self.records.append(record)

    def extend(self, records: Iterable[RunRecord]) -> None:
        self.records.extend(records)

    def __len__(self) -> int:
        return len(self.records)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResultSet):
            return NotImplemented
        return self.records == other.records

    def sorted(self) -> "ResultSet":
        """A copy in canonical order (see :func:`canonical_key`)."""
        return ResultSet(sorted(self.records, key=canonical_key))

    # -- filters ---------------------------------------------------------

    def subset(
        self,
        signal: Optional[str] = None,
        version: Optional[str] = None,
        area: Optional[str] = None,
    ) -> List[RunRecord]:
        out = self.records
        if signal is not None:
            out = [r for r in out if r.signal == signal]
        if version is not None:
            out = [r for r in out if r.version == version]
        if area is not None:
            out = [r for r in out if r.area == area]
        return out

    @property
    def versions(self) -> List[str]:
        seen: Dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.version, None)
        return list(seen)

    @property
    def signals(self) -> List[str]:
        seen: Dict[str, None] = {}
        for record in self.records:
            if record.signal is not None:
                seen.setdefault(record.signal, None)
        return list(seen)

    # -- measures -----------------------------------------------------------

    def coverage(
        self,
        signal: Optional[str] = None,
        version: Optional[str] = None,
        area: Optional[str] = None,
    ) -> CoverageTriple:
        """P(d) / P(d|fail) / P(d|no fail) over the matching records."""
        return CoverageTriple.from_records(self.subset(signal, version, area))

    def latency(
        self,
        signal: Optional[str] = None,
        version: Optional[str] = None,
        area: Optional[str] = None,
        failures_only: bool = False,
    ) -> LatencySummary:
        """Latency summary over the detecting (optionally failing) runs."""
        records = self.subset(signal, version, area)
        latencies = [
            r.latency_ms
            for r in records
            if r.latency_ms is not None and (r.failed or not failures_only)
        ]
        return summarize_latencies(latencies)

    def counts(
        self,
        signal: Optional[str] = None,
        version: Optional[str] = None,
        area: Optional[str] = None,
    ) -> Tuple[int, int, int]:
        """(runs, detected, failed) over the matching records."""
        records = self.subset(signal, version, area)
        return (
            len(records),
            sum(1 for r in records if r.detected),
            sum(1 for r in records if r.failed),
        )
