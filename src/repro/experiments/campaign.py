"""Campaign runners: the experimental set-up of Section 3.4.

E1: eight system versions (EA1..EA7 alone, plus all seven together),
every error of the 112-error set, a set of test cases per error.
E2: the all-assertions version only, 200 random-location errors.

Scale.  The paper executes 22 400 + 5 000 arrestments on bare hardware;
a pure-Python reproduction budgets its runs through
:class:`CampaignConfig` (overridable via ``REPRO_*`` environment
variables — see ``from_env``).  Scaled campaigns keep *all* errors and
subsample test cases, because the tables' structure lives in the error
axis (signal x bit position), not the test-case axis.
"""

from __future__ import annotations

import dataclasses
import os
from pathlib import Path
from typing import Callable, List, Optional, Tuple, Union

from repro.arrestor.system import RunConfig
from repro.obs.metrics import MetricsRegistry
from repro.experiments.parallel import (
    enumerate_e1_specs,
    enumerate_e2_specs,
    execute_specs,
)
from repro.experiments.results import ResultSet
from repro.injection.fic import CampaignController
from repro.targets.registry import get_target

__all__ = [
    "CampaignConfig",
    "E1_VERSIONS",
    "run_e1_campaign",
    "run_e2_campaign",
    "run_campaign_graph",
    "run_reference_grid",
]

#: The eight system versions of the E1 experiment.
E1_VERSIONS: Tuple[str, ...] = ("EA1", "EA2", "EA3", "EA4", "EA5", "EA6", "EA7", "All")

ProgressHook = Callable[[int, int], None]


@dataclasses.dataclass(frozen=True)
class CampaignConfig:
    """Campaign sizing and injection parameters.

    ``cases_all`` test cases are run per error on the All version;
    ``cases_per_ea`` per error on each single-EA version; ``cases_e2``
    per error in the E2 campaign.  The paper's full scale is 25 for all
    three (set ``REPRO_FULL=1``).
    """

    cases_all: int = 3
    cases_per_ea: int = 1
    cases_e2: int = 3
    #: System versions to run; ``None`` selects the target's full set
    #: (for the arrestor: :data:`E1_VERSIONS`, the paper's eight builds).
    versions: Optional[Tuple[str, ...]] = None
    injection_period_ms: int = 20
    #: Sim-time (ms) of the first injection.  A positive start lets the
    #: snapshot layer fast-forward every run through the shared
    #: fault-free prefix (simulated once per grid point, not once per
    #: error); 0 reproduces the paper's inject-from-boot campaigns.
    injection_start_ms: int = 0
    e2_seed: int = 2000
    run_config: Optional[RunConfig] = None
    #: Worker processes for campaign execution; 1 = in-process serial.
    workers: int = 1
    #: Wall-clock limit per run (seconds); a run exceeding it is
    #: classified as wedged instead of hanging its worker.  None = no limit.
    run_timeout_s: Optional[float] = None
    #: Structured-trace destination (JSONL, one event per line); None =
    #: tracing disabled.  Also settable via ``REPRO_TRACE``.
    trace_path: Optional[Union[str, Path]] = None
    #: Metrics registry the campaign updates in place (counters, latency
    #: histograms, runs/sec); None = no metrics.
    metrics: Optional[MetricsRegistry] = None
    #: Registered workload the campaign runs against; ``None`` resolves
    #: to the registry default (``$REPRO_TARGET``, else the arrestor).
    target: Optional[str] = None
    #: Warm-target snapshot reuse: ``True``/``False`` force it on/off,
    #: ``None`` follows the session default (``REPRO_SNAPSHOTS``).
    snapshots: Optional[bool] = None
    #: Vectorized batch execution of eligible specs (see
    #: ``execute_specs(batch=...)``); also settable via ``REPRO_BATCH=1``.
    #: The serial path stays the oracle and the default.
    batch: bool = False

    def __post_init__(self) -> None:
        for name in ("cases_all", "cases_per_ea", "cases_e2"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be at least 1")
        resolved = get_target(self.target)
        object.__setattr__(self, "target", resolved.name)
        if self.versions is None:
            object.__setattr__(self, "versions", tuple(resolved.versions))
        unknown = set(self.versions) - set(resolved.versions)
        if unknown:
            raise ValueError(f"unknown versions: {sorted(unknown)}")
        if self.workers < 1:
            raise ValueError(f"workers must be at least 1, got {self.workers}")
        if self.run_timeout_s is not None and self.run_timeout_s <= 0:
            raise ValueError("run_timeout_s must be positive when set")
        if self.injection_start_ms < 0:
            raise ValueError(
                f"injection_start_ms must be non-negative, got {self.injection_start_ms}"
            )

    @classmethod
    def from_env(cls) -> "CampaignConfig":
        """Build a config from ``REPRO_*`` environment variables.

        ``REPRO_FULL=1`` selects the paper's full scale (25 test cases
        everywhere) as the baseline; ``REPRO_CASES_ALL``,
        ``REPRO_CASES_EA`` and ``REPRO_CASES_E2`` override individual
        sizes on top of whichever baseline applies.  ``REPRO_WORKERS``
        sets the process-pool width, ``REPRO_RUN_TIMEOUT`` the per-run
        wall-clock limit in seconds, and ``REPRO_TRACE`` a JSONL file
        the structured trace streams to.  ``REPRO_TARGET`` selects the
        workload (it also applies to configs built without ``from_env``,
        via the registry default).  ``REPRO_INJECTION_START`` sets the
        first-injection sim-time in ms (enabling prefix fast-forward);
        ``REPRO_SNAPSHOTS=0`` disables warm-target snapshot reuse (the
        snapshot layer reads that variable itself, so ``snapshots``
        stays ``None`` here).  ``REPRO_BATCH=1`` opts into vectorized
        batch execution of eligible specs.
        """
        full = os.environ.get("REPRO_FULL") == "1"

        def _env_int(name: str, default: int) -> int:
            raw = os.environ.get(name)
            if not raw:
                return default
            try:
                return int(raw)
            except ValueError:
                raise ValueError(
                    f"{name} must be an integer, got {raw!r}"
                ) from None

        def _env_float(name: str) -> Optional[float]:
            raw = os.environ.get(name)
            if not raw:
                return None
            try:
                return float(raw)
            except ValueError:
                raise ValueError(f"{name} must be a number, got {raw!r}") from None

        return cls(
            cases_all=_env_int("REPRO_CASES_ALL", 25 if full else 3),
            cases_per_ea=_env_int("REPRO_CASES_EA", 25 if full else 1),
            cases_e2=_env_int("REPRO_CASES_E2", 25 if full else 3),
            workers=_env_int("REPRO_WORKERS", 1),
            run_timeout_s=_env_float("REPRO_RUN_TIMEOUT"),
            trace_path=os.environ.get("REPRO_TRACE") or None,
            injection_start_ms=_env_int("REPRO_INJECTION_START", 0),
            batch=os.environ.get("REPRO_BATCH") == "1",
        )


def _resolve_store(store, config: CampaignConfig):
    """Coerce a store argument (path or ResultStore) for this config."""
    if store is None:
        return None
    from repro.experiments.store import ResultStore

    if isinstance(store, ResultStore):
        return store
    return ResultStore(
        store,
        target=config.target,
        run_config=config.run_config,
        injection_start_ms=config.injection_start_ms,
    )


def _tables_renderer(experiment: str, config: CampaignConfig):
    """The tables-node renderer for one campaign, plus its fingerprint.

    The renderer is keyed by a digest of the table layer's source, so a
    table-layout change re-renders the artifact without re-simulating a
    single run (the run nodes' keys are untouched).
    """
    import hashlib

    from repro.experiments import tables as tables_module

    fingerprint = hashlib.sha256(
        Path(tables_module.__file__).read_bytes()
    ).hexdigest()
    target = get_target(config.target)
    signals = tuple(target.monitored_signals)
    versions = tuple(config.versions)

    if experiment == "e1":
        def render(results: ResultSet) -> str:
            return (
                "Table 7. Error detection probabilities (%)\n"
                + tables_module.render_table7(results, versions, signals=signals)
                + "\n\nTable 8. Error detection latencies (ms)\n"
                + tables_module.render_table8(results, versions, signals=signals)
            )
    else:
        def render(results: ResultSet) -> str:
            return (
                "Table 9. Results for error set E2\n"
                + tables_module.render_table9(results)
            )

    return render, fingerprint


def run_campaign_graph(
    config: Optional[CampaignConfig] = None,
    experiment: str = "e1",
    progress: Optional[ProgressHook] = None,
    error_filter: Optional[Callable] = None,
    store: Optional[Union[str, Path]] = None,
    force: bool = False,
    shard: Optional[Union[str, Tuple[int, int]]] = None,
    tables: bool = True,
):
    """Execute a campaign through the content-addressed task graph.

    The graph-native counterpart of :func:`run_e1_campaign` /
    :func:`run_e2_campaign`: the spec grid becomes ``run`` nodes fed by
    snapshot-``prewarm`` nodes, with ``aggregate`` and ``tables`` nodes
    downstream (see :mod:`repro.experiments.dag`).  *store* is a
    **node-store** directory — per-node completion records replace the
    flat checkpoint CSV, so resume-after-interrupt and
    replay-when-unchanged are the same mechanism.  *shard* (``"i/n"``)
    restricts execution to one content-address partition of the grid;
    merge shard stores with ``python -m repro.experiments merge``.
    Returns a :class:`~repro.experiments.dag.GraphCampaignResult`.
    """
    from repro.experiments import dag

    if config is None:
        config = CampaignConfig()
    if experiment not in ("e1", "e2"):
        raise ValueError(f"experiment must be 'e1' or 'e2', got {experiment!r}")
    enumerate = enumerate_e1_specs if experiment == "e1" else enumerate_e2_specs
    renderer = fingerprint = None
    if tables and shard is None:
        renderer, fingerprint = _tables_renderer(experiment, config)
    return dag.run_campaign_graph(
        enumerate(config, error_filter),
        run_config=config.run_config,
        workers=config.workers,
        timeout_s=config.run_timeout_s,
        trace=config.trace_path,
        metrics=config.metrics,
        store=store,
        force=force,
        snapshots=config.snapshots,
        batch=config.batch,
        progress=progress,
        shard=shard,
        tables_renderer=renderer,
        tables_fingerprint=fingerprint or "",
    )


def run_e1_campaign(
    config: Optional[CampaignConfig] = None,
    progress: Optional[ProgressHook] = None,
    error_filter: Optional[Callable] = None,
    checkpoint: Optional[Union[str, Path]] = None,
    resume: bool = False,
    store: Optional[Union[str, Path, "ResultStore"]] = None,
    force: bool = False,
    graph: bool = False,
    shard: Optional[Union[str, Tuple[int, int]]] = None,
) -> ResultSet:
    """Execute the E1 experiment (Tables 7 and 8).

    Every error of the 112-error set is exercised on every configured
    system version; the All version uses ``cases_all`` test cases per
    error and the single-EA versions ``cases_per_ea``.  *error_filter*
    optionally restricts the error set (it receives each
    :class:`~repro.injection.errors.ErrorSpec`), e.g. to a single signal
    for a quick partial campaign.

    Execution is delegated to :mod:`repro.experiments.parallel`:
    ``config.workers`` processes (1 = the serial in-process path),
    optionally streaming completed runs to *checkpoint* and — with
    *resume* — skipping the runs already recorded there.  The result is
    record-for-record identical whatever the worker count.

    *store* (a directory path or a prebuilt
    :class:`~repro.experiments.store.ResultStore`) enables the
    content-addressed result store: records computed by any earlier
    campaign with the same code and configuration are restored instead
    of re-simulated, and fresh records are added for the next campaign.
    *force* re-simulates everything while still refreshing the store.

    *graph* (or a *shard*) routes execution through the task-graph
    runtime instead — *store* then names a node-store directory and
    per-node completion records subsume the checkpoint CSV, so
    *checkpoint*/*resume* cannot be combined with it.
    """
    if config is None:
        config = CampaignConfig()
    if graph or shard is not None:
        if checkpoint is not None or resume:
            raise ValueError(
                "checkpoint/resume are subsumed by per-node completion "
                "records on the graph path; pass a node store instead"
            )
        return run_campaign_graph(
            config,
            "e1",
            progress=progress,
            error_filter=error_filter,
            store=store,
            force=force,
            shard=shard,
            tables=False,
        ).results
    return execute_specs(
        enumerate_e1_specs(config, error_filter),
        run_config=config.run_config,
        workers=config.workers,
        checkpoint=checkpoint,
        resume=resume,
        progress=progress,
        timeout_s=config.run_timeout_s,
        trace=config.trace_path,
        metrics=config.metrics,
        store=_resolve_store(store, config),
        force=force,
        snapshots=config.snapshots,
        batch=config.batch,
    )


def run_e2_campaign(
    config: Optional[CampaignConfig] = None,
    progress: Optional[ProgressHook] = None,
    error_filter: Optional[Callable] = None,
    checkpoint: Optional[Union[str, Path]] = None,
    resume: bool = False,
    store: Optional[Union[str, Path, "ResultStore"]] = None,
    force: bool = False,
    graph: bool = False,
    shard: Optional[Union[str, Tuple[int, int]]] = None,
) -> ResultSet:
    """Execute the E2 experiment (Table 9): All version, random locations.

    Same execution engine, checkpointing, resume, result-store and
    graph/shard semantics as :func:`run_e1_campaign`.
    """
    if config is None:
        config = CampaignConfig()
    if graph or shard is not None:
        if checkpoint is not None or resume:
            raise ValueError(
                "checkpoint/resume are subsumed by per-node completion "
                "records on the graph path; pass a node store instead"
            )
        return run_campaign_graph(
            config,
            "e2",
            progress=progress,
            error_filter=error_filter,
            store=store,
            force=force,
            shard=shard,
            tables=False,
        ).results
    return execute_specs(
        enumerate_e2_specs(config, error_filter),
        run_config=config.run_config,
        workers=config.workers,
        checkpoint=checkpoint,
        resume=resume,
        progress=progress,
        timeout_s=config.run_timeout_s,
        trace=config.trace_path,
        metrics=config.metrics,
        store=_resolve_store(store, config),
        force=force,
        snapshots=config.snapshots,
        batch=config.batch,
    )


def run_reference_grid(
    versions: Tuple[str, ...] = ("All",),
    config: Optional[CampaignConfig] = None,
    target: Optional[str] = None,
) -> List:
    """Fault-free runs over the full 25-case grid (Section 3.4 precondition).

    Returns the :class:`repro.injection.fic.ExperimentRecord` list; every
    record must show no detection and no failure for the experimental
    set-up to be valid.  When *config* is given, its ``run_config`` and
    injection period are honoured so the precondition is checked on the
    *same* system configuration the injected runs will use — and its
    ``trace_path``/``metrics`` stream the reference runs' events too.
    *target* (a registered name) overrides the config's workload; the
    default resolves like every other campaign entry point.
    """
    tracer = None
    sink = None
    resolved = get_target(
        target if target is not None else (config.target if config else None)
    )
    if config is not None:
        if config.trace_path is not None:
            from repro.obs.bus import TraceBus
            from repro.obs.sinks import JSONLSink

            sink = JSONLSink(config.trace_path, mode="w")
            tracer = TraceBus([sink])
        controller = CampaignController(
            injection_period_ms=config.injection_period_ms,
            run_config=config.run_config,
            tracer=tracer,
            metrics=config.metrics,
            target=resolved,
            snapshots=config.snapshots,
        )
    else:
        controller = CampaignController(target=resolved)
    records = []
    try:
        for version in versions:
            for case in resolved.test_cases():
                records.append(controller.run_reference(case, version))
    finally:
        if sink is not None:
            sink.close()
    return records
