"""Campaign runners: the experimental set-up of Section 3.4.

E1: eight system versions (EA1..EA7 alone, plus all seven together),
every error of the 112-error set, a set of test cases per error.
E2: the all-assertions version only, 200 random-location errors.

Scale.  The paper executes 22 400 + 5 000 arrestments on bare hardware;
a pure-Python reproduction budgets its runs through
:class:`CampaignConfig` (overridable via ``REPRO_*`` environment
variables — see ``from_env``).  Scaled campaigns keep *all* errors and
subsample test cases, because the tables' structure lives in the error
axis (signal x bit position), not the test-case axis.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Callable, List, Optional, Tuple

from repro.arrestor.signals_map import MasterMemory
from repro.arrestor.system import RunConfig, TestCase
from repro.experiments.results import ResultSet, flatten_record
from repro.experiments.testcases import make_test_cases, select_spread
from repro.injection.errors import build_e1_error_set, build_e2_error_set
from repro.injection.fic import CampaignController

__all__ = ["CampaignConfig", "E1_VERSIONS", "run_e1_campaign", "run_e2_campaign", "run_reference_grid"]

#: The eight system versions of the E1 experiment.
E1_VERSIONS: Tuple[str, ...] = ("EA1", "EA2", "EA3", "EA4", "EA5", "EA6", "EA7", "All")

ProgressHook = Callable[[int, int], None]


@dataclasses.dataclass(frozen=True)
class CampaignConfig:
    """Campaign sizing and injection parameters.

    ``cases_all`` test cases are run per error on the All version;
    ``cases_per_ea`` per error on each single-EA version; ``cases_e2``
    per error in the E2 campaign.  The paper's full scale is 25 for all
    three (set ``REPRO_FULL=1``).
    """

    cases_all: int = 3
    cases_per_ea: int = 1
    cases_e2: int = 3
    versions: Tuple[str, ...] = E1_VERSIONS
    injection_period_ms: int = 20
    e2_seed: int = 2000
    run_config: Optional[RunConfig] = None

    def __post_init__(self) -> None:
        for name in ("cases_all", "cases_per_ea", "cases_e2"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be at least 1")
        unknown = set(self.versions) - set(E1_VERSIONS)
        if unknown:
            raise ValueError(f"unknown versions: {sorted(unknown)}")

    @classmethod
    def from_env(cls) -> "CampaignConfig":
        """Build a config from ``REPRO_*`` environment variables.

        ``REPRO_FULL=1`` selects the paper's full scale (25 test cases
        everywhere).  Otherwise ``REPRO_CASES_ALL``, ``REPRO_CASES_EA``
        and ``REPRO_CASES_E2`` override the scaled defaults individually.
        """
        if os.environ.get("REPRO_FULL") == "1":
            return cls(cases_all=25, cases_per_ea=25, cases_e2=25)
        def _env_int(name: str, default: int) -> int:
            raw = os.environ.get(name)
            return int(raw) if raw else default

        return cls(
            cases_all=_env_int("REPRO_CASES_ALL", 3),
            cases_per_ea=_env_int("REPRO_CASES_EA", 1),
            cases_e2=_env_int("REPRO_CASES_E2", 3),
        )


def _controller(config: CampaignConfig) -> CampaignController:
    return CampaignController(
        injection_period_ms=config.injection_period_ms,
        run_config=config.run_config,
    )


def run_e1_campaign(
    config: Optional[CampaignConfig] = None,
    progress: Optional[ProgressHook] = None,
    error_filter: Optional[Callable] = None,
) -> ResultSet:
    """Execute the E1 experiment (Tables 7 and 8).

    Every error of the 112-error set is exercised on every configured
    system version; the All version uses ``cases_all`` test cases per
    error and the single-EA versions ``cases_per_ea``.  *error_filter*
    optionally restricts the error set (it receives each
    :class:`~repro.injection.errors.ErrorSpec`), e.g. to a single signal
    for a quick partial campaign.
    """
    if config is None:
        config = CampaignConfig()
    controller = _controller(config)
    errors = build_e1_error_set(MasterMemory())
    if error_filter is not None:
        errors = [e for e in errors if error_filter(e)]
    grid = make_test_cases()
    cases_all = select_spread(grid, config.cases_all)
    cases_ea = select_spread(grid, config.cases_per_ea)

    total = 0
    for version in config.versions:
        cases = cases_all if version == "All" else cases_ea
        total += len(errors) * len(cases)

    results = ResultSet()
    done = 0
    for version in config.versions:
        cases = cases_all if version == "All" else cases_ea
        for error in errors:
            for case in cases:
                record = controller.run_injection(error, case, version)
                results.add(flatten_record(record))
                done += 1
                if progress is not None:
                    progress(done, total)
    return results


def run_e2_campaign(
    config: Optional[CampaignConfig] = None,
    progress: Optional[ProgressHook] = None,
    error_filter: Optional[Callable] = None,
) -> ResultSet:
    """Execute the E2 experiment (Table 9): All version, random locations."""
    if config is None:
        config = CampaignConfig()
    controller = _controller(config)
    errors = build_e2_error_set(MasterMemory(), seed=config.e2_seed)
    if error_filter is not None:
        errors = [e for e in errors if error_filter(e)]
    grid = make_test_cases()
    cases = select_spread(grid, config.cases_e2)

    total = len(errors) * len(cases)
    results = ResultSet()
    done = 0
    for error in errors:
        for case in cases:
            record = controller.run_injection(error, case, "All")
            results.add(flatten_record(record))
            done += 1
            if progress is not None:
                progress(done, total)
    return results


def run_reference_grid(versions: Tuple[str, ...] = ("All",)) -> List:
    """Fault-free runs over the full 25-case grid (Section 3.4 precondition).

    Returns the :class:`repro.injection.fic.ExperimentRecord` list; every
    record must show no detection and no failure for the experimental
    set-up to be valid.
    """
    controller = CampaignController()
    records = []
    for version in versions:
        for case in make_test_cases():
            records.append(controller.run_reference(case, version))
    return records
