"""Parallel campaign engine: the run grid as data, executed by a pool.

The paper's evaluation is 22 400 (E1) + 5 000 (E2) arrestments.  Run
serially in one Python process, the full-scale campaign takes hours and
a crash loses everything.  This module turns a campaign into

1. a deterministic enumeration of **run specs** — self-describing
   (version, error, test-case) triples carrying everything a worker
   needs to execute one run;
2. an **execution engine** that dispatches specs in chunks to a process
   pool (each run still gets a pristine system — by default restored
   from a warm boot/prefix snapshot, which is byte-identical to the
   evaluation's reboot-between-runs semantics; ``REPRO_SNAPSHOTS=0``
   reverts to literal reboots), retries failed chunks a bounded number
   of times, gives every run a wall-clock timeout that classifies a
   wedged simulation instead of hanging the pool, and streams completed
   records to an append-only CSV **checkpoint** so an interrupted
   campaign resumes by skipping the specs already on disk.

Acceleration.  Before forking its pool the dispatcher pre-warms the
process-global snapshot cache (one boot — and, with a positive
``injection_start_ms``, one fault-free prefix simulation — per distinct
grid point), so every forked worker inherits the warm cache instead of
rebuilding it.  An optional content-addressed **result store**
(:mod:`repro.experiments.store`) short-circuits specs whose records were
already computed by any earlier campaign with the same code and
configuration.

Observability.  With a trace destination and/or a metrics registry
(``execute_specs(trace=..., metrics=...)``), the engine publishes run
lifecycle events and campaign metrics through :mod:`repro.obs`.  Workers
write per-chunk trace part files the dispatcher merges at checkpoint
time and return additive metrics snapshots, so both artifacts survive
the process pool — and chunk retries — without duplication.

Equivalence guarantee.  The final :class:`ResultSet` is assembled in
spec-enumeration order from a key-indexed map, so a parallel campaign —
and a resumed one — yields record-for-record the same result set as the
serial loop, regardless of completion order.  With ``workers=1`` (or
when multiprocessing is unavailable) the engine degrades to an in-process
serial loop over the same specs.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import signal
import threading
import time
import warnings
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.experiments.persistence import append_records, load_checkpoint
from repro.experiments.results import ResultSet, RunRecord, canonical_key, flatten_record
from repro.experiments.testcases import select_spread
from repro.injection.errors import ErrorSpec
from repro.injection.fic import CampaignController, ExperimentRecord
from repro.targets import snapshot as snapshots_mod
from repro.targets.base import TestCase
from repro.targets.registry import DEFAULT_TARGET, get_target
from repro.obs.bus import TraceBus
from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import JSONLSink

__all__ = [
    "RunSpec",
    "SpecKey",
    "CampaignExecutionError",
    "enumerate_e1_specs",
    "enumerate_e2_specs",
    "execute_specs",
]

#: The identity of one run: (version, error name, mass, velocity).
SpecKey = Tuple[str, str, float, float]

ProgressHook = Callable[[int, int], None]

#: Chunks that fail (worker crash, pickling error, broken pool) are
#: retried at most this many times before the campaign aborts.
DEFAULT_MAX_ATTEMPTS = 3


class CampaignExecutionError(RuntimeError):
    """A chunk of runs kept failing after the bounded retries."""


@dataclasses.dataclass(frozen=True)
class RunSpec:
    """One run of the grid, self-describing and cheap to pickle.

    A spec carries the flattened :class:`ErrorSpec` fields, the test
    case and the injection period, so a worker process can rebuild the
    exact experiment without sharing any state with the dispatcher.
    """

    experiment: str  # "e1" | "e2"
    version: str
    error_name: str
    address: int
    bit: int
    area: str
    signal: Optional[str]
    signal_bit: Optional[int]
    mass_kg: float
    velocity_mps: float
    injection_period_ms: int
    #: Registered workload the spec runs against; defaults to the
    #: arrestor so pre-target-layer pickles and call sites stay valid.
    target: str = DEFAULT_TARGET
    #: Sim-time (ms) of the earliest injection; runs with a positive
    #: start share a fault-free prefix the snapshot layer fast-forwards.
    injection_start_ms: int = 0

    @property
    def key(self) -> SpecKey:
        """Resume/equivalence key; matches :func:`canonical_key` of the record."""
        return (self.version, self.error_name, self.mass_kg, self.velocity_mps)

    def error_spec(self) -> ErrorSpec:
        return ErrorSpec(
            name=self.error_name,
            address=self.address,
            bit=self.bit,
            area=self.area,
            signal=self.signal,
            signal_bit=self.signal_bit,
        )

    def test_case(self) -> TestCase:
        return TestCase(mass_kg=self.mass_kg, velocity_mps=self.velocity_mps)

    @classmethod
    def build(
        cls,
        experiment: str,
        version: str,
        error: ErrorSpec,
        case: TestCase,
        injection_period_ms: int,
        target: str = DEFAULT_TARGET,
        injection_start_ms: int = 0,
    ) -> "RunSpec":
        return cls(
            experiment=experiment,
            version=version,
            error_name=error.name,
            address=error.address,
            bit=error.bit,
            area=error.area,
            signal=error.signal,
            signal_bit=error.signal_bit,
            mass_kg=case.mass_kg,
            velocity_mps=case.velocity_mps,
            injection_period_ms=injection_period_ms,
            target=target,
            injection_start_ms=injection_start_ms,
        )


# -- grid enumeration -------------------------------------------------------
#
# The config argument is duck-typed (any object with the CampaignConfig
# fields) to keep this module import-free of repro.experiments.campaign,
# which imports the engine.


def enumerate_e1_specs(config, error_filter: Optional[Callable] = None) -> List[RunSpec]:
    """The E1 grid in serial order: version -> error -> test case."""
    target = get_target(getattr(config, "target", None))
    errors = target.e1_error_set()
    if error_filter is not None:
        errors = [e for e in errors if error_filter(e)]
    grid = target.test_cases()
    cases_all = select_spread(grid, config.cases_all)
    cases_ea = select_spread(grid, config.cases_per_ea)
    specs: List[RunSpec] = []
    start_ms = getattr(config, "injection_start_ms", 0)
    for version in config.versions:
        cases = cases_all if version == "All" else cases_ea
        for error in errors:
            for case in cases:
                specs.append(
                    RunSpec.build(
                        "e1",
                        version,
                        error,
                        case,
                        config.injection_period_ms,
                        target=target.name,
                        injection_start_ms=start_ms,
                    )
                )
    return specs


def enumerate_e2_specs(config, error_filter: Optional[Callable] = None) -> List[RunSpec]:
    """The E2 grid in serial order: error -> test case (All version only)."""
    target = get_target(getattr(config, "target", None))
    errors = target.e2_error_set(seed=config.e2_seed)
    if error_filter is not None:
        errors = [e for e in errors if error_filter(e)]
    cases = select_spread(target.test_cases(), config.cases_e2)
    start_ms = getattr(config, "injection_start_ms", 0)
    return [
        RunSpec.build(
            "e2",
            "All",
            error,
            case,
            config.injection_period_ms,
            target=target.name,
            injection_start_ms=start_ms,
        )
        for error in errors
        for case in cases
    ]


# -- single-run execution (shared by the serial path and the workers) -------


class _RunTimeout(Exception):
    pass


@contextmanager
def _wall_clock_limit(seconds: Optional[float]):
    """Raise :class:`_RunTimeout` if the body runs longer than *seconds*.

    Uses ``SIGALRM``, which only works in a process's main thread on
    POSIX; elsewhere the limit is silently a no-op (the simulation's own
    ``observe_ms_max`` truncation still bounds well-behaved runs).
    """
    usable = (
        seconds is not None
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):
        raise _RunTimeout()

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _execute_one(
    spec: RunSpec,
    run_config,
    timeout_s: Optional[float],
    tracer: Optional[TraceBus] = None,
    metrics: Optional[MetricsRegistry] = None,
    snapshots: Optional[bool] = None,
) -> RunRecord:
    """Execute one spec on a freshly booted (or snapshot-restored) system.

    A timed-out run still yields exactly one record — the synthetic
    wedged record — which flows into the checkpoint and trace like any
    other, plus a ``run-timeout`` trace event marking the abort.
    """
    controller = CampaignController(
        injection_period_ms=spec.injection_period_ms,
        injection_start_ms=spec.injection_start_ms,
        run_config=run_config,
        tracer=tracer,
        metrics=metrics,
        target=spec.target,
        snapshots=snapshots,
    )
    error = spec.error_spec()
    case = spec.test_case()
    try:
        with _wall_clock_limit(timeout_s):
            record = controller.run_injection(error, case, spec.version)
    except _RunTimeout:
        record = controller.timeout_record(
            error, case, spec.version, timeout_ms=int(timeout_s * 1000)
        )
    return flatten_record(record)


def _run_chunk(payload) -> Tuple[List[RunRecord], Optional[dict]]:
    """Worker entry point: execute a chunk of specs, return their records.

    With tracing on, the chunk's events go to a private part file the
    dispatcher merges on completion (a retry rewrites the part file from
    scratch, so duplicates cannot survive).  With metrics on, a fresh
    per-chunk registry travels back as an additive snapshot.
    """
    specs, run_config, timeout_s, trace_part, metrics_enabled, snapshots = payload
    registry = MetricsRegistry() if metrics_enabled else None
    sink = JSONLSink(trace_part, mode="w") if trace_part is not None else None
    tracer = TraceBus([sink]) if sink is not None else None
    try:
        records = [
            _execute_one(spec, run_config, timeout_s, tracer, registry, snapshots)
            for spec in specs
        ]
    finally:
        if sink is not None:
            sink.close()
    return records, registry.snapshot() if registry is not None else None


# -- batch (vectorized) execution -------------------------------------------


def _batch_eligible(spec: RunSpec, target) -> bool:
    """Whether one spec can take a target's vectorized kernel path.

    The kernels implement exactly the default-configuration E1 shape:
    a bit-flip on a monitored RAM signal.  Anything else (E2's raw
    address errors, stack-area flips, byte-level bits >= 16) stays on
    the serial path, which handles every spec.
    """
    return (
        spec.signal is not None
        and spec.signal_bit is not None
        and 0 <= spec.signal_bit < 16
        and spec.area == "ram"
        and spec.signal in target.monitored_signals
    )


def _split_batchable(
    pending: Sequence[RunSpec], run_config
) -> Tuple[List[RunSpec], List[RunSpec]]:
    """Partition *pending* into (batchable, serial) spec lists, in order.

    A non-default *run_config* changes the simulated window/semantics in
    target-specific ways the kernels do not model, so it forces the
    whole campaign serial.
    """
    if run_config is not None:
        return [], list(pending)
    batchable: List[RunSpec] = []
    rest: List[RunSpec] = []
    supports: Dict[str, bool] = {}
    for spec in pending:
        if spec.target not in supports:
            supports[spec.target] = get_target(spec.target).supports_batch()
        if supports[spec.target] and _batch_eligible(spec, get_target(spec.target)):
            batchable.append(spec)
        else:
            rest.append(spec)
    return batchable, rest


def _record_batch_metrics(metrics: Optional[MetricsRegistry], result) -> None:
    """The aggregate half of ``CampaignController._record_metrics``.

    Batch kernels keep per-row aggregates rather than per-event
    :class:`DetectionEvent` streams, so the per-monitor counters and
    latency histograms remain a serial-path-only observability feature.
    """
    if metrics is None:
        return
    metrics.counter("runs_total").inc()
    if result.detected:
        metrics.counter("runs_detected_total").inc()
    if result.failed:
        metrics.counter("runs_failed_total").inc()
    if result.wedged:
        metrics.counter("runs_wedged_total").inc()
    metrics.counter("injections_total").inc(result.injection_count)
    metrics.counter("detections_total").inc(result.detection_count)
    first_injection = result.first_injection_ms
    if result.detected and (
        first_injection is None or result.first_detection_ms < first_injection
    ):
        metrics.counter("false_alarms_total").inc()
    latency = result.detection_latency_ms
    if latency is not None:
        metrics.histogram("detection_latency_ms").observe(latency)


def _execute_batch_group(
    group: Sequence[RunSpec], metrics: Optional[MetricsRegistry]
) -> List[RunRecord]:
    """Run one target's batchable specs through its vectorized kernel."""
    target = get_target(group[0].target)
    results = target.run_batch(list(group))
    records: List[RunRecord] = []
    for spec, result in zip(group, results):
        _record_batch_metrics(metrics, result)
        records.append(
            flatten_record(
                ExperimentRecord(
                    error=spec.error_spec(), version=spec.version, result=result
                )
            )
        )
    return records


# -- the engine -------------------------------------------------------------


def _multiprocessing_usable() -> bool:
    try:
        import multiprocessing

        multiprocessing.get_context()
    except (ImportError, OSError, NotImplementedError):
        return False
    return True


def _new_executor(workers: int) -> concurrent.futures.ProcessPoolExecutor:
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context("fork" if "fork" in methods else None)
    return concurrent.futures.ProcessPoolExecutor(max_workers=workers, mp_context=context)


def _chunked(specs: Sequence[RunSpec], size: int) -> List[Tuple[RunSpec, ...]]:
    return [tuple(specs[i : i + size]) for i in range(0, len(specs), size)]


def _default_chunk_size(pending: int, workers: int) -> int:
    # Small enough that the checkpoint advances steadily, stragglers
    # don't serialise the tail, and even a small campaign fans out over
    # every worker (at least two chunks per worker when the pending
    # count allows); large enough to amortise dispatch.  Capped at 8:
    # with warm snapshot caches a run is cheap, so finer-grained chunks
    # cost little and keep the pool busy to the end.
    if pending <= 0:
        return 1
    return max(1, min(8, pending // (workers * 2) or 1, -(-pending // (workers * 4))))


def _restore(
    checkpoint: Union[str, Path],
    resume: bool,
    spec_keys: Dict[SpecKey, int],
) -> Dict[SpecKey, RunRecord]:
    path = Path(checkpoint)
    if not path.exists() or path.stat().st_size == 0:
        return {}
    if not resume:
        raise ValueError(
            f"checkpoint {path} already exists; pass resume=True to continue "
            "it (or remove the file to start over)"
        )
    restored: Dict[SpecKey, RunRecord] = {}
    for record in load_checkpoint(path).records:
        key = canonical_key(record)
        if key in spec_keys:  # records from other configs/filters are ignored
            restored[key] = record
    return restored


def execute_specs(
    specs: Sequence[RunSpec],
    run_config=None,
    workers: int = 1,
    checkpoint: Optional[Union[str, Path]] = None,
    resume: bool = False,
    progress: Optional[ProgressHook] = None,
    timeout_s: Optional[float] = None,
    chunk_size: Optional[int] = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    trace: Optional[Union[str, Path, TraceBus]] = None,
    metrics: Optional[MetricsRegistry] = None,
    store=None,
    force: bool = False,
    snapshots: Optional[bool] = None,
    batch: bool = False,
) -> ResultSet:
    """Execute *specs*, serially or on a process pool; return the results.

    The returned :class:`ResultSet` is in spec-enumeration order whatever
    the execution order, so ``workers=N`` is record-for-record equivalent
    to ``workers=1``.  With *checkpoint* set, completed records are
    appended to that CSV as they arrive; with *resume* additionally set,
    specs whose records are already in the file are not re-run.

    *store* is an optional
    :class:`~repro.experiments.store.ResultStore`: specs whose records
    it already holds are restored instead of re-simulated (unless
    *force*), and every freshly executed record is added to it, so a
    repeated campaign with unchanged code executes zero new runs.
    *snapshots* opts in/out of warm-target snapshot reuse (``None``
    follows the ``REPRO_SNAPSHOTS`` default); with a pool, the parent
    pre-warms the snapshot cache for every distinct grid point before
    forking so workers inherit it instead of re-simulating prefixes.

    *trace* is either a JSONL file path (one event per line; appended to
    on resume, otherwise rewritten) or an already-wired
    :class:`~repro.obs.TraceBus` — the latter only for in-process serial
    execution, since a live bus cannot cross the process-pool boundary.
    *metrics* is a :class:`~repro.obs.MetricsRegistry` the campaign
    updates in place (worker registries are merged in as chunks finish).

    *batch* opts into the vectorized per-chunk execution strategy:
    pending specs a target's batch kernel can express (default-config
    bit-flips on monitored RAM signals; see :mod:`repro.targets.batch`)
    run as one ``Target.run_batch`` call per target, the rest stay
    serial.  The serial path remains the oracle — batch results are
    pinned identical by the equivalence suite — and tracing forces the
    serial path (with a warning), keeping trace artifacts like the
    committed golden trace byte-stable.
    """
    if workers < 1:
        raise ValueError(f"workers must be at least 1, got {workers}")
    if max_attempts < 1:
        raise ValueError(f"max_attempts must be at least 1, got {max_attempts}")
    specs = list(specs)
    keys = {spec.key: index for index, spec in enumerate(specs)}
    if len(keys) != len(specs):
        raise ValueError("duplicate run specs: (version, error, case) must be unique")

    by_key: Dict[SpecKey, RunRecord] = {}
    if checkpoint is not None:
        by_key.update(_restore(checkpoint, resume, keys))
    pending = [spec for spec in specs if spec.key not in by_key]
    restored = len(by_key)

    store_hits: List[RunRecord] = []
    if store is not None and not force and pending:
        remaining = []
        for spec in pending:
            record = store.lookup(spec)
            if record is None:
                remaining.append(spec)
            else:
                store_hits.append(record)
        pending = remaining
        if store_hits:
            if checkpoint is not None:
                append_records(checkpoint, store_hits)
            for record in store_hits:
                by_key[canonical_key(record)] = record

    total = len(specs)
    done = total - len(pending)
    if progress is not None and done:
        progress(done, total)

    batch_specs: List[RunSpec] = []
    if batch and pending:
        if trace is not None:
            warnings.warn(
                "batch execution is incompatible with run tracing (traces are "
                "a serial-path artifact); running every spec serially",
                RuntimeWarning,
                stacklevel=2,
            )
        else:
            batch_specs, pending = _split_batchable(pending, run_config)

    use_pool = workers > 1 and pending and _multiprocessing_usable()
    tracer: Optional[TraceBus] = None
    trace_sink: Optional[JSONLSink] = None
    trace_path: Optional[Path] = None
    if isinstance(trace, TraceBus):
        if use_pool:
            raise ValueError(
                "a TraceBus instance cannot cross the process-pool boundary; "
                "pass a trace file path when workers > 1"
            )
        tracer = trace
    elif trace is not None:
        trace_path = Path(trace)
        trace_sink = JSONLSink(trace_path, mode="a" if resume else "w")
        tracer = TraceBus([trace_sink])

    def _complete(chunk_records: Sequence[RunRecord]) -> None:
        nonlocal done
        if checkpoint is not None:
            append_records(checkpoint, chunk_records)
        if store is not None:
            store.add(chunk_records)
        for record in chunk_records:
            by_key[canonical_key(record)] = record
        done += len(chunk_records)
        if progress is not None:
            progress(done, total)

    start = time.perf_counter()
    if tracer is not None:
        targets = sorted({spec.target for spec in specs})
        tracer.emit(
            "campaign",
            "campaign-start",
            runs=total,
            pending=len(pending),
            workers=workers,
            target=targets[0] if len(targets) == 1 else targets,
        )
        if restored:
            tracer.emit("campaign", "resume-restored", count=restored)
        if store_hits:
            tracer.emit("campaign", "store-restored", count=len(store_hits))
    if metrics is not None and restored:
        metrics.counter("runs_restored_total").inc(restored)
    if metrics is not None and store_hits:
        metrics.counter("runs_store_hits_total").inc(len(store_hits))

    if use_pool:
        warmed = _prewarm_pool_snapshots(pending, run_config, snapshots)
        if warmed and tracer is not None:
            tracer.emit("campaign", "snapshot-prewarm", count=warmed)

    try:
        if batch_specs:
            groups: Dict[str, List[RunSpec]] = {}
            for spec in batch_specs:
                groups.setdefault(spec.target, []).append(spec)
            for group in groups.values():
                _complete(_execute_batch_group(group, metrics))
        if not use_pool:
            for spec in pending:
                _complete(
                    [_execute_one(spec, run_config, timeout_s, tracer, metrics, snapshots)]
                )
        else:
            _run_pool(
                pending,
                run_config,
                min(workers, len(pending)),
                timeout_s,
                chunk_size,
                max_attempts,
                _complete,
                tracer=tracer,
                trace_path=trace_path,
                trace_sink=trace_sink,
                metrics=metrics,
                snapshots=snapshots,
            )
        elapsed = time.perf_counter() - start
        executed = done - restored - len(store_hits)
        if metrics is not None:
            metrics.gauge("campaign_seconds").set(round(elapsed, 3))
            metrics.gauge("campaign_runs_per_sec").set(
                round(executed / elapsed, 3) if elapsed > 0 else 0.0
            )
        if tracer is not None:
            tracer.emit(
                "campaign",
                "campaign-end",
                runs=total,
                executed=executed,
                seconds=round(elapsed, 3),
            )
    finally:
        if trace_sink is not None:
            trace_sink.close()

    return ResultSet(by_key[spec.key] for spec in specs)


def _prewarm_pool_snapshots(
    pending: Sequence[RunSpec], run_config, snapshots: Optional[bool]
) -> int:
    """Warm the parent's snapshot cache before the pool forks.

    Forked workers inherit the parent's address space, so every distinct
    (target, version, case, prefix) snapshot built here is shared by all
    workers for free — without this, each worker re-simulates the same
    fault-free prefixes.  Returns how many grid points were warmed (0
    when snapshots are off or tracing makes the controller bypass them).
    """
    enabled = snapshots if snapshots is not None else snapshots_mod.snapshots_enabled_default()
    if not enabled:
        return 0
    warmed = 0
    seen = set()
    for spec in pending:
        point = (spec.target, spec.version, spec.mass_kg, spec.velocity_mps,
                 spec.injection_start_ms)
        if point in seen:
            continue
        seen.add(point)
        target = get_target(spec.target)
        if not target.supports_snapshots():
            continue
        if snapshots_mod.prewarm(
            target,
            spec.test_case(),
            spec.version,
            prefix_ms=spec.injection_start_ms,
            run_config=run_config,
        ):
            warmed += 1
    return warmed


def _run_pool(
    pending: Sequence[RunSpec],
    run_config,
    workers: int,
    timeout_s: Optional[float],
    chunk_size: Optional[int],
    max_attempts: int,
    complete: Callable[[Sequence[RunRecord]], None],
    tracer: Optional[TraceBus] = None,
    trace_path: Optional[Path] = None,
    trace_sink: Optional[JSONLSink] = None,
    metrics: Optional[MetricsRegistry] = None,
    snapshots: Optional[bool] = None,
) -> None:
    chunks = _chunked(pending, chunk_size or _default_chunk_size(len(pending), workers))
    attempts = {index: 0 for index in range(len(chunks))}

    def _part_path(index: int) -> Optional[str]:
        return f"{trace_path}.part{index}" if trace_path is not None else None

    def _payload(index: int):
        return (
            chunks[index],
            run_config,
            timeout_s,
            _part_path(index),
            metrics is not None,
            snapshots,
        )

    def _note_retry(index: int, exc: BaseException) -> None:
        if tracer is not None:
            tracer.emit(
                "campaign",
                "chunk-retry",
                chunk=index,
                attempt=attempts[index],
                error=repr(exc),
            )
        if metrics is not None:
            metrics.counter("chunk_retries_total").inc()

    def _merge_chunk_trace(index: int) -> None:
        """Fold the worker's part file into the main trace (checkpoint time)."""
        part = _part_path(index)
        if part is None:
            return
        path = Path(part)
        if path.exists():
            trace_sink.write_raw(path.read_text(encoding="utf-8"))
            trace_sink.flush()
            path.unlink()

    executor = _new_executor(workers)
    try:
        futures = {
            executor.submit(_run_chunk, _payload(index)): index
            for index in range(len(chunks))
        }
        while futures:
            finished, _ = concurrent.futures.wait(
                futures, return_when=concurrent.futures.FIRST_COMPLETED
            )
            for future in finished:
                index = futures.pop(future)
                try:
                    records, snapshot = future.result()
                except concurrent.futures.BrokenExecutor as exc:
                    # The pool itself died (a worker was killed): every
                    # outstanding future is void.  Rebuild the pool and
                    # resubmit, charging an attempt to the chunk at hand.
                    attempts[index] += 1
                    if attempts[index] >= max_attempts:
                        raise CampaignExecutionError(
                            f"chunk {index} ({len(chunks[index])} runs) failed "
                            f"{attempts[index]} times; giving up: {exc!r}"
                        ) from exc
                    _note_retry(index, exc)
                    outstanding = [index] + list(futures.values())
                    executor.shutdown(wait=False)
                    executor = _new_executor(workers)
                    futures = {
                        executor.submit(_run_chunk, _payload(j)): j
                        for j in outstanding
                    }
                    break
                except Exception as exc:
                    attempts[index] += 1
                    if attempts[index] >= max_attempts:
                        raise CampaignExecutionError(
                            f"chunk {index} ({len(chunks[index])} runs) failed "
                            f"{attempts[index]} times; giving up: {exc!r}"
                        ) from exc
                    _note_retry(index, exc)
                    futures[executor.submit(_run_chunk, _payload(index))] = index
                else:
                    complete(records)
                    _merge_chunk_trace(index)
                    if metrics is not None and snapshot is not None:
                        metrics.merge(snapshot)
    finally:
        executor.shutdown(wait=False)
