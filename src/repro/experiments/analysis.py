"""Post-hoc analyses over campaign results.

The Section-5.1 discussion explains coverage differences through bit
position (LSB errors hide inside liberal envelopes) and through the
failure/no-failure split.  These helpers compute those views from a
:class:`~repro.experiments.results.ResultSet` so they can be tabulated,
asserted on, or exported.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.results import ResultSet
from repro.stats.estimators import CoverageEstimate

__all__ = [
    "detection_by_bit",
    "detection_threshold_bit",
    "cross_detection_matrix",
    "failure_rate_by_signal",
]


def detection_by_bit(
    results: ResultSet,
    signal: str,
    version: str = "All",
) -> Dict[int, CoverageEstimate]:
    """P(d) per injected bit position for one signal (Section 5.1's view)."""
    by_bit: Dict[int, List] = {}
    for record in results.subset(signal=signal, version=version):
        if record.signal_bit is None:
            continue
        by_bit.setdefault(record.signal_bit, []).append(record)
    return {
        bit: CoverageEstimate(
            sum(1 for r in records if r.detected), len(records)
        )
        for bit, records in sorted(by_bit.items())
    }


def detection_threshold_bit(
    results: ResultSet,
    signal: str,
    version: str = "All",
) -> Optional[int]:
    """The lowest bit position from which detection is total upward.

    Returns ``None`` when no such threshold exists (e.g. nothing
    detected).  For a counter signal this is bit 0; for the continuous
    signals it sits where the flip magnitude first exceeds the envelope.
    """
    per_bit = detection_by_bit(results, signal, version)
    if not per_bit:
        return None
    threshold = None
    for bit in sorted(per_bit, reverse=True):
        estimate = per_bit[bit]
        if estimate.defined and estimate.nd == estimate.ne:
            threshold = bit
        else:
            break
    return threshold


def cross_detection_matrix(results: ResultSet) -> Dict[str, Dict[str, CoverageEstimate]]:
    """P(d) of each single-EA version against each signal's errors.

    The off-diagonal entries are Table 7's propagation structure: a
    mechanism detecting errors injected into *another* signal.
    """
    matrix: Dict[str, Dict[str, CoverageEstimate]] = {}
    versions = [v for v in results.versions if v != "All"]
    for signal in results.signals:
        row = {}
        for version in versions:
            triple = results.coverage(signal=signal, version=version)
            row[version] = triple.p_d
        matrix[signal] = row
    return matrix


def failure_rate_by_signal(
    results: ResultSet, version: str = "All"
) -> Dict[str, CoverageEstimate]:
    """Fraction of runs that ended in system failure, per injected signal."""
    rates = {}
    for signal in results.signals:
        records = results.subset(signal=signal, version=version)
        rates[signal] = CoverageEstimate(
            sum(1 for r in records if r.failed), len(records)
        )
    return rates
