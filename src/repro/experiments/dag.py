"""Campaigns expressed as a content-addressed task DAG.

:mod:`repro.experiments.parallel` executes a flat spec list;
this module re-expresses a campaign as the dependency graph it really
is, on the :mod:`repro.experiments.graph` runtime:

``prewarm`` nodes
    One per distinct ``(target, version, test case, prefix)`` grid
    point: warm the process-global snapshot cache (boot — and, with a
    positive ``injection_start_ms``, the fault-free prefix) exactly
    once before any run that needs it.  Side-effect nodes: never
    stored, executed only when a dependent run node executes.
``run`` nodes
    One per :class:`~repro.experiments.parallel.RunSpec`.  Inputs are
    the spec's fields plus the **context fingerprint** (SHA-256 over the
    target's simulation sources, the run configuration and the
    injection start — :func:`repro.experiments.store.context_fingerprint`),
    so editing fingerprinted code re-keys every run node while an
    unchanged campaign replays entirely from the node store.  Ready run
    nodes execute as one wave through the existing engine —
    serial loop, chunked process pool, or vectorized batch kernels —
    via a group runner wrapping
    :func:`~repro.experiments.parallel.execute_specs`.
``aggregate`` node
    Depends on every run node; its output is the canonical-order
    campaign CSV (byte-stable regardless of execution or shard order).
``tables`` node
    Depends on ``aggregate``; renders the paper-table artifact through
    a caller-supplied renderer (keyed by the renderer's code
    fingerprint so a table-layout change re-renders without
    re-simulating).

Sharding falls out of the content addresses: ``shard=(i, n)`` keeps
only the run nodes whose key lands in shard *i* of *n*
(:func:`~repro.experiments.graph.shard_of`), each shard writes a
private node store, :func:`~repro.experiments.graph.merge_stores`
unions them, and a final unsharded pass replays every run node from
cache — executing zero simulations — before computing aggregation.

Invariants carried over from the flat engine: record-for-record
equality with the legacy path whatever the worker count, and **a tracer
disables replay** (traced nodes execute, never replay), so trace
artifacts like the committed golden trace stay byte-identical.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.experiments.graph import (
    Graph,
    GraphStats,
    GroupRunner,
    Node,
    NodeStore,
    shard_of,
)
from repro.experiments.parallel import RunSpec, execute_specs
from repro.experiments.persistence import decode_row, encode_record, results_to_csv
from repro.experiments.results import ResultSet, RunRecord
from repro.experiments.store import context_fingerprint
from repro.targets import snapshot as snapshots_mod
from repro.targets.registry import get_target

__all__ = [
    "GraphCampaignResult",
    "build_campaign_graph",
    "run_campaign_graph",
    "run_node_name",
    "AGGREGATE_NODE",
    "TABLES_NODE",
]

AGGREGATE_NODE = "aggregate"
TABLES_NODE = "tables"

ProgressHook = Callable[[int, int], None]
TablesRenderer = Callable[[ResultSet], str]


def run_node_name(spec: RunSpec) -> str:
    """The stable node name of one run (mirrors the canonical run key)."""
    return (
        f"run/{spec.target}/{spec.version}|{spec.error_name}"
        f"|m{spec.mass_kg:g}|v{spec.velocity_mps:g}"
    )


def _prewarm_node_name(spec: RunSpec) -> str:
    return (
        f"prewarm/{spec.target}/{spec.version}"
        f"|m{spec.mass_kg:g}|v{spec.velocity_mps:g}|p{spec.injection_start_ms}"
    )


def _spec_inputs(spec: RunSpec, context: str) -> Dict[str, str]:
    """Every result-determining field of one run, as key material."""
    return {
        "experiment": spec.experiment,
        "version": spec.version,
        "error_name": spec.error_name,
        "address": str(spec.address),
        "bit": str(spec.bit),
        "area": spec.area,
        "signal": "" if spec.signal is None else spec.signal,
        "signal_bit": "" if spec.signal_bit is None else str(spec.signal_bit),
        "mass_kg": repr(spec.mass_kg),
        "velocity_mps": repr(spec.velocity_mps),
        "injection_period_ms": str(spec.injection_period_ms),
        "injection_start_ms": str(spec.injection_start_ms),
        "target": spec.target,
        "context": context,
    }


@dataclasses.dataclass
class GraphCampaignResult:
    """What one graph-campaign execution produced."""

    #: Records of the executed/replayed run nodes, in spec-enumeration
    #: order (shard runs carry only the shard's records).
    results: ResultSet
    stats: GraphStats
    #: The aggregate node's canonical-order campaign CSV (None on shard
    #: runs, which do not aggregate).
    aggregate_csv: Optional[str] = None
    #: The tables node's rendered artifact (None when no renderer).
    tables: Optional[str] = None
    #: ``(index, count)`` when this was a shard run.
    shard: Optional[Tuple[int, int]] = None


def build_campaign_graph(
    specs: Sequence[RunSpec],
    run_config: Any = None,
    snapshots: Optional[bool] = None,
    timeout_s: Optional[float] = None,
    tables_renderer: Optional[TablesRenderer] = None,
    tables_fingerprint: str = "",
) -> Graph:
    """The campaign DAG for *specs*: prewarm -> run -> aggregate -> tables.

    Node keys are fully determined here (content addresses over inputs
    and dependency keys); nothing is executed.  The single-spec ``run``
    callables route through :func:`execute_specs` so an individually
    executed node matches the engine bit-for-bit; bulk execution
    replaces them with a pooled group runner (see
    :func:`run_campaign_graph`).
    """
    specs = list(specs)
    graph = Graph()
    contexts: Dict[Tuple[str, int], str] = {}
    for spec in specs:
        ctx_key = (spec.target, spec.injection_start_ms)
        if ctx_key not in contexts:
            contexts[ctx_key] = context_fingerprint(
                get_target(spec.target),
                run_config,
                injection_start_ms=spec.injection_start_ms,
            )

    def _prewarm_runner(spec: RunSpec) -> Callable[[Mapping[str, Any]], Any]:
        def run(_deps: Mapping[str, Any]) -> Dict[str, Any]:
            enabled = (
                snapshots
                if snapshots is not None
                else snapshots_mod.snapshots_enabled_default()
            )
            target = get_target(spec.target)
            if not enabled or not target.supports_snapshots():
                return {"warmed": False}
            warmed = snapshots_mod.prewarm(
                target,
                spec.test_case(),
                spec.version,
                prefix_ms=spec.injection_start_ms,
                run_config=run_config,
            )
            return {"warmed": bool(warmed)}

        return run

    def _run_runner(spec: RunSpec) -> Callable[[Mapping[str, Any]], Any]:
        def run(_deps: Mapping[str, Any]) -> List[str]:
            results = execute_specs(
                [spec],
                run_config=run_config,
                timeout_s=timeout_s,
                snapshots=snapshots,
            )
            return encode_record(results.records[0])

        return run

    run_names: List[str] = []
    for spec in specs:
        prewarm_name = _prewarm_node_name(spec)
        context = contexts[(spec.target, spec.injection_start_ms)]
        if prewarm_name not in graph:
            graph.add(
                Node(
                    name=prewarm_name,
                    kind="prewarm",
                    run=_prewarm_runner(spec),
                    inputs={
                        "target": spec.target,
                        "version": spec.version,
                        "mass_kg": repr(spec.mass_kg),
                        "velocity_mps": repr(spec.velocity_mps),
                        "prefix_ms": str(spec.injection_start_ms),
                        "context": context,
                    },
                    cacheable=False,
                    payload=spec,
                )
            )
        name = run_node_name(spec)
        graph.add(
            Node(
                name=name,
                kind="run",
                run=_run_runner(spec),
                inputs=_spec_inputs(spec, context),
                deps=(prewarm_name,),
                payload=spec,
            )
        )
        run_names.append(name)

    def _aggregate(deps: Mapping[str, Any]) -> str:
        records = [decode_row(list(deps[name])) for name in run_names]
        return results_to_csv(ResultSet(records).sorted())

    graph.add(
        Node(
            name=AGGREGATE_NODE,
            kind="aggregate",
            run=_aggregate,
            inputs={
                "experiments": ",".join(sorted({s.experiment for s in specs})),
                "records": str(len(specs)),
            },
            deps=tuple(run_names),
        )
    )
    if tables_renderer is not None:
        def _tables(deps: Mapping[str, Any]) -> str:
            from repro.experiments.persistence import results_from_csv

            return tables_renderer(results_from_csv(deps[AGGREGATE_NODE]))

        graph.add(
            Node(
                name=TABLES_NODE,
                kind="tables",
                run=_tables,
                inputs={"renderer": tables_fingerprint},
                deps=(AGGREGATE_NODE,),
            )
        )
    return graph


def _parse_shard(shard: Optional[Union[str, Tuple[int, int]]]) -> Optional[Tuple[int, int]]:
    if shard is None:
        return None
    if isinstance(shard, str):
        try:
            index_text, _, count_text = shard.partition("/")
            parsed = (int(index_text), int(count_text))
        except ValueError:
            raise ValueError(
                f"shard must look like 'i/n' (e.g. 0/2), got {shard!r}"
            ) from None
        shard = parsed
    index, count = shard
    if count < 1:
        raise ValueError(f"shard count must be at least 1, got {count}")
    if not 0 <= index < count:
        raise ValueError(f"shard index must be in [0, {count}), got {index}")
    return (index, count)


def run_campaign_graph(
    specs: Sequence[RunSpec],
    run_config: Any = None,
    workers: int = 1,
    timeout_s: Optional[float] = None,
    trace: Any = None,
    metrics: Any = None,
    store: Optional[Union[str, Path, NodeStore]] = None,
    force: bool = False,
    snapshots: Optional[bool] = None,
    batch: bool = False,
    progress: Optional[ProgressHook] = None,
    shard: Optional[Union[str, Tuple[int, int]]] = None,
    tables_renderer: Optional[TablesRenderer] = None,
    tables_fingerprint: str = "",
) -> GraphCampaignResult:
    """Execute a campaign through the graph runtime.

    Record-for-record equivalent to ``execute_specs(specs, ...)``: the
    returned :attr:`~GraphCampaignResult.results` is in spec-enumeration
    order whatever executed, replayed, or ran on how many workers.

    *store* (a directory path or :class:`NodeStore`) enables per-node
    memoization: an unchanged campaign replays 100 % of its nodes from
    the store and simulates nothing.  *shard* — ``"i/n"`` or ``(i, n)``
    — restricts execution to the run nodes whose content address lands
    in shard *i*, skipping aggregation; shards may run on separate
    machines against private stores and be joined with
    :func:`~repro.experiments.graph.merge_stores`.

    With *trace* (a JSONL path or a live
    :class:`~repro.obs.TraceBus`), replay is disabled — every needed
    node executes, emitting ``node-start``/``node-done`` plus the usual
    run-lifecycle events — and execution is forced in-process serial,
    since one live bus cannot cross a process-pool boundary.
    """
    specs = list(specs)
    shard_spec = _parse_shard(shard)
    node_store = (
        store
        if (store is None or isinstance(store, NodeStore))
        else NodeStore(store)
    )
    graph = build_campaign_graph(
        specs,
        run_config=run_config,
        snapshots=snapshots,
        timeout_s=timeout_s,
        tables_renderer=tables_renderer,
        tables_fingerprint=tables_fingerprint,
    )

    tracer = None
    sink = None
    if trace is not None:
        from repro.obs.bus import TraceBus
        from repro.obs.sinks import JSONLSink

        if isinstance(trace, TraceBus):
            tracer = trace
        else:
            sink = JSONLSink(trace, mode="w")
            tracer = TraceBus([sink])

    spec_names = [run_node_name(spec) for spec in specs]
    if shard_spec is None:
        wanted = None
        wanted_names = spec_names
    else:
        index, count = shard_spec
        wanted_names = [
            name for name in spec_names if shard_of(graph.key(name), count) == index
        ]
        wanted = wanted_names

    total = len(wanted_names)
    done_box = [0]

    def _runner(
        nodes: Sequence[Node], _dep_outputs: Mapping[str, Mapping[str, Any]]
    ) -> Dict[str, Any]:
        wave_specs = [node.payload for node in nodes]
        def _inner_progress(done: int, _wave_total: int) -> None:
            if progress is not None:
                progress(done_box[0] + done, total)

        results = execute_specs(
            wave_specs,
            run_config=run_config,
            workers=1 if tracer is not None else workers,
            timeout_s=timeout_s,
            trace=tracer,
            metrics=metrics,
            snapshots=snapshots,
            batch=batch,
            progress=_inner_progress if progress is not None else None,
        )
        done_box[0] += len(wave_specs)
        return {
            node.name: encode_record(record)
            for node, record in zip(nodes, results.records)
        }

    runners: Dict[str, GroupRunner] = {"run": _runner}
    stats = GraphStats()
    try:
        outputs = graph.execute(
            store=node_store,
            wanted=wanted,
            force=force,
            tracer=tracer,
            metrics=metrics,
            runners=runners,
            stats=stats,
        )
    finally:
        if sink is not None:
            sink.close()

    cached_runs = stats.by_kind.get("run", {}).get("cached", 0)
    if progress is not None and cached_runs:
        progress(total, total)
    if metrics is not None:
        rate = stats.hit_rate
        if rate is not None:
            metrics.gauge("graph_cache_hit_rate").set(round(rate, 4))

    records: List[RunRecord] = [
        decode_row(list(outputs[name])) for name in wanted_names
    ]
    return GraphCampaignResult(
        results=ResultSet(records),
        stats=stats,
        aggregate_csv=outputs.get(AGGREGATE_NODE),
        tables=outputs.get(TABLES_NODE),
        shard=shard_spec,
    )
