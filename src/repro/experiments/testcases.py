"""Test cases: the incoming aircraft of the evaluation (Section 3.4).

*"For each error in the error set, the system was subjected to 25 test
cases, i.e. incoming aircraft, with velocity ranging uniformly from
40 m/s to 70 m/s, and mass ranging uniformly from 8000 kg to 20000 kg."*

The reproduction realises this as the 5 x 5 grid spanning the same
envelope.  Scaled-down campaigns select an evenly spread subset of the
grid so every mass/velocity regime stays represented.
"""

from __future__ import annotations

from typing import List

from repro.targets.base import TestCase

__all__ = [
    "VELOCITY_RANGE_MPS",
    "MASS_RANGE_KG",
    "make_test_cases",
    "select_spread",
]

VELOCITY_RANGE_MPS = (40.0, 70.0)
MASS_RANGE_KG = (8000.0, 20000.0)


def _linspace(lo: float, hi: float, n: int) -> List[float]:
    if n == 1:
        return [(lo + hi) / 2.0]
    step = (hi - lo) / (n - 1)
    return [lo + step * i for i in range(n)]


def make_test_cases(n_masses: int = 5, n_velocities: int = 5) -> List[TestCase]:
    """The evaluation grid: ``n_masses x n_velocities`` aircraft.

    The default 5 x 5 grid gives the paper's 25 test cases per error.
    """
    if n_masses < 1 or n_velocities < 1:
        raise ValueError("grid dimensions must be at least 1")
    cases = []
    for mass in _linspace(*MASS_RANGE_KG, n_masses):
        for velocity in _linspace(*VELOCITY_RANGE_MPS, n_velocities):
            cases.append(TestCase(mass_kg=mass, velocity_mps=velocity))
    return cases


def select_spread(cases: List[TestCase], count: int) -> List[TestCase]:
    """Pick *count* cases evenly spread over the list (deterministic).

    Used by scaled-down campaigns: a stride through the mass-major grid
    keeps both axes represented.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if count >= len(cases):
        return list(cases)
    # Offset by a golden-ratio-ish stride so consecutive counts pick
    # different (mass, velocity) combinations rather than one corner.
    picked = []
    stride = len(cases) / count
    offset = stride / 2.0
    for index in range(count):
        picked.append(cases[int(offset + index * stride) % len(cases)])
    return picked
