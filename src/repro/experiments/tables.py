"""Renderers for the paper's result tables.

Each function returns the table as a string in the layout of the paper:

* Table 6 — the composition of error set E1;
* Table 7 — detection probabilities (%) with 95 % confidence intervals,
  per signal x mechanism version, three measures per signal;
* Table 8 — detection latencies (ms), min/average/max, per signal x
  version, over all detected errors;
* Table 9 — E2 results per memory area: the three coverage measures and
  the latency summaries for all errors and for failure-causing errors.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

from repro.arrestor.instrumentation import EA_BY_SIGNAL, EA_IDS
from repro.arrestor.signals_map import MONITORED_SIGNALS
from repro.experiments.campaign import E1_VERSIONS
from repro.experiments.results import ResultSet
from repro.injection.errors import E1_ERRORS_PER_SIGNAL, ErrorSpec

__all__ = ["render_table6", "render_table7", "render_table8", "render_table9"]


def _format_row(cells: Sequence[str], widths: Sequence[int]) -> str:
    return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))


def _layout(rows: List[List[str]]) -> str:
    widths = [max(len(row[col]) for row in rows) for col in range(len(rows[0]))]
    return "\n".join(_format_row(row, widths) for row in rows)


def render_table6(
    errors: Sequence[ErrorSpec],
    cases_per_error: int,
    ea_by_signal: Optional[Mapping[str, str]] = None,
) -> str:
    """Table 6: the distribution of errors in the error set E1.

    *ea_by_signal* maps each signal to the assertion label shown in the
    second column; the default is the arrestor's mapping.  Signals appear
    in error-set order, so any target's E1 set renders correctly.
    """
    if ea_by_signal is None:
        ea_by_signal = EA_BY_SIGNAL
    rows = [["Signal", "Executable assertion", "# errors (ns)", "Error numbers", "# injections"]]
    signals: List[str] = []
    for error in errors:
        if error.signal is not None and error.signal not in signals:
            signals.append(error.signal)
    by_signal = {signal: [e for e in errors if e.signal == signal] for signal in signals}
    total = 0
    for signal in signals:
        errs = by_signal[signal]
        if not errs:
            continue
        numbers = f"{errs[0].name}-{errs[-1].name}"
        rows.append(
            [
                signal,
                ea_by_signal.get(signal, "-"),
                str(len(errs)),
                numbers,
                str(len(errs) * cases_per_error),
            ]
        )
        total += len(errs)
    rows.append(["Total", "-", str(total), "-", str(total * cases_per_error)])
    return _layout(rows)


_MEASURES = ("P(d)", "P(d|fail)", "P(d|no fail)")


def render_table7(
    results: ResultSet,
    versions: Sequence[str] = E1_VERSIONS,
    signals: Optional[Sequence[str]] = None,
) -> str:
    """Table 7: error detection probabilities (%) with 95 % intervals.

    Empty cells mean no detection was registered for that combination,
    and — per the paper's caption — probabilities of exactly 100.0 print
    without a confidence interval.  *signals* selects the row axis
    (default: the arrestor's seven monitored signals).
    """
    if signals is None:
        signals = MONITORED_SIGNALS
    header = ["Signal", "Measure"] + list(versions)
    rows = [header]
    for signal in list(signals) + ["Total"]:
        sig_filter = None if signal == "Total" else signal
        for measure in _MEASURES:
            row = [signal if measure == "P(d)" else "", measure]
            for version in versions:
                triple = results.coverage(signal=sig_filter, version=version)
                estimate = {
                    "P(d)": triple.p_d,
                    "P(d|fail)": triple.p_d_fail,
                    "P(d|no fail)": triple.p_d_no_fail,
                }[measure]
                if not estimate.defined:
                    row.append("-")
                elif estimate.nd == 0:
                    row.append("")  # empty cell: no detection registered
                else:
                    row.append(estimate.format())
            rows.append(row)
    return _layout(rows)


_LATENCY_ROWS = ("Min", "Average", "Max")


def render_table8(
    results: ResultSet,
    versions: Sequence[str] = E1_VERSIONS,
    signals: Optional[Sequence[str]] = None,
) -> str:
    """Table 8: error detection latencies for all detected errors (ms)."""
    if signals is None:
        signals = MONITORED_SIGNALS
    header = ["Signal", "Latency"] + list(versions)
    rows = [header]
    for signal in list(signals) + ["Total"]:
        sig_filter = None if signal == "Total" else signal
        for which in _LATENCY_ROWS:
            row = [signal if which == "Min" else "", which]
            for version in versions:
                summary = results.latency(signal=sig_filter, version=version)
                if not summary.defined:
                    row.append("")
                else:
                    value = {
                        "Min": summary.minimum,
                        "Average": summary.average,
                        "Max": summary.maximum,
                    }[which]
                    row.append(f"{value:.0f}")
            rows.append(row)
    return _layout(rows)


def render_table9(results: ResultSet) -> str:
    """Table 9: results for error set E2, by memory area."""
    rows = [
        [
            "Area",
            "Measure",
            "Detection probability",
            "Latency (all)",
            "Latency (failures)",
        ]
    ]
    for area_label, area in (("RAM", "ram"), ("Stack", "stack"), ("Total", None)):
        triple = results.coverage(area=area)
        lat_all = results.latency(area=area)
        lat_fail = results.latency(area=area, failures_only=True)
        for measure in _MEASURES:
            estimate = {
                "P(d)": triple.p_d,
                "P(d|fail)": triple.p_d_fail,
                "P(d|no fail)": triple.p_d_no_fail,
            }[measure]
            rows.append(
                [
                    area_label if measure == "P(d)" else "",
                    measure,
                    estimate.format() if estimate.defined else "-",
                    lat_all.format() if measure == "P(d)" else "",
                    lat_fail.format() if measure == "P(d)" else "",
                ]
            )
    return _layout(rows)
