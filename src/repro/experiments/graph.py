"""A small deterministic task-graph runtime with content-addressed memoization.

The paper's evaluation is a dependency graph — boot, fault-free
reference run, the injected-run grid, aggregation, the Table-7/8/9
artifacts — and :mod:`repro.experiments.dag` expresses campaigns that
way.  This module is the underlying runtime, deliberately generic and
free of simulation imports:

* :class:`Node` — one unit of work: a ``kind`` (its taxonomy group), a
  mapping of **input strings** (everything that determines its output),
  the names of its dependency nodes, and a ``run`` callable receiving
  the dependencies' outputs.
* :class:`Graph` — nodes wired by name, topologically scheduled.  Every
  node has a **content address**: SHA-256 over its kind, its sorted
  inputs and its dependencies' keys, so a key transitively covers the
  whole upstream subgraph.  Flip one input anywhere and exactly the
  downstream subtree re-keys.
* :class:`NodeStore` — a file-backed map from node key to completion
  record (descriptor + output payload), written atomically via temp
  file + rename.  A node whose key is stored **replays** instead of
  executing; an executed node's output is stored for the next session.
  Stores union with :func:`merge_stores` (descriptor-verified), which
  is what makes multi-machine sharding work: partition the grid by node
  key, run each shard against a private store, merge, and a final pass
  replays entirely from cache.

Scheduling is deterministic: nodes execute in topological order with
ties broken by insertion order, and nodes of the same ``kind`` that are
ready together can be handed to a **group runner** (the campaign layer
uses this to fan the injected-run grid onto the existing worker pool).

Replay is disabled whenever a tracer is attached — a trace is an
execution artifact, so traced nodes execute, never replay — and
per-node lifecycle is published as ``node-start`` / ``node-cached`` /
``node-done`` trace events plus per-kind counters on the metrics
registry.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

__all__ = [
    "Node",
    "Graph",
    "GraphStats",
    "NodeStore",
    "StoreMergeError",
    "merge_stores",
    "shard_of",
]

#: A group runner: receives the ready nodes of one kind plus each node's
#: dependency outputs, returns ``{node name: output}`` for all of them.
GroupRunner = Callable[[Sequence["Node"], Mapping[str, Mapping[str, Any]]], Mapping[str, Any]]


@dataclasses.dataclass(frozen=True)
class Node:
    """One unit of work in a campaign graph.

    ``inputs`` must carry *every* value that determines the output (the
    campaign layer folds the code/config context fingerprint in here);
    the content address is derived from them plus the dependency keys.
    ``run`` receives ``{dep name: dep output}`` and returns the output,
    which must be JSON-serialisable when the node is ``cacheable``.
    ``payload`` is free-form execution context (e.g. the
    :class:`~repro.experiments.parallel.RunSpec` a run node executes);
    it never enters the key.  Non-cacheable nodes model side effects
    (snapshot prewarm): they are never stored and execute only when a
    downstream node executes.
    """

    name: str
    kind: str
    run: Callable[[Mapping[str, Any]], Any]
    inputs: Mapping[str, str] = dataclasses.field(default_factory=dict)
    deps: Tuple[str, ...] = ()
    cacheable: bool = True
    payload: Any = None


@dataclasses.dataclass
class GraphStats:
    """Per-execution accounting (also broken down per node kind)."""

    executed: int = 0
    cached: int = 0
    skipped: int = 0
    mismatches: int = 0
    by_kind: Dict[str, Dict[str, int]] = dataclasses.field(default_factory=dict)

    def note(self, kind: str, outcome: str) -> None:
        setattr(self, outcome, getattr(self, outcome) + 1)
        bucket = self.by_kind.setdefault(
            kind, {"executed": 0, "cached": 0, "skipped": 0}
        )
        if outcome in bucket:
            bucket[outcome] += 1

    @property
    def hit_rate(self) -> Optional[float]:
        """Cache hit rate over the nodes that needed an output."""
        total = self.executed + self.cached
        return self.cached / total if total else None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "executed": self.executed,
            "cached": self.cached,
            "skipped": self.skipped,
            "mismatches": self.mismatches,
            "hit_rate": self.hit_rate,
            "by_kind": {kind: dict(counts) for kind, counts in self.by_kind.items()},
        }


class StoreMergeError(RuntimeError):
    """Two stores disagree about the completion record of one node key."""


class NodeStore:
    """File-backed, content-addressed node completion records.

    One JSON file per completed node under ``<root>/nodes/``, named by
    the node's key.  Each file carries the node's **descriptor** (name,
    kind, inputs) next to its output, so lookups verify the stored
    record describes the same work before replaying it — a key
    collision or a foreign file is treated as a miss, never silently
    returned — and :func:`merge_stores` can refuse conflicting shards.

    Writes are atomic (temp file in the same directory + ``os.replace``)
    so concurrent same-directory writers — two shards sharing a store —
    can at worst duplicate a byte-identical record, never tear one.
    """

    SUBDIR = "nodes"

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.dir = self.root / self.SUBDIR

    def path_for(self, key: str) -> Path:
        return self.dir / f"{key}.json"

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_keys())

    def iter_keys(self) -> Iterable[str]:
        if not self.dir.is_dir():
            return
        for entry in sorted(self.dir.glob("*.json")):
            yield entry.stem

    def load(self, key: str) -> Optional[dict]:
        """The raw completion record for *key*, or ``None``.

        A torn or foreign file (interrupted write predating the atomic
        path, hand-edited store) reads as a miss rather than an error —
        the node simply re-executes.
        """
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            record = json.loads(text)
        except ValueError:
            return None
        return record if isinstance(record, dict) else None

    def get(self, node: Node, key: str) -> Tuple[str, Any]:
        """``(status, output)`` for *node* at *key*, descriptor-verified.

        *status* is ``"hit"``, ``"miss"`` (no record), or ``"mismatch"``
        (a record exists but describes different work — key collision or
        foreign file); only a hit carries an output.
        """
        record = self.load(key)
        if record is None:
            return "miss", None
        if (
            record.get("kind") != node.kind
            or record.get("inputs") != dict(node.inputs)
        ):
            return "mismatch", None
        return "hit", record.get("output")

    def put(self, node: Node, key: str, output: Any) -> Path:
        """Persist *node*'s completion record atomically; returns its path."""
        self.dir.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        record = {
            "key": key,
            "name": node.name,
            "kind": node.kind,
            "inputs": dict(node.inputs),
            "deps": list(node.deps),
            "output": output,
        }
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{key[:16]}.", suffix=".tmp", dir=self.dir
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle, sort_keys=True, separators=(",", ":"))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path


def merge_stores(
    dest: Union[str, Path, NodeStore],
    sources: Sequence[Union[str, Path, NodeStore]],
) -> Tuple[int, int]:
    """Union *sources* into *dest*; returns ``(merged, already_present)``.

    The shard-merge protocol: every source completion record is copied
    into *dest* unless *dest* (or an earlier source) already holds that
    key, in which case the two records' descriptors **and outputs** must
    agree byte-for-byte — a disagreement means the shards were produced
    by different code or configurations and raising
    :class:`StoreMergeError` beats silently preferring one of them.
    """
    dest_store = dest if isinstance(dest, NodeStore) else NodeStore(dest)
    merged = present = 0
    for source in sources:
        src_store = source if isinstance(source, NodeStore) else NodeStore(source)
        for key in src_store.iter_keys():
            record = src_store.load(key)
            if record is None:  # torn source file: nothing to merge
                continue
            existing = dest_store.load(key)
            if existing is not None:
                if existing != record:
                    raise StoreMergeError(
                        f"node {key} differs between {dest_store.root} and "
                        f"{src_store.root}: refusing to merge stores produced "
                        "by different code or configurations"
                    )
                present += 1
                continue
            dest_store.dir.mkdir(parents=True, exist_ok=True)
            # Re-serialise through put-equivalent atomic write.
            fd, tmp_name = tempfile.mkstemp(
                prefix=f".{key[:16]}.", suffix=".tmp", dir=dest_store.dir
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(record, handle, sort_keys=True, separators=(",", ":"))
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp_name, dest_store.path_for(key))
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
            merged += 1
    return merged, present


def shard_of(key: str, shards: int) -> int:
    """Deterministic shard index of a node key (uniform over hex keys)."""
    if shards < 1:
        raise ValueError(f"shards must be at least 1, got {shards}")
    return int(key[:16], 16) % shards


class GraphError(ValueError):
    """Malformed graph: unknown dependency, duplicate node, or a cycle."""


class Graph:
    """Nodes wired by name; deterministic topological execution."""

    def __init__(self) -> None:
        self._nodes: "Dict[str, Node]" = {}
        self._keys: Dict[str, str] = {}

    # -- construction --------------------------------------------------------

    def add(self, node: Node) -> Node:
        if node.name in self._nodes:
            raise GraphError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        self._keys.clear()
        return node

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, name: str) -> Node:
        return self._nodes[name]

    def nodes(self) -> List[Node]:
        return list(self._nodes.values())

    # -- ordering and keys ---------------------------------------------------

    def topo_order(self) -> List[str]:
        """Dependencies before dependents; insertion order breaks ties."""
        order: List[str] = []
        state: Dict[str, int] = {}  # 0 = visiting, 1 = done

        def visit(name: str, chain: Tuple[str, ...]) -> None:
            mark = state.get(name)
            if mark == 1:
                return
            if mark == 0:
                cycle = " -> ".join(chain + (name,))
                raise GraphError(f"dependency cycle: {cycle}")
            node = self._nodes.get(name)
            if node is None:
                raise GraphError(f"unknown dependency {name!r} (from {chain[-1]!r})")
            state[name] = 0
            for dep in node.deps:
                visit(dep, chain + (name,))
            state[name] = 1
            order.append(name)

        for name in self._nodes:
            visit(name, ())
        return order

    def key(self, name: str) -> str:
        """The content address of one node (memoized per graph build).

        SHA-256 over the node's kind, its sorted input items and its
        dependencies' keys — upstream changes therefore re-key every
        downstream node, which is exactly the invalidation rule.
        """
        cached = self._keys.get(name)
        if cached is not None:
            return cached
        node = self._nodes[name]
        digest = hashlib.sha256()
        digest.update(b"node\0")
        digest.update(node.kind.encode("utf-8"))
        digest.update(b"\0")
        digest.update(
            json.dumps(dict(node.inputs), sort_keys=True, separators=(",", ":")).encode(
                "utf-8"
            )
        )
        for dep in node.deps:
            digest.update(b"\0")
            digest.update(self.key(dep).encode("utf-8"))
        key = digest.hexdigest()
        self._keys[name] = key
        return key

    def keys(self) -> Dict[str, str]:
        """Every node's content address (computed without executing)."""
        return {name: self.key(name) for name in self.topo_order()}

    # -- execution -----------------------------------------------------------

    def execute(
        self,
        store: Optional[NodeStore] = None,
        wanted: Optional[Iterable[str]] = None,
        force: bool = False,
        tracer: Any = None,
        metrics: Any = None,
        runners: Optional[Mapping[str, GroupRunner]] = None,
        stats: Optional[GraphStats] = None,
    ) -> Dict[str, Any]:
        """Execute (or replay) the graph; returns ``{name: output}``.

        *wanted* restricts the goal set (a shard executes only its run
        nodes); dependencies of wanted nodes are pulled in as needed.
        With a *store*, cacheable nodes whose key is stored **replay**
        — unless *force*, or a *tracer* is attached (traces are
        execution artifacts: a traced graph executes every needed node
        and still refreshes the store).  Non-cacheable nodes execute
        only when some dependent executes.  *runners* maps a node kind
        to a group runner executing all simultaneously ready nodes of
        that kind in one call (the campaign layer's pool dispatch);
        kinds without a runner execute their nodes' ``run`` callables
        one by one, in topological order.
        """
        order = self.topo_order()
        position = {name: index for index, name in enumerate(order)}
        goal: Set[str] = set(order) if wanted is None else set(wanted)
        for name in goal:
            if name not in self._nodes:
                raise GraphError(f"unknown wanted node {name!r}")
        stats = stats if stats is not None else GraphStats()
        replay_ok = store is not None and not force and tracer is None

        # Plan, dependents before dependencies: a node is *needed* when
        # it is a goal or feeds a pending dependent; it is *pending*
        # (must execute) when it is needed and cannot replay from store.
        dependents: Dict[str, List[str]] = {name: [] for name in order}
        for name in order:
            for dep in self._nodes[name].deps:
                dependents[dep].append(name)
        explicit: Set[str] = set() if wanted is None else set(wanted)
        needed: Set[str] = set()
        pending: Set[str] = set()
        cached_output: Dict[str, Any] = {}
        for name in reversed(order):
            node = self._nodes[name]
            feeds_pending = any(
                dependent in pending for dependent in dependents[name]
            )
            if not node.cacheable:
                # Side-effect nodes have no storable output: they run
                # only for an executing dependent (or when explicitly
                # wanted), never to satisfy a replayed one.
                if name in explicit or feeds_pending:
                    needed.add(name)
                    pending.add(name)
                continue
            if not (name in goal or feeds_pending):
                continue
            needed.add(name)
            if replay_ok:
                status, output = store.get(node, self.key(name))
                if status == "hit":
                    cached_output[name] = output
                    continue
                if status == "mismatch":
                    stats.mismatches += 1
            pending.add(name)

        outputs: Dict[str, Any] = {}
        for name, output in cached_output.items():
            node = self._nodes[name]
            stats.note(node.kind, "cached")
            if metrics is not None:
                metrics.counter("graph_nodes_cached_total", kind=node.kind).inc()
            outputs[name] = output
        for name in order:
            if name not in needed:
                stats.note(self._nodes[name].kind, "skipped")

        def _dep_outputs(node: Node) -> Dict[str, Any]:
            return {dep: outputs.get(dep) for dep in node.deps}

        def _finish(node: Node, key: str, output: Any) -> None:
            outputs[node.name] = output
            stats.note(node.kind, "executed")
            if node.cacheable and store is not None:
                store.put(node, key, output)
            if metrics is not None:
                metrics.counter("graph_nodes_executed_total", kind=node.kind).inc()
            if tracer is not None:
                tracer.emit("campaign", "node-done", node=node.name, node_kind=node.kind)

        # Execute in topological waves: ready pending nodes of one kind
        # go to that kind's group runner together, everything else runs
        # one node at a time.
        remaining = [name for name in order if name in pending]
        completed: Set[str] = set(cached_output)
        if tracer is not None:
            for name in sorted(cached_output, key=position.__getitem__):
                node = self._nodes[name]
                tracer.emit("campaign", "node-cached", node=name, node_kind=node.kind)
        while remaining:
            ready = [
                name
                for name in remaining
                if all(
                    dep in completed or dep not in pending
                    for dep in self._nodes[name].deps
                )
            ]
            if not ready:  # cannot happen on an acyclic graph
                raise GraphError(f"scheduling deadlock among {remaining!r}")
            kind = self._nodes[ready[0]].kind
            wave = [name for name in ready if self._nodes[name].kind == kind]
            nodes = [self._nodes[name] for name in wave]
            runner = (runners or {}).get(kind)
            if tracer is not None:
                for node in nodes:
                    tracer.emit("campaign", "node-start", node=node.name, node_kind=kind)
            if runner is not None:
                produced = runner(
                    nodes, {node.name: _dep_outputs(node) for node in nodes}
                )
                for node in nodes:
                    if node.name not in produced:
                        raise GraphError(
                            f"group runner for kind {kind!r} returned no output "
                            f"for node {node.name!r}"
                        )
                    _finish(node, self.key(node.name), produced[node.name])
            else:
                for node in nodes:
                    _finish(node, self.key(node.name), node.run(_dep_outputs(node)))
            completed.update(wave)
            remaining = [name for name in remaining if name not in completed]
        return outputs
