"""Cross-campaign regression diff: ``python -m repro.experiments diff A B``.

Compares the per-signal detection probabilities of two captured
campaigns — result-store directories, node-store directories, or saved
campaign CSVs, in any combination — and reports each signal's ``P(d)``
delta with Wilson 95 % confidence intervals
(:func:`repro.stats.wilson_interval`).  A delta is **significant** when
the two intervals are disjoint, and a **regression** when the newer
side's detection probability is significantly lower; the CLI exits
non-zero on regressions, so the command can gate CI between PRs.

The Wilson interval (not the paper's normal approximation) is used
because campaign signals routinely sit at exactly 100 % detection,
where the normal interval collapses to zero width and would flag every
1-run fluctuation as significant.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.experiments.persistence import decode_row, load_checkpoint
from repro.experiments.results import ResultSet, RunRecord
from repro.stats import wilson_interval

__all__ = ["SignalDelta", "load_records", "diff_results", "render_diff"]


def load_records(path: Union[str, Path]) -> ResultSet:
    """Every run record captured under *path*, pooled.

    Accepts a campaign CSV (``--save``/checkpoint format), a result-store
    directory (one context CSV per fingerprint), or a node-store
    directory (per-node completion records; ``run`` nodes carry one
    encoded record each).
    """
    from repro.experiments.graph import NodeStore

    path = Path(path)
    records: List[RunRecord] = []
    if path.is_file():
        records.extend(load_checkpoint(path).records)
        return ResultSet(records)
    if not path.is_dir():
        raise FileNotFoundError(f"no store or CSV at {path}")
    node_store = NodeStore(path)
    if node_store.dir.is_dir():
        for key in node_store.iter_keys():
            record = node_store.load(key)
            if record is None or record.get("kind") != "run":
                continue
            output = record.get("output")
            if isinstance(output, list):
                try:
                    records.append(decode_row([str(cell) for cell in output]))
                except ValueError:
                    continue
        return ResultSet(records)
    csv_files = sorted(path.glob("*.csv"))
    if not csv_files:
        raise FileNotFoundError(
            f"{path} holds neither node records ({NodeStore.SUBDIR}/) nor "
            "context CSVs"
        )
    for csv_file in csv_files:
        records.extend(load_checkpoint(csv_file, lenient=True).records)
    return ResultSet(records)


@dataclasses.dataclass(frozen=True)
class SignalDelta:
    """One signal's detection-probability movement between two campaigns."""

    signal: str
    detected_a: int
    runs_a: int
    detected_b: int
    runs_b: int
    #: Wilson 95 % CIs in percent, ``(lower, upper)``.
    interval_a: Tuple[float, float]
    interval_b: Tuple[float, float]

    @property
    def p_a(self) -> float:
        return 100.0 * self.detected_a / self.runs_a

    @property
    def p_b(self) -> float:
        return 100.0 * self.detected_b / self.runs_b

    @property
    def delta(self) -> float:
        return self.p_b - self.p_a

    @property
    def significant(self) -> bool:
        """The two Wilson intervals are disjoint."""
        return (
            self.interval_a[1] < self.interval_b[0]
            or self.interval_b[1] < self.interval_a[0]
        )

    @property
    def regression(self) -> bool:
        return self.significant and self.p_b < self.p_a

    def format(self) -> str:
        ci_a = f"[{self.interval_a[0]:.1f}, {self.interval_a[1]:.1f}]"
        ci_b = f"[{self.interval_b[0]:.1f}, {self.interval_b[1]:.1f}]"
        marker = "  REGRESSION" if self.regression else (
            "  improvement" if self.significant else ""
        )
        return (
            f"{self.signal:14s} "
            f"{self.p_a:6.1f}% {ci_a:>15s} ({self.detected_a}/{self.runs_a})"
            f"  ->  "
            f"{self.p_b:6.1f}% {ci_b:>15s} ({self.detected_b}/{self.runs_b})"
            f"  delta {self.delta:+.1f}pp{marker}"
        )


def _signal_label(record: RunRecord) -> str:
    """Grouping label: the injected signal, or the memory area for E2."""
    if record.signal is not None:
        return record.signal
    return f"area:{record.area}"


def diff_results(a: ResultSet, b: ResultSet) -> List[SignalDelta]:
    """Per-signal P(d) deltas between two pooled campaigns.

    Only signals present on both sides are compared (a signal that
    appears or disappears is a grid change, not a regression).
    """
    def tally(results: ResultSet) -> Dict[str, Tuple[int, int]]:
        counts: Dict[str, Tuple[int, int]] = {}
        for record in results.records:
            label = _signal_label(record)
            detected, runs = counts.get(label, (0, 0))
            counts[label] = (detected + (1 if record.detected else 0), runs + 1)
        return counts

    counts_a = tally(a)
    counts_b = tally(b)
    deltas: List[SignalDelta] = []
    for label in sorted(counts_a.keys() & counts_b.keys()):
        detected_a, runs_a = counts_a[label]
        detected_b, runs_b = counts_b[label]
        deltas.append(
            SignalDelta(
                signal=label,
                detected_a=detected_a,
                runs_a=runs_a,
                detected_b=detected_b,
                runs_b=runs_b,
                interval_a=wilson_interval(detected_a, runs_a),
                interval_b=wilson_interval(detected_b, runs_b),
            )
        )
    return deltas


def render_diff(
    deltas: List[SignalDelta], label_a: str = "A", label_b: str = "B"
) -> str:
    """Human-readable diff report (one line per signal + a verdict)."""
    lines = [f"P(d) per signal, {label_a} -> {label_b} (Wilson 95% CIs):"]
    if not deltas:
        lines.append("  (no common signals)")
        return "\n".join(lines)
    lines.extend(f"  {delta.format()}" for delta in deltas)
    regressions = [delta for delta in deltas if delta.regression]
    if regressions:
        lines.append(
            f"{len(regressions)} significant regression(s): "
            + ", ".join(delta.signal for delta in regressions)
        )
    else:
        lines.append("no significant regressions")
    return "\n".join(lines)
