"""Experiment harness: test cases, campaigns, result aggregation, tables."""

from repro.experiments.campaign import (
    E1_VERSIONS,
    CampaignConfig,
    run_e1_campaign,
    run_e2_campaign,
    run_reference_grid,
)
from repro.experiments.analysis import (
    cross_detection_matrix,
    detection_by_bit,
    detection_threshold_bit,
    failure_rate_by_signal,
)
from repro.experiments.parallel import (
    CampaignExecutionError,
    RunSpec,
    enumerate_e1_specs,
    enumerate_e2_specs,
    execute_specs,
)
from repro.experiments.persistence import (
    append_records,
    load_checkpoint,
    load_results,
    results_from_csv,
    results_to_csv,
    save_results,
)
from repro.experiments.plots import (
    svg_bit_detection_chart,
    svg_line_chart,
    write_svg,
)
from repro.experiments.propagation import (
    PropagationOutcome,
    PropagationStudy,
    compute_pem,
    measure_propagation,
    run_propagation_study,
)
from repro.experiments.results import (
    CoverageTriple,
    ResultSet,
    RunRecord,
    canonical_key,
    flatten_record,
)
from repro.experiments.tables import (
    render_table6,
    render_table7,
    render_table8,
    render_table9,
)
from repro.experiments.testcases import (
    MASS_RANGE_KG,
    VELOCITY_RANGE_MPS,
    make_test_cases,
    select_spread,
)

__all__ = [
    "E1_VERSIONS",
    "CampaignConfig",
    "run_e1_campaign",
    "run_e2_campaign",
    "run_reference_grid",
    "CoverageTriple",
    "ResultSet",
    "RunRecord",
    "canonical_key",
    "flatten_record",
    "CampaignExecutionError",
    "RunSpec",
    "enumerate_e1_specs",
    "enumerate_e2_specs",
    "execute_specs",
    "append_records",
    "load_checkpoint",
    "render_table6",
    "render_table7",
    "render_table8",
    "render_table9",
    "cross_detection_matrix",
    "detection_by_bit",
    "detection_threshold_bit",
    "failure_rate_by_signal",
    "load_results",
    "results_from_csv",
    "results_to_csv",
    "save_results",
    "svg_bit_detection_chart",
    "svg_line_chart",
    "write_svg",
    "PropagationOutcome",
    "PropagationStudy",
    "compute_pem",
    "measure_propagation",
    "run_propagation_study",
    "make_test_cases",
    "select_spread",
    "MASS_RANGE_KG",
    "VELOCITY_RANGE_MPS",
]
