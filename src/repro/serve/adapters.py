"""Ingestion adapters: newline-JSON streams into a fleet.

The wire protocol is one JSON object per line, mirroring the in-process
API one-to-one:

* ``{"op": "open", "session": "s1", "target": "tanklevel",
  "version": "All", "mass_kg": 10000, "velocity_mps": 60,
  "signal": "tick", "signal_bit": 3, "period_ms": 20, "start_ms": 0}``
* ``{"op": "frame", "session": "s1", "ticks": 20}`` — optional
  ``"flips": [[address, bit], ...]`` for ad-hoc corruptions (serial
  sessions only).
* ``{"op": "close", "session": "s1"}`` — replies with the final result.
* ``{"op": "stats"}`` — fleet counters.

Replies are JSON lines too: ``{"ok": true, ...}`` acknowledgements,
``{"event": "detection", ...}`` pushed as monitors fire, ``{"event":
"result", ...}`` on close, and ``{"ok": false, "error": "..."}`` for
protocol errors (the stream keeps going — one bad line doesn't kill
the connection).  The same handler serves stdin (``python -m
repro.serve --stdin``) and TCP connections (``--listen HOST:PORT``,
one fleet per connection).
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import sys
from typing import AsyncIterable, Callable, Iterable, Optional

from repro.serve.fleet import Fleet, FleetConfig
from repro.serve.session import Frame, ServeError, ServeEvent, SessionSpec

__all__ = ["serve_lines", "iter_lines", "serve_stdin", "serve_socket"]

_SPEC_FIELDS = {field.name for field in dataclasses.fields(SessionSpec)}


def _spec_from(message: dict) -> SessionSpec:
    kwargs = {
        key: value
        for key, value in message.items()
        if key in _SPEC_FIELDS and value is not None
    }
    kwargs["session_id"] = str(
        message.get("session") or message.get("session_id") or ""
    )
    return SessionSpec(**kwargs)


def _result_line(outcome) -> dict:
    result = outcome.result
    return {
        "event": "result",
        "session": outcome.session_id,
        "detected": result.detected,
        "first_detection_ms": result.first_detection_ms,
        "detections": result.detection_count,
        "first_injection_ms": result.first_injection_ms,
        "injections": result.injection_count,
        "duration_ms": result.duration_ms,
        "failed": result.failed,
        "wedged": result.wedged,
        "completed": outcome.completed,
        "evicted": outcome.evicted,
    }


async def iter_lines(lines: Iterable[str]) -> AsyncIterable[str]:
    """Lift a synchronous line iterable into the async protocol handler."""
    for line in lines:
        yield line


async def serve_lines(
    lines: AsyncIterable[str],
    write: Callable[[str], None],
    config: Optional[FleetConfig] = None,
) -> int:
    """Serve one newline-JSON stream on a fresh fleet; returns ops handled.

    Detections are pushed through *write* as they are processed; every
    ``frame`` op is followed by a flush so a client sees its detections
    before the next acknowledgement (the remote path trades throughput
    for ordering — bulk traffic belongs in-process).
    """
    if config is None:
        config = FleetConfig()

    def emit(event: ServeEvent) -> None:
        write(
            json.dumps(
                {
                    "event": "detection",
                    "session": event.session_id,
                    "time_ms": event.time_ms,
                    "monitor": event.monitor_id,
                    "signal": event.signal,
                }
            )
        )

    config.on_event = emit
    fleet = Fleet(config)
    ops = 0
    async with fleet:
        async for raw in lines:
            line = raw.strip()
            if not line:
                continue
            ops += 1
            try:
                message = json.loads(line)
                op = message.get("op")
                if op == "open":
                    sid = await fleet.open_session(_spec_from(message))
                    write(json.dumps({"ok": True, "op": "open", "session": sid}))
                elif op == "frame":
                    frame = Frame(
                        session_id=str(message.get("session", "")),
                        ticks=int(message.get("ticks", 1)),
                        flips=tuple(
                            (int(a), int(b)) for a, b in message.get("flips", [])
                        ),
                    )
                    accepted = await fleet.ingest(frame)
                    await fleet.flush()
                    if not accepted:
                        write(
                            json.dumps(
                                {"ok": False, "error": "unknown session", "op": "frame"}
                            )
                        )
                elif op == "close":
                    outcome = await fleet.close_session(
                        str(message.get("session", "")),
                        complete=bool(message.get("complete", True)),
                    )
                    write(json.dumps(_result_line(outcome)))
                elif op == "stats":
                    write(json.dumps({"ok": True, "stats": fleet.stats()}))
                else:
                    write(json.dumps({"ok": False, "error": f"unknown op {op!r}"}))
            except (ServeError, ValueError, TypeError, KeyError) as exc:
                write(json.dumps({"ok": False, "error": str(exc)}))
    return ops


async def serve_stdin(config: Optional[FleetConfig] = None) -> int:
    """Serve the newline-JSON protocol on stdin/stdout until EOF."""
    loop = asyncio.get_running_loop()

    async def stdin_lines() -> AsyncIterable[str]:
        while True:
            line = await loop.run_in_executor(None, sys.stdin.readline)
            if not line:
                return
            yield line

    def write(line: str) -> None:
        sys.stdout.write(line + "\n")
        sys.stdout.flush()

    return await serve_lines(stdin_lines(), write, config)


async def serve_socket(
    host: str, port: int, config_factory: Optional[Callable[[], FleetConfig]] = None
) -> None:
    """Listen for newline-JSON connections; one fleet per connection."""

    async def handle(reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        async def socket_lines() -> AsyncIterable[str]:
            while True:
                raw = await reader.readline()
                if not raw:
                    return
                yield raw.decode("utf-8", errors="replace")

        def write(line: str) -> None:
            writer.write(line.encode("utf-8") + b"\n")

        try:
            await serve_lines(
                socket_lines(),
                write,
                config_factory() if config_factory is not None else None,
            )
            await writer.drain()
        finally:
            writer.close()

    server = await asyncio.start_server(handle, host, port)
    async with server:
        await server.serve_forever()
