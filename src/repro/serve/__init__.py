"""Fleet-scale online monitoring: the paper's assertions as a service.

Where :mod:`repro.experiments` replays error grids offline, this
package turns the same Section-2 executable assertions into a
long-running detection service: thousands of concurrent monitored
target instances multiplexed in one process, each consuming streamed
per-tick telemetry and emitting detection events online.

Layers (bottom up):

* :mod:`repro.serve.session` — one streamed instance; restores from the
  snapshot cache, advances the resumable run loop per frame, lands the
  declared injection schedule exactly as the offline injector would.
* :mod:`repro.serve.batchserve` — lockstep generations of eligible
  sessions over the resumable vectorized kernels (one numpy step per
  round for hundreds of sessions).
* :mod:`repro.serve.fleet` — sharded scheduler: consistent-hash
  placement, bounded per-session queues with backpressure, LRU
  ``max_sessions`` eviction, ``repro.obs`` metrics and traces.
* :mod:`repro.serve.load` / :mod:`repro.serve.adapters` — synthetic
  load + replay drivers, and the newline-JSON stdin/socket protocol.

``python -m repro.serve --target tanklevel --sessions 1000 --load
synthetic`` runs the built-in load generator; see
``benchmarks/bench_serve.py`` for the committed throughput/latency
figures (BENCH_serve.json).
"""

from repro.serve.session import (
    Frame,
    ServeError,
    ServeEvent,
    Session,
    SessionClosed,
    SessionOutcome,
    SessionSpec,
)
from repro.serve.fleet import BATCH_ENV_VAR, Fleet, FleetConfig, HashRing, WORKERS_ENV_VAR
from repro.serve.load import LoadReport, percentile, run_load, serve_replay, synthetic_specs

__all__ = [
    "Frame",
    "ServeError",
    "ServeEvent",
    "Session",
    "SessionClosed",
    "SessionOutcome",
    "SessionSpec",
    "Fleet",
    "FleetConfig",
    "HashRing",
    "WORKERS_ENV_VAR",
    "BATCH_ENV_VAR",
    "LoadReport",
    "percentile",
    "run_load",
    "serve_replay",
    "synthetic_specs",
]
