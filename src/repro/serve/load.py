"""Load generation and stream replay for the serving engine.

Two uses share this module: the benchmark/CLI *synthetic load* (a
deterministic cycle over a target's monitored-signal × bit × test-case
grid, streamed as heartbeat frames), and the determinism tests'
*replay* (feed the exact stream an offline campaign spec describes and
harvest outcomes to compare event-for-event).

The driver is round-based: every open session gets one frame per
round, then the fleet is flushed — which is also precisely the
all-members-ready condition the vectorized batch groups dispatch on,
so the hot path stays vectorized end to end.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from typing import Dict, List, Optional, Sequence

from repro.targets.registry import get_target
from repro.serve.fleet import Fleet, FleetConfig
from repro.serve.session import Frame, ServeError, SessionOutcome, SessionSpec

__all__ = [
    "synthetic_specs",
    "LoadReport",
    "run_load",
    "serve_replay",
    "percentile",
]


def synthetic_specs(
    target: Optional[str] = None,
    sessions: int = 100,
    version: str = "All",
    period_ms: int = 20,
    start_ms: int = 0,
) -> List[SessionSpec]:
    """A deterministic synthetic fleet: *sessions* monitored instances.

    Instances cycle the target's E1-style grid — monitored signal × bit
    position × test case — so any prefix of the list is a balanced
    sample of the error space (no randomness: the same arguments always
    build the same fleet).
    """
    if sessions < 1:
        raise ValueError(f"sessions must be positive, got {sessions}")
    resolved = get_target(target)
    signals = resolved.monitored_signals
    cases = resolved.test_cases()
    specs = []
    for index in range(sessions):
        signal = signals[index % len(signals)]
        bit = (index // len(signals)) % 16
        case = cases[(index // (len(signals) * 16)) % len(cases)]
        specs.append(
            SessionSpec(
                session_id=f"{resolved.name}-{index:05d}",
                target=resolved.name,
                version=version,
                mass_kg=case.mass_kg,
                velocity_mps=case.velocity_mps,
                signal=signal,
                signal_bit=bit,
                period_ms=period_ms,
                start_ms=start_ms,
            )
        )
    return specs


@dataclasses.dataclass
class LoadReport:
    """What one load run did and how fast."""

    outcomes: Dict[str, SessionOutcome]
    frames_sent: int
    rounds: int
    seconds: float
    frame_ticks: int
    dropped: int
    latency_samples: List[float]

    @property
    def frames_per_sec(self) -> float:
        return self.frames_sent / self.seconds if self.seconds > 0 else 0.0

    @property
    def ticks_per_sec(self) -> float:
        return self.frames_per_sec * self.frame_ticks

    @property
    def detections(self) -> int:
        return sum(len(o.events) for o in self.outcomes.values())


async def run_load(
    fleet: Fleet,
    specs: Sequence[SessionSpec],
    frame_ticks: int = 20,
    horizon_ms: Optional[int] = None,
) -> LoadReport:
    """Stream every spec's telemetry through *fleet* until done.

    Sessions run to their natural end (window completion or early
    stop), or to *horizon_ms* of sim-time when set (sessions cut short
    are closed with partial results — the smoke/saturation mode).
    """
    if frame_ticks < 1:
        raise ValueError(f"frame_ticks must be positive, got {frame_ticks}")
    outcomes: Dict[str, SessionOutcome] = {}
    open_ids: List[str] = []
    for spec in specs:
        sid = await fleet.open_session(spec)
        # Opening may evict under a max_sessions cap: harvest casualties.
        open_ids.append(sid)
    open_ids = [sid for sid in open_ids if fleet.is_open(sid)]
    for spec in specs:
        evicted = fleet.pop_outcome(spec.session_id)
        if evicted is not None:
            outcomes[spec.session_id] = evicted
    started = time.perf_counter()
    frames_sent = 0
    rounds = 0
    while open_ids:
        for sid in open_ids:
            await fleet.ingest(Frame(session_id=sid, ticks=frame_ticks))
            frames_sent += 1
        rounds += 1
        left = await fleet.flush()
        if left:
            raise ServeError(f"{left} frames stuck after flush (round {rounds})")
        at_horizon = horizon_ms is not None and rounds * frame_ticks >= horizon_ms
        still_open = []
        for sid in open_ids:
            done = fleet.is_finished(sid)
            if done or at_horizon:
                outcomes[sid] = await fleet.close_session(sid, complete=done)
            else:
                still_open.append(sid)
        open_ids = still_open
    seconds = time.perf_counter() - started
    dropped = fleet.metrics.counter("frames_dropped_total").value
    return LoadReport(
        outcomes=outcomes,
        frames_sent=frames_sent,
        rounds=rounds,
        seconds=seconds,
        frame_ticks=frame_ticks,
        dropped=dropped,
        latency_samples=list(fleet.frame_latency_samples),
    )


def serve_replay(
    specs: Sequence[SessionSpec],
    config: Optional[FleetConfig] = None,
    frame_ticks: int = 20,
    horizon_ms: Optional[int] = None,
) -> LoadReport:
    """Synchronous convenience: run one load to completion on a fresh fleet."""

    async def _main() -> LoadReport:
        fleet = Fleet(config)
        async with fleet:
            return await run_load(
                fleet, specs, frame_ticks=frame_ticks, horizon_ms=horizon_ms
            )

    return asyncio.run(_main())


def percentile(samples: Sequence[float], q: float) -> Optional[float]:
    """The *q*-quantile (0..1) by nearest-rank on sorted samples."""
    if not samples:
        return None
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))]
