"""Online monitoring sessions: one streamed target instance each.

A :class:`Session` is the serving counterpart of one offline campaign
run: a booted target system (restored from the process-global snapshot
cache, so instantiation is one ``pickle.loads`` instead of a rebuild of
the module graph) that consumes streamed telemetry :class:`Frame`\\ s,
advances the simulation and its monitors incrementally, and emits the
detection events as they happen.

Equivalence with the offline path is by construction: the session
drives the *same* resumable run loop (``run_prefix``/``run``) the
campaign controller drives, and applies the session's declared
injection schedule at exactly the tick boundaries the offline
:class:`~repro.injection.injector.TimeTriggeredInjector` would — flips
land *before* the due tick executes, flips past the run's early stop
are skipped, counters match the serial injector's.  The determinism
tests pin the full detection-event sequence against
:class:`~repro.injection.fic.CampaignController` on every registered
target.
"""

from __future__ import annotations

import dataclasses
from typing import Any, List, Optional, Sequence, Tuple

from repro.targets.base import RunResult, Target, TestCase
from repro.targets.registry import get_target
from repro.targets import snapshot as snapshots_mod

__all__ = [
    "ServeError",
    "SessionClosed",
    "SessionSpec",
    "Frame",
    "ServeEvent",
    "SessionOutcome",
    "Session",
]


class ServeError(RuntimeError):
    """A serving-layer configuration or protocol error (clean CLI exit)."""


class SessionClosed(ServeError):
    """The session was already closed (or evicted); frames are refused."""


@dataclasses.dataclass(frozen=True)
class SessionSpec:
    """Everything needed to open one monitored instance.

    The injection schedule is declarative: *signal*/*signal_bit* (a
    monitored 16-bit signal, bit 0..15) or a raw byte *address*/*bit*,
    flipped every *period_ms* starting at *start_ms* — the paper's
    time-triggered intermittent-fault model, arriving as part of the
    instance's environment rather than from a campaign grid.  Leave the
    location unset for a fault-free (reference) session.
    """

    session_id: str
    target: Optional[str] = None
    version: str = "All"
    mass_kg: float = 10000.0
    velocity_mps: float = 60.0
    signal: Optional[str] = None
    signal_bit: Optional[int] = None
    address: Optional[int] = None
    bit: Optional[int] = None
    period_ms: int = 20
    start_ms: int = 0

    def __post_init__(self) -> None:
        if not self.session_id:
            raise ValueError("session_id must be non-empty")
        if self.period_ms < 1:
            raise ValueError(f"period_ms must be positive, got {self.period_ms}")
        if self.start_ms < 0:
            raise ValueError(f"start_ms must be non-negative, got {self.start_ms}")
        if self.signal is not None and self.address is not None:
            raise ValueError("give signal/signal_bit or address/bit, not both")
        if self.signal is not None and (
            self.signal_bit is None or not 0 <= self.signal_bit <= 15
        ):
            raise ValueError(
                f"signal_bit must be 0..15 with signal set, got {self.signal_bit}"
            )
        if self.address is not None and (
            self.bit is None or not 0 <= self.bit <= 7
        ):
            raise ValueError(f"bit must be 0..7 with address set, got {self.bit}")

    @property
    def injects(self) -> bool:
        return self.signal is not None or self.address is not None

    def test_case(self) -> TestCase:
        return TestCase(self.mass_kg, self.velocity_mps)


@dataclasses.dataclass
class Frame:
    """One telemetry frame: advance the instance *ticks* milliseconds.

    ``flips`` optionally carries ad-hoc ``(address, bit)`` byte-level
    corruptions applied at the frame boundary before advancing (the
    free-form ingestion path; scheduled sessions normally leave it
    empty).  ``enqueued_at`` is stamped by the fleet at ingress for the
    wall-clock serving-latency histograms.
    """

    session_id: str
    ticks: int = 1
    flips: Tuple[Tuple[int, int], ...] = ()
    enqueued_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.ticks < 0:
            raise ValueError(f"ticks must be non-negative, got {self.ticks}")
        self.flips = tuple((int(a), int(b)) for a, b in self.flips)


@dataclasses.dataclass(frozen=True)
class ServeEvent:
    """One online detection: a monitor fired inside a served instance.

    The serial path fills every field from the system's
    :class:`~repro.core.monitor.DetectionEvent`; the vectorized batch
    path knows only ``(time_ms, monitor_id, signal)`` (its book keeps
    the aggregate, not the values), so ``value``/``previous`` are
    ``None`` there.
    """

    session_id: str
    time_ms: int
    monitor_id: str
    signal: Optional[str] = None
    value: Optional[int] = None
    previous: Optional[int] = None


@dataclasses.dataclass(frozen=True)
class SessionOutcome:
    """A closed session's final readouts."""

    session_id: str
    result: RunResult
    events: Tuple[ServeEvent, ...]
    evicted: bool = False
    completed: bool = True


class _InjectionCounts:
    """Duck-types the injector counters ``result_now`` reads."""

    __slots__ = ("injections", "first_injection_ms")

    def __init__(self) -> None:
        self.injections = 0
        self.first_injection_ms: Optional[int] = None


def resolve_flip(target: Target, spec: SessionSpec) -> Optional[Tuple[int, int]]:
    """The (byte address, bit-in-byte) a spec's schedule flips, if any.

    Signal-relative specs resolve through the target's memory map (the
    layout is deterministic per target, so a fresh map's addresses match
    every booted instance's).
    """
    if spec.address is not None:
        return (spec.address, spec.bit or 0)
    if spec.signal is None:
        return None
    memory = target.memory()
    try:
        variable = memory.signal_variable(spec.signal)
    except KeyError:
        raise ServeError(
            f"target {target.name!r} has no monitored signal {spec.signal!r} "
            f"(signals: {', '.join(target.monitored_signals)})"
        ) from None
    bit = int(spec.signal_bit or 0)
    return (variable.address + (bit >> 3), bit & 7)


def require_servable(target: Target) -> None:
    """Fail with a clean error when *target* cannot serve at fleet scale."""
    if not target.supports_snapshots():
        raise ServeError(
            f"target {target.name!r} does not support snapshots; fleet-scale "
            f"serving instantiates sessions through the snapshot restore path "
            f"(implement Target.snapshot/restore or serve it offline)"
        )


class Session:
    """One monitored instance consuming a telemetry stream serially."""

    def __init__(
        self,
        spec: SessionSpec,
        target: Optional[Any] = None,
        snapshots: Optional[bool] = None,
    ) -> None:
        self.spec = spec
        self.session_id = spec.session_id
        self.target = get_target(target if target is not None else spec.target)
        require_servable(self.target)
        if snapshots is None:
            snapshots = snapshots_mod.snapshots_enabled_default()
        if snapshots:
            self._system = snapshots_mod.booted_system(
                self.target, spec.test_case(), spec.version
            )
        else:
            self._system = self.target.boot(spec.test_case(), spec.version)
        self._flip = resolve_flip(self.target, spec)
        self._counts = _InjectionCounts()
        self._events_seen = len(self._system.detection_log.events)
        self.events: List[ServeEvent] = []
        self.frames_fed = 0
        self.closed = False

    # -- state ---------------------------------------------------------------

    @property
    def clock_ms(self) -> int:
        return self._system.clock_ms

    @property
    def finished(self) -> bool:
        return self._system.finished

    @property
    def horizon_ms(self) -> int:
        return self._system.horizon_ms

    @property
    def first_injection_ms(self) -> Optional[int]:
        return self._counts.first_injection_ms

    # -- stream --------------------------------------------------------------

    def _apply_flip(self, address: int, bit: int) -> None:
        self._system.memory_map.data[address] ^= 1 << bit
        self._counts.injections += 1
        if self._counts.first_injection_ms is None:
            self._counts.first_injection_ms = self.clock_ms

    def _next_due(self, now_ms: int) -> int:
        """The first scheduled flip time at or after *now_ms*."""
        spec = self.spec
        if now_ms <= spec.start_ms:
            return spec.start_ms
        periods = -(-(now_ms - spec.start_ms) // spec.period_ms)
        return spec.start_ms + periods * spec.period_ms

    def _advance_to(self, target_ms: int) -> None:
        """Advance the system, landing scheduled flips at their due ticks.

        Mirrors the serial injector exactly: a flip lands *before* its
        due tick executes, and flips falling after the run finished
        (the arrestor's early stop) are skipped — the offline loop only
        ticks its injector on executed milliseconds.
        """
        system = self._system
        if self._flip is None:
            system.run_prefix(target_ms)
            return
        address, bit = self._flip
        while not system.finished and system.clock_ms < target_ms:
            due = self._next_due(system.clock_ms)
            if due >= target_ms:
                system.run_prefix(target_ms)
                return
            if due > system.clock_ms:
                system.run_prefix(due)
                if system.finished:
                    return
            self._apply_flip(address, bit)
            system.run_prefix(due + 1)

    def _drain_events(self) -> List[ServeEvent]:
        log = self._system.detection_log
        fresh = log.events[self._events_seen :]
        self._events_seen = len(log.events)
        out = [
            ServeEvent(
                session_id=self.session_id,
                time_ms=event.time,
                monitor_id=str(event.monitor_id),
                signal=event.signal,
                value=event.value,
                previous=event.previous,
            )
            for event in fresh
        ]
        self.events.extend(out)
        return out

    def feed(self, frame: Frame) -> List[ServeEvent]:
        """Consume one frame; return the detections it produced."""
        if self.closed:
            raise SessionClosed(f"session {self.session_id!r} is closed")
        self.frames_fed += 1
        if frame.flips and not self.finished:
            for address, bit in frame.flips:
                self._apply_flip(address, bit)
        self._advance_to(self.clock_ms + frame.ticks)
        return self._drain_events()

    def close(self, complete: bool = True) -> RunResult:
        """Finish the session and build its :class:`RunResult`.

        With *complete* the remaining observation window is executed
        (scheduled flips included) so the result equals an offline run's;
        without it the result reflects the run exactly as far as the
        stream carried it.
        """
        if self.closed:
            raise SessionClosed(f"session {self.session_id!r} is closed")
        if complete:
            while not self.finished:
                self._advance_to(self.horizon_ms)
            self._drain_events()
        self.closed = True
        return self._system.result_now(self._counts)


def events_key(events: Sequence[ServeEvent]):
    """A comparable projection of an event sequence (determinism tests)."""
    return [
        (e.time_ms, e.monitor_id, e.signal, e.value, e.previous) for e in events
    ]
