"""The sharded fleet scheduler: thousands of sessions, one process.

A :class:`Fleet` owns N shard event-loop workers (asyncio tasks on the
caller's loop — the sessions are CPU-bound simulations, so concurrency
comes from multiplexing and from the vectorized batch path, not from
threads).  Sessions are placed on shards by consistent hashing
(:class:`HashRing`, so a resize remaps only the moved shard's
sessions), frames flow through *bounded per-session ingress queues*
(``await ingest`` blocks when a session's queue is full — backpressure
instead of unbounded buffering), and each shard routes its traffic two
ways:

* **batch path** — sessions eligible for a vectorized kernel are pooled
  into generational :class:`~repro.serve.batchserve.BatchGroup`\\ s; a
  round fires when every open member has a frame queued and one numpy
  step advances the whole group;
* **serial path** — everything else feeds its own
  :class:`~repro.serve.session.Session` frame by frame.

Observability rides along end to end: ``sessions_active`` /
``frames_ingested_total`` / ``queue_depth`` metrics, per-session
detection-latency histograms (sim-time) and wall-clock frame latency,
and ``serve`` trace events for session lifecycle and detections.
A ``max_sessions`` LRU eviction policy bounds long-running fleets:
opening past the cap force-closes the least-recently-active session
(counted by ``sessions_evicted_total``), whose partial outcome stays
retrievable.
"""

from __future__ import annotations

import asyncio
import bisect
import dataclasses
import hashlib
import os
import time
from collections import OrderedDict, deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.targets.registry import get_target
from repro.targets import snapshot as snapshots_mod
from repro.targets.batch.core import numpy_available
from repro.serve.batchserve import BatchGroup, batch_eligible
from repro.serve.session import (
    Frame,
    ServeError,
    ServeEvent,
    Session,
    SessionOutcome,
    SessionSpec,
    require_servable,
)

__all__ = [
    "WORKERS_ENV_VAR",
    "BATCH_ENV_VAR",
    "HashRing",
    "FleetConfig",
    "Fleet",
]

#: Worker (shard) count for ``python -m repro.serve`` and FleetConfig.
WORKERS_ENV_VAR = "REPRO_SERVE_WORKERS"

#: Set to ``0``/``false``/``off`` to force the serial serving path.
BATCH_ENV_VAR = "REPRO_SERVE_BATCH"


def workers_default() -> int:
    raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
    if raw:
        value = int(raw)
        if value < 1:
            raise ValueError(f"{WORKERS_ENV_VAR} must be >= 1, got {value}")
        return value
    return 2


def batch_default() -> bool:
    raw = os.environ.get(BATCH_ENV_VAR, "").strip().lower()
    if raw:
        return raw not in ("0", "false", "off", "no")
    return numpy_available()


class HashRing:
    """Consistent hashing with virtual nodes.

    Each node owns ``vnodes`` points on a 64-bit ring; a key maps to
    the first point clockwise from its hash.  Adding or removing one
    node only remaps the keys that landed on its points — session
    placement survives fleet resizes mostly intact (pinned by tests).
    """

    def __init__(self, nodes: Sequence[str], vnodes: int = 64) -> None:
        if not nodes:
            raise ValueError("HashRing needs at least one node")
        if vnodes < 1:
            raise ValueError(f"vnodes must be positive, got {vnodes}")
        self.vnodes = vnodes
        points: List[Tuple[int, str]] = []
        for node in nodes:
            for replica in range(vnodes):
                points.append((self._hash(f"{node}#{replica}"), node))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._nodes = [n for _, n in points]

    @staticmethod
    def _hash(key: str) -> int:
        return int.from_bytes(
            hashlib.sha256(key.encode("utf-8")).digest()[:8], "big"
        )

    def node_for(self, key: str) -> str:
        index = bisect.bisect(self._hashes, self._hash(key))
        if index == len(self._hashes):
            index = 0
        return self._nodes[index]


@dataclasses.dataclass
class FleetConfig:
    """Knobs of one fleet (env-var defaults follow ``REPRO_*`` convention)."""

    workers: Optional[int] = None
    queue_depth: int = 64
    batch: Optional[bool] = None
    batch_rows: int = 512
    max_sessions: Optional[int] = None
    snapshots: Optional[bool] = None
    metrics: Optional[MetricsRegistry] = None
    tracer: Optional[object] = None
    on_event: Optional[Callable[[ServeEvent], None]] = None
    latency_sample_cap: int = 100_000

    def __post_init__(self) -> None:
        if self.workers is None:
            self.workers = workers_default()
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.batch is None:
            self.batch = batch_default()
        if self.max_sessions is not None and self.max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {self.max_sessions}")
        if self.metrics is None:
            self.metrics = MetricsRegistry()


class _Handle:
    """One open session's shard-side state."""

    __slots__ = (
        "spec",
        "session",
        "group",
        "queue",
        "events",
        "latency_done",
        "shard",
    )

    def __init__(self, spec, session, group, queue, shard) -> None:
        self.spec = spec
        self.session: Optional[Session] = session
        self.group: Optional[BatchGroup] = group
        self.queue: asyncio.Queue = queue
        self.events: List[ServeEvent] = []
        self.latency_done = False
        self.shard: "_Shard" = shard

    @property
    def is_batch(self) -> bool:
        return self.group is not None

    @property
    def finished(self) -> bool:
        if self.group is not None:
            return self.group.finished
        return self.session.finished

    def first_injection_ms(self, session_id: str) -> Optional[int]:
        if self.group is not None:
            return self.group.first_injection_ms(session_id)
        return self.session.first_injection_ms


class _Shard:
    """One worker: drains its sessions' queues whenever woken."""

    def __init__(self, name: str, fleet: "Fleet") -> None:
        self.name = name
        self.fleet = fleet
        self.handles: Dict[str, _Handle] = {}
        self.groups: List[BatchGroup] = []
        self.wake = asyncio.Event()
        self.task: Optional[asyncio.Task] = None
        self.error: Optional[BaseException] = None

    # -- worker loop ---------------------------------------------------------

    async def run(self) -> None:
        try:
            while True:
                await self.wake.wait()
                self.wake.clear()
                while self.drain():
                    # Yield between rounds so producers (and the other
                    # shards) interleave; a shard never starves the loop.
                    await asyncio.sleep(0)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:  # surfaced on the next fleet call
            self.error = exc

    def drain(self) -> bool:
        return self._drain_batch() | self._drain_serial()

    def _drain_serial(self) -> bool:
        progressed = False
        for session_id, handle in list(self.handles.items()):
            if handle.is_batch:
                continue
            while True:
                try:
                    frame = handle.queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                self.fleet._queued -= 1
                events = handle.session.feed(frame)
                self.fleet._frame_processed(session_id, handle, frame, events)
                progressed = True
        return progressed

    def _drain_batch(self) -> bool:
        progressed = False
        for group in self.groups:
            while self._batch_round(group):
                progressed = True
        return progressed

    def _batch_round(self, group: BatchGroup) -> bool:
        """Fire one lockstep round if every open member has a frame."""
        members = [
            (sid, self.handles[sid])
            for sid in group.session_ids
            if sid in self.handles
        ]
        if not members or any(h.queue.empty() for _, h in members):
            return False
        frames = []
        for sid, handle in members:
            frame = handle.queue.get_nowait()
            self.fleet._queued -= 1
            frames.append((sid, handle, frame))
        ticks = {frame.ticks for _, _, frame in frames}
        if len(ticks) != 1:
            raise ServeError(
                f"batch group on shard {self.name!r} got a heterogeneous round "
                f"(tick counts {sorted(ticks)}); batched sessions must advance "
                f"in lockstep — use the serial path for free-form streams"
            )
        events = group.advance(ticks.pop())
        by_session: Dict[str, List[ServeEvent]] = {}
        for event in events:
            by_session.setdefault(event.session_id, []).append(event)
        for sid, handle, frame in frames:
            self.fleet._frame_processed(
                sid, handle, frame, by_session.get(sid, [])
            )
        return True

    def group_for(self, target) -> BatchGroup:
        for group in self.groups:
            if group.target.name == target.name and group.accepting:
                return group
        group = BatchGroup(target, max_rows=self.fleet.config.batch_rows)
        self.groups.append(group)
        return group


class Fleet:
    """The online detection engine: open sessions, stream frames, harvest."""

    def __init__(self, config: Optional[FleetConfig] = None) -> None:
        self.config = config if config is not None else FleetConfig()
        self.metrics = self.config.metrics
        self.tracer = self.config.tracer
        self._shards = [
            _Shard(f"shard-{i}", self) for i in range(self.config.workers)
        ]
        self._ring = HashRing([shard.name for shard in self._shards])
        self._by_name = {shard.name: shard for shard in self._shards}
        self._where: Dict[str, _Shard] = {}
        self._lru: "OrderedDict[str, None]" = OrderedDict()
        self._closed: Dict[str, SessionOutcome] = {}
        self._queued = 0
        self._frames_processed = 0
        self._started = False
        self.frame_latency_samples: Deque[float] = deque(
            maxlen=self.config.latency_sample_cap
        )

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "Fleet":
        if not self._started:
            for shard in self._shards:
                shard.task = asyncio.ensure_future(shard.run())
            self._started = True
        return self

    async def stop(self) -> None:
        for shard in self._shards:
            if shard.task is not None:
                shard.task.cancel()
                try:
                    await shard.task
                except asyncio.CancelledError:
                    pass
                shard.task = None
        self._started = False

    async def __aenter__(self) -> "Fleet":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    def _check_errors(self) -> None:
        for shard in self._shards:
            if shard.error is not None:
                error, shard.error = shard.error, None
                raise error

    # -- sessions ------------------------------------------------------------

    @property
    def sessions_active(self) -> int:
        return len(self._where)

    def is_open(self, session_id: str) -> bool:
        return session_id in self._where

    def is_finished(self, session_id: str) -> bool:
        handle = self._handle(session_id)
        return handle.finished

    def _handle(self, session_id: str) -> _Handle:
        shard = self._where.get(session_id)
        if shard is None:
            raise ServeError(f"unknown session {session_id!r}")
        return shard.handles[session_id]

    def _emit(self, kind: str, time_ms: float = 0.0, **data) -> None:
        if self.tracer is not None:
            self.tracer.emit("serve", kind, time_ms=time_ms, **data)

    async def open_session(self, spec: SessionSpec) -> str:
        """Boot (restore) one instance and place it on its shard."""
        self._check_errors()
        sid = spec.session_id
        if sid in self._where or sid in self._closed:
            raise ServeError(f"duplicate session id {sid!r}")
        target = get_target(spec.target)
        require_servable(target)
        if self.config.max_sessions is not None:
            while len(self._where) >= self.config.max_sessions:
                evict_sid = next(iter(self._lru))
                await self.close_session(evict_sid, complete=False, _evicted=True)
        shard = self._by_name[self._ring.node_for(sid)]
        queue: asyncio.Queue = asyncio.Queue(maxsize=self.config.queue_depth)
        if self.config.batch and batch_eligible(target, spec):
            group = shard.group_for(target)
            group.add(spec)
            handle = _Handle(spec, None, group, queue, shard)
        else:
            session = Session(spec, target=target, snapshots=self.config.snapshots)
            handle = _Handle(spec, session, None, queue, shard)
        shard.handles[sid] = handle
        self._where[sid] = shard
        self._lru[sid] = None
        self._lru.move_to_end(sid)
        self.metrics.counter("sessions_opened_total").inc()
        self.metrics.gauge("sessions_active").set(len(self._where))
        self._emit(
            "session-open",
            session=sid,
            target=target.name,
            version=spec.version,
            path="batch" if handle.is_batch else "serial",
            shard=shard.name,
        )
        return sid

    async def ingest(self, frame: Frame) -> bool:
        """Queue one frame; blocks (backpressure) when the queue is full.

        Returns False — and counts ``frames_dropped_total`` — when the
        session is unknown or already closed.
        """
        self._check_errors()
        shard = self._where.get(frame.session_id)
        if shard is None:
            self.metrics.counter("frames_dropped_total").inc()
            return False
        handle = shard.handles[frame.session_id]
        if frame.flips and handle.is_batch:
            raise ServeError(
                f"session {frame.session_id!r} rides the batch path; ad-hoc "
                f"flips need a serial session (open with address=/bit= or "
                f"disable batch)"
            )
        frame.enqueued_at = time.monotonic()
        await handle.queue.put(frame)
        self._queued += 1
        self.metrics.counter("frames_ingested_total").inc()
        self.metrics.gauge("queue_depth").set(self._queued)
        self._lru[frame.session_id] = None
        self._lru.move_to_end(frame.session_id)
        shard.wake.set()
        return True

    async def flush(self) -> int:
        """Wait until queued frames are processed; returns frames left.

        A non-zero return means frames are stuck (a batch group waiting
        on members whose producer stopped mid-round) — the driver gets
        to decide, instead of the fleet deadlocking.
        """
        self._check_errors()
        stall = 0
        last = (self._queued, self._frames_processed)
        while self._queued > 0:
            if self._started:
                for shard in self._shards:
                    if shard.handles:
                        shard.wake.set()
            else:
                # No workers running: drain inline (synchronous mode).
                for shard in self._shards:
                    shard.drain()
            await asyncio.sleep(0)
            self._check_errors()
            current = (self._queued, self._frames_processed)
            if current == last:
                stall += 1
                if stall > 16:
                    break
            else:
                stall = 0
                last = current
        self.metrics.gauge("queue_depth").set(self._queued)
        return self._queued

    async def close_session(
        self, session_id: str, complete: bool = True, _evicted: bool = False
    ) -> SessionOutcome:
        """Close one session and return its outcome (result + events)."""
        self._check_errors()
        shard = self._where.get(session_id)
        if shard is None:
            raise ServeError(f"unknown session {session_id!r}")
        handle = shard.handles[session_id]
        # Serial leftovers are fed through; batch leftovers cannot advance
        # a single row of a lockstep group, so they count as dropped.
        while True:
            try:
                frame = handle.queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            self._queued -= 1
            if handle.is_batch:
                self.metrics.counter("frames_dropped_total").inc()
            else:
                events = handle.session.feed(frame)
                self._frame_processed(session_id, handle, frame, events)
        if handle.is_batch:
            handle.group.deactivate(session_id)
            result = handle.group.result(session_id)
            completed = handle.group.finished
            events = tuple(handle.events)
        else:
            result = handle.session.close(complete=complete)
            completed = complete or handle.session.finished
            # The session's own list also covers detections produced by
            # the close-time completion of the window.
            events = tuple(handle.session.events)
        outcome = SessionOutcome(
            session_id=session_id,
            result=result,
            events=events,
            evicted=_evicted,
            completed=completed,
        )
        del shard.handles[session_id]
        del self._where[session_id]
        self._lru.pop(session_id, None)
        self._closed[session_id] = outcome
        counter = "sessions_evicted_total" if _evicted else "sessions_closed_total"
        self.metrics.counter(counter).inc()
        self.metrics.gauge("sessions_active").set(len(self._where))
        self._emit(
            "session-evicted" if _evicted else "session-close",
            time_ms=float(result.duration_ms),
            session=session_id,
            detected=result.detected,
            detections=result.detection_count,
            duration_ms=result.duration_ms,
        )
        return outcome

    def pop_outcome(self, session_id: str) -> Optional[SessionOutcome]:
        """Retrieve (and forget) a closed or evicted session's outcome."""
        return self._closed.pop(session_id, None)

    # -- frame accounting ----------------------------------------------------

    def _frame_processed(
        self,
        session_id: str,
        handle: _Handle,
        frame: Frame,
        events: List[ServeEvent],
    ) -> None:
        metrics = self.metrics
        self._frames_processed += 1
        metrics.counter("frames_processed_total").inc()
        if frame.enqueued_at is not None:
            latency_ms = (time.monotonic() - frame.enqueued_at) * 1000.0
            metrics.histogram("serve_frame_latency_ms").observe(latency_ms)
            self.frame_latency_samples.append(latency_ms)
        if not events:
            return
        handle.events.extend(events)
        for event in events:
            metrics.counter("detections_total", monitor=event.monitor_id).inc()
            self._emit(
                "detection",
                time_ms=float(event.time_ms),
                session=session_id,
                monitor=event.monitor_id,
                signal=event.signal,
            )
            if self.config.on_event is not None:
                self.config.on_event(event)
        if not handle.latency_done:
            first_injection = handle.first_injection_ms(session_id)
            if first_injection is not None:
                for event in events:
                    if event.time_ms >= first_injection:
                        metrics.histogram("serve_detection_latency_ms").observe(
                            event.time_ms - first_injection
                        )
                        handle.latency_done = True
                        break

    # -- reporting -----------------------------------------------------------

    def stats(self) -> dict:
        """A JSON-friendly snapshot of the fleet's counters."""
        snap = self.metrics.snapshot()
        return {
            "sessions_active": len(self._where),
            "queued_frames": self._queued,
            "counters": snap["counters"],
            "snapshot_cache": snapshots_mod.cache_stats().as_dict(),
        }
