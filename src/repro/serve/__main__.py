"""``python -m repro.serve`` — the online monitoring engine's CLI.

Run a synthetic load against the fleet (the default), or expose the
newline-JSON protocol on stdin or a TCP socket:

* ``python -m repro.serve --target tanklevel --sessions 1000 --load
  synthetic`` — open 1000 monitored instances cycling the target's
  signal × bit × case grid, stream heartbeats to completion, print
  throughput and latency percentiles.
* ``python -m repro.serve --stdin`` — serve the line protocol on
  stdin/stdout (see :mod:`repro.serve.adapters`).
* ``python -m repro.serve --listen 127.0.0.1:8787`` — TCP server.

Environment (the campaign engine's ``REPRO_*`` conventions):
``REPRO_SERVE_WORKERS`` shard count, ``REPRO_SERVE_BATCH`` =0 to force
the serial path, ``REPRO_TARGET`` default workload,
``REPRO_SNAPSHOTS`` =0 to boot cold instead of snapshot-restoring.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import List, Optional

from repro.targets.registry import default_target_name, get_target, target_names
from repro.serve.adapters import serve_socket, serve_stdin
from repro.serve.fleet import Fleet, FleetConfig, batch_default, workers_default
from repro.serve.load import percentile, run_load, synthetic_specs
from repro.serve.session import ServeError

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="fleet-scale online assertion monitoring",
        epilog=(
            "environment: REPRO_SERVE_WORKERS (shards, default 2), "
            "REPRO_SERVE_BATCH (0 = serial path), REPRO_TARGET "
            "(default workload), REPRO_SNAPSHOTS (0 = cold boots)"
        ),
    )
    parser.add_argument(
        "--target",
        default=None,
        metavar="NAME",
        help="registered workload to serve "
        "(default: $REPRO_TARGET or 'arrestor'; see --list-targets)",
    )
    parser.add_argument(
        "--list-targets",
        action="store_true",
        help="list registered targets and exit",
    )
    parser.add_argument(
        "--sessions",
        type=int,
        default=100,
        metavar="N",
        help="concurrent monitored instances (default: 100)",
    )
    parser.add_argument(
        "--load",
        choices=("synthetic",),
        default="synthetic",
        help="load profile (synthetic: cycle the signal/bit/case grid)",
    )
    parser.add_argument(
        "--frame-ticks",
        type=int,
        default=20,
        metavar="MS",
        help="sim-milliseconds per telemetry frame (default: 20)",
    )
    parser.add_argument(
        "--horizon-ms",
        type=int,
        default=None,
        metavar="MS",
        help="cut sessions off after this much sim-time (default: full window)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="shard workers (default: $REPRO_SERVE_WORKERS or 2)",
    )
    batch = parser.add_mutually_exclusive_group()
    batch.add_argument(
        "--batch",
        dest="batch",
        action="store_true",
        default=None,
        help="force the vectorized serving path",
    )
    batch.add_argument(
        "--no-batch",
        dest="batch",
        action="store_false",
        help="force the serial serving path",
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        metavar="N",
        help="bounded per-session ingress queue (default: 64)",
    )
    parser.add_argument(
        "--max-sessions",
        type=int,
        default=None,
        metavar="N",
        help="LRU-evict beyond this many open sessions (default: unbounded)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the full metrics registry at the end",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the run summary as JSON",
    )
    parser.add_argument(
        "--stdin",
        action="store_true",
        help="serve the newline-JSON protocol on stdin/stdout",
    )
    parser.add_argument(
        "--listen",
        default=None,
        metavar="HOST:PORT",
        help="serve the newline-JSON protocol on a TCP socket",
    )
    return parser


def _list_targets() -> int:
    default = default_target_name()
    for name in target_names():
        target = get_target(name)
        marker = "  (default)" if name == default else ""
        print(f"{name:12s} {target.description}{marker}")
    return 0


def _config(args) -> FleetConfig:
    return FleetConfig(
        workers=args.workers if args.workers is not None else workers_default(),
        queue_depth=args.queue_depth,
        batch=args.batch if args.batch is not None else batch_default(),
        max_sessions=args.max_sessions,
    )


def _run_synthetic(args) -> int:
    specs = synthetic_specs(target=args.target, sessions=args.sessions)

    async def _main():
        fleet = Fleet(_config(args))
        async with fleet:
            report = await run_load(
                fleet,
                specs,
                frame_ticks=args.frame_ticks,
                horizon_ms=args.horizon_ms,
            )
            return report, fleet.metrics

    report, metrics = asyncio.run(_main())
    lat = report.latency_samples
    summary = {
        "target": get_target(args.target).name,
        "sessions": len(specs),
        "frames": report.frames_sent,
        "rounds": report.rounds,
        "detections": report.detections,
        "dropped_frames": report.dropped,
        "seconds": round(report.seconds, 3),
        "frames_per_sec": round(report.frames_per_sec, 1),
        "ticks_per_sec": round(report.ticks_per_sec, 1),
        "frame_latency_ms": {
            "p50": percentile(lat, 0.50),
            "p95": percentile(lat, 0.95),
            "p99": percentile(lat, 0.99),
        },
    }
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        latline = ", ".join(
            f"{k}={v:.2f}ms" if v is not None else f"{k}=-"
            for k, v in summary["frame_latency_ms"].items()
        )
        print(
            f"served {summary['sessions']} sessions on "
            f"{summary['target']}: {summary['frames']} frames in "
            f"{summary['seconds']}s ({summary['frames_per_sec']} frames/s, "
            f"{summary['ticks_per_sec']} sim-ticks/s), "
            f"{summary['detections']} detections, "
            f"{summary['dropped_frames']} dropped"
        )
        print(f"frame latency: {latline}")
    if args.metrics:
        print(metrics.render())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.list_targets:
            return _list_targets()
        if args.stdin:
            asyncio.run(serve_stdin(_config(args)))
            return 0
        if args.listen:
            host, _, port = args.listen.rpartition(":")
            if not host or not port.isdigit():
                raise ServeError(f"--listen expects HOST:PORT, got {args.listen!r}")
            asyncio.run(serve_socket(host, int(port), lambda: _config(args)))
            return 0
        return _run_synthetic(args)
    except (ServeError, ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    sys.exit(main())
