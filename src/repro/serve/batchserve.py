"""Vectorized serving: lockstep batch groups over the batch kernels.

The serving hot path: sessions on the same shard whose specs are
*batch-eligible* (a kernel exists for the target, numpy is available,
and the injection schedule is a monitored-signal bit flip — the same
eligibility the offline campaign's ``--batch`` path uses) are pooled
into a :class:`BatchGroup`.  One telemetry round pops one frame per
member and a single resumable-kernel ``advance`` executes the round for
every member at once — one numpy step advances hundreds of sessions —
while the per-row detection book yields each session's events.

Groups are *generational*: members join only while the group's shared
sim-clock is still at zero (all rows of a kernel advance in lockstep),
so sessions opened after a group started stepping seed the next group.
Rows whose session closed early stay in the arrays (advancing a dead
row is the identity on everything observable) but stop gating
readiness.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.targets.base import RunResult, Target
from repro.targets.batch.core import BatchRunSpec, numpy_available
from repro.serve.session import ServeError, ServeEvent, SessionSpec

__all__ = [
    "batch_kernel_factory",
    "batch_eligible",
    "BatchGroup",
]

#: Target name -> resumable kernel factory ``(specs, capture_events)``.
_KERNEL_FACTORIES: Dict[str, Callable] = {}


def _tank_kernel(specs, capture_events: bool = True):
    from repro.targets.batch.tanklevel import TankBatchKernel

    return TankBatchKernel(specs, capture_events=capture_events)


_KERNEL_FACTORIES["tanklevel"] = _tank_kernel


def batch_kernel_factory(target_name: str) -> Optional[Callable]:
    """The resumable serving kernel for *target_name*, if one exists."""
    return _KERNEL_FACTORIES.get(target_name)


def batch_eligible(target: Target, spec: SessionSpec) -> bool:
    """Whether a session can ride the vectorized serving path.

    Mirrors the offline campaign's batch eligibility: a scheduled
    bit-flip into a monitored 16-bit signal on the default run
    configuration.  Fault-free and raw-address sessions take the serial
    path (their per-row semantics aren't expressible as the kernels'
    XOR masks).
    """
    return (
        numpy_available()
        and batch_kernel_factory(target.name) is not None
        and spec.signal is not None
        and spec.signal_bit is not None
        and 0 <= spec.signal_bit < 16
        and spec.signal in target.monitored_signals
        and spec.address is None
    )


def _batch_spec(spec: SessionSpec) -> BatchRunSpec:
    return BatchRunSpec(
        version=spec.version,
        signal=spec.signal,
        signal_bit=spec.signal_bit,
        mass_kg=spec.mass_kg,
        velocity_mps=spec.velocity_mps,
        injection_period_ms=spec.period_ms,
        injection_start_ms=spec.start_ms,
    )


class BatchGroup:
    """A generation of lockstep sessions sharing one vectorized kernel."""

    def __init__(self, target: Target, max_rows: int = 512) -> None:
        factory = batch_kernel_factory(target.name)
        if factory is None:
            raise ServeError(f"no batch serving kernel for target {target.name!r}")
        self.target = target
        self.max_rows = max_rows
        self._factory = factory
        self._specs: List[BatchRunSpec] = []
        self.session_ids: List[str] = []
        self.active: List[bool] = []
        self._signals: List[Optional[str]] = []
        self.kernel = None
        self._row_of: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self.session_ids)

    @property
    def sealed(self) -> bool:
        """Stepping has begun; no further members may join."""
        return self.kernel is not None

    @property
    def accepting(self) -> bool:
        return not self.sealed and len(self) < self.max_rows

    @property
    def clock_ms(self) -> int:
        return self.kernel.now_ms if self.kernel is not None else 0

    @property
    def finished(self) -> bool:
        return self.kernel is not None and self.kernel.finished

    def add(self, spec: SessionSpec) -> int:
        """Admit a session; returns its row index."""
        if self.sealed:
            raise ServeError("batch group already sealed (sim-clock advanced)")
        row = len(self.session_ids)
        self._specs.append(_batch_spec(spec))
        self.session_ids.append(spec.session_id)
        self.active.append(True)
        self._signals.append(spec.signal)
        self._row_of[spec.session_id] = row
        return row

    def row_of(self, session_id: str) -> int:
        return self._row_of[session_id]

    def deactivate(self, session_id: str) -> None:
        """Stop gating rounds on this member (its session closed)."""
        self.active[self._row_of[session_id]] = False

    def advance(self, ticks: int) -> List[ServeEvent]:
        """One lockstep round: *ticks* milliseconds for every row."""
        if self.kernel is None:
            self.kernel = self._factory(self._specs, capture_events=True)
        self.kernel.advance(ticks)
        events = []
        for row, time_ms, monitor_id in self.kernel.drain_events():
            if not self.active[row]:
                continue
            events.append(
                ServeEvent(
                    session_id=self.session_ids[row],
                    time_ms=int(time_ms),
                    monitor_id=str(monitor_id),
                    signal=self._signals[row],
                )
            )
        return events

    def result(self, session_id: str) -> RunResult:
        """The member's result as of the group's current sim-clock."""
        if self.kernel is None:
            self.kernel = self._factory(self._specs, capture_events=True)
        return self.kernel.outcome(self._row_of[session_id]).result

    def first_injection_ms(self, session_id: str) -> Optional[int]:
        spec = self._specs[self._row_of[session_id]]
        if self.clock_ms - 1 < spec.injection_start_ms:
            return None
        return spec.injection_start_ms
