"""Recovery strategies: returning a detected-erroneous signal to a valid state.

Section 2 of the paper: *"Should an error be detected, measures can be
taken to recover from the error, and the signal can be returned to a valid
state."*  The evaluation itself measures detection only, but the library
ships the recovery half of the mechanism so the combination can be used
(and is exercised by the ``bench_ablation_recovery`` benchmark).

A recovery strategy maps the rejected sample ``s`` and the previous
reference ``s'`` onto a replacement value that satisfies the signal's
constraints.  All strategies are stateless and parameterised by the same
``Pcont``/``Pdisc`` sets as the assertions.
"""

from __future__ import annotations

from typing import Hashable, Optional, Union

from repro.core.parameters import ContinuousParams, DiscreteParams, ParameterError

__all__ = [
    "RecoveryStrategy",
    "HoldLastValid",
    "ClampToDomain",
    "ExtrapolateRate",
    "ResetToValue",
    "default_recovery_for",
]

Number = Union[int, float]


class RecoveryStrategy:
    """Base class for recovery strategies."""

    def recover(
        self,
        s: Hashable,
        s_prev: Optional[Hashable],
        params: Union[ContinuousParams, DiscreteParams],
    ) -> Hashable:
        """Return a replacement value for the rejected sample *s*."""
        raise NotImplementedError


class HoldLastValid(RecoveryStrategy):
    """Replace the erroneous sample with the previous reference value.

    When no previous value exists (first sample already invalid) the
    domain is used: continuous signals fall back to ``smin``, discrete
    signals to an arbitrary-but-deterministic domain element.
    """

    def recover(self, s, s_prev, params):
        if s_prev is not None:
            return s_prev
        if isinstance(params, ContinuousParams):
            return params.smin
        return min(params.domain, key=repr)


class ClampToDomain(RecoveryStrategy):
    """Clamp a continuous sample into ``[smin, smax]``.

    Only the domain-bound violations (tests 1 and 2) are repaired; a
    rate-violating sample inside the domain is left where it is, which is
    the cheapest strategy when bounds are the dominant failure mode.
    """

    def recover(self, s, s_prev, params):
        if not isinstance(params, ContinuousParams):
            raise ParameterError("ClampToDomain applies to continuous signals only")
        if s > params.smax:
            return params.smax
        if s < params.smin:
            return params.smin
        return s


class ExtrapolateRate(RecoveryStrategy):
    """Advance the previous reference by the signal's expected rate.

    For monotonic signals this continues the trajectory (static-rate
    signals advance by their fixed rate; dynamic-rate signals by the
    midpoint of their rate range).  For random signals it degenerates to
    holding the last valid value.  Wrap-around is honoured.
    """

    def recover(self, s, s_prev, params):
        if not isinstance(params, ContinuousParams):
            raise ParameterError("ExtrapolateRate applies to continuous signals only")
        if s_prev is None:
            return params.smin
        if params.is_random():
            return s_prev
        if params.increase_forbidden:
            step = -(params.rmin_decr + params.rmax_decr) / 2
        else:
            step = (params.rmin_incr + params.rmax_incr) / 2
        if isinstance(s_prev, int):
            # Integer signals (the 16-bit target's) get an integer repair.
            step = int(round(step))
        value = s_prev + step
        if value > params.smax:
            value = params.smin + (value - params.smax) if params.wrap else params.smax
        elif value < params.smin:
            value = params.smax - (params.smin - value) if params.wrap else params.smin
        return value


class ResetToValue(RecoveryStrategy):
    """Reset to a designated safe value (e.g. a state machine's idle state)."""

    def __init__(self, safe_value: Hashable) -> None:
        self.safe_value = safe_value

    def recover(self, s, s_prev, params):
        if isinstance(params, DiscreteParams) and self.safe_value not in params.domain:
            raise ParameterError(
                f"safe value {self.safe_value!r} is outside the signal domain"
            )
        if isinstance(params, ContinuousParams) and not (
            params.smin <= self.safe_value <= params.smax
        ):
            raise ParameterError(
                f"safe value {self.safe_value!r} is outside [smin, smax]"
            )
        return self.safe_value


def default_recovery_for(
    params: Union[ContinuousParams, DiscreteParams],
) -> RecoveryStrategy:
    """The strategy the paper's mechanism sketch implies per signal kind.

    Monotonic continuous signals extrapolate (their trajectory is
    predictable); everything else holds the last valid value.
    """
    if isinstance(params, ContinuousParams) and not params.is_random():
        return ExtrapolateRate()
    return HoldLastValid()
