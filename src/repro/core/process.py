"""The incorporation process of Section 2.3 as an executable workflow.

The paper proposes an eight-step process for equipping a system with the
error-detection mechanisms:

1. identify the input and output signals,
2. identify the signal pathways from inputs through the system to outputs,
3. identify internally generated signals influencing intermediate/output
   signals,
4. determine the most service-critical signals (e.g. via FMECA),
5. classify each selected signal per the Figure-1 scheme,
6. determine parameter values (per operational mode where needed),
7. decide on mechanism locations,
8. incorporate the mechanisms.

This module makes steps 1-7 concrete: a :class:`SignalInventory` captures
signals, producing/consuming modules and dataflow; pathway queries answer
step 2; a lightweight FMECA table ranks criticality for step 4; and an
:class:`InstrumentationPlan` collects the outcome of steps 5-7 in a form
that :class:`repro.core.monitor.MonitorBank` (step 8) can consume.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

import networkx as nx

from repro.core.classes import SignalClass
from repro.core.parameters import ContinuousParams, DiscreteParams, ModalParameterSet

__all__ = [
    "SignalDeclaration",
    "SignalInventory",
    "FmecaEntry",
    "InstrumentationPlan",
    "PlannedAssertion",
]

Params = Union[ContinuousParams, DiscreteParams, ModalParameterSet]


@dataclasses.dataclass(frozen=True)
class SignalDeclaration:
    """One signal of the system under analysis (steps 1 and 3).

    ``kind`` is ``"input"``, ``"output"`` or ``"internal"``.  ``producer``
    and ``consumers`` are module names; dataflow edges are derived from
    them.
    """

    name: str
    kind: str
    producer: str
    consumers: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.kind not in ("input", "output", "internal"):
            raise ValueError(f"kind must be input/output/internal, got {self.kind!r}")
        object.__setattr__(self, "consumers", tuple(self.consumers))


@dataclasses.dataclass(frozen=True)
class FmecaEntry:
    """FMECA-style record for one signal (step 4).

    ``severity`` and ``occurrence`` use the conventional 1-10 ordinal
    scales; ``detectability`` is 1 (certain to be caught downstream) to 10
    (invisible).  The risk priority number is their product.
    """

    signal: str
    failure_mode: str
    severity: int
    occurrence: int
    detectability: int = 10

    def __post_init__(self) -> None:
        for field_name in ("severity", "occurrence", "detectability"):
            value = getattr(self, field_name)
            if not 1 <= value <= 10:
                raise ValueError(f"{field_name} must be in 1..10, got {value}")

    @property
    def rpn(self) -> int:
        """Risk priority number: severity x occurrence x detectability."""
        return self.severity * self.occurrence * self.detectability


class SignalInventory:
    """Signals + modules + dataflow of the system under analysis.

    The dataflow graph is bipartite-ish: module nodes and signal nodes,
    with an edge ``producer -> signal`` and ``signal -> consumer`` for each
    declaration, so pathway queries (step 2) are plain graph reachability.
    """

    def __init__(self) -> None:
        self._signals: Dict[str, SignalDeclaration] = {}
        self._graph = nx.DiGraph()

    # -- steps 1 & 3 ---------------------------------------------------------

    def declare(
        self,
        name: str,
        kind: str,
        producer: str,
        consumers: Iterable[str],
    ) -> SignalDeclaration:
        """Declare one signal; returns its record."""
        if name in self._signals:
            raise ValueError(f"signal {name!r} already declared")
        decl = SignalDeclaration(name, kind, producer, tuple(consumers))
        self._signals[name] = decl
        self._graph.add_node(("signal", name))
        self._graph.add_node(("module", producer))
        self._graph.add_edge(("module", producer), ("signal", name))
        for consumer in decl.consumers:
            self._graph.add_node(("module", consumer))
            self._graph.add_edge(("signal", name), ("module", consumer))
        return decl

    def __contains__(self, name: str) -> bool:
        return name in self._signals

    def __len__(self) -> int:
        return len(self._signals)

    def signal(self, name: str) -> SignalDeclaration:
        return self._signals[name]

    @property
    def signals(self) -> List[SignalDeclaration]:
        return list(self._signals.values())

    @property
    def inputs(self) -> List[str]:
        return [s.name for s in self._signals.values() if s.kind == "input"]

    @property
    def outputs(self) -> List[str]:
        return [s.name for s in self._signals.values() if s.kind == "output"]

    @property
    def internals(self) -> List[str]:
        return [s.name for s in self._signals.values() if s.kind == "internal"]

    @property
    def modules(self) -> List[str]:
        return sorted(n for kind, n in self._graph.nodes if kind == "module")

    # -- step 2: pathways ----------------------------------------------------

    def pathways(self, source: str, sink: str) -> List[List[str]]:
        """All signal pathways from signal *source* to signal *sink*.

        Each pathway is the sequence of signal names traversed (module
        hops elided), e.g. ``["pulscnt", "SetValue", "OutValue"]``.
        """
        src, dst = ("signal", source), ("signal", sink)
        if src not in self._graph or dst not in self._graph:
            raise KeyError(f"unknown signal in pathway query: {source!r} -> {sink!r}")
        paths = nx.all_simple_paths(self._graph, src, dst)
        return [[name for kind, name in path if kind == "signal"] for path in paths]

    def downstream_signals(self, name: str) -> Set[str]:
        """Signals reachable from *name* through the dataflow (influence set)."""
        node = ("signal", name)
        if node not in self._graph:
            raise KeyError(f"unknown signal {name!r}")
        return {
            n for kind, n in nx.descendants(self._graph, node) if kind == "signal"
        }

    def upstream_signals(self, name: str) -> Set[str]:
        """Signals from which *name* is reachable (its dependency set)."""
        node = ("signal", name)
        if node not in self._graph:
            raise KeyError(f"unknown signal {name!r}")
        return {n for kind, n in nx.ancestors(self._graph, node) if kind == "signal"}

    def influence_on_outputs(self, name: str) -> Set[str]:
        """Which system outputs the signal can influence (steps 2 + 3)."""
        outputs = set(self.outputs)
        reachable = self.downstream_signals(name) | {name}
        return reachable & outputs

    # -- step 4: criticality ---------------------------------------------------

    def rank_by_fmeca(
        self,
        entries: Iterable[FmecaEntry],
        top: Optional[int] = None,
    ) -> List[Tuple[str, int]]:
        """Rank signals by their worst-mode risk priority number.

        Returns ``(signal, max RPN)`` pairs, most critical first, limited
        to *top* entries when given.  Unknown signals are rejected.
        """
        worst: Dict[str, int] = {}
        for entry in entries:
            if entry.signal not in self._signals:
                raise KeyError(f"FMECA entry references unknown signal {entry.signal!r}")
            worst[entry.signal] = max(worst.get(entry.signal, 0), entry.rpn)
        ranked = sorted(worst.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:top] if top is not None else ranked


@dataclasses.dataclass(frozen=True)
class PlannedAssertion:
    """Outcome of steps 5-7 for one monitored signal."""

    signal: str
    signal_class: SignalClass
    params: Params
    location: str
    monitor_id: str


class InstrumentationPlan:
    """The instrumentation decisions for a system (steps 5-7).

    The plan validates against an inventory (monitored signals must exist
    and test locations must be modules that produce or consume the signal,
    matching the paper's placements in Table 4) and can instantiate a
    configured :class:`~repro.core.monitor.MonitorBank` (step 8).
    """

    def __init__(self, inventory: SignalInventory) -> None:
        self.inventory = inventory
        self._planned: Dict[str, PlannedAssertion] = {}

    def plan(
        self,
        signal: str,
        signal_class: SignalClass,
        params: Params,
        location: str,
        monitor_id: Optional[str] = None,
    ) -> PlannedAssertion:
        """Add the assertion plan for one signal."""
        if signal not in self.inventory:
            raise KeyError(f"cannot plan assertion for undeclared signal {signal!r}")
        if signal in self._planned:
            raise ValueError(f"signal {signal!r} already planned")
        decl = self.inventory.signal(signal)
        valid_locations = {decl.producer, *decl.consumers}
        if location not in valid_locations:
            raise ValueError(
                f"test location {location!r} neither produces nor consumes "
                f"{signal!r} (valid: {sorted(valid_locations)})"
            )
        planned = PlannedAssertion(
            signal=signal,
            signal_class=signal_class,
            params=params,
            location=location,
            monitor_id=monitor_id if monitor_id is not None else signal,
        )
        self._planned[signal] = planned
        return planned

    def __len__(self) -> int:
        return len(self._planned)

    def __iter__(self):
        return iter(self._planned.values())

    def __contains__(self, signal: str) -> bool:
        return signal in self._planned

    def __getitem__(self, signal: str) -> PlannedAssertion:
        return self._planned[signal]

    @property
    def signals(self) -> List[str]:
        """The monitored signals, in planning order."""
        return list(self._planned)

    def assertions_at(self, location: str) -> List[PlannedAssertion]:
        """The assertions placed in module *location* (step 7 review)."""
        return [p for p in self._planned.values() if p.location == location]

    def build_monitor_bank(self, enabled: Optional[Iterable[str]] = None):
        """Step 8: instantiate monitors for the planned assertions.

        *enabled* restricts instantiation to a subset of monitor ids —
        this is how the evaluation builds its eight system versions (each
        EA alone, and all together).
        """
        from repro.core.monitor import MonitorBank

        enabled_set = set(enabled) if enabled is not None else None
        bank = MonitorBank()
        for planned in self._planned.values():
            if enabled_set is not None and planned.monitor_id not in enabled_set:
                continue
            bank.add(
                planned.signal,
                planned.signal_class,
                planned.params,
                monitor_id=planned.monitor_id,
            )
        return bank
