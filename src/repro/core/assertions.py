"""Executable assertion engines (Section 2.2, Tables 2 and 3).

The assertions are *generic algorithms instantiated with parameters*: one
engine per main signal category, configured by a
:class:`~repro.core.parameters.ContinuousParams` or
:class:`~repro.core.parameters.DiscreteParams`.

Continuous signals (Table 2).  Each test of a sample ``s`` against the
previously tested sample ``s'`` runs at most five assertions:

* tests **1** and **2** (domain bounds ``s <= smax`` and ``s >= smin``) are
  always executed; if either fails the entire test fails;
* the remaining tests depend on the *signal status* (the relation between
  ``s`` and ``s'``) and the test passes if **any one** of them holds:

  - ``s > s'``: **3a** change is a legal increase, or **4a** wrap-around is
    allowed and the change is a legal decrease *through* the domain edge;
  - ``s < s'``: **3b** change is a legal decrease, or **4b** wrap-around is
    allowed and the change is a legal increase through the domain edge;
  - ``s = s'``: **3c** the signal is monotonically decreasing and a zero
    decrease is within its parameters, or **4c** it is monotonically
    increasing and a zero increase is within its parameters, or **5c** it
    is a random signal whose parameters admit a zero change.

Discrete signals (Table 3).  Random discrete signals assert ``s in D``;
sequential signals additionally assert ``s in T(s')``.

A violation of any constraint is interpreted as the detection of an error.
"""

from __future__ import annotations

import dataclasses
from typing import Hashable, Optional, Tuple, Union

from repro.core.classes import SignalClass
from repro.core.parameters import ContinuousParams, DiscreteParams, ParameterError

__all__ = [
    "AssertionResult",
    "ContinuousAssertion",
    "DiscreteAssertion",
    "build_assertion",
    "PASS",
]

Number = Union[int, float]


@dataclasses.dataclass(frozen=True)
class AssertionResult:
    """Outcome of one executable-assertion test.

    ``ok`` is the verdict.  ``failed_tests`` names the Table-2/Table-3
    tests that were evaluated and did not hold; ``passed_test`` names the
    test that validated the sample (for the alternative tests 3a-5c) when
    the verdict is a pass.
    """

    ok: bool
    failed_tests: Tuple[str, ...] = ()
    passed_test: Optional[str] = None

    def __bool__(self) -> bool:
        return self.ok


#: Shared result for the common all-clear case (avoids churn in hot loops).
PASS = AssertionResult(True)
_PASS_FIRST = AssertionResult(True, passed_test="first-sample")


class ContinuousAssertion:
    """Executable assertion for a continuous signal (Table 2)."""

    __slots__ = (
        "params",
        "_smin",
        "_smax",
        "_rmin_incr",
        "_rmax_incr",
        "_rmin_decr",
        "_rmax_decr",
        "_wrap",
        "_hold_ok",
    )

    def __init__(self, params: ContinuousParams) -> None:
        self.params = params
        # Unpacked copies: attribute loads off __slots__ are measurably
        # cheaper than dataclass field access in the 1-ms simulation loop.
        self._smin = params.smin
        self._smax = params.smax
        self._rmin_incr = params.rmin_incr
        self._rmax_incr = params.rmax_incr
        self._rmin_decr = params.rmin_decr
        self._rmax_decr = params.rmax_decr
        self._wrap = params.wrap
        self._hold_ok = self._unchanged_permitted(params)

    @staticmethod
    def _unchanged_permitted(p: ContinuousParams) -> bool:
        """Precompute the s = s' alternatives (tests 3c, 4c, 5c of Table 2)."""
        test_3c = p.increase_forbidden and p.rmin_decr == 0
        test_4c = p.decrease_forbidden and p.rmin_incr == 0
        test_5c = p.is_random() and (p.rmin_incr == 0 or p.rmin_decr == 0)
        return test_3c or test_4c or test_5c

    # -- hot path --------------------------------------------------------

    def holds(self, s: Number, s_prev: Optional[Number]) -> bool:
        """Fast boolean form of :meth:`check` for simulation inner loops."""
        if s > self._smax or s < self._smin:
            return False
        if s_prev is None:
            return True
        if s > s_prev:
            delta = s - s_prev
            if self._rmin_incr <= delta <= self._rmax_incr:
                return True
            if self._wrap:
                wrapped = (s_prev - self._smin) + (self._smax - s)
                return self._rmin_decr <= wrapped <= self._rmax_decr
            return False
        if s < s_prev:
            delta = s_prev - s
            if self._rmin_decr <= delta <= self._rmax_decr:
                return True
            if self._wrap:
                wrapped = (self._smax - s_prev) + (s - self._smin)
                return self._rmin_incr <= wrapped <= self._rmax_incr
            return False
        return self._hold_ok

    # -- diagnostic path ---------------------------------------------------

    def check(self, s: Number, s_prev: Optional[Number]) -> AssertionResult:
        """Run the Table-2 test battery and report which tests failed/passed.

        ``s_prev`` is the previously *tested* value ``s'``; pass ``None``
        on the first test of a signal, in which case only the domain
        bounds (tests 1 and 2) apply.
        """
        failed = []
        if s > self._smax:
            failed.append("1")
        if s < self._smin:
            failed.append("2")
        if failed:
            return AssertionResult(False, tuple(failed))
        if s_prev is None:
            return _PASS_FIRST

        if s > s_prev:
            delta = s - s_prev
            if self._rmin_incr <= delta <= self._rmax_incr:
                return AssertionResult(True, passed_test="3a")
            failed.append("3a")
            if self._wrap:
                wrapped = (s_prev - self._smin) + (self._smax - s)
                if self._rmin_decr <= wrapped <= self._rmax_decr:
                    return AssertionResult(True, ("3a",), "4a")
            failed.append("4a")
            return AssertionResult(False, tuple(failed))

        if s < s_prev:
            delta = s_prev - s
            if self._rmin_decr <= delta <= self._rmax_decr:
                return AssertionResult(True, passed_test="3b")
            failed.append("3b")
            if self._wrap:
                wrapped = (self._smax - s_prev) + (s - self._smin)
                if self._rmin_incr <= wrapped <= self._rmax_incr:
                    return AssertionResult(True, ("3b",), "4b")
            failed.append("4b")
            return AssertionResult(False, tuple(failed))

        # s == s': tests 3c / 4c / 5c on the parameter template itself.
        p = self.params
        if p.increase_forbidden and p.rmin_decr == 0:
            return AssertionResult(True, passed_test="3c")
        if p.decrease_forbidden and p.rmin_incr == 0:
            return AssertionResult(True, ("3c",), "4c")
        if p.is_random() and (p.rmin_incr == 0 or p.rmin_decr == 0):
            return AssertionResult(True, ("3c", "4c"), "5c")
        return AssertionResult(False, ("3c", "4c", "5c"))


class DiscreteAssertion:
    """Executable assertion for a discrete signal (Table 3)."""

    __slots__ = ("params", "_domain", "_transitions")

    def __init__(self, params: DiscreteParams) -> None:
        self.params = params
        self._domain = params.domain
        self._transitions = params.transitions

    # -- hot path --------------------------------------------------------

    def holds(self, s: Hashable, s_prev: Optional[Hashable]) -> bool:
        """Fast boolean form of :meth:`check` for simulation inner loops."""
        if s not in self._domain:
            return False
        if self._transitions is None or s_prev is None:
            return True
        allowed = self._transitions.get(s_prev)
        if allowed is None:
            # s' itself was corrupted outside D between tests; the only
            # checkable property left is domain membership, which held.
            return True
        return s in allowed

    # -- diagnostic path ---------------------------------------------------

    def check(self, s: Hashable, s_prev: Optional[Hashable]) -> AssertionResult:
        """Run the Table-3 tests and report which failed.

        Test ids: ``"D"`` for domain membership ``s in D`` and ``"T"`` for
        the sequential transition test ``s in T(s')``.
        """
        if s not in self._domain:
            failed = ("D", "T") if self._transitions is not None else ("D",)
            return AssertionResult(False, failed)
        if self._transitions is None or s_prev is None:
            return AssertionResult(True, passed_test="D")
        allowed = self._transitions.get(s_prev)
        if allowed is None:
            return AssertionResult(True, passed_test="D")
        if s in allowed:
            return AssertionResult(True, passed_test="T")
        return AssertionResult(False, ("T",))


Assertion = Union[ContinuousAssertion, DiscreteAssertion]


def build_assertion(
    signal_class: SignalClass,
    params: Union[ContinuousParams, DiscreteParams],
) -> Assertion:
    """Instantiate the generic assertion algorithm for a classified signal.

    Validates that *params* matches the Table-1 template of *signal_class*
    before building the engine, so a mis-declared signal fails loudly at
    configuration time rather than silently mis-detecting at run time.
    """
    if signal_class.is_continuous:
        if not isinstance(params, ContinuousParams):
            raise ParameterError(f"{signal_class} requires ContinuousParams")
        from repro.core.parameters import validate_continuous

        validate_continuous(params, signal_class)
        return ContinuousAssertion(params)

    if not isinstance(params, DiscreteParams):
        raise ParameterError(f"{signal_class} requires DiscreteParams")
    actual = params.classify()
    if actual is not signal_class:
        raise ParameterError(
            f"discrete parameters describe {actual}, not the requested {signal_class}"
        )
    return DiscreteAssertion(params)
