"""Signal parameter sets ``Pcont`` and ``Pdisc`` (Section 2.1, Table 1).

A continuous signal is characterised by seven parameters::

    smax        maximum value
    smin        minimum value
    rmin_incr   minimum increase rate (per test)
    rmax_incr   maximum increase rate (per test)
    rmin_decr   minimum decrease rate (per test)
    rmax_decr   maximum decrease rate (per test)
    wrap        whether wrap-around at the domain edges is allowed

A discrete signal is characterised by its valid domain ``D`` and, for
sequential signals, the transition relation ``T(d)`` mapping each value of
``D`` to the set of values it may change to.

Each signal class of :class:`repro.core.classes.SignalClass` imposes the
constraints of Table 1 on these parameters; :func:`validate_continuous`
and the constructors below enforce them.  Signals whose behaviour differs
between phases of system operation carry one parameter set per *mode*
(:class:`ModalParameterSet`).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Hashable, Iterable, Mapping, Optional, Union

from repro.core.classes import SignalClass

__all__ = [
    "ParameterError",
    "ContinuousParams",
    "DiscreteParams",
    "ModalParameterSet",
    "classify_continuous",
    "validate_continuous",
    "linear_transition_map",
]

Number = Union[int, float]


class ParameterError(ValueError):
    """Raised when a parameter set violates the constraints of Table 1."""


@dataclasses.dataclass(frozen=True)
class ContinuousParams:
    """The parameter set ``Pcont`` for a continuous signal.

    Rates are expressed per *test* (per invocation of the assertion), not
    per unit of wall-clock time: the paper's assertions compare the current
    sample ``s`` against the previous tested sample ``s'``.
    """

    smin: Number
    smax: Number
    rmin_incr: Number = 0
    rmax_incr: Number = 0
    rmin_decr: Number = 0
    rmax_decr: Number = 0
    wrap: bool = False

    def __post_init__(self) -> None:
        if self.smax <= self.smin:
            raise ParameterError(
                f"smax ({self.smax}) must be strictly greater than smin ({self.smin})"
            )
        for name in ("rmin_incr", "rmax_incr", "rmin_decr", "rmax_decr"):
            if getattr(self, name) < 0:
                raise ParameterError(f"{name} must be non-negative, got {getattr(self, name)}")
        if self.rmax_incr < self.rmin_incr:
            raise ParameterError(
                f"rmax_incr ({self.rmax_incr}) must be >= rmin_incr ({self.rmin_incr})"
            )
        if self.rmax_decr < self.rmin_decr:
            raise ParameterError(
                f"rmax_decr ({self.rmax_decr}) must be >= rmin_decr ({self.rmin_decr})"
            )

    # -- class predicates (Table 1) ------------------------------------

    @property
    def increase_forbidden(self) -> bool:
        return self.rmin_incr == 0 and self.rmax_incr == 0

    @property
    def decrease_forbidden(self) -> bool:
        return self.rmin_decr == 0 and self.rmax_decr == 0

    def is_static_monotonic(self) -> bool:
        """Table 1: one direction forbidden, the other at a fixed rate > 0."""
        incr_static = self.decrease_forbidden and self.rmax_incr == self.rmin_incr > 0
        decr_static = self.increase_forbidden and self.rmax_decr == self.rmin_decr > 0
        return incr_static or decr_static

    def is_dynamic_monotonic(self) -> bool:
        """Table 1: one direction forbidden, the other within a proper range."""
        incr_dynamic = self.decrease_forbidden and self.rmax_incr > self.rmin_incr >= 0
        decr_dynamic = self.increase_forbidden and self.rmax_decr > self.rmin_decr >= 0
        return incr_dynamic or decr_dynamic

    def is_random(self) -> bool:
        """Table 1: both directions permitted (neither fully forbidden)."""
        return not self.increase_forbidden and not self.decrease_forbidden

    @property
    def span(self) -> Number:
        """Width of the valid domain, used for wrap-around arithmetic."""
        return self.smax - self.smin

    # -- convenience constructors ---------------------------------------

    @classmethod
    def static_monotonic(
        cls,
        smin: Number,
        smax: Number,
        rate: Number,
        increasing: bool = True,
        wrap: bool = False,
    ) -> "ContinuousParams":
        """Build a static-monotonic parameter set with the given fixed rate."""
        if rate <= 0:
            raise ParameterError(f"static monotonic rate must be > 0, got {rate}")
        if increasing:
            return cls(smin, smax, rmin_incr=rate, rmax_incr=rate, wrap=wrap)
        return cls(smin, smax, rmin_decr=rate, rmax_decr=rate, wrap=wrap)

    @classmethod
    def dynamic_monotonic(
        cls,
        smin: Number,
        smax: Number,
        rmin: Number,
        rmax: Number,
        increasing: bool = True,
        wrap: bool = False,
    ) -> "ContinuousParams":
        """Build a dynamic-monotonic parameter set with rate in [rmin, rmax]."""
        if not rmax > rmin >= 0:
            raise ParameterError(
                f"dynamic monotonic rates require rmax > rmin >= 0, got [{rmin}, {rmax}]"
            )
        if increasing:
            return cls(smin, smax, rmin_incr=rmin, rmax_incr=rmax, wrap=wrap)
        return cls(smin, smax, rmin_decr=rmin, rmax_decr=rmax, wrap=wrap)

    @classmethod
    def random(
        cls,
        smin: Number,
        smax: Number,
        rmax_incr: Number,
        rmax_decr: Number,
        rmin_incr: Number = 0,
        rmin_decr: Number = 0,
        wrap: bool = False,
    ) -> "ContinuousParams":
        """Build a random-continuous parameter set (both directions allowed)."""
        params = cls(
            smin,
            smax,
            rmin_incr=rmin_incr,
            rmax_incr=rmax_incr,
            rmin_decr=rmin_decr,
            rmax_decr=rmax_decr,
            wrap=wrap,
        )
        if not params.is_random():
            raise ParameterError(
                "random continuous signals must permit change in both directions"
            )
        return params


def classify_continuous(params: ContinuousParams) -> Optional[SignalClass]:
    """Return the continuous leaf class the parameters satisfy, if any.

    The Table-1 templates are mutually exclusive; ``None`` is returned for
    parameter sets that fit no template (e.g. a frozen signal with all
    rates zero).
    """
    if params.is_static_monotonic():
        return SignalClass.CONTINUOUS_MONOTONIC_STATIC
    if params.is_dynamic_monotonic():
        return SignalClass.CONTINUOUS_MONOTONIC_DYNAMIC
    if params.is_random():
        return SignalClass.CONTINUOUS_RANDOM
    return None


def validate_continuous(params: ContinuousParams, signal_class: SignalClass) -> None:
    """Check *params* against the Table-1 template of *signal_class*.

    Raises :class:`ParameterError` on mismatch.
    """
    if not signal_class.is_continuous:
        raise ParameterError(f"{signal_class} is not a continuous class")
    actual = classify_continuous(params)
    if actual is not signal_class:
        raise ParameterError(
            f"parameters {params} satisfy {actual}, not the requested {signal_class}"
        )


@dataclasses.dataclass(frozen=True)
class DiscreteParams:
    """The parameter set ``Pdisc`` for a discrete signal.

    ``domain`` is the set ``D`` of valid values.  ``transitions`` is the
    relation ``T(d)``; it is required for sequential signals and must be
    ``None`` for random discrete signals (which may jump freely inside
    ``D``).
    """

    domain: FrozenSet[Hashable]
    transitions: Optional[Mapping[Hashable, FrozenSet[Hashable]]] = None

    def __post_init__(self) -> None:
        if not self.domain:
            raise ParameterError("discrete domain D must be non-empty")
        object.__setattr__(self, "domain", frozenset(self.domain))
        if self.transitions is not None:
            frozen: Dict[Hashable, FrozenSet[Hashable]] = {}
            for src, dsts in self.transitions.items():
                if src not in self.domain:
                    raise ParameterError(f"transition source {src!r} not in domain D")
                dsts = frozenset(dsts)
                bad = dsts - self.domain
                if bad:
                    raise ParameterError(
                        f"transition targets {sorted(map(repr, bad))} from {src!r} not in domain D"
                    )
                frozen[src] = dsts
            missing = self.domain - frozen.keys()
            if missing:
                raise ParameterError(
                    f"transition relation T must cover every element of D; "
                    f"missing {sorted(map(repr, missing))}"
                )
            object.__setattr__(self, "transitions", frozen)

    @property
    def is_sequential(self) -> bool:
        return self.transitions is not None

    def is_linear(self) -> bool:
        """True when T(d) defines a single fixed (cyclic or terminating) order.

        A linear sequential signal traverses its domain one value after
        another, so every value has at most one successor and every value is
        the successor of at most one other value.
        """
        if self.transitions is None:
            return False
        seen_targets: set = set()
        for dsts in self.transitions.values():
            if len(dsts) > 1:
                return False
            for dst in dsts:
                if dst in seen_targets:
                    return False
                seen_targets.add(dst)
        return True

    def classify(self) -> SignalClass:
        """Return the discrete leaf class these parameters describe."""
        if self.transitions is None:
            return SignalClass.DISCRETE_RANDOM
        if self.is_linear():
            return SignalClass.DISCRETE_SEQUENTIAL_LINEAR
        return SignalClass.DISCRETE_SEQUENTIAL_NONLINEAR

    @classmethod
    def random(cls, domain: Iterable[Hashable]) -> "DiscreteParams":
        """Build a random discrete parameter set over *domain*."""
        return cls(frozenset(domain))

    @classmethod
    def sequential(
        cls,
        transitions: Mapping[Hashable, Iterable[Hashable]],
    ) -> "DiscreteParams":
        """Build a sequential discrete parameter set from a transition map.

        The domain is taken to be the keys of *transitions*.
        """
        domain = frozenset(transitions)
        frozen = {src: frozenset(dsts) for src, dsts in transitions.items()}
        return cls(domain, frozen)


def linear_transition_map(order: Iterable[Hashable], cyclic: bool = True) -> DiscreteParams:
    """Build the ``Pdisc`` of a linear sequential signal traversing *order*.

    With ``cyclic=True`` the last value transitions back to the first (the
    shape of the paper's ``ms_slot_nbr`` scheduler-slot signal).
    """
    values = list(order)
    if len(values) < 2:
        raise ParameterError("a linear sequence needs at least two values")
    if len(set(values)) != len(values):
        raise ParameterError("linear sequence values must be distinct")
    transitions: Dict[Hashable, FrozenSet[Hashable]] = {}
    for current, nxt in zip(values, values[1:]):
        transitions[current] = frozenset({nxt})
    if cyclic:
        transitions[values[-1]] = frozenset({values[0]})
    else:
        transitions[values[-1]] = frozenset()
    return DiscreteParams(frozenset(values), transitions)


class ModalParameterSet:
    """Per-mode parameter sets for a signal (Section 2.1, *Signal modes*).

    A signal whose behaviour differs between operational phases carries one
    ``Pcont``/``Pdisc`` per mode; the active mode selects which set the
    executable assertion is instantiated with.  Mode variables themselves
    are discrete signals and can be monitored in their own right.
    """

    def __init__(
        self,
        modes: Mapping[Hashable, Union[ContinuousParams, DiscreteParams]],
        initial_mode: Hashable,
    ) -> None:
        if not modes:
            raise ParameterError("a modal parameter set needs at least one mode")
        if initial_mode not in modes:
            raise ParameterError(f"initial mode {initial_mode!r} is not a defined mode")
        kinds = {isinstance(p, ContinuousParams) for p in modes.values()}
        if len(kinds) != 1:
            raise ParameterError(
                "all modes of a signal must be of the same kind (Pcont or Pdisc)"
            )
        self._modes = dict(modes)
        self._current = initial_mode

    @property
    def mode(self) -> Hashable:
        """The currently active mode."""
        return self._current

    @mode.setter
    def mode(self, new_mode: Hashable) -> None:
        if new_mode not in self._modes:
            raise ParameterError(f"unknown mode {new_mode!r}")
        self._current = new_mode

    @property
    def modes(self) -> FrozenSet[Hashable]:
        return frozenset(self._modes)

    @property
    def active(self) -> Union[ContinuousParams, DiscreteParams]:
        """The parameter set of the active mode."""
        return self._modes[self._current]

    def params_for(self, mode: Hashable) -> Union[ContinuousParams, DiscreteParams]:
        """The parameter set of an arbitrary *mode*."""
        try:
            return self._modes[mode]
        except KeyError:
            raise ParameterError(f"unknown mode {mode!r}") from None

    def mode_signal_params(self) -> DiscreteParams:
        """``Pdisc`` for the mode variable itself (a random discrete signal)."""
        return DiscreteParams.random(self._modes)
