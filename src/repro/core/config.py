"""Serialisation of parameter sets: configuration-driven instantiation.

The mechanisms are *"generic algorithms that are instantiated with
parameters"* (Section 2.2) — which makes the parameters the natural
configuration artefact: reviewed by engineers, version-controlled,
calibrated by fault-injection.  This module round-trips every parameter
kind through plain dictionaries (JSON-ready) and builds monitors straight
from such configuration:

>>> cfg = {
...     "class": "Co/Mo/St",
...     "params": {"smin": 0, "smax": 65535, "rate": 1, "wrap": True},
... }
>>> monitor = monitor_from_config("mscnt", cfg)
"""

from __future__ import annotations

from typing import Any, Dict, Union

from repro.core.classes import SignalClass, parse_class_code
from repro.core.monitor import SignalMonitor
from repro.core.parameters import (
    ContinuousParams,
    DiscreteParams,
    ModalParameterSet,
    ParameterError,
)

__all__ = [
    "continuous_to_dict",
    "continuous_from_dict",
    "discrete_to_dict",
    "discrete_from_dict",
    "params_to_dict",
    "params_from_dict",
    "modal_to_dict",
    "modal_from_dict",
    "monitor_from_config",
]

Params = Union[ContinuousParams, DiscreteParams]


def continuous_to_dict(params: ContinuousParams) -> Dict[str, Any]:
    """Encode a ``Pcont`` as a plain dictionary."""
    return {
        "kind": "continuous",
        "smin": params.smin,
        "smax": params.smax,
        "rmin_incr": params.rmin_incr,
        "rmax_incr": params.rmax_incr,
        "rmin_decr": params.rmin_decr,
        "rmax_decr": params.rmax_decr,
        "wrap": params.wrap,
    }


def continuous_from_dict(data: Dict[str, Any]) -> ContinuousParams:
    """Decode a ``Pcont``; validates via the normal constructor checks."""
    try:
        return ContinuousParams(
            smin=data["smin"],
            smax=data["smax"],
            rmin_incr=data.get("rmin_incr", 0),
            rmax_incr=data.get("rmax_incr", 0),
            rmin_decr=data.get("rmin_decr", 0),
            rmax_decr=data.get("rmax_decr", 0),
            wrap=bool(data.get("wrap", False)),
        )
    except KeyError as missing:
        raise ParameterError(f"continuous parameter config missing key {missing}") from None


def discrete_to_dict(params: DiscreteParams) -> Dict[str, Any]:
    """Encode a ``Pdisc``.

    The domain is emitted sorted by repr so the encoding is stable; for
    sequential signals the transition relation is emitted per element.
    """
    encoded: Dict[str, Any] = {
        "kind": "discrete",
        "domain": sorted(params.domain, key=repr),
    }
    if params.transitions is not None:
        encoded["transitions"] = {
            repr(src): sorted(dsts, key=repr)
            for src, dsts in sorted(params.transitions.items(), key=lambda kv: repr(kv[0]))
        }
        encoded["_sources"] = sorted(params.transitions, key=repr)
    return encoded


def discrete_from_dict(data: Dict[str, Any]) -> DiscreteParams:
    """Decode a ``Pdisc``.

    Transition sources are matched back to domain elements by ``repr``
    (values themselves may be non-string, e.g. integers).
    """
    try:
        domain = data["domain"]
    except KeyError:
        raise ParameterError("discrete parameter config missing key 'domain'") from None
    if "transitions" not in data:
        return DiscreteParams.random(domain)
    by_repr = {repr(value): value for value in domain}
    transitions = {}
    for src_repr, dsts in data["transitions"].items():
        if src_repr not in by_repr:
            raise ParameterError(f"transition source {src_repr} not found in domain")
        transitions[by_repr[src_repr]] = frozenset(dsts)
    return DiscreteParams(frozenset(domain), transitions)


def params_to_dict(params: Params) -> Dict[str, Any]:
    """Encode either parameter kind."""
    if isinstance(params, ContinuousParams):
        return continuous_to_dict(params)
    if isinstance(params, DiscreteParams):
        return discrete_to_dict(params)
    raise ParameterError(f"cannot encode parameters of type {type(params).__name__}")


def params_from_dict(data: Dict[str, Any]) -> Params:
    """Decode either parameter kind (dispatch on the ``kind`` field)."""
    kind = data.get("kind")
    if kind == "continuous":
        return continuous_from_dict(data)
    if kind == "discrete":
        return discrete_from_dict(data)
    raise ParameterError(f"unknown parameter kind {kind!r}")


def modal_to_dict(modal: ModalParameterSet) -> Dict[str, Any]:
    """Encode a modal parameter set (one entry per mode)."""
    return {
        "kind": "modal",
        "initial_mode": modal.mode,
        "modes": {
            str(mode): params_to_dict(modal.params_for(mode)) for mode in modal.modes
        },
    }


def modal_from_dict(data: Dict[str, Any]) -> ModalParameterSet:
    """Decode a modal parameter set (modes keyed by string)."""
    try:
        modes = {
            mode: params_from_dict(encoded) for mode, encoded in data["modes"].items()
        }
        return ModalParameterSet(modes, initial_mode=data["initial_mode"])
    except KeyError as missing:
        raise ParameterError(f"modal parameter config missing key {missing}") from None


def monitor_from_config(name: str, config: Dict[str, Any]) -> SignalMonitor:
    """Build a :class:`SignalMonitor` from a configuration dictionary.

    ``config`` holds the Table-4-style class code under ``"class"`` and
    the parameter encoding under ``"params"``.  Continuous parameter
    encodings may use the shorthand constructor fields (``rate`` for
    static-monotonic, ``rmin``/``rmax`` for dynamic-monotonic) instead of
    the six raw rate fields.
    """
    try:
        signal_class = parse_class_code(config["class"])
        raw = dict(config["params"])
    except KeyError as missing:
        raise ParameterError(f"monitor config missing key {missing}") from None

    if signal_class.is_continuous:
        if "rate" in raw:
            params: Params = ContinuousParams.static_monotonic(
                raw["smin"],
                raw["smax"],
                raw["rate"],
                increasing=raw.get("increasing", True),
                wrap=raw.get("wrap", False),
            )
        elif "rmin" in raw or "rmax" in raw:
            params = ContinuousParams.dynamic_monotonic(
                raw["smin"],
                raw["smax"],
                raw.get("rmin", 0),
                raw["rmax"],
                increasing=raw.get("increasing", True),
                wrap=raw.get("wrap", False),
            )
        else:
            raw.setdefault("kind", "continuous")
            params = continuous_from_dict(raw)
    else:
        raw.setdefault("kind", "discrete")
        params = discrete_from_dict(raw)

    return SignalMonitor(
        name,
        signal_class,
        params,
        monitor_id=config.get("monitor_id", name),
        reference_policy=config.get("reference_policy", "observed"),
    )
