"""Dynamic (adaptive) constraints — the extension the paper points to.

Section 2.1: *"These parameters are static, but dynamic constraints as in
[4] and [14] may also be considered."*  This module provides that
extension: estimators that observe a signal during fault-free operation
and derive/refresh ``Pcont`` rate limits, plus a monitor wrapper that
re-instantiates its assertion when the learned envelope changes.

Two estimators are provided:

* :class:`WindowedRateEstimator` — tracks the extreme per-test increase
  and decrease over a sliding window and pads them with a safety margin
  (the style of dynamic acceptance tests in Stroph & Clarke [4]).
* :class:`EwmaRateEstimator` — exponentially-weighted envelope that adapts
  faster and tolerates drifting dynamics (in the spirit of the model-based
  bounds of Clegg & Marzullo [14]).

Learned constraints never widen beyond a configured hard envelope, so an
error burst during the learning phase cannot teach the detector to accept
arbitrary behaviour.
"""

from __future__ import annotations

import collections
from typing import Deque, Optional, Union

from repro.core.assertions import ContinuousAssertion
from repro.core.parameters import ContinuousParams, ParameterError

__all__ = [
    "WindowedRateEstimator",
    "EwmaRateEstimator",
    "AdaptiveContinuousMonitor",
]

Number = Union[int, float]


class WindowedRateEstimator:
    """Sliding-window min/max envelope of per-test signal change.

    ``margin`` multiplies the observed extreme rates (e.g. ``1.2`` for a
    20 % guard band).  Until ``window`` samples are seen the estimator
    reports ``None`` and the caller should fall back to static limits.
    """

    def __init__(self, window: int = 64, margin: float = 1.25) -> None:
        if window < 2:
            raise ParameterError("window must be at least 2 samples")
        if margin < 1.0:
            raise ParameterError("margin must be >= 1.0")
        self.window = window
        self.margin = margin
        self._deltas: Deque[Number] = collections.deque(maxlen=window)
        self._prev: Optional[Number] = None

    def observe(self, value: Number) -> None:
        """Feed one (trusted) sample."""
        if self._prev is not None:
            self._deltas.append(value - self._prev)
        self._prev = value

    @property
    def ready(self) -> bool:
        return len(self._deltas) >= self.window - 1

    def rate_bounds(self) -> Optional[tuple]:
        """``(rmax_incr, rmax_decr)`` learned so far, or ``None``."""
        if not self.ready:
            return None
        max_incr = max((d for d in self._deltas if d > 0), default=0)
        max_decr = max((-d for d in self._deltas if d < 0), default=0)
        return (max_incr * self.margin, max_decr * self.margin)


class EwmaRateEstimator:
    """Exponentially-weighted envelope of per-test signal change.

    The envelope decays towards the recent magnitude of change with factor
    ``alpha`` but is bumped immediately when exceeded, so it reacts to
    growing dynamics within one sample while shrinking slowly.
    """

    def __init__(self, alpha: float = 0.05, margin: float = 1.25) -> None:
        if not 0.0 < alpha < 1.0:
            raise ParameterError("alpha must be in (0, 1)")
        if margin < 1.0:
            raise ParameterError("margin must be >= 1.0")
        self.alpha = alpha
        self.margin = margin
        self._prev: Optional[Number] = None
        self._incr_env = 0.0
        self._decr_env = 0.0
        self._samples = 0

    def observe(self, value: Number) -> None:
        if self._prev is not None:
            delta = value - self._prev
            if delta >= 0:
                if delta > self._incr_env:
                    self._incr_env = float(delta)
                else:
                    self._incr_env += self.alpha * (delta - self._incr_env)
            else:
                mag = -delta
                if mag > self._decr_env:
                    self._decr_env = float(mag)
                else:
                    self._decr_env += self.alpha * (mag - self._decr_env)
            self._samples += 1
        self._prev = value

    @property
    def ready(self) -> bool:
        return self._samples >= 8

    def rate_bounds(self) -> Optional[tuple]:
        if not self.ready:
            return None
        return (self._incr_env * self.margin, self._decr_env * self.margin)


class AdaptiveContinuousMonitor:
    """A continuous-random monitor whose rate limits are learned on line.

    ``hard_params`` is the widest acceptable envelope (typically physical
    limits); learned limits only ever *tighten* it.  During the learning
    phase the hard envelope alone is enforced.

    This is deliberately a separate class from
    :class:`repro.core.monitor.SignalMonitor`: adaptive tests trade the
    formal-verifiability of the static mechanisms (Section 2.2) for
    tighter envelopes, and the caller should choose explicitly.
    """

    def __init__(
        self,
        name: str,
        hard_params: ContinuousParams,
        estimator: Optional[WindowedRateEstimator] = None,
        refresh_every: int = 32,
    ) -> None:
        if not hard_params.is_random():
            raise ParameterError(
                "adaptive monitoring targets random continuous signals; "
                "monotonic signals already have tight static envelopes"
            )
        if refresh_every < 1:
            raise ParameterError("refresh_every must be >= 1")
        self.name = name
        self.hard_params = hard_params
        self.estimator = estimator if estimator is not None else WindowedRateEstimator()
        self.refresh_every = refresh_every
        self._assertion = ContinuousAssertion(hard_params)
        self._active_params = hard_params
        self._prev: Optional[Number] = None
        self._since_refresh = 0
        self.tests_run = 0
        self.violations = 0

    @property
    def active_params(self) -> ContinuousParams:
        """The parameter set currently enforced (hard or learned)."""
        return self._active_params

    def _maybe_refresh(self) -> None:
        self._since_refresh += 1
        if self._since_refresh < self.refresh_every:
            return
        self._since_refresh = 0
        bounds = self.estimator.rate_bounds()
        if bounds is None:
            return
        rmax_incr, rmax_decr = bounds
        hard = self.hard_params
        # Learned limits only tighten the hard envelope and must keep the
        # Table-1 random template valid (both directions permitted).
        rmax_incr = max(min(rmax_incr, hard.rmax_incr), 1e-12)
        rmax_decr = max(min(rmax_decr, hard.rmax_decr), 1e-12)
        learned = ContinuousParams(
            hard.smin,
            hard.smax,
            rmin_incr=0,
            rmax_incr=rmax_incr,
            rmin_decr=0,
            rmax_decr=rmax_decr,
            wrap=hard.wrap,
        )
        self._active_params = learned
        self._assertion = ContinuousAssertion(learned)

    def test(self, value: Number) -> bool:
        """Test one sample; returns ``True`` when the sample is accepted.

        Accepted samples feed the estimator (rejected ones must not, or an
        attacker error could widen the learned envelope).
        """
        self.tests_run += 1
        ok = self._assertion.holds(value, self._prev)
        if ok:
            self.estimator.observe(value)
            self._prev = value
            self._maybe_refresh()
        else:
            self.violations += 1
            self._prev = value
        return ok
