"""Analytical error-detection coverage model (Section 2.4).

Given that an error has occurred, the paper defines::

    Pem   = Pr{error location is in a monitored signal}
    Pen   = Pr{error location is not in a monitored signal} = 1 - Pem
    Pprop = Pr{error propagates to a monitored signal}
    Pds   = Pr{error detected | error located in a monitored signal}

and the total detection probability

    Pdetect = (Pen * Pprop + Pem) * Pds.

``Pds`` is a property of the mechanisms + system alone and can be measured
separately (error set E1 of the evaluation); ``Pdetect`` additionally
depends on where errors occur (error set E2).
"""

from __future__ import annotations

import dataclasses

__all__ = [
    "CoverageModel",
    "total_detection_probability",
    "required_pds",
]


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value}")


def total_detection_probability(pem: float, pprop: float, pds: float) -> float:
    """``Pdetect = (Pen * Pprop + Pem) * Pds`` with ``Pen = 1 - Pem``."""
    _check_probability("pem", pem)
    _check_probability("pprop", pprop)
    _check_probability("pds", pds)
    pen = 1.0 - pem
    return (pen * pprop + pem) * pds


def required_pds(pdetect_target: float, pem: float, pprop: float) -> float:
    """Invert the model: the ``Pds`` needed to reach a ``Pdetect`` target.

    Raises :class:`ValueError` when the target is unreachable (the
    reach factor ``Pen * Pprop + Pem`` caps ``Pdetect`` even with perfect
    per-signal detection).
    """
    _check_probability("pdetect_target", pdetect_target)
    _check_probability("pem", pem)
    _check_probability("pprop", pprop)
    reach = (1.0 - pem) * pprop + pem
    if reach == 0.0:
        if pdetect_target == 0.0:
            return 0.0
        raise ValueError("errors never reach a monitored signal; Pdetect is 0")
    pds = pdetect_target / reach
    if pds > 1.0:
        raise ValueError(
            f"Pdetect target {pdetect_target} unreachable: reach factor is {reach:.4f}"
        )
    return pds


@dataclasses.dataclass(frozen=True)
class CoverageModel:
    """The Section-2.4 model as a value object.

    Attributes mirror the paper's probabilities.  ``pen`` and ``pdetect``
    are derived.
    """

    pem: float
    pprop: float
    pds: float

    def __post_init__(self) -> None:
        _check_probability("pem", self.pem)
        _check_probability("pprop", self.pprop)
        _check_probability("pds", self.pds)

    @property
    def pen(self) -> float:
        """``Pr{error location is not in a monitored signal}``."""
        return 1.0 - self.pem

    @property
    def reach(self) -> float:
        """``Pr{error is, or propagates to, a monitored signal}``."""
        return self.pen * self.pprop + self.pem

    @property
    def pdetect(self) -> float:
        """Total detection probability."""
        return self.reach * self.pds

    def with_pds(self, pds: float) -> "CoverageModel":
        """A copy with a different measured ``Pds`` (e.g. from a campaign)."""
        return CoverageModel(self.pem, self.pprop, pds)
