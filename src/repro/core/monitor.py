"""Signal monitors: stateful on-line application of executable assertions.

A :class:`SignalMonitor` owns the assertion engine for one signal plus the
state the Table-2/Table-3 tests need between invocations (the previously
tested value ``s'`` and, for modal signals, the active mode).  Monitors
report violations as :class:`DetectionEvent` records through a
:class:`DetectionLog` — the software analogue of the paper's digital
output pin that the FIC3 time-stamps.

The paper tests exactly one signal per test routine; a
:class:`MonitorBank` is merely a registry of such single-signal monitors,
not a joint check.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Hashable, Iterator, List, Optional, Union

from repro.core.assertions import (
    AssertionResult,
    ContinuousAssertion,
    DiscreteAssertion,
    build_assertion,
)
from repro.core.classes import SignalClass
from repro.core.parameters import (
    ContinuousParams,
    DiscreteParams,
    ModalParameterSet,
    ParameterError,
)
from repro.core.recovery import RecoveryStrategy

__all__ = [
    "DetectionEvent",
    "DetectionLog",
    "SignalMonitor",
    "MonitorBank",
]

Params = Union[ContinuousParams, DiscreteParams]


@dataclasses.dataclass(frozen=True)
class DetectionEvent:
    """One assertion violation: which signal, when, and what failed."""

    signal: str
    time: float
    value: Hashable
    previous: Optional[Hashable]
    result: AssertionResult
    monitor_id: Optional[str] = None


class DetectionLog:
    """Time-stamped record of detections (the experiment's 'output pin').

    The log keeps every event plus O(1) access to the statistics the
    evaluation needs: whether anything was detected and the time of the
    first detection.

    ``tracer`` optionally names a :class:`repro.obs.TraceBus`; every
    recorded detection is then also published as a structured
    ``monitor/detection`` trace event.  The attribute is ``None`` by
    default, so tracing disabled costs one predicate check per
    *violation* (the pass path never reaches the log).
    """

    __slots__ = ("events", "_first_time", "tracer")

    def __init__(self, tracer=None) -> None:
        self.events: List[DetectionEvent] = []
        self._first_time: Optional[float] = None
        self.tracer = tracer

    def record(self, event: DetectionEvent) -> None:
        if self._first_time is None:
            self._first_time = event.time
        self.events.append(event)
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(
                "monitor",
                "detection",
                time_ms=event.time,
                signal=event.signal,
                monitor=event.monitor_id,
                value=event.value,
                previous=event.previous,
                failed_tests=list(event.result.failed_tests),
            )

    @property
    def detected(self) -> bool:
        """Whether at least one detection was recorded."""
        return self._first_time is not None

    @property
    def first_detection_time(self) -> Optional[float]:
        """Time of the first recorded detection, or ``None``."""
        return self._first_time

    def first_detection_by(self, monitor_id: str) -> Optional[float]:
        """Time of the first detection reported by a specific monitor."""
        for event in self.events:
            if event.monitor_id == monitor_id:
                return event.time
        return None

    def clear(self) -> None:
        self.events.clear()
        self._first_time = None

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[DetectionEvent]:
        return iter(self.events)


class SignalMonitor:
    """On-line executable assertion for one signal.

    Parameters
    ----------
    name:
        Signal name (used in detection events).
    signal_class:
        Leaf of the Figure-1 taxonomy.
    params:
        ``Pcont``/``Pdisc`` for the signal, or a
        :class:`~repro.core.parameters.ModalParameterSet` with one set per
        operational mode.
    log:
        Destination for detection events; a private log is created when
        omitted.
    recovery:
        Optional strategy invoked on violation; its replacement value is
        returned from :meth:`test` and becomes the new reference ``s'``.
    reference_policy:
        What becomes ``s'`` after a violation with no recovery configured:
        ``"observed"`` (default) adopts the erroneous sample — the
        behaviour of a bare assertion that keeps monitoring the signal as
        it finds it — while ``"last-valid"`` keeps the pre-error
        reference, re-flagging the signal until it returns to a state
        consistent with the old reference.
    monitor_id:
        Identifier recorded on events (the paper's EA1..EA7 labels).
    """

    __slots__ = (
        "name",
        "signal_class",
        "log",
        "recovery",
        "monitor_id",
        "_modal",
        "_assertions",
        "_assertion",
        "_prev",
        "_last_valid",
        "_reference_observed",
        "tests_run",
        "violations",
    )

    def __init__(
        self,
        name: str,
        signal_class: SignalClass,
        params: Union[Params, ModalParameterSet],
        log: Optional[DetectionLog] = None,
        recovery: Optional[RecoveryStrategy] = None,
        reference_policy: str = "observed",
        monitor_id: Optional[str] = None,
    ) -> None:
        if reference_policy not in ("observed", "last-valid"):
            raise ParameterError(
                f"reference_policy must be 'observed' or 'last-valid', got {reference_policy!r}"
            )
        self.name = name
        self.signal_class = signal_class
        self.log = log if log is not None else DetectionLog()
        self.recovery = recovery
        self.monitor_id = monitor_id if monitor_id is not None else name
        self._reference_observed = reference_policy == "observed"
        if isinstance(params, ModalParameterSet):
            self._modal = params
            self._assertions = {
                mode: build_assertion(signal_class, params.params_for(mode))
                for mode in params.modes
            }
            self._assertion = self._assertions[params.mode]
        else:
            self._modal = None
            self._assertions = None
            self._assertion = build_assertion(signal_class, params)
        self._prev: Optional[Hashable] = None
        self._last_valid: Optional[Hashable] = None
        self.tests_run = 0
        self.violations = 0

    # -- configuration -----------------------------------------------------

    @property
    def params(self) -> Params:
        """The currently active parameter set."""
        return self._assertion.params

    @property
    def mode(self) -> Optional[Hashable]:
        """Active mode for modal signals, ``None`` otherwise."""
        return self._modal.mode if self._modal is not None else None

    def set_mode(self, mode: Hashable) -> None:
        """Switch to the parameter set of *mode* (Section 2.1, Signal modes).

        The reference value ``s'`` is kept: the paper's modes re-constrain
        an already-flowing signal rather than restarting observation.
        """
        if self._modal is None:
            raise ParameterError(f"signal {self.name!r} has no modes")
        self._modal.mode = mode
        self._assertion = self._assertions[mode]

    @property
    def previous(self) -> Optional[Hashable]:
        """The reference value ``s'`` the next test will compare against."""
        return self._prev

    def reset(self) -> None:
        """Forget the reference value (e.g. across system restarts)."""
        self._prev = None
        self._last_valid = None

    # -- testing -------------------------------------------------------------

    def test(self, value: Hashable, time: float = 0.0) -> Hashable:
        """Run the executable assertion on *value* at *time*.

        Returns the value the consumer should use: *value* itself when the
        test passes, or the recovery strategy's replacement on a violation
        (falling back to *value* when no recovery is configured).
        """
        self.tests_run += 1
        assertion = self._assertion
        if assertion.holds(value, self._prev):
            self._prev = value
            self._last_valid = value
            return value
        result = assertion.check(value, self._prev)
        self.violations += 1
        self.log.record(
            DetectionEvent(
                signal=self.name,
                time=time,
                value=value,
                previous=self._prev,
                result=result,
                monitor_id=self.monitor_id,
            )
        )
        if self.recovery is not None:
            recovered = self.recovery.recover(value, self._prev, assertion.params)
            tracer = self.log.tracer
            if tracer is not None:
                tracer.emit(
                    "recovery",
                    "recovery",
                    time_ms=time,
                    signal=self.name,
                    monitor=self.monitor_id,
                    strategy=type(self.recovery).__name__,
                    rejected=value,
                    replacement=recovered,
                )
            self._prev = recovered
            return recovered
        if self._reference_observed:
            self._prev = value
        return value

    def test_detects(self, value: Hashable, time: float = 0.0) -> bool:
        """Like :meth:`test` but returns whether a violation was flagged."""
        before = self.violations
        self.test(value, time)
        return self.violations != before


class MonitorBank:
    """Registry of single-signal monitors sharing one detection log."""

    def __init__(self, log: Optional[DetectionLog] = None) -> None:
        self.log = log if log is not None else DetectionLog()
        self._monitors: Dict[str, SignalMonitor] = {}

    def add(
        self,
        name: str,
        signal_class: SignalClass,
        params: Union[Params, ModalParameterSet],
        recovery: Optional[RecoveryStrategy] = None,
        reference_policy: str = "observed",
        monitor_id: Optional[str] = None,
    ) -> SignalMonitor:
        """Create, register and return a monitor for signal *name*."""
        if name in self._monitors:
            raise ParameterError(f"a monitor for signal {name!r} already exists")
        monitor = SignalMonitor(
            name,
            signal_class,
            params,
            log=self.log,
            recovery=recovery,
            reference_policy=reference_policy,
            monitor_id=monitor_id,
        )
        self._monitors[name] = monitor
        return monitor

    def __getitem__(self, name: str) -> SignalMonitor:
        return self._monitors[name]

    def __contains__(self, name: str) -> bool:
        return name in self._monitors

    def __len__(self) -> int:
        return len(self._monitors)

    def __iter__(self) -> Iterator[SignalMonitor]:
        return iter(self._monitors.values())

    @property
    def names(self) -> List[str]:
        return list(self._monitors)

    def test(self, name: str, value: Hashable, time: float = 0.0) -> Hashable:
        """Route one sample to the named monitor."""
        return self._monitors[name].test(value, time)

    def reset(self) -> None:
        """Reset every monitor's reference state and clear the shared log."""
        for monitor in self._monitors.values():
            monitor.reset()
        self.log.clear()
