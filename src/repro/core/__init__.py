"""Core library: the paper's signal-classification + executable-assertion scheme."""

from repro.core.classes import (
    CONTINUOUS_CLASSES,
    DISCRETE_CLASSES,
    SignalCategory,
    SignalClass,
    parse_class_code,
)
from repro.core.parameters import (
    ContinuousParams,
    DiscreteParams,
    ModalParameterSet,
    ParameterError,
    classify_continuous,
    linear_transition_map,
    validate_continuous,
)
from repro.core.assertions import (
    AssertionResult,
    ContinuousAssertion,
    DiscreteAssertion,
    build_assertion,
)
from repro.core.monitor import DetectionEvent, DetectionLog, MonitorBank, SignalMonitor
from repro.core.recovery import (
    ClampToDomain,
    ExtrapolateRate,
    HoldLastValid,
    RecoveryStrategy,
    ResetToValue,
    default_recovery_for,
)
from repro.core.coverage import CoverageModel, required_pds, total_detection_probability
from repro.core.dynamic import (
    AdaptiveContinuousMonitor,
    EwmaRateEstimator,
    WindowedRateEstimator,
)
from repro.core.config import (
    continuous_from_dict,
    continuous_to_dict,
    discrete_from_dict,
    discrete_to_dict,
    modal_from_dict,
    modal_to_dict,
    monitor_from_config,
    params_from_dict,
    params_to_dict,
)
from repro.core.process import (
    FmecaEntry,
    InstrumentationPlan,
    PlannedAssertion,
    SignalDeclaration,
    SignalInventory,
)

__all__ = [
    "CONTINUOUS_CLASSES",
    "DISCRETE_CLASSES",
    "SignalCategory",
    "SignalClass",
    "parse_class_code",
    "ContinuousParams",
    "DiscreteParams",
    "ModalParameterSet",
    "ParameterError",
    "classify_continuous",
    "linear_transition_map",
    "validate_continuous",
    "AssertionResult",
    "ContinuousAssertion",
    "DiscreteAssertion",
    "build_assertion",
    "DetectionEvent",
    "DetectionLog",
    "MonitorBank",
    "SignalMonitor",
    "ClampToDomain",
    "ExtrapolateRate",
    "HoldLastValid",
    "RecoveryStrategy",
    "ResetToValue",
    "default_recovery_for",
    "CoverageModel",
    "required_pds",
    "total_detection_probability",
    "AdaptiveContinuousMonitor",
    "EwmaRateEstimator",
    "WindowedRateEstimator",
    "FmecaEntry",
    "InstrumentationPlan",
    "PlannedAssertion",
    "SignalDeclaration",
    "SignalInventory",
    "continuous_from_dict",
    "continuous_to_dict",
    "discrete_from_dict",
    "discrete_to_dict",
    "modal_from_dict",
    "modal_to_dict",
    "monitor_from_config",
    "params_from_dict",
    "params_to_dict",
]
