"""Signal classification scheme (Figure 1 of the paper).

The scheme partitions signals into two main categories:

* **Continuous** signals model quantities of continuous nature in the
  environment (temperatures, pressures, velocities, counters of physical
  events).  They subdivide into *monotonic* signals (which may only move in
  one direction between consecutive tests) and *random* signals (free to
  move either way within rate limits).  Monotonic signals further split
  into *static-rate* (constant change per test) and *dynamic-rate*
  (change bounded by a range).

* **Discrete** signals take values from a finite domain and typically carry
  state information (operating modes, scheduler slots, panel settings).
  They subdivide into *sequential* signals whose transitions are
  restricted (either *linear* -- a fixed cyclic order -- or *non-linear*
  -- an arbitrary transition relation) and *random* signals that may jump
  between any two values of the domain.

Every leaf of the taxonomy maps onto a constraint template over the
parameter sets of :mod:`repro.core.parameters` (Table 1 of the paper).
"""

from __future__ import annotations

import enum

__all__ = [
    "SignalCategory",
    "SignalClass",
    "CONTINUOUS_CLASSES",
    "DISCRETE_CLASSES",
    "parse_class_code",
]


class SignalCategory(enum.Enum):
    """Top-level split of the classification scheme (Figure 1)."""

    CONTINUOUS = "continuous"
    DISCRETE = "discrete"


class SignalClass(enum.Enum):
    """Leaves of the signal classification scheme (Figure 1).

    The enum values double as the abbreviations used in Table 4 of the
    paper (``Co`` = continuous, ``Di`` = discrete, ``Mo`` = monotonic,
    ``Ra`` = random, ``St`` = static rate, ``Dy`` = dynamic rate,
    ``Se`` = sequential, ``Li`` = linear, ``Nl`` = non-linear).
    """

    CONTINUOUS_MONOTONIC_STATIC = "Co/Mo/St"
    CONTINUOUS_MONOTONIC_DYNAMIC = "Co/Mo/Dy"
    CONTINUOUS_RANDOM = "Co/Ra"
    DISCRETE_SEQUENTIAL_LINEAR = "Di/Se/Li"
    DISCRETE_SEQUENTIAL_NONLINEAR = "Di/Se/Nl"
    DISCRETE_RANDOM = "Di/Ra"

    @property
    def category(self) -> SignalCategory:
        """The main category (continuous or discrete) of this class."""
        if self in CONTINUOUS_CLASSES:
            return SignalCategory.CONTINUOUS
        return SignalCategory.DISCRETE

    @property
    def is_continuous(self) -> bool:
        return self.category is SignalCategory.CONTINUOUS

    @property
    def is_discrete(self) -> bool:
        return self.category is SignalCategory.DISCRETE

    @property
    def is_monotonic(self) -> bool:
        """True for the two monotonic continuous classes."""
        return self in (
            SignalClass.CONTINUOUS_MONOTONIC_STATIC,
            SignalClass.CONTINUOUS_MONOTONIC_DYNAMIC,
        )

    @property
    def is_sequential(self) -> bool:
        """True for the two sequential discrete classes."""
        return self in (
            SignalClass.DISCRETE_SEQUENTIAL_LINEAR,
            SignalClass.DISCRETE_SEQUENTIAL_NONLINEAR,
        )


#: The three continuous leaves of Figure 1.
CONTINUOUS_CLASSES = frozenset(
    {
        SignalClass.CONTINUOUS_MONOTONIC_STATIC,
        SignalClass.CONTINUOUS_MONOTONIC_DYNAMIC,
        SignalClass.CONTINUOUS_RANDOM,
    }
)

#: The three discrete leaves of Figure 1.
DISCRETE_CLASSES = frozenset(
    {
        SignalClass.DISCRETE_SEQUENTIAL_LINEAR,
        SignalClass.DISCRETE_SEQUENTIAL_NONLINEAR,
        SignalClass.DISCRETE_RANDOM,
    }
)

_CODE_TABLE = {cls.value: cls for cls in SignalClass}


def parse_class_code(code: str) -> SignalClass:
    """Parse a Table-4 style abbreviation (e.g. ``"Co/Mo/Dy"``).

    Raises :class:`ValueError` for unknown codes.
    """
    try:
        return _CODE_TABLE[code]
    except KeyError:
        valid = ", ".join(sorted(_CODE_TABLE))
        raise ValueError(f"unknown signal class code {code!r}; valid codes: {valid}") from None
