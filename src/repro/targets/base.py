"""The target protocol: what a workload must provide to the harness.

The paper's central generality claim (Section 2) is that the signal
classification scheme and the generic executable assertions are
*target-independent* — only the parameter sets, the memory layout and
the failure semantics are system-specific.  This module is that seam in
code: a :class:`Target` bundles everything the campaign grid, the
parallel engine, the static linter and the CLIs need to know about one
workload, so those layers never import a concrete system.

A target provides:

* a **memory** object (``.map`` is the injectable
  :class:`~repro.memory.memmap.MemoryMap`, ``.signal_variable(name)``
  resolves a monitored signal to its :class:`~repro.memory.memmap.Variable`)
  — the surface the E1/E2 error-set builders and the injectors use;
* the **monitored signals** and the **system versions** (one per
  assertion mechanism plus the aggregate ``"All"`` build of Section 3.4);
* ``boot()`` — a freshly built system for one run, exposing
  ``run(injector) -> RunResult`` and a ``detection_log``;
* a **failure classification** (via the booted system) and a
  ``timeout_summary`` for runs the engine aborts on wall clock;
* ``lint_target()`` — the Section-2.3 instrumentation plan plus FMECA
  table, so ``python -m repro.analysis`` can lint any registered target.

:class:`TestCase` and :class:`RunResult` live here because every layer
above the targets shares them; :mod:`repro.arrestor.system` re-exports
both for backwards compatibility.
"""

from __future__ import annotations

import abc
import copy
import dataclasses
import pickle
from typing import Any, List, Optional, Tuple

from repro.plant.failure import FailureVerdict

__all__ = [
    "TestCase",
    "RunResult",
    "BootedSystem",
    "Snapshot",
    "Target",
    "validate_target",
]


@dataclasses.dataclass(frozen=True)
class TestCase:
    """One point of the experimental grid, as two positive magnitudes.

    For the arrestor the axes are literal — aircraft mass (kg) and
    engagement velocity (m/s).  Other targets reinterpret the same grid
    (the tank-level workload reads them as outflow demand and initial
    level); keeping a single test-case type lets checkpoints, run keys
    and result CSVs stay target-agnostic.
    """

    mass_kg: float
    velocity_mps: float

    def __post_init__(self) -> None:
        if self.mass_kg <= 0:
            raise ValueError(f"mass must be positive, got {self.mass_kg}")
        if self.velocity_mps <= 0:
            raise ValueError(f"velocity must be positive, got {self.velocity_mps}")


@dataclasses.dataclass(frozen=True)
class RunResult:
    """Readouts of one experiment run (target-agnostic).

    ``summary`` is the target's own physics readout (e.g. an
    :class:`~repro.plant.failure.ArrestmentSummary`); everything the
    experiment harness aggregates is in the shared fields.
    """

    test_case: TestCase
    summary: Any
    verdict: FailureVerdict
    detected: bool
    first_detection_ms: Optional[float]
    detection_count: int
    first_injection_ms: Optional[float]
    injection_count: int
    wedged: bool
    duration_ms: int
    watchdog_fired_ms: Optional[float] = None

    @property
    def failed(self) -> bool:
        return self.verdict.failed

    @property
    def detection_latency_ms(self) -> Optional[float]:
        """First-injection-to-first-detection latency (Table 8's measure)."""
        if self.first_detection_ms is None or self.first_injection_ms is None:
            return None
        return self.first_detection_ms - self.first_injection_ms

    @property
    def detected_with_watchdog(self) -> bool:
        """Detection by the assertions *or* the (optional) watchdog.

        The paper's measures count assertion detections only
        (:attr:`detected`); this widened measure backs the watchdog
        ablation.
        """
        return self.detected or self.watchdog_fired_ms is not None


class BootedSystem(abc.ABC):
    """What :meth:`Target.boot` returns: one system, ready for one run.

    Concrete systems need not inherit from this class — it documents the
    duck-typed surface the campaign controller uses (``register`` is via
    :func:`Target.boot`, not isinstance checks).
    """

    @abc.abstractmethod
    def run(self, injector=None) -> RunResult:
        """Execute the run; *injector* is ticked every millisecond."""

    @property
    @abc.abstractmethod
    def detection_log(self):
        """The run's :class:`~repro.core.monitor.DetectionLog`."""


@dataclasses.dataclass(frozen=True)
class Snapshot:
    """A captured booted-system state, restorable into fresh run copies.

    ``codec`` names the capture strategy: ``"pickle"`` stores the system
    as bytes (the default — restoring is a single ``loads``, cheaper
    than re-booting the module graph), ``"deepcopy"`` keeps a pristine
    object template for systems whose state does not pickle.  Either
    way, :meth:`Target.restore` hands out an *independent* copy per
    call, so one snapshot serves any number of runs without any run
    leaking corrupted state into the next.
    """

    codec: str
    payload: Any

    def __post_init__(self) -> None:
        if self.codec not in ("pickle", "deepcopy"):
            raise ValueError(f"unknown snapshot codec {self.codec!r}")


class Target(abc.ABC):
    """One workload the fault-injection harness can drive end to end."""

    #: Registry name (``--target`` value); concrete classes override.
    name: str = ""
    #: One-line description shown by ``--list-targets``.
    description: str = ""

    # -- static surface ------------------------------------------------------

    @property
    @abc.abstractmethod
    def versions(self) -> Tuple[str, ...]:
        """The system versions of the E1-style experiment.

        One version per assertion mechanism plus the aggregate ``"All"``
        build (the Section-3.4 convention every target follows)."""

    @property
    @abc.abstractmethod
    def monitored_signals(self) -> Tuple[str, ...]:
        """Monitored signal names, in error-set numbering order."""

    @abc.abstractmethod
    def memory(self) -> Any:
        """A fresh memory object: ``.map`` plus ``.signal_variable(name)``."""

    @abc.abstractmethod
    def test_cases(self) -> List[TestCase]:
        """The full experimental grid (the paper's 25 cases)."""

    def version_eas(self, version: str) -> Optional[Tuple[str, ...]]:
        """Mechanism ids enabled in a named version (``None`` = all)."""
        if version == "All":
            return None
        return (version,)

    # -- error sets ----------------------------------------------------------

    def e1_error_set(self):
        """E1: one bit-flip error per bit of each monitored signal."""
        from repro.injection.errors import build_e1_error_set

        return build_e1_error_set(self.memory(), signals=self.monitored_signals)

    def e2_error_set(self, seed: int = 2000):
        """E2: random (address, bit) errors over the RAM and stack areas."""
        from repro.injection.errors import build_e2_error_set

        return build_e2_error_set(self.memory(), seed=seed)

    # -- execution -----------------------------------------------------------

    @abc.abstractmethod
    def boot(
        self,
        test_case: TestCase,
        version: str = "All",
        run_config: Any = None,
        classifier: Any = None,
    ) -> Any:
        """A freshly built system for one run (reboot-per-run semantics).

        The returned object satisfies the :class:`BootedSystem` surface.
        *run_config* and *classifier* are target-specific and optional;
        ``None`` selects the target's defaults.
        """

    @abc.abstractmethod
    def timeout_summary(self, test_case: TestCase, duration_s: float) -> Any:
        """The physics summary of a run aborted on wall clock.

        Used by the engine to synthesise the wedged record of a timed-out
        run; the verdict itself is supplied by the controller."""

    # -- snapshots -----------------------------------------------------------

    def supports_snapshots(self) -> bool:
        """Whether booted systems may be captured/restored via snapshots.

        The default implementation snapshots any system whose object
        graph pickles (falling back to deep copy), which holds for both
        built-in targets.  A target wrapping unrestorable resources
        (sockets, co-processes, real hardware) overrides this to return
        ``False`` and the harness silently reverts to reboot-per-run.
        """
        return True

    def snapshot(self, system: Any) -> Snapshot:
        """Capture *system* (typically pristine or prefix-advanced).

        The default pickles the system; systems that cannot pickle are
        kept as a deep-copy template.  Restored copies must behave
        byte-identically to the captured system — the determinism tests
        and the committed golden trace enforce this for the built-ins.
        """
        try:
            payload = pickle.dumps(system, protocol=pickle.HIGHEST_PROTOCOL)
            return Snapshot(codec="pickle", payload=payload)
        except Exception:
            return Snapshot(codec="deepcopy", payload=copy.deepcopy(system))

    def restore(self, snapshot: Snapshot) -> Any:
        """A fresh, independent system copy from a :class:`Snapshot`."""
        if snapshot.codec == "pickle":
            return pickle.loads(snapshot.payload)
        return copy.deepcopy(snapshot.payload)

    # -- batch execution -----------------------------------------------------

    def supports_batch(self) -> bool:
        """Whether :meth:`run_batch` can vectorize eligible runs.

        ``False`` by default: batching is an opt-in capability backed by
        a target-specific kernel in :mod:`repro.targets.batch` that the
        equivalence suite pins against the serial path.  Targets without
        a kernel (or on numpy-less installs) simply stay serial.
        """
        return False

    def run_batch(self, specs: List[Any]) -> List[RunResult]:
        """Run many injection runs in one vectorized pass.

        Each spec carries ``version``, ``signal``, ``signal_bit``,
        ``mass_kg``, ``velocity_mps``, ``injection_period_ms`` and
        ``injection_start_ms`` (the campaign engine's ``RunSpec`` and
        :class:`repro.targets.batch.core.BatchRunSpec` both qualify).
        Results are returned in spec order and must be identical to
        booting and running each spec serially — the serial path stays
        the oracle, this is purely an execution strategy.
        """
        raise NotImplementedError(
            f"target {self.name!r} does not implement batch execution"
        )

    def fingerprint_sources(self) -> Tuple[str, ...]:
        """Module/package names whose source code determines run results.

        The incremental result store hashes these sources into the
        content-addressed key of every stored record, so editing any of
        them invalidates exactly the affected target's cache.  The
        default covers the shared simulation stack plus the package the
        concrete target class lives in; targets with code outside that
        package extend the tuple (see :class:`ArrestorTarget`).
        """
        package = type(self).__module__.rsplit(".", 1)[0]
        return (
            "repro.core",
            "repro.memory",
            "repro.plant",
            "repro.rtos",
            "repro.injection",
            "repro.targets.base",
            "repro.targets.snapshot",
            "repro.experiments.testcases",
            # The execution engine and the campaign task graph decide
            # how runs execute, replay, and aggregate, so their source
            # is part of every stored record's content address.
            "repro.experiments.graph",
            "repro.experiments.dag",
            "repro.experiments.parallel",
            "repro.experiments.persistence",
            "repro.experiments.results",
            "repro.experiments.store",
            "repro.stats",
            package,
        )

    # -- static analysis -----------------------------------------------------

    @abc.abstractmethod
    def lint_target(self):
        """``(InstrumentationPlan, fmeca_entries)`` for the static linter."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


def validate_target(target: Target, check_source: bool = False) -> Target:
    """Sanity-check a target's static surface at registration time.

    With *check_source* the target's fingerprinted source modules are
    additionally parsed and run through the source-scope rules
    (EA4xx/EA5xx; see :mod:`repro.analysis.source`) and any
    error-severity finding raises — the slow, thorough variant used by
    the analysis self-check, not by registration.
    """
    if not target.name:
        raise ValueError(f"{type(target).__name__} must set a non-empty name")
    versions = tuple(target.versions)
    if "All" not in versions:
        raise ValueError(
            f"target {target.name!r} must offer the aggregate 'All' version"
        )
    if len(set(versions)) != len(versions):
        raise ValueError(f"target {target.name!r} has duplicate versions")
    signals = tuple(target.monitored_signals)
    if not signals:
        raise ValueError(f"target {target.name!r} monitors no signals")
    if len(set(signals)) != len(signals):
        raise ValueError(f"target {target.name!r} has duplicate monitored signals")
    if check_source:
        from repro.analysis.engine import analyze_target_source

        report = analyze_target_source(target)
        if not report.ok:
            raise ValueError(
                f"target {target.name!r} fails source-level analysis:\n"
                f"{report.format_text()}"
            )
    return target
