"""The tank-level workload behind the target protocol.

Exercising a second, structurally different control system through the
unchanged experiment stack is the paper's Section-2 generality claim:
the assertion classes, the instrumentation process and the evaluation
set-up are target-independent; only the signals and their envelopes
change.
"""

from __future__ import annotations

import dataclasses
from typing import Any, List, Tuple

from repro.targets.base import Target, TestCase

__all__ = ["TankLevelTarget"]


class TankLevelTarget(Target):
    """Two-node tank-level controller (the second reference workload)."""

    name = "tanklevel"
    description = "two-node tank-level controller, 5 signals, 5-slot schedule"

    @property
    def versions(self) -> Tuple[str, ...]:
        from repro.targets.tanklevel.instrumentation import EA_IDS

        return tuple(EA_IDS) + ("All",)

    @property
    def monitored_signals(self) -> Tuple[str, ...]:
        from repro.targets.tanklevel.memory import MONITORED_SIGNALS

        return MONITORED_SIGNALS

    def memory(self) -> Any:
        from repro.targets.tanklevel.memory import TankMemory

        return TankMemory()

    def test_cases(self) -> List[TestCase]:
        from repro.experiments.testcases import make_test_cases

        return make_test_cases()

    def boot(self, test_case, version="All", run_config=None, classifier=None):
        from repro.targets.tanklevel.system import TankRunConfig, TankSystem

        enabled = self.version_eas(version)
        if run_config is not None:
            if not isinstance(run_config, TankRunConfig):
                raise TypeError(
                    f"tanklevel expects a TankRunConfig, got "
                    f"{type(run_config).__name__}"
                )
            config = dataclasses.replace(run_config, enabled_eas=enabled)
            return TankSystem(test_case, config=config, classifier=classifier)
        return TankSystem(test_case, classifier=classifier, enabled_eas=enabled)

    def timeout_summary(self, test_case, duration_s):
        from repro.targets.tanklevel.plant import (
            TankRunSummary,
            demand_for,
            initial_level_for,
        )

        return TankRunSummary(
            demand_lps=demand_for(test_case.mass_kg),
            initial_level_mm=initial_level_for(test_case.velocity_mps),
            max_level_mm=0.0,
            min_level_mm=0.0,
            final_level_mm=0.0,
            settled=False,
            duration_s=duration_s,
        )

    def supports_batch(self) -> bool:
        from repro.targets.batch.core import numpy_available

        return numpy_available()

    def run_batch(self, specs):
        from repro.targets.batch.tanklevel import run_batch

        return run_batch(specs)

    def fingerprint_sources(self) -> Tuple[str, ...]:
        # The batch kernel is an alternate execution path for this
        # target's runs, so its source is result-determining too.
        return super().fingerprint_sources() + (
            "repro.targets.batch.core",
            "repro.targets.batch.tanklevel",
        )

    def lint_target(self):
        from repro.targets.tanklevel.instrumentation import (
            build_instrumentation_plan,
            default_fmeca_entries,
        )

        return build_instrumentation_plan(), default_fmeca_entries()
