"""The tank plant: a drum-boiler-style level process and its failure spec.

The second reference workload regulates the water level of a supply tank
feeding a variable consumer: an inlet valve (0..1023 counts) admits up to
``Q_MAX_LPS`` litres per second, the consumer draws a constant demand,
and a slave-side trim drain bleeds off a small flow that shrinks as the
controller's set-point rises.  Level is measured in millimetres over a
1250-mm tank; the control objective is to hold 800 mm within a 100-mm
band (the delivered service of Section 3.3, restated for this plant).

The test-case grid is reinterpreted on this target's physical axes:
``mass_kg`` becomes consumer demand (8000..20000 -> 2.22..5.56 l/s) and
``velocity_mps`` the initial fill level (40..70 -> 500..875 mm), so the
same 5 x 5 evaluation grid spans the plant's whole operating envelope.
"""

from __future__ import annotations

import dataclasses

from repro.plant.failure import FailureVerdict

__all__ = [
    "TANK_HEIGHT_MM",
    "TARGET_LEVEL_MM",
    "LEVEL_TOLERANCE_MM",
    "Q_MAX_LPS",
    "Q_TRIM_LPS",
    "MM_PER_LITRE",
    "demand_for",
    "initial_level_for",
    "TankPlant",
    "TankRunSummary",
    "TankFailureClassifier",
]

#: Physical tank height; reaching it is an overflow failure.
TANK_HEIGHT_MM = 1250.0

#: The level the controller must hold, and the delivered-service band.
TARGET_LEVEL_MM = 800.0
LEVEL_TOLERANCE_MM = 100.0

#: Inlet valve authority at full command (1023 counts).
Q_MAX_LPS = 9.0

#: Slave trim drain at set-point 0; shrinks linearly to 0 at full set-point.
Q_TRIM_LPS = 0.5

#: Level change per litre of net flow (tank cross-section).
MM_PER_LITRE = 25.0


def demand_for(mass_kg: float) -> float:
    """Consumer demand (l/s) for a test case's ``mass_kg`` axis."""
    return mass_kg / 3600.0


def initial_level_for(velocity_mps: float) -> float:
    """Initial fill level (mm) for a test case's ``velocity_mps`` axis."""
    return velocity_mps * 12.5


@dataclasses.dataclass(frozen=True)
class TankRunSummary:
    """What the plant's readouts say about one regulation run."""

    demand_lps: float
    initial_level_mm: float
    max_level_mm: float
    min_level_mm: float
    final_level_mm: float
    settled: bool
    duration_s: float


class TankPlant:
    """First-order level dynamics driven by valve counts and trim flow."""

    def __init__(self, demand_lps: float, initial_level_mm: float) -> None:
        if demand_lps <= 0:
            raise ValueError(f"demand must be positive, got {demand_lps}")
        if not 0 <= initial_level_mm <= TANK_HEIGHT_MM:
            raise ValueError(
                f"initial level must be within the tank, got {initial_level_mm}"
            )
        self.demand_lps = demand_lps
        self.initial_level_mm = initial_level_mm
        self.level_mm = float(initial_level_mm)
        self.max_level_mm = self.level_mm
        self.min_level_mm = self.level_mm

    def advance(self, dt_s: float, valve_counts: int, trim_lps: float) -> None:
        """One integration step under the given actuator commands."""
        counts = min(max(valve_counts, 0), 1023)
        inflow = Q_MAX_LPS * counts / 1023.0
        outflow = self.demand_lps + trim_lps
        self.level_mm += (inflow - outflow) * MM_PER_LITRE * dt_s
        if self.level_mm > TANK_HEIGHT_MM:
            self.level_mm = TANK_HEIGHT_MM
        elif self.level_mm < 0.0:
            self.level_mm = 0.0
        if self.level_mm > self.max_level_mm:
            self.max_level_mm = self.level_mm
        elif self.level_mm < self.min_level_mm:
            self.min_level_mm = self.level_mm

    def summary(self, duration_s: float) -> TankRunSummary:
        return TankRunSummary(
            demand_lps=self.demand_lps,
            initial_level_mm=self.initial_level_mm,
            max_level_mm=self.max_level_mm,
            min_level_mm=self.min_level_mm,
            final_level_mm=self.level_mm,
            settled=abs(self.level_mm - TARGET_LEVEL_MM) <= LEVEL_TOLERANCE_MM,
            duration_s=duration_s,
        )


class TankFailureClassifier:
    """The delivered-service constraints of the tank-level system.

    1. **Overflow** — the level must never reach the tank brim;
    2. **Dry** — the tank must never run empty (the consumer loses supply);
    3. **Regulation** — at the end of the observation window the level
       must sit within the tolerance band around the target.
    """

    def __init__(
        self,
        target_mm: float = TARGET_LEVEL_MM,
        tolerance_mm: float = LEVEL_TOLERANCE_MM,
        height_mm: float = TANK_HEIGHT_MM,
    ) -> None:
        if tolerance_mm <= 0:
            raise ValueError(f"tolerance must be positive, got {tolerance_mm}")
        self.target_mm = target_mm
        self.tolerance_mm = tolerance_mm
        self.height_mm = height_mm

    def classify(self, summary: TankRunSummary) -> FailureVerdict:
        violated = []
        if summary.max_level_mm >= self.height_mm:
            violated.append("overflow")
        if summary.min_level_mm <= 0.0:
            violated.append("dry")
        if abs(summary.final_level_mm - self.target_mm) > self.tolerance_mm:
            violated.append("regulation")
        return FailureVerdict(bool(violated), tuple(violated))
