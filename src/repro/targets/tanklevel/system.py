"""The tank-level target system: controller node + drain node + plant.

The controller node runs a five-slot 1-ms schedule — LEVEL_S (sensor
acquisition), CTRL (P-control with slew limiting), VALVE_A (actuator
output), COMM (set-point to the drain node), IDLE — clocked by a CLOCK
step that advances ``tick`` and ``slot_id`` every millisecond and runs
the EA4/EA5 assertions there, mirroring the arrestor's Table-4
placements.  All application state lives in the node's emulated memory,
so a bit-flip at any (address, bit) corrupts exactly the state the
control law computes with.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Optional, Tuple

from repro.core.monitor import DetectionLog, SignalMonitor
from repro.targets.base import RunResult, TestCase
from repro.targets.tanklevel import instrumentation as ins
from repro.targets.tanklevel.memory import TankMemory
from repro.targets.tanklevel.plant import (
    Q_TRIM_LPS,
    TARGET_LEVEL_MM,
    TankFailureClassifier,
    TankPlant,
    demand_for,
    initial_level_for,
)

__all__ = ["TankRunConfig", "TankNode", "DrainNode", "TankSystem"]

#: Simulation step: the 1-ms resolution of the node's time base.
_DT_S = 0.001

#: Schedule slots.
SLOT_LEVEL_S = 0
SLOT_CTRL = 1
SLOT_VALVE_A = 2
SLOT_COMM = 3
SLOT_IDLE = 4


@dataclasses.dataclass(frozen=True)
class TankRunConfig:
    """Per-run configuration of the tank-level system and its observation."""

    enabled_eas: Optional[Tuple[str, ...]] = None
    with_recovery: bool = False
    #: Observation window; regulation settles within ~4 s from any corner
    #: of the test-case grid, so 5 s bounds every run.
    observe_ms: int = 5000

    def __post_init__(self) -> None:
        if self.observe_ms <= 0:
            raise ValueError("observe_ms must be positive")
        if self.enabled_eas is not None:
            object.__setattr__(self, "enabled_eas", tuple(self.enabled_eas))


class DrainNode:
    """The slave node: a trim drain whose flow shrinks as SetPoint rises."""

    def __init__(self) -> None:
        self.received = 0

    def receive(self, set_point: int) -> None:
        """Latch the set-point from the COMM buffer (clamped as a DAC would)."""
        self.received = min(max(set_point, 0), ins.SETPOINT_MAX)

    @property
    def trim_lps(self) -> float:
        return Q_TRIM_LPS * (ins.SETPOINT_MAX - self.received) / ins.SETPOINT_MAX


class TankNode:
    """The controller node: memory, monitors and the five-slot schedule."""

    def __init__(
        self,
        plant: TankPlant,
        enabled_eas: Optional[Iterable[str]] = None,
        detection_log: Optional[DetectionLog] = None,
        with_recovery: bool = False,
    ) -> None:
        self.plant = plant
        self.mem = TankMemory()
        self.detection_log = (
            detection_log if detection_log is not None else DetectionLog()
        )
        self.monitors: Dict[str, SignalMonitor] = ins.build_monitors(
            enabled_eas, log=self.detection_log, with_recovery=with_recovery
        )
        self._mon_sp = self.monitors.get("EA1")
        self._mon_level = self.monitors.get("EA2")
        self._mon_acc = self.monitors.get("EA3")
        self._mon_slot = self.monitors.get("EA4")
        self._mon_tick = self.monitors.get("EA5")
        self.boot()

    def boot(self) -> None:
        """Power-on initialisation of the node's memory image."""
        mem = self.mem
        mem.map.clear()
        # The sensor is read once during init, so the level variable (and
        # hence EA2's first reference) starts at the true level.
        mem.level.set(int(round(self.plant.level_mm)))
        mem.level_raw_latch.set(int(round(self.plant.level_mm)))
        # The init code validates that first sample, giving EA2 a valid
        # reference before any injection can land; without it a corrupted
        # first test would seed hold-last-valid recovery with smin and
        # lock every later (genuine) reading out on the rate tests.
        if self._mon_level is not None:
            self._mon_level.test(mem.level.get(), 0)
        mem.diag_boot_flags.set(0xA55A)
        for var, value in zip(
            mem.config_mirror,
            (
                int(TARGET_LEVEL_MM),
                ins.SETPOINT_MAX,
                ins.SLEW_PER_MS,
                ins.CTRL_KP,
                ins.N_SLOTS,
                0,
            ),
        ):
            var.set(value)

    @staticmethod
    def _checked(monitor: Optional[SignalMonitor], var, now_ms: int) -> int:
        """Read *var* through *monitor*; write a recovery value back."""
        value = var.get()
        if monitor is None:
            return value
        result = monitor.test(value, now_ms)
        if result != value:
            var.set(result)
        return result

    # -- modules -------------------------------------------------------------

    def _level_s(self, now_ms: int) -> None:
        """LEVEL_S: acquire the level sensor into the application image."""
        latch = int(round(self.plant.level_mm))
        self.mem.level_raw_latch.set(latch)
        self.mem.level.set(self.mem.level_raw_latch.get())

    def _ctrl(self, now_ms: int) -> None:
        """CTRL: P-control with slew limiting, plus the volume account."""
        mem = self.mem
        level = self._checked(self._mon_level, mem.level, now_ms)
        # Elapsed time since the last pass scales the slew budget (the
        # paper's parameter sources: actuator authority per unit time).
        tick = mem.tick.get()
        elapsed = (tick - mem.last_ctrl_tick.get()) & 0xFFFF
        mem.last_ctrl_tick.set(tick)
        budget = ins.SLEW_PER_MS * elapsed
        # Scratch locals live on the stack and are read back, so stack
        # corruption propagates into the set-point.
        mem.ctrl_err.set(int(TARGET_LEVEL_MM) - level)
        err = mem.ctrl_err.get()
        mem.ctrl_sp_raw.set(min(max(ins.CTRL_KP * err, 0), ins.SETPOINT_MAX))
        sp_raw = mem.ctrl_sp_raw.get()
        sp = mem.set_point.get()
        if sp_raw > sp:
            sp = min(sp + budget, sp_raw)
        elif sp_raw < sp:
            sp = max(sp - budget, sp_raw)
        mem.set_point.set(sp)
        mem.flow_acc.set(mem.flow_acc.get() + (sp >> 6))
        self._checked(self._mon_acc, mem.flow_acc, now_ms)

    def _valve_a(self, now_ms: int) -> None:
        """VALVE_A: drive the inlet valve from the (tested) set-point."""
        sp = self._checked(self._mon_sp, self.mem.set_point, now_ms)
        self.mem.valve_cmd.set(min(max(sp, 0), ins.SETPOINT_MAX))

    def _comm(self, now_ms: int) -> None:
        """COMM: publish the set-point to the drain node's receive buffer."""
        self.mem.comm_set_point.set(self.mem.set_point.get())

    # -- execution -----------------------------------------------------------

    def tick(self, now_ms: int) -> int:
        """One millisecond of node execution; returns the slot that ran."""
        mem = self.mem
        mem.tick.add(1)
        self._checked(self._mon_tick, mem.tick, now_ms)
        # CLOCK consumes slot_id to pick the next slot, so EA4 tests the
        # stored value at that consumption — before the wrap idiom
        # ``if (++slot >= N) slot = 0`` folds a corrupted value back into
        # the valid domain (the 5-slot cycle divides the 20-ms injection
        # period, so a post-wrap test would always observe the one legal
        # wrap transition and miss the corruption entirely).
        slot = self._checked(self._mon_slot, mem.slot_id, now_ms) + 1
        if slot >= ins.N_SLOTS:
            slot = 0
        mem.slot_id.set(slot)
        if slot == SLOT_LEVEL_S:
            self._level_s(now_ms)
        elif slot == SLOT_CTRL:
            self._ctrl(now_ms)
        elif slot == SLOT_VALVE_A:
            self._valve_a(now_ms)
        elif slot == SLOT_COMM:
            self._comm(now_ms)
        return slot


@dataclasses.dataclass
class _LoopState:
    """Loop variables of a (possibly paused) run — see the arrestor's
    :class:`repro.arrestor.system._LoopState` for why they live on the
    system: pausing + snapshotting + resuming must be byte-identical to
    an uninterrupted run."""

    next_ms: int = 0
    last_ms: int = -1
    finished: bool = False


class TankSystem:
    """Controller node + drain node + plant, ready to execute one run."""

    def __init__(
        self,
        test_case: TestCase,
        config: Optional[TankRunConfig] = None,
        classifier: Optional[TankFailureClassifier] = None,
        enabled_eas: Optional[Iterable[str]] = None,
    ) -> None:
        if config is None:
            config = TankRunConfig(
                enabled_eas=tuple(enabled_eas) if enabled_eas is not None else None
            )
        self.test_case = test_case
        self.config = config
        self.classifier = (
            classifier if classifier is not None else TankFailureClassifier()
        )
        self.plant = TankPlant(
            demand_for(test_case.mass_kg),
            initial_level_for(test_case.velocity_mps),
        )
        self.node = TankNode(
            self.plant,
            enabled_eas=config.enabled_eas,
            with_recovery=config.with_recovery,
        )
        self.drain = DrainNode()
        self._loop: Optional[_LoopState] = None

    @property
    def detection_log(self):
        """The controller node's detection log (the target-protocol surface)."""
        return self.node.detection_log

    # -- serving seam (see repro.serve) --------------------------------------

    @property
    def clock_ms(self) -> int:
        """The next millisecond the run loop will execute."""
        return self._loop.next_ms if self._loop is not None else 0

    @property
    def finished(self) -> bool:
        """Whether the observation window has run to completion."""
        return self._loop is not None and self._loop.finished

    @property
    def horizon_ms(self) -> int:
        """The observation window's end (exclusive upper bound on ticks)."""
        return self.config.observe_ms

    @property
    def memory_map(self):
        """The controller node's injectable memory image."""
        return self.node.mem.map

    def run_prefix(self, until_ms: int) -> None:
        """Advance the fault-free run up to (excluding) tick *until_ms*.

        The snapshot-layer hook (see the arrestor's ``run_prefix``): the
        paused system is snapshotted once per (version, case) and every
        injected run restores it instead of re-simulating the prefix.
        """
        if until_ms < 0:
            raise ValueError(f"until_ms must be non-negative, got {until_ms}")
        self._advance(None, until_ms)

    def _advance(self, injector, until_ms: Optional[int]) -> None:
        """The run loop, from the stored state up to *until_ms* (or the end)."""
        state = self._loop
        if state is None:
            state = self._loop = _LoopState()
        if state.finished:
            return
        node = self.node
        mem = node.mem
        plant = self.plant
        drain = self.drain
        memory = mem.map
        now = state.next_ms
        for now in range(state.next_ms, self.config.observe_ms):
            if until_ms is not None and now >= until_ms:
                state.next_ms = now
                state.last_ms = now - 1
                return
            if injector is not None:
                injector.tick(now, memory)
            slot = node.tick(now)
            if slot == SLOT_COMM:
                drain.receive(mem.comm_set_point.get())
            plant.advance(_DT_S, mem.valve_cmd.get(), drain.trim_lps)
        state.next_ms = now + 1
        state.last_ms = now
        state.finished = True

    def run(self, injector=None) -> RunResult:
        """Execute the regulation run; *injector* is ticked every millisecond.

        On a system advanced with :meth:`run_prefix` the loop resumes
        where the prefix paused; otherwise it runs start to finish.
        """
        self._advance(injector, None)
        return self.result_now(injector)

    def result_now(self, injector=None) -> RunResult:
        """The run's result as it stands, without advancing the loop.

        The online serving path uses this to close a session whose
        telemetry stream ended before the observation window did;
        :meth:`run` delegates here after advancing to the end.
        *injector* only supplies the injection counters — anything with
        ``first_injection_ms``/``injections`` attributes duck-types.
        """
        log = self.node.detection_log
        now = self._loop.last_ms if self._loop is not None else -1
        summary = self.plant.summary((now + 1) / 1000.0)
        verdict = self.classifier.classify(summary)
        return RunResult(
            test_case=self.test_case,
            summary=summary,
            verdict=verdict,
            detected=log.detected,
            first_detection_ms=log.first_detection_time,
            detection_count=len(log.events),
            first_injection_ms=(
                injector.first_injection_ms if injector is not None else None
            ),
            injection_count=(injector.injections if injector is not None else 0),
            wedged=False,
            duration_ms=now + 1,
        )
