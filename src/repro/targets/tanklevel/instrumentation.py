"""Section-2.3 instrumentation of the tank-level controller.

The Section-2 process is target-independent; applying it to this
workload yields five monitored signals:

========= ==== ============== ========= =====================================
signal     EA   class          location  envelope source
========= ==== ============== ========= =====================================
SetPoint  EA1  Co/Ra          VALVE_A   controller slew limit (2x margin)
level     EA2  Co/Ra          CTRL      valve/drain authority over one pass
flow_acc  EA3  Co/Mo/Dy       CTRL      per-pass accumulation bound
slot_id   EA4  Di/Se/Li       CLOCK     the five-slot cyclic schedule
tick      EA5  Co/Mo/St       CLOCK     1-ms clock, 16-bit wrap-around
========= ==== ============== ========= =====================================
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple, Union

from repro.core.classes import SignalClass
from repro.core.monitor import DetectionLog, SignalMonitor
from repro.core.parameters import ContinuousParams, DiscreteParams, linear_transition_map
from repro.core.process import FmecaEntry, InstrumentationPlan, SignalInventory
from repro.core.recovery import RecoveryStrategy, default_recovery_for
from repro.targets.tanklevel.plant import TANK_HEIGHT_MM

__all__ = [
    "EA_IDS",
    "SIGNAL_BY_EA",
    "EA_BY_SIGNAL",
    "N_SLOTS",
    "SETPOINT_MAX",
    "SLEW_PER_MS",
    "CTRL_KP",
    "build_signal_inventory",
    "default_fmeca_entries",
    "assertion_parameters",
    "build_instrumentation_plan",
    "build_monitors",
]

#: Mechanism identifiers, in signal order.
EA_IDS = ("EA1", "EA2", "EA3", "EA4", "EA5")

SIGNAL_BY_EA: Dict[str, str] = {
    "EA1": "SetPoint",
    "EA2": "level",
    "EA3": "flow_acc",
    "EA4": "slot_id",
    "EA5": "tick",
}

EA_BY_SIGNAL: Dict[str, str] = {sig: ea for ea, sig in SIGNAL_BY_EA.items()}

#: The five 1-ms schedule slots: LEVEL_S, CTRL, VALVE_A, COMM, IDLE.
N_SLOTS = 5

#: Set-point authority (10-bit DAC counts).
SETPOINT_MAX = 1023

#: Controller slew budget per elapsed millisecond (25 counts per 5-ms pass).
SLEW_PER_MS = 5

#: Proportional gain: set-point counts per millimetre of level error.
CTRL_KP = 8

_TEST_LOCATION: Dict[str, str] = {
    "SetPoint": "VALVE_A",
    "level": "CTRL",
    "flow_acc": "CTRL",
    "slot_id": "CLOCK",
    "tick": "CLOCK",
}

_CLASSIFICATION: Dict[str, SignalClass] = {
    "SetPoint": SignalClass.CONTINUOUS_RANDOM,
    "level": SignalClass.CONTINUOUS_RANDOM,
    "flow_acc": SignalClass.CONTINUOUS_MONOTONIC_DYNAMIC,
    "slot_id": SignalClass.DISCRETE_SEQUENTIAL_LINEAR,
    "tick": SignalClass.CONTINUOUS_MONOTONIC_STATIC,
}


def build_signal_inventory() -> SignalInventory:
    """Steps 1-3: the controller node's signal dataflow."""
    inventory = SignalInventory()
    inventory.declare("level_sensor", "input", "LevelSensor", ["LEVEL_S"])
    inventory.declare("tick", "internal", "CLOCK", ["CTRL"])
    inventory.declare("slot_id", "internal", "CLOCK", ["CLOCK"])
    inventory.declare("level", "internal", "LEVEL_S", ["CTRL"])
    inventory.declare("SetPoint", "internal", "CTRL", ["VALVE_A", "COMM"])
    inventory.declare("flow_acc", "internal", "CTRL", ["CTRL"])
    inventory.declare("valve_cmd", "output", "VALVE_A", ["InletValve"])
    inventory.declare("comm_SetPoint", "output", "COMM", ["DrainNode"])
    return inventory


def default_fmeca_entries() -> Tuple[FmecaEntry, ...]:
    """Step 4: the FMECA table that selects the five monitored signals."""
    return (
        FmecaEntry("SetPoint", "wrong inflow set point", severity=9, occurrence=4),
        FmecaEntry("level", "false level feedback", severity=8, occurrence=4),
        FmecaEntry("flow_acc", "volume account corrupted", severity=7, occurrence=3),
        FmecaEntry("slot_id", "schedule derailed", severity=7, occurrence=3),
        FmecaEntry("tick", "time base corrupted", severity=7, occurrence=3),
        FmecaEntry("valve_cmd", "actuator latch stuck", severity=9, occurrence=1, detectability=4),
        FmecaEntry("comm_SetPoint", "trim set point stale", severity=5, occurrence=2, detectability=5),
        FmecaEntry("level_sensor", "sensor latch corrupted", severity=6, occurrence=2, detectability=5),
    )


# -- assertion envelopes (step 6) ---------------------------------------------

#: SetPoint moves at most SLEW_PER_MS * N_SLOTS counts between VALVE_A
#: tests; the envelope adds ~2x margin.
_SETPOINT_MAX_RATE = 2 * SLEW_PER_MS * N_SLOTS - 2

#: Physical level slew between two CTRL tests (5 ms): full inlet
#: authority is ~1.2 mm, plus quantisation; 8 mm gives >4x margin.
_LEVEL_MAX_RATE = 8

#: flow_acc grows by SetPoint >> 6 per pass, i.e. at most 15.
_FLOW_ACC_MAX_RATE = 16

#: flow_acc stays far below this over any observation window.
_FLOW_ACC_MAX = 60000


def assertion_parameters() -> Dict[str, Union[ContinuousParams, DiscreteParams]]:
    """Step 6: the per-signal ``Pcont``/``Pdisc`` the assertions use."""
    return {
        "SetPoint": ContinuousParams.random(
            0,
            SETPOINT_MAX,
            rmax_incr=_SETPOINT_MAX_RATE,
            rmax_decr=_SETPOINT_MAX_RATE,
        ),
        "level": ContinuousParams.random(
            0,
            int(TANK_HEIGHT_MM),
            rmax_incr=_LEVEL_MAX_RATE,
            rmax_decr=_LEVEL_MAX_RATE,
        ),
        "flow_acc": ContinuousParams.dynamic_monotonic(
            0, _FLOW_ACC_MAX, rmin=0, rmax=_FLOW_ACC_MAX_RATE, increasing=True
        ),
        "slot_id": linear_transition_map(range(N_SLOTS), cyclic=True),
        "tick": ContinuousParams.static_monotonic(0, 0xFFFF, rate=1, wrap=True),
    }


def build_instrumentation_plan() -> InstrumentationPlan:
    """Steps 5-7 for the controller node, validated against the inventory."""
    inventory = build_signal_inventory()
    plan = InstrumentationPlan(inventory)
    params = assertion_parameters()
    for ea in EA_IDS:
        signal = SIGNAL_BY_EA[ea]
        plan.plan(
            signal,
            _CLASSIFICATION[signal],
            params[signal],
            location=_TEST_LOCATION[signal],
            monitor_id=ea,
        )
    return plan


def build_monitors(
    enabled: Optional[Iterable[str]] = None,
    log: Optional[DetectionLog] = None,
    with_recovery: bool = False,
) -> Dict[str, SignalMonitor]:
    """Step 8: instantiate the monitors, keyed by EA id."""
    enabled_set = set(enabled) if enabled is not None else set(EA_IDS)
    unknown = enabled_set - set(EA_IDS)
    if unknown:
        raise ValueError(f"unknown mechanism ids: {sorted(unknown)}")
    shared_log = log if log is not None else DetectionLog()
    params = assertion_parameters()
    monitors: Dict[str, SignalMonitor] = {}
    for ea in EA_IDS:
        if ea not in enabled_set:
            continue
        signal = SIGNAL_BY_EA[ea]
        recovery: Optional[RecoveryStrategy] = None
        if with_recovery:
            recovery = default_recovery_for(params[signal])
        monitors[ea] = SignalMonitor(
            signal,
            _CLASSIFICATION[signal],
            params[signal],
            log=shared_log,
            recovery=recovery,
            monitor_id=ea,
        )
    return monitors
