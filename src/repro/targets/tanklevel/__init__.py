"""The tank-level reference workload (the second registered target).

A two-node water-level control system — controller node, trim-drain
slave node, first-order tank plant — instrumented with five executable
assertions via the same Section-2.3 process as the arrestor, and run
through the identical campaign, analysis and observability stack.
"""

from repro.targets.tanklevel.plant import (
    TankFailureClassifier,
    TankPlant,
    TankRunSummary,
)
from repro.targets.tanklevel.system import TankRunConfig, TankSystem
from repro.targets.tanklevel.target import TankLevelTarget

__all__ = [
    "TankFailureClassifier",
    "TankLevelTarget",
    "TankPlant",
    "TankRunConfig",
    "TankRunSummary",
    "TankSystem",
]
