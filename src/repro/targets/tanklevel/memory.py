"""Memory layout of the tank-level controller node.

A smaller target than the arrestor's master node: 256 bytes of
application RAM and a 512-byte stack area, with an unmapped hole between
them (the regions of a real part's memory map rarely abut).  The five
monitored signals live in RAM together with the unmonitored application
state — actuator latch, communication buffer, sensor latch,
configuration mirror — so random RAM errors keep the realistic mix of
consequences; the stack area holds CTRL's scratch locals, which the
control law reads back every pass, giving stack errors a propagation
path into the set-point.
"""

from __future__ import annotations

from typing import Dict, List

from repro.memory.layout import MemoryRegion, RegionAllocator
from repro.memory.memmap import MemoryMap, Variable

__all__ = ["TankMemory", "RAM_REGION", "STACK_REGION", "MONITORED_SIGNALS"]

RAM_REGION = MemoryRegion("ram", 0x0000, 256)
STACK_REGION = MemoryRegion("stack", 0x0400, 512)

#: The five service-critical signals, in EA1..EA5 order.
MONITORED_SIGNALS = ("SetPoint", "level", "flow_acc", "slot_id", "tick")


class TankMemory:
    """The controller node's emulated memory, symbols and typed handles."""

    #: The monitored-signal names this memory's E1 error set targets
    #: (the generic default of ``build_e1_error_set``).
    MONITORED_SIGNALS = MONITORED_SIGNALS

    def __init__(self) -> None:
        self.map = MemoryMap([RAM_REGION, STACK_REGION])
        self.ram = RegionAllocator(RAM_REGION)
        self.stack = RegionAllocator(STACK_REGION)

        # -- the monitored signals -------------------------------------------
        self.tick = self._var("tick")
        self.slot_id = self._var("slot_id")
        self.level = self._var("level")
        self.set_point = self._var("SetPoint")
        self.flow_acc = self._var("flow_acc")

        # -- unmonitored application state -----------------------------------
        self.valve_cmd = self._var("valve_cmd")
        self.comm_set_point = self._var("comm_SetPoint")
        self.level_raw_latch = self._var("level_raw_latch")
        self.last_ctrl_tick = self._var("last_ctrl_tick")
        self.diag_boot_flags = self._var("diag_boot_flags")

        # -- boot-time configuration mirror (read at initialisation only) ----
        self.config_mirror: List[Variable] = [
            Variable(self.map, sym)
            for sym in self.ram.allocate_array("config_mirror", 6)
        ]

        # Remaining RAM bytes stay unallocated: cold spare capacity, still
        # mapped and injectable, never read.

        # -- stack: CTRL's scratch locals, live every control pass ------------
        self.ctrl_err = Variable(
            self.map, self.stack.allocate("ctrl_err", 2), signed=True
        )
        self.ctrl_sp_raw = Variable(self.map, self.stack.allocate("ctrl_sp_raw", 2))
        # The rest of the stack region is anonymous deep-stack space:
        # injectable, not consulted at the simulated call depth.

    def _var(self, name: str, signed: bool = False) -> Variable:
        return Variable(self.map, self.ram.allocate(name, 2), signed=signed)

    def signal_variable(self, name: str) -> Variable:
        """The :class:`Variable` handle of a monitored signal."""
        mapping: Dict[str, Variable] = {
            "SetPoint": self.set_point,
            "level": self.level,
            "flow_acc": self.flow_acc,
            "slot_id": self.slot_id,
            "tick": self.tick,
        }
        return mapping[name]
