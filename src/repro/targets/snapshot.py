"""Warm-target snapshot caches: boot once, restore per run.

The paper's FIC3 *resets the target system* between runs, and the
campaign engine reproduces that faithfully — but a reset only needs a
pristine *state*, not a rebuilt object graph.  This module keeps one
process-global cache of captured system states and serves every run a
fresh restored copy:

* **Boot snapshots** — one per ``(target, version, test case, run
  config)``: the system exactly as :meth:`Target.boot` leaves it.
  Restoring (a single ``pickle.loads``) replaces re-wiring the module
  graph, monitors and plant on every run.
* **Prefix snapshots** — additionally advanced through the fault-free
  prefix with :meth:`run_prefix` when the campaign injects from
  ``injection_start_ms > 0``.  Every error of the grid shares the same
  fault-free trajectory up to the first injection tick (the injector is
  a strict no-op before its start time), so the prefix is simulated
  **once per (version, case)** instead of once per run — the
  checkpoint-based SWIFI acceleration of the FIC/GOOFI lineage.

Restored runs are byte-identical to cold runs: a snapshot is captured
from a freshly booted system *before* any tracer is attached, every
consumer receives its own independent copy, and the cold-vs-restored
equivalence (full :class:`RunResult` plus detection-event list) is
pinned by tests for every built-in target.

The cache is per process.  Pool workers fork from the dispatcher, so
snapshots pre-warmed in the parent (see ``execute_specs``) are inherited
by every worker at zero cost; workers also warm their own cache across
the chunks they execute.  Disable the whole layer with
``REPRO_SNAPSHOTS=0`` (or per call site) to return to strict
reboot-per-run semantics.
"""

from __future__ import annotations

import dataclasses
import os
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from repro.targets.base import Snapshot, Target, TestCase

__all__ = [
    "SNAPSHOTS_ENV_VAR",
    "snapshots_enabled_default",
    "SnapshotCache",
    "CacheStats",
    "booted_system",
    "prefixed_system",
    "prewarm",
    "cache_stats",
    "clear_cache",
]

#: Set to ``0``/``false``/``off`` to disable snapshot reuse everywhere.
SNAPSHOTS_ENV_VAR = "REPRO_SNAPSHOTS"

#: Entries kept per cache before the least-recently-used is evicted.
#: A full E1 campaign needs versions x cases entries (the arrestor's
#: 8 x 25 = 200 at paper scale); prefix snapshots are the same count.
DEFAULT_CACHE_SIZE = 256


def snapshots_enabled_default() -> bool:
    """The session-wide default: on unless ``REPRO_SNAPSHOTS`` disables it."""
    raw = os.environ.get(SNAPSHOTS_ENV_VAR, "").strip().lower()
    return raw not in ("0", "false", "off", "no")


@dataclasses.dataclass
class CacheStats:
    """Hit/miss/build accounting, exposed for benchmarks and tests."""

    boot_hits: int = 0
    boot_misses: int = 0
    prefix_hits: int = 0
    prefix_misses: int = 0
    evictions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


CacheKey = Tuple[str, str, float, float, str, int]


def _cache_key(
    target: Target,
    version: str,
    test_case: TestCase,
    run_config: Any,
    prefix_ms: int,
) -> CacheKey:
    """The identity of one snapshot.

    ``run_config`` objects are frozen dataclasses; their ``repr`` is a
    complete, stable rendering of every field, which keys differently
    configured campaigns apart without requiring hashability.
    """
    return (
        target.name,
        version,
        test_case.mass_kg,
        test_case.velocity_mps,
        repr(run_config),
        prefix_ms,
    )


class SnapshotCache:
    """An LRU map of :class:`CacheKey` to :class:`Snapshot`."""

    def __init__(self, maxsize: int = DEFAULT_CACHE_SIZE) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be at least 1, got {maxsize}")
        self.maxsize = maxsize
        self.stats = CacheStats()
        self._entries: "OrderedDict[CacheKey, Snapshot]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: CacheKey) -> Optional[Snapshot]:
        snapshot = self._entries.get(key)
        if snapshot is not None:
            self._entries.move_to_end(key)
        return snapshot

    def put(self, key: CacheKey, snapshot: Snapshot) -> None:
        self._entries[key] = snapshot
        self._entries.move_to_end(key)
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        self._entries.clear()
        self.stats = CacheStats()


#: The process-global cache every harness layer shares (and forked pool
#: workers inherit).
_CACHE = SnapshotCache()


def clear_cache() -> None:
    """Drop every cached snapshot (tests; after hot-editing a target)."""
    _CACHE.clear()


def cache_stats() -> CacheStats:
    """The process-global cache's accounting."""
    return _CACHE.stats


def _boot(
    target: Target, test_case: TestCase, version: str, run_config: Any
) -> Any:
    return target.boot(test_case, version, run_config=run_config, classifier=None)


def booted_system(
    target: Target,
    test_case: TestCase,
    version: str = "All",
    run_config: Any = None,
) -> Any:
    """A freshly-restorable booted system for one run (warm-boot path).

    On a cache miss the system is booted once, captured, and the
    *restored copy* is returned — so the very first run already executes
    on the same restore path as every later one, keeping all runs
    uniform.  Only classifier-default boots are cached (a caller-supplied
    classifier instance has no stable identity to key on).
    """
    key = _cache_key(target, version, test_case, run_config, prefix_ms=0)
    snapshot = _CACHE.get(key)
    if snapshot is None:
        _CACHE.stats.boot_misses += 1
        snapshot = target.snapshot(_boot(target, test_case, version, run_config))
        _CACHE.put(key, snapshot)
    else:
        _CACHE.stats.boot_hits += 1
    return target.restore(snapshot)


def prefixed_system(
    target: Target,
    test_case: TestCase,
    version: str,
    prefix_ms: int,
    run_config: Any = None,
) -> Optional[Any]:
    """A system fast-forwarded through the fault-free prefix, or ``None``.

    Sound only when the caller's injector performs its first write at or
    after *prefix_ms* (the campaign passes ``injection_start_ms``), so
    the skipped ticks are provably identical to the fault-free run.
    Returns ``None`` when the target's booted system does not expose the
    ``run_prefix`` capability — callers fall back to a cold run.
    """
    if prefix_ms <= 0:
        return booted_system(target, test_case, version, run_config)
    key = _cache_key(target, version, test_case, run_config, prefix_ms)
    snapshot = _CACHE.get(key)
    if snapshot is None:
        system = _boot(target, test_case, version, run_config)
        run_prefix = getattr(system, "run_prefix", None)
        if run_prefix is None:
            return None
        _CACHE.stats.prefix_misses += 1
        run_prefix(prefix_ms)
        snapshot = target.snapshot(system)
        _CACHE.put(key, snapshot)
    else:
        _CACHE.stats.prefix_hits += 1
    return target.restore(snapshot)


def prewarm(
    target: Target,
    test_case: TestCase,
    version: str,
    prefix_ms: int = 0,
    run_config: Any = None,
) -> bool:
    """Ensure the snapshot for one grid point exists; report availability.

    The dispatcher calls this for every distinct (version, case) of a
    campaign *before* forking its worker pool, so the expensive prefix
    simulations happen exactly once and reach every worker through the
    forked address space instead of being redone per worker.
    """
    if prefix_ms > 0:
        return prefixed_system(target, test_case, version, prefix_ms, run_config) is not None
    booted_system(target, test_case, version, run_config)
    return True
