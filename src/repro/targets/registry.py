"""The scenario registry: target name -> factory.

Every harness layer resolves its workload here instead of importing a
concrete system: ``get_target("tanklevel")`` (or ``get_target(None)``
for the default, overridable via the ``REPRO_TARGET`` environment
variable).  Third-party workloads join with :func:`register_target`;
the built-in targets are registered lazily so importing this module
stays cheap and free of import cycles.
"""

from __future__ import annotations

import importlib
import os
from typing import Callable, Dict, Tuple, Union

from repro.targets.base import Target, validate_target

__all__ = [
    "DEFAULT_TARGET",
    "TARGET_ENV_VAR",
    "register_target",
    "unregister_target",
    "get_target",
    "target_names",
    "default_target_name",
]

#: The workload used when neither an explicit name nor the environment
#: variable selects one: the paper's own target system.
DEFAULT_TARGET = "arrestor"

#: Environment variable naming the session-wide default target.
TARGET_ENV_VAR = "REPRO_TARGET"

TargetFactory = Callable[[], Target]

_factories: Dict[str, TargetFactory] = {}
_instances: Dict[str, Target] = {}


def _lazy(module: str, attr: str) -> TargetFactory:
    def _load() -> Target:
        return getattr(importlib.import_module(module), attr)()

    return _load


#: Built-in workloads, loaded on first use.
_BUILTINS: Dict[str, TargetFactory] = {
    "arrestor": _lazy("repro.targets.arrestor", "ArrestorTarget"),
    "tanklevel": _lazy("repro.targets.tanklevel", "TankLevelTarget"),
}


def register_target(name: str, factory: TargetFactory, replace: bool = False) -> None:
    """Register a workload under *name* (``--target`` / ``RunSpec.target``).

    *factory* is a zero-argument callable returning a
    :class:`~repro.targets.base.Target`; it is invoked lazily on first
    :func:`get_target` and the instance is cached.  Re-registering an
    existing name requires ``replace=True``.
    """
    if not name or not name.replace("_", "").replace("-", "").isalnum():
        raise ValueError(f"target name must be a simple identifier, got {name!r}")
    if not replace and (name in _factories or name in _BUILTINS):
        raise ValueError(f"target {name!r} is already registered")
    _factories[name] = factory
    _instances.pop(name, None)


def unregister_target(name: str) -> None:
    """Remove a third-party registration (built-ins cannot be removed)."""
    if name in _BUILTINS and name not in _factories:
        raise ValueError(f"built-in target {name!r} cannot be unregistered")
    _factories.pop(name, None)
    _instances.pop(name, None)


def target_names() -> Tuple[str, ...]:
    """All registered target names, built-ins first, then alphabetical."""
    extra = sorted(set(_factories) - set(_BUILTINS))
    return tuple(_BUILTINS) + tuple(extra)


def default_target_name() -> str:
    """``$REPRO_TARGET`` when set, else :data:`DEFAULT_TARGET`."""
    return os.environ.get(TARGET_ENV_VAR) or DEFAULT_TARGET


def get_target(name: Union[str, Target, None] = None) -> Target:
    """Resolve *name* to a target instance (cached per name).

    ``None`` selects :func:`default_target_name`; passing an already
    constructed :class:`Target` returns it unchanged, so call sites can
    accept either form.
    """
    if isinstance(name, Target):
        return name
    if name is None:
        name = default_target_name()
    if name in _instances:
        return _instances[name]
    factory = _factories.get(name) or _BUILTINS.get(name)
    if factory is None:
        raise KeyError(
            f"unknown target {name!r}; registered targets: {', '.join(target_names())}"
        )
    target = validate_target(factory())
    _instances[name] = target
    return target
