"""Vectorized batch kernel for the tank-level target.

Replays :class:`repro.targets.tanklevel.system.TankSystem` over ``(N,)``
arrays: every row is one injection run, and one pass over the 5000-tick
observation window advances all rows in lockstep.  The serial system is
the oracle — every statement here mirrors a statement of the serial tick
path, in the same order, on the same 16-bit masked integer arithmetic
and the same float64 plant updates, so results are identical
row-for-row (pinned by ``tests/targets/test_batch_equivalence.py``).

The kernel is *resumable*: :class:`TankBatchKernel` holds the whole
vectorized machine state and advances any number of ticks per call, so
the offline grid path (:func:`run_batch_detailed` — one call over the
full window) and the online serving engine (:mod:`repro.serve` — one
small ``advance`` per telemetry frame round, hundreds of sessions per
numpy step) execute the identical statements in the identical order.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.targets.base import RunResult
from repro.targets.batch.core import (
    BatchOutcome,
    DetectionBook,
    VecMonitor,
    injection_due,
    injection_masks,
    injection_stats,
    require_numpy,
)
from repro.targets.tanklevel import instrumentation as ins
from repro.targets.tanklevel.memory import MONITORED_SIGNALS
from repro.targets.tanklevel.plant import (
    LEVEL_TOLERANCE_MM,
    MM_PER_LITRE,
    Q_MAX_LPS,
    Q_TRIM_LPS,
    TANK_HEIGHT_MM,
    TARGET_LEVEL_MM,
    TankFailureClassifier,
    TankRunSummary,
    demand_for,
    initial_level_for,
)

try:  # pragma: no cover - exercised only on numpy-less installs
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

__all__ = ["OBSERVE_MS", "TankBatchKernel", "run_batch", "run_batch_detailed"]

#: The serial default observation window (TankRunConfig.observe_ms).
OBSERVE_MS = 5000

_MASK16 = 0xFFFF
_TARGET = int(TARGET_LEVEL_MM)


def _monitor_masks(specs):
    """Per-EA row masks: which rows run with each mechanism enabled."""
    version_arr = np.array([spec.version for spec in specs])
    all_rows = version_arr == "All"
    return {ea: all_rows | (version_arr == ea) for ea in ins.EA_IDS}


class TankBatchKernel:
    """The vectorized tank system as a resumable lockstep machine.

    All rows share one sim-clock ``now_ms`` (the next tick to execute);
    ``advance(ticks)`` executes up to *ticks* further milliseconds for
    every row, stopping at the observation window's end.  With
    ``capture_events`` the per-row detection events are recorded into
    the book (see :meth:`drain_events`).
    """

    def __init__(self, specs: Sequence, capture_events: bool = False) -> None:
        require_numpy()
        self.specs = list(specs)
        n = len(self.specs)
        if n == 0:
            raise ValueError("TankBatchKernel needs at least one spec")
        specs = self.specs
        params = ins.assertion_parameters()
        self.ea_rows = _monitor_masks(specs)
        self.monitors = {
            ea: VecMonitor(ea, params[ins.SIGNAL_BY_EA[ea]], n) for ea in ins.EA_IDS
        }
        self.book = DetectionBook(n, capture_events=capture_events)
        self.xor, self.period, self.start = injection_masks(specs, MONITORED_SIGNALS)
        self.always = np.ones(n, dtype=bool)
        self.now_ms = 0

        # -- boot (TankNode.boot on a cleared memory image) ------------------
        self.demand = np.array(
            [demand_for(spec.mass_kg) for spec in specs], dtype=np.float64
        )
        self.level_mm = np.array(
            [initial_level_for(spec.velocity_mps) for spec in specs],
            dtype=np.float64,
        )
        self.initial_level = self.level_mm.copy()
        self.max_level = self.level_mm.copy()
        self.min_level = self.level_mm.copy()
        # int(round(...)) is banker's rounding, same as np.rint.
        self.level = np.rint(self.level_mm).astype(np.int64)
        self.tick = np.zeros(n, dtype=np.int64)
        self.slot_id = np.zeros(n, dtype=np.int64)
        self.set_point = np.zeros(n, dtype=np.int64)
        self.flow_acc = np.zeros(n, dtype=np.int64)
        self.valve_cmd = np.zeros(n, dtype=np.int64)
        self.last_ctrl_tick = np.zeros(n, dtype=np.int64)
        self.drain_received = np.zeros(n, dtype=np.int64)
        # Boot validates the first level sample (EA2's reference seed).
        self.monitors["EA2"].test(self.level, 0, self.ea_rows["EA2"], self.book)

    def __len__(self) -> int:
        return len(self.specs)

    @property
    def finished(self) -> bool:
        return self.now_ms >= OBSERVE_MS

    @property
    def last_ms(self) -> int:
        """The last millisecond executed so far (-1 = none yet)."""
        return self.now_ms - 1

    def drain_events(self) -> List[Tuple[int, int, str]]:
        """Pop captured ``(row, time_ms, monitor_id)`` detection events."""
        return self.book.drain_events()

    def step(self) -> None:
        """Execute one millisecond for every row (the serial tick body)."""
        now = self.now_ms
        monitors = self.monitors
        ea_rows = self.ea_rows
        book = self.book

        # -- injector ---------------------------------------------------------
        due = injection_due(now, self.period, self.start, self.always)
        self.tick ^= np.where(due, self.xor["tick"], 0)
        self.slot_id ^= np.where(due, self.xor["slot_id"], 0)
        self.level ^= np.where(due, self.xor["level"], 0)
        self.set_point ^= np.where(due, self.xor["SetPoint"], 0)
        self.flow_acc ^= np.where(due, self.xor["flow_acc"], 0)

        # -- CLOCK: tick + EA5, slot consumption + EA4, wrap fold ------------
        self.tick = (self.tick + 1) & _MASK16
        monitors["EA5"].test(self.tick, now, ea_rows["EA5"], book)
        monitors["EA4"].test(self.slot_id, now, ea_rows["EA4"], book)
        slot = self.slot_id + 1
        slot = np.where(slot >= ins.N_SLOTS, 0, slot)
        self.slot_id = slot

        # Rows advance their slot counter in lockstep, so each slot's mask
        # is all-False on 4 of every 5 ticks (only a corrupted slot_id
        # desynchronises a row); an empty slot section is the identity on
        # every piece of state it touches, so it is skipped outright.

        # -- LEVEL_S ----------------------------------------------------------
        m_level_s = slot == 0
        if m_level_s.any():
            latch = np.rint(self.level_mm).astype(np.int64) & _MASK16
            self.level = np.where(m_level_s, latch, self.level)

        # -- CTRL -------------------------------------------------------------
        m_ctrl = slot == 1
        if m_ctrl.any():
            lvl = monitors["EA2"].test(
                self.level, now, m_ctrl & ea_rows["EA2"], book
            )
            elapsed = (self.tick - self.last_ctrl_tick) & _MASK16
            self.last_ctrl_tick = np.where(m_ctrl, self.tick, self.last_ctrl_tick)
            budget = ins.SLEW_PER_MS * elapsed
            # ctrl_err is a signed stack scratch: store masks to 16 bits, the
            # read-back sign-extends.
            err_stored = (_TARGET - lvl) & _MASK16
            err = err_stored - ((err_stored & 0x8000) << 1)
            sp_raw = np.minimum(np.maximum(ins.CTRL_KP * err, 0), ins.SETPOINT_MAX)
            sp = self.set_point
            sp_new = np.where(
                sp_raw > sp,
                np.minimum(sp + budget, sp_raw),
                np.where(sp_raw < sp, np.maximum(sp - budget, sp_raw), sp),
            )
            self.set_point = np.where(m_ctrl, sp_new, self.set_point)
            flow_new = (self.flow_acc + (sp_new >> 6)) & _MASK16
            self.flow_acc = np.where(m_ctrl, flow_new, self.flow_acc)
            monitors["EA3"].test(self.flow_acc, now, m_ctrl & ea_rows["EA3"], book)

        # -- VALVE_A ----------------------------------------------------------
        m_valve = slot == 2
        if m_valve.any():
            monitors["EA1"].test(self.set_point, now, m_valve & ea_rows["EA1"], book)
            self.valve_cmd = np.where(
                m_valve,
                np.minimum(np.maximum(self.set_point, 0), ins.SETPOINT_MAX),
                self.valve_cmd,
            )

        # -- COMM + same-tick drain receive -----------------------------------
        m_comm = slot == 3
        if m_comm.any():
            self.drain_received = np.where(
                m_comm,
                np.minimum(np.maximum(self.set_point, 0), ins.SETPOINT_MAX),
                self.drain_received,
            )

        # -- plant ------------------------------------------------------------
        counts = np.minimum(np.maximum(self.valve_cmd, 0), 1023)
        inflow = Q_MAX_LPS * counts / 1023.0
        trim = (
            Q_TRIM_LPS * (ins.SETPOINT_MAX - self.drain_received) / ins.SETPOINT_MAX
        )
        outflow = self.demand + trim
        self.level_mm = self.level_mm + (inflow - outflow) * MM_PER_LITRE * 0.001
        self.level_mm = np.where(
            self.level_mm > TANK_HEIGHT_MM,
            TANK_HEIGHT_MM,
            np.where(self.level_mm < 0.0, 0.0, self.level_mm),
        )
        self.max_level = np.maximum(self.max_level, self.level_mm)
        self.min_level = np.minimum(self.min_level, self.level_mm)
        self.now_ms = now + 1

    def advance(self, ticks: int) -> None:
        """Execute up to *ticks* further milliseconds (lockstep, all rows)."""
        if ticks < 0:
            raise ValueError(f"ticks must be non-negative, got {ticks}")
        end = min(self.now_ms + ticks, OBSERVE_MS)
        while self.now_ms < end:
            self.step()

    def outcome(self, r: int, classifier: Optional[TankFailureClassifier] = None) -> BatchOutcome:
        """Row *r*'s result as it stands after the last executed tick."""
        if classifier is None:
            classifier = TankFailureClassifier()
        spec = self.specs[r]
        last_ms = self.last_ms
        summary = TankRunSummary(
            demand_lps=float(self.demand[r]),
            initial_level_mm=float(self.initial_level[r]),
            max_level_mm=float(self.max_level[r]),
            min_level_mm=float(self.min_level[r]),
            final_level_mm=float(self.level_mm[r]),
            settled=bool(
                abs(float(self.level_mm[r]) - TARGET_LEVEL_MM) <= LEVEL_TOLERANCE_MM
            ),
            duration_s=(last_ms + 1) / 1000.0,
        )
        detected, first_ms, count, first_monitor = self.book.row(r)
        first_injection, injections = injection_stats(
            spec.injection_start_ms, spec.injection_period_ms, last_ms
        )
        result = RunResult(
            test_case=spec.test_case(),
            summary=summary,
            verdict=classifier.classify(summary),
            detected=detected,
            first_detection_ms=first_ms,
            detection_count=count,
            first_injection_ms=first_injection,
            injection_count=injections,
            wedged=False,
            duration_ms=last_ms + 1,
        )
        return BatchOutcome(result=result, first_monitor=first_monitor)

    def outcomes(self) -> List[BatchOutcome]:
        """Every row's outcome (one shared classifier instance)."""
        classifier = TankFailureClassifier()
        return [self.outcome(r, classifier) for r in range(len(self.specs))]


def run_batch_detailed(specs: Sequence) -> List[BatchOutcome]:
    """Run every spec's injection run in one vectorized pass."""
    require_numpy()
    if len(specs) == 0:
        return []
    kernel = TankBatchKernel(specs)
    kernel.advance(OBSERVE_MS)
    return kernel.outcomes()


def run_batch(specs: Sequence) -> List[RunResult]:
    """The ``Target.run_batch`` surface: plain results, kernel detail dropped."""
    return [outcome.result for outcome in run_batch_detailed(specs)]
