"""Vectorized batch kernel for the tank-level target.

Replays :class:`repro.targets.tanklevel.system.TankSystem` over ``(N,)``
arrays: every row is one injection run, and one pass over the 5000-tick
observation window advances all rows in lockstep.  The serial system is
the oracle — every statement here mirrors a statement of the serial tick
path, in the same order, on the same 16-bit masked integer arithmetic
and the same float64 plant updates, so results are identical
row-for-row (pinned by ``tests/targets/test_batch_equivalence.py``).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.targets.base import RunResult
from repro.targets.batch.core import (
    BatchOutcome,
    DetectionBook,
    VecMonitor,
    injection_due,
    injection_masks,
    injection_stats,
    require_numpy,
)
from repro.targets.tanklevel import instrumentation as ins
from repro.targets.tanklevel.memory import MONITORED_SIGNALS
from repro.targets.tanklevel.plant import (
    LEVEL_TOLERANCE_MM,
    MM_PER_LITRE,
    Q_MAX_LPS,
    Q_TRIM_LPS,
    TANK_HEIGHT_MM,
    TARGET_LEVEL_MM,
    TankFailureClassifier,
    TankRunSummary,
    demand_for,
    initial_level_for,
)

try:  # pragma: no cover - exercised only on numpy-less installs
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

__all__ = ["OBSERVE_MS", "run_batch", "run_batch_detailed"]

#: The serial default observation window (TankRunConfig.observe_ms).
OBSERVE_MS = 5000

_MASK16 = 0xFFFF
_TARGET = int(TARGET_LEVEL_MM)


def _monitor_masks(specs):
    """Per-EA row masks: which rows run with each mechanism enabled."""
    version_arr = np.array([spec.version for spec in specs])
    all_rows = version_arr == "All"
    return {ea: all_rows | (version_arr == ea) for ea in ins.EA_IDS}


def run_batch_detailed(specs: Sequence) -> List[BatchOutcome]:
    """Run every spec's injection run in one vectorized pass."""
    require_numpy()
    n = len(specs)
    if n == 0:
        return []
    params = ins.assertion_parameters()
    ea_rows = _monitor_masks(specs)
    monitors = {
        ea: VecMonitor(ea, params[ins.SIGNAL_BY_EA[ea]], n) for ea in ins.EA_IDS
    }
    book = DetectionBook(n)
    xor, period, start = injection_masks(specs, MONITORED_SIGNALS)
    always = np.ones(n, dtype=bool)

    # -- boot (TankNode.boot on a cleared memory image) ----------------------
    demand = np.array([demand_for(spec.mass_kg) for spec in specs], dtype=np.float64)
    level_mm = np.array(
        [initial_level_for(spec.velocity_mps) for spec in specs], dtype=np.float64
    )
    initial_level = level_mm.copy()
    max_level = level_mm.copy()
    min_level = level_mm.copy()
    # int(round(...)) is banker's rounding, same as np.rint.
    level = np.rint(level_mm).astype(np.int64)
    tick = np.zeros(n, dtype=np.int64)
    slot_id = np.zeros(n, dtype=np.int64)
    set_point = np.zeros(n, dtype=np.int64)
    flow_acc = np.zeros(n, dtype=np.int64)
    valve_cmd = np.zeros(n, dtype=np.int64)
    last_ctrl_tick = np.zeros(n, dtype=np.int64)
    drain_received = np.zeros(n, dtype=np.int64)
    # Boot validates the first level sample (EA2's reference seed).
    monitors["EA2"].test(level, 0, ea_rows["EA2"], book)

    for now in range(OBSERVE_MS):
        # -- injector ---------------------------------------------------------
        due = injection_due(now, period, start, always)
        tick ^= np.where(due, xor["tick"], 0)
        slot_id ^= np.where(due, xor["slot_id"], 0)
        level ^= np.where(due, xor["level"], 0)
        set_point ^= np.where(due, xor["SetPoint"], 0)
        flow_acc ^= np.where(due, xor["flow_acc"], 0)

        # -- CLOCK: tick + EA5, slot consumption + EA4, wrap fold ------------
        tick = (tick + 1) & _MASK16
        monitors["EA5"].test(tick, now, ea_rows["EA5"], book)
        monitors["EA4"].test(slot_id, now, ea_rows["EA4"], book)
        slot = slot_id + 1
        slot = np.where(slot >= ins.N_SLOTS, 0, slot)
        slot_id = slot

        # Rows advance their slot counter in lockstep, so each slot's mask
        # is all-False on 4 of every 5 ticks (only a corrupted slot_id
        # desynchronises a row); an empty slot section is the identity on
        # every piece of state it touches, so it is skipped outright.

        # -- LEVEL_S ----------------------------------------------------------
        m_level_s = slot == 0
        if m_level_s.any():
            latch = np.rint(level_mm).astype(np.int64) & _MASK16
            level = np.where(m_level_s, latch, level)

        # -- CTRL -------------------------------------------------------------
        m_ctrl = slot == 1
        if m_ctrl.any():
            lvl = monitors["EA2"].test(level, now, m_ctrl & ea_rows["EA2"], book)
            elapsed = (tick - last_ctrl_tick) & _MASK16
            last_ctrl_tick = np.where(m_ctrl, tick, last_ctrl_tick)
            budget = ins.SLEW_PER_MS * elapsed
            # ctrl_err is a signed stack scratch: store masks to 16 bits, the
            # read-back sign-extends.
            err_stored = (_TARGET - lvl) & _MASK16
            err = err_stored - ((err_stored & 0x8000) << 1)
            sp_raw = np.minimum(np.maximum(ins.CTRL_KP * err, 0), ins.SETPOINT_MAX)
            sp = set_point
            sp_new = np.where(
                sp_raw > sp,
                np.minimum(sp + budget, sp_raw),
                np.where(sp_raw < sp, np.maximum(sp - budget, sp_raw), sp),
            )
            set_point = np.where(m_ctrl, sp_new, set_point)
            flow_new = (flow_acc + (sp_new >> 6)) & _MASK16
            flow_acc = np.where(m_ctrl, flow_new, flow_acc)
            monitors["EA3"].test(flow_acc, now, m_ctrl & ea_rows["EA3"], book)

        # -- VALVE_A ----------------------------------------------------------
        m_valve = slot == 2
        if m_valve.any():
            monitors["EA1"].test(set_point, now, m_valve & ea_rows["EA1"], book)
            valve_cmd = np.where(
                m_valve,
                np.minimum(np.maximum(set_point, 0), ins.SETPOINT_MAX),
                valve_cmd,
            )

        # -- COMM + same-tick drain receive -----------------------------------
        m_comm = slot == 3
        if m_comm.any():
            drain_received = np.where(
                m_comm,
                np.minimum(np.maximum(set_point, 0), ins.SETPOINT_MAX),
                drain_received,
            )

        # -- plant ------------------------------------------------------------
        counts = np.minimum(np.maximum(valve_cmd, 0), 1023)
        inflow = Q_MAX_LPS * counts / 1023.0
        trim = Q_TRIM_LPS * (ins.SETPOINT_MAX - drain_received) / ins.SETPOINT_MAX
        outflow = demand + trim
        level_mm = level_mm + (inflow - outflow) * MM_PER_LITRE * 0.001
        level_mm = np.where(
            level_mm > TANK_HEIGHT_MM,
            TANK_HEIGHT_MM,
            np.where(level_mm < 0.0, 0.0, level_mm),
        )
        max_level = np.maximum(max_level, level_mm)
        min_level = np.minimum(min_level, level_mm)

    # -- assemble -------------------------------------------------------------
    classifier = TankFailureClassifier()
    last_ms = OBSERVE_MS - 1
    outcomes: List[BatchOutcome] = []
    for r, spec in enumerate(specs):
        summary = TankRunSummary(
            demand_lps=float(demand[r]),
            initial_level_mm=float(initial_level[r]),
            max_level_mm=float(max_level[r]),
            min_level_mm=float(min_level[r]),
            final_level_mm=float(level_mm[r]),
            settled=bool(
                abs(float(level_mm[r]) - TARGET_LEVEL_MM) <= LEVEL_TOLERANCE_MM
            ),
            duration_s=(last_ms + 1) / 1000.0,
        )
        detected, first_ms, count, first_monitor = book.row(r)
        first_injection, injections = injection_stats(
            spec.injection_start_ms, spec.injection_period_ms, last_ms
        )
        result = RunResult(
            test_case=spec.test_case(),
            summary=summary,
            verdict=classifier.classify(summary),
            detected=detected,
            first_detection_ms=first_ms,
            detection_count=count,
            first_injection_ms=first_injection,
            injection_count=injections,
            wedged=False,
            duration_ms=last_ms + 1,
        )
        outcomes.append(BatchOutcome(result=result, first_monitor=first_monitor))
    return outcomes


def run_batch(specs: Sequence) -> List[RunResult]:
    """The ``Target.run_batch`` surface: plain results, kernel detail dropped."""
    return [outcome.result for outcome in run_batch_detailed(specs)]
