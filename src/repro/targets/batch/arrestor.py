"""Vectorized batch kernel for the arrestor target.

Replays :class:`repro.arrestor.system.TargetSystem` over ``(N,)`` arrays:
one pass over the observation window advances every row's master node,
slave node and environment in lockstep.  Every statement mirrors a
statement of the serial tick path in the same order — the 16-bit masked
variable arithmetic, the within-tick EA test order (EA6, EA5, EA4, then
the slot module's tests, then EA3), the one-tick-delayed COMM delivery,
and the float64 physics op-for-op — so results are identical row-for-row
(pinned by ``tests/targets/test_batch_equivalence.py``).

Two deliberately scalar escapes keep exactness cheap:

* CALC's checkpoint handler runs at most six times per row, so the rows
  whose checkpoint fires on a given tick (almost always none) drop to
  the same scalar integer arithmetic the serial module uses;
* ``env.time_s`` accumulates by repeated float addition, so the summary
  duration is read from a precomputed repeated-addition table instead of
  ``ticks * dt`` (which differs in the last ulp).

Rows finish independently (post-stop window, overrun, or window
exhaustion): a finished row's state is frozen under the ``active`` mask
and the loop exits early once every row is done.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.arrestor import constants as k
from repro.arrestor.instrumentation import EA_IDS, SIGNAL_BY_EA, assertion_parameters
from repro.plant.aircraft import BRAKE_FORCE_PER_PA, DRAG_COEFF, GRAVITY
from repro.plant.drum import PULSE_PITCH_M
from repro.plant.failure import ArrestmentSummary, FailureClassifier
from repro.plant.hydraulics import PA_PER_COUNT, VALVE_MAX_PA, VALVE_TIME_CONSTANT_S
from repro.targets.base import RunResult
from repro.targets.batch.core import (
    BatchOutcome,
    DetectionBook,
    VecMonitor,
    injection_due,
    injection_masks,
    injection_stats,
    require_numpy,
)

try:  # pragma: no cover - exercised only on numpy-less installs
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

__all__ = ["OBSERVE_MS_MAX", "POST_STOP_MS", "OVERRUN_DISTANCE_M", "run_batch", "run_batch_detailed"]

#: The serial defaults (RunConfig) the batch path is restricted to.
OBSERVE_MS_MAX = 25000
POST_STOP_MS = 3000
OVERRUN_DISTANCE_M = 400.0

_MASK16 = 0xFFFF
_DT_S = 0.001

#: The first-order valve response over one tick (PressureValve.advance).
_ALPHA = 1.0 - math.exp(-_DT_S / VALVE_TIME_CONSTANT_S)

#: Centimetres per rotation pulse and the remaining-distance table of CALC.
_CM_PER_PULSE = 5
_D_REMAIN_CM = tuple(
    int(round((k.TARGET_STOP_DISTANCE_M - d) * 100.0)) for d in k.CHECKPOINT_DISTANCES_M
)

#: env.time_s accumulates by repeated ``+= 0.001``; tick-count * 0.001
#: differs in the last ulp, so the summary reads this table instead.
_TIME_S: List[float] = [0.0]


def _time_s(ticks: int) -> float:
    while len(_TIME_S) <= ticks:
        _TIME_S.append(_TIME_S[-1] + _DT_S)
    return _TIME_S[ticks]


def _clamp(value: int, lo: int, hi: int) -> int:
    if value < lo:
        return lo
    if value > hi:
        return hi
    return value


class _Row:
    """Scalar view of one row's CALC state for the checkpoint handler."""

    __slots__ = (
        "i", "dist_acc", "mscnt", "last_cp_mscnt", "last_cp_pulscnt",
        "pulscnt", "set_value", "target", "v_prev", "v0", "m_est", "p_cap",
    )


def _handle_checkpoint(row: _Row) -> None:
    """Calc._handle_checkpoint on one row's scalar state (exact integers)."""
    i = row.i
    dist_pulses = row.dist_acc
    time_ms = (row.mscnt - row.last_cp_mscnt) & _MASK16
    if time_ms == 0:
        return
    v_mean = _clamp(dist_pulses * _CM_PER_PULSE * 1000 // time_ms, 0, _MASK16)
    if i == 0:
        v_cmps = v_mean
        row.v0 = v_cmps
    else:
        v_cmps = _clamp(2 * v_mean - row.v_prev, 1, _MASK16)
        # _refine_mass_estimate
        dv2 = (row.v_prev * row.v_prev - v_cmps * v_cmps) // 10000
        if dv2 > 0:
            brake_n = int(row.set_value * k.FORCE_N_PER_COUNT)
            drag_n = 2 * v_mean * v_mean // 10000
            dist_cm = dist_pulses * _CM_PER_PULSE
            mass = 2 * (brake_n + drag_n) * dist_cm // (dv2 * 100)
            mass = (row.m_est + mass) // 2
            row.m_est = _clamp(mass, k.MASS_ESTIMATE_MIN_KG, k.MASS_ESTIMATE_MAX_KG)
    # _update_force_cap
    v0_m2 = row.v0 * row.v0 // 10000
    if v0_m2 > 0:
        f_cap = (
            k.FORCE_CAP_MARGIN_NUM
            * k.CONTROLLER_LIMIT_MARGIN_NUM
            * row.m_est
            * v0_m2
            // (
                k.FORCE_CAP_MARGIN_DEN
                * k.CONTROLLER_LIMIT_MARGIN_DEN
                * 2
                * int(k.CONTROLLER_NOMINAL_STOP_M)
            )
        )
        row.p_cap = _clamp(int(f_cap // k.FORCE_N_PER_COUNT), 0, k.SETVALUE_MAX_COUNTS)
    # _command_pressure
    d_rem_cm = _D_REMAIN_CM[i] if i < k.N_CHECKPOINTS else _D_REMAIN_CM[-1]
    if d_rem_cm > 0:
        a_req_cmps2 = v_cmps * v_cmps // (2 * d_rem_cm)
        force_n = row.m_est * a_req_cmps2 // 100
        force_n -= 2 * v_cmps * v_cmps // 10000
        if force_n < 0:
            force_n = 0
        counts = int(force_n // k.FORCE_N_PER_COUNT)
        if row.p_cap > 0:
            counts = min(counts, row.p_cap)
        row.target = _clamp(counts, k.PRETENSION_COUNTS, k.SETVALUE_MAX_COUNTS)
    # rollover
    row.v_prev = v_cmps
    row.last_cp_pulscnt = row.pulscnt
    row.last_cp_mscnt = row.mscnt
    row.dist_acc = 0
    row.i = (i + 1) & _MASK16


def _monitor_masks(specs):
    """Per-EA row masks: which rows run with each mechanism enabled."""
    version_arr = np.array([spec.version for spec in specs])
    all_rows = version_arr == "All"
    return {ea: all_rows | (version_arr == ea) for ea in EA_IDS}


def _read_counts(pressure_pa):
    """PressureSensor.read_counts (ripple 0): banker's-rounded, clamped."""
    counts = np.rint(pressure_pa / PA_PER_COUNT).astype(np.int64)
    return np.clip(counts, 0, _MASK16)


def run_batch_detailed(specs: Sequence) -> List[BatchOutcome]:
    """Run every spec's injection run in one vectorized pass."""
    require_numpy()
    n = len(specs)
    if n == 0:
        return []
    params = assertion_parameters()
    ea_rows = _monitor_masks(specs)
    monitors = {ea: VecMonitor(ea, params[SIGNAL_BY_EA[ea]], n) for ea in EA_IDS}
    book = DetectionBook(n)
    xor, period, start = injection_masks(specs, tuple(SIGNAL_BY_EA.values()))
    cp_pulses = np.array(k.CHECKPOINT_PULSES, dtype=np.int64)

    # -- boot (MasterNode.boot / SlaveNode.__init__ / Environment) -----------
    mscnt = np.zeros(n, dtype=np.int64)
    ms_slot_nbr = np.zeros(n, dtype=np.int64)
    pulscnt = np.zeros(n, dtype=np.int64)
    i_var = np.zeros(n, dtype=np.int64)
    set_value = np.full(n, k.PRETENSION_COUNTS, dtype=np.int64)
    is_value = np.zeros(n, dtype=np.int64)
    out_value = np.zeros(n, dtype=np.int64)
    target_sv = np.full(n, k.PRETENSION_COUNTS, dtype=np.int64)
    m_est = np.full(n, k.INITIAL_MASS_GUESS_KG, dtype=np.int64)
    p_cap = np.zeros(n, dtype=np.int64)
    v_prev = np.zeros(n, dtype=np.int64)
    v0 = np.zeros(n, dtype=np.int64)
    last_cp_pulscnt = np.zeros(n, dtype=np.int64)
    last_cp_mscnt = np.zeros(n, dtype=np.int64)
    prev_pulscnt = np.zeros(n, dtype=np.int64)
    dist_acc = np.zeros(n, dtype=np.int64)
    integral = np.zeros(n, dtype=np.int64)
    comm_tx = np.zeros(n, dtype=np.int64)

    s_set_value = np.full(n, k.PRETENSION_COUNTS, dtype=np.int64)
    s_is_value = np.zeros(n, dtype=np.int64)
    s_out_value = np.zeros(n, dtype=np.int64)
    s_integral = np.zeros(n, dtype=np.int64)

    mass = np.array([float(spec.mass_kg) for spec in specs], dtype=np.float64)
    velocity = np.array([float(spec.velocity_mps) for spec in specs], dtype=np.float64)
    position = np.zeros(n, dtype=np.float64)
    stopped = np.zeros(n, dtype=bool)
    master_pa = np.zeros(n, dtype=np.float64)
    slave_pa = np.zeros(n, dtype=np.float64)
    master_cmd_pa = np.zeros(n, dtype=np.float64)
    slave_cmd_pa = np.zeros(n, dtype=np.float64)
    max_g = np.zeros(n, dtype=np.float64)
    max_f = np.zeros(n, dtype=np.float64)
    total_pulses = np.zeros(n, dtype=np.int64)
    emitted_pulses = np.zeros(n, dtype=np.int64)

    tx_pending = np.zeros(n, dtype=bool)
    deadline = np.full(n, -1, dtype=np.int64)
    active = np.ones(n, dtype=bool)
    last_ms = np.full(n, OBSERVE_MS_MAX - 1, dtype=np.int64)

    for now in range(OBSERVE_MS_MAX):
        if not active.any():
            break

        # -- injector ---------------------------------------------------------
        due = injection_due(now, period, start, active)
        mscnt ^= np.where(due, xor["mscnt"], 0)
        ms_slot_nbr ^= np.where(due, xor["ms_slot_nbr"], 0)
        pulscnt ^= np.where(due, xor["pulscnt"], 0)
        i_var ^= np.where(due, xor["i"], 0)
        set_value ^= np.where(due, xor["SetValue"], 0)
        is_value ^= np.where(due, xor["IsValue"], 0)
        out_value ^= np.where(due, xor["OutValue"], 0)

        # -- CLOCK: mscnt + EA6, slot wrap fold + EA5 -------------------------
        mscnt = np.where(active, (mscnt + 1) & _MASK16, mscnt)
        monitors["EA6"].test(mscnt, now, active & ea_rows["EA6"], book)
        slot = ms_slot_nbr + 1
        slot = np.where(slot >= k.N_SLOTS, 0, slot)
        ms_slot_nbr = np.where(active, slot, ms_slot_nbr)
        monitors["EA5"].test(ms_slot_nbr, now, active & ea_rows["EA5"], book)
        slot = ms_slot_nbr  # the checked (stored) slot drives dispatch

        # -- DIST_S (every tick): poll latch, accumulate, EA4 -----------------
        new_pulses = (total_pulses - emitted_pulses) & _MASK16
        emitted_pulses = np.where(active, total_pulses, emitted_pulses)
        pulscnt = np.where(active, (pulscnt + new_pulses) & _MASK16, pulscnt)
        monitors["EA4"].test(pulscnt, now, active & ea_rows["EA4"], book)

        # -- PRES_S (slot 0) --------------------------------------------------
        m_pres_s = active & (slot == k.SLOT_PRES_S)
        is_value = np.where(m_pres_s, _read_counts(master_pa), is_value)

        # -- V_REG (slot 2): EA1, EA2, integer PI -----------------------------
        m_v_reg = active & (slot == k.SLOT_V_REG)
        monitors["EA1"].test(set_value, now, m_v_reg & ea_rows["EA1"], book)
        monitors["EA2"].test(is_value, now, m_v_reg & ea_rows["EA2"], book)
        err_stored = (set_value - is_value) & _MASK16
        err = err_stored - ((err_stored & 0x8000) << 1)
        integral_new = np.clip(
            integral + (err >> k.PID_KI_SHIFT),
            -k.PID_INTEGRAL_CLAMP,
            k.PID_INTEGRAL_CLAMP,
        )
        integral = np.where(m_v_reg, integral_new, integral)
        out = set_value + (err * k.PID_KP_NUM) // k.PID_KP_DEN + integral_new
        out_value = np.where(
            m_v_reg, np.clip(out, 0, k.OUTVALUE_MAX_COUNTS), out_value
        )

        # -- PRES_A (slot 4): EA7, valve command ------------------------------
        m_pres_a = active & (slot == k.SLOT_PRES_A)
        monitors["EA7"].test(out_value, now, m_pres_a & ea_rows["EA7"], book)
        master_cmd_pa = np.where(
            m_pres_a,
            np.clip(out_value * PA_PER_COUNT, 0.0, VALVE_MAX_PA),
            master_cmd_pa,
        )

        # -- COMM (slot 6): fill the transmit buffer --------------------------
        m_comm = active & (slot == k.SLOT_COMM)
        comm_tx = np.where(m_comm, set_value, comm_tx)

        # -- CALC (background, every tick): EA3, accumulation, slew -----------
        monitors["EA3"].test(i_var, now, active & ea_rows["EA3"], book)
        delta = (pulscnt - prev_pulscnt) & _MASK16
        delta = np.where(delta > 0x8000, 0, delta)
        prev_pulscnt = np.where(active, pulscnt, prev_pulscnt)
        dist_acc = np.where(active, (dist_acc + delta) & _MASK16, dist_acc)
        cp_hit = active & (i_var < k.N_CHECKPOINTS)
        if cp_hit.any():
            cp_hit &= pulscnt >= cp_pulses[np.minimum(i_var, k.N_CHECKPOINTS - 1)]
        if cp_hit.any():
            for r in np.nonzero(cp_hit)[0]:
                row = _Row()
                row.i = int(i_var[r])
                row.dist_acc = int(dist_acc[r])
                row.mscnt = int(mscnt[r])
                row.last_cp_mscnt = int(last_cp_mscnt[r])
                row.last_cp_pulscnt = int(last_cp_pulscnt[r])
                row.pulscnt = int(pulscnt[r])
                row.set_value = int(set_value[r])
                row.target = int(target_sv[r])
                row.v_prev = int(v_prev[r])
                row.v0 = int(v0[r])
                row.m_est = int(m_est[r])
                row.p_cap = int(p_cap[r])
                _handle_checkpoint(row)
                i_var[r] = row.i
                dist_acc[r] = row.dist_acc
                last_cp_mscnt[r] = row.last_cp_mscnt
                last_cp_pulscnt[r] = row.last_cp_pulscnt
                target_sv[r] = row.target
                v_prev[r] = row.v_prev
                v0[r] = row.v0
                m_est[r] = row.m_est
                p_cap[r] = row.p_cap
        # _slew_set_value (every pass)
        step_up = np.minimum(target_sv - set_value, k.SETVALUE_SLEW_PER_PASS)
        step_down = np.minimum(set_value - target_sv, k.SETVALUE_SLEW_PER_PASS)
        slewed = np.where(
            set_value < target_sv,
            set_value + step_up,
            np.where(set_value > target_sv, set_value - step_down, set_value),
        )
        set_value = np.where(active, slewed & _MASK16, set_value)

        # -- COMM link delivery (one tick after the buffer was filled) --------
        deliver = active & tx_pending
        s_set_value = np.where(deliver, comm_tx & _MASK16, s_set_value)
        tx_pending = (tx_pending & ~deliver) | m_comm

        # -- slave node (its own schedule is the global tick counter) ---------
        s_slot = now % k.N_SLOTS
        if s_slot == k.SLOT_PRES_S:
            s_is_value = np.where(active, _read_counts(slave_pa), s_is_value)
        elif s_slot == k.SLOT_V_REG:
            s_err = s_set_value - s_is_value
            s_integral_new = np.clip(
                s_integral + (s_err >> k.PID_KI_SHIFT),
                -k.PID_INTEGRAL_CLAMP,
                k.PID_INTEGRAL_CLAMP,
            )
            s_integral = np.where(active, s_integral_new, s_integral)
            s_out = (
                s_set_value + (s_err * k.PID_KP_NUM) // k.PID_KP_DEN + s_integral_new
            )
            s_out_value = np.where(
                active, np.clip(s_out, 0, k.OUTVALUE_MAX_COUNTS), s_out_value
            )
        elif s_slot == k.SLOT_PRES_A:
            slave_cmd_pa = np.where(
                active,
                np.clip(s_out_value * PA_PER_COUNT, 0.0, VALVE_MAX_PA),
                slave_cmd_pa,
            )

        # -- environment ------------------------------------------------------
        master_pa = np.where(
            active, master_pa + (master_cmd_pa - master_pa) * _ALPHA, master_pa
        )
        slave_pa = np.where(
            active, slave_pa + (slave_cmd_pa - slave_pa) * _ALPHA, slave_pa
        )
        moving = active & ~stopped
        cable = BRAKE_FORCE_PER_PA * (master_pa + slave_pa)
        drag = DRAG_COEFF * velocity * velocity
        dec = (cable + drag) / mass
        new_velocity = velocity - dec * _DT_S
        stopping = moving & (new_velocity <= 0.0)
        fraction = np.divide(
            velocity, dec * _DT_S, out=np.zeros_like(velocity), where=stopping
        )
        position = np.where(
            stopping,
            position + velocity * _DT_S * fraction / 2.0,
            np.where(moving, position + (velocity + new_velocity) * _DT_S / 2.0, position),
        )
        velocity = np.where(stopping, 0.0, np.where(moving, new_velocity, velocity))
        stopped = stopped | stopping
        # An already-stopped aircraft reports zero force and deceleration.
        dec_eff = np.where(moving, dec, 0.0)
        force_eff = np.where(moving, cable, 0.0)
        total_pulses = np.where(
            active, (position / PULSE_PITCH_M).astype(np.int64), total_pulses
        )
        dec_g = dec_eff / GRAVITY
        max_g = np.where(active & (dec_g > max_g), dec_g, max_g)
        max_f = np.where(active & (force_eff > max_f), force_eff, max_f)

        # -- stop logic (TargetSystem._advance) -------------------------------
        no_deadline = deadline < 0
        arm = active & no_deadline & stopped
        overrun = active & no_deadline & ~stopped & (position >= OVERRUN_DISTANCE_M)
        expire = active & ~no_deadline & (now >= deadline)
        deadline = np.where(arm, now + POST_STOP_MS, deadline)
        finishing = overrun | expire
        last_ms = np.where(finishing, now, last_ms)
        active = active & ~finishing

    # -- assemble -------------------------------------------------------------
    classifier = FailureClassifier()
    outcomes: List[BatchOutcome] = []
    for r, spec in enumerate(specs):
        row_last_ms = int(last_ms[r])
        summary = ArrestmentSummary(
            mass_kg=float(mass[r]),
            engagement_velocity_mps=float(spec.velocity_mps),
            max_retardation_g=float(max_g[r]),
            max_cable_force_n=float(max_f[r]),
            stop_distance_m=float(position[r]),
            stopped=bool(stopped[r]),
            duration_s=_time_s(row_last_ms + 1),
        )
        detected, first_ms, count, first_monitor = book.row(r)
        first_injection, injections = injection_stats(
            spec.injection_start_ms, spec.injection_period_ms, row_last_ms
        )
        result = RunResult(
            test_case=spec.test_case(),
            summary=summary,
            verdict=classifier.classify(summary),
            detected=detected,
            first_detection_ms=first_ms,
            detection_count=count,
            first_injection_ms=first_injection,
            injection_count=injections,
            wedged=False,
            duration_ms=row_last_ms + 1,
        )
        outcomes.append(BatchOutcome(result=result, first_monitor=first_monitor))
    return outcomes


def run_batch(specs: Sequence) -> List[RunResult]:
    """The ``Target.run_batch`` surface: plain results, kernel detail dropped."""
    return [outcome.result for outcome in run_batch_detailed(specs)]
