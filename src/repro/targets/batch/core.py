"""Target-agnostic building blocks of the vectorized batch kernels.

The kernels in :mod:`repro.targets.batch.arrestor` and
:mod:`repro.targets.batch.tanklevel` replay the *exact* serial semantics
of :class:`repro.core.monitor.SignalMonitor`, the 16-bit
:class:`repro.memory.memmap.Variable` arithmetic and the
:class:`repro.injection.injector.TimeTriggeredInjector` schedule, only
over ``(N,)`` int64/float64 arrays instead of one run at a time.  This
module holds the pieces both kernels share:

* :class:`VecMonitor` — the vectorized executable assertion.  Continuous
  bounds/rate/wrap tests and the linear-cyclic discrete sequence test
  evaluate as elementwise comparisons; the reference value ``_prev`` is
  a per-row array updated under the rows-tested-this-tick mask.
  Hold-last-valid recovery is a masked select of the previous reference.
* :class:`DetectionBook` — per-row first-detection time, first detecting
  monitor and detection count, accumulated in the serial test order.
* Injection arithmetic — the per-row XOR masks and the closed-form
  injection statistics of the time-triggered schedule.

numpy is an optional dependency: importing this module without numpy
succeeds, :func:`numpy_available` reports ``False`` and the target
adapters keep ``supports_batch()`` false, so every caller falls back to
the serial path.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple, Union

try:  # pragma: no cover - exercised only on numpy-less installs
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

from repro.core.assertions import ContinuousAssertion
from repro.core.parameters import ContinuousParams, DiscreteParams
from repro.targets.base import TestCase

__all__ = [
    "numpy_available",
    "require_numpy",
    "BatchRunSpec",
    "BatchOutcome",
    "VecMonitor",
    "DetectionBook",
    "linear_cyclic_length",
    "injection_masks",
    "injection_stats",
]


def numpy_available() -> bool:
    """Whether the vectorized kernels can run in this interpreter."""
    return np is not None


def require_numpy() -> None:
    """Raise a clear error when a kernel is entered without numpy."""
    if np is None:
        raise RuntimeError(
            "repro.targets.batch requires numpy; install it or use the serial path"
        )


@dataclasses.dataclass(frozen=True)
class BatchRunSpec:
    """One row of a batch: the injected error and the test case.

    The campaign engine's ``RunSpec`` duck-types as this (same attribute
    names); the dataclass exists so the kernels and their tests can be
    driven without importing the engine.
    """

    version: str
    signal: str
    signal_bit: int
    mass_kg: float
    velocity_mps: float
    injection_period_ms: int = 20
    injection_start_ms: int = 0

    def test_case(self) -> TestCase:
        return TestCase(self.mass_kg, self.velocity_mps)


@dataclasses.dataclass(frozen=True)
class BatchOutcome:
    """One row's result plus the kernel-level detection detail."""

    result: "RunResult"  # noqa: F821 - repro.targets.base.RunResult
    first_monitor: Optional[str]


def linear_cyclic_length(params: DiscreteParams) -> int:
    """Validate that *params* is the cyclic map over ``range(n)``; return n.

    The vectorized discrete test hard-codes the successor relation
    ``T(d) = {(d + 1) mod n}`` both targets use; any other discrete
    parameter set must take the serial path.
    """
    n = len(params.domain)
    if params.domain != frozenset(range(n)):
        raise ValueError(f"batch kernels require domain range(n), got {params.domain}")
    transitions = params.transitions
    if transitions is None:
        raise ValueError("batch kernels require a sequential (cyclic) discrete signal")
    for value in range(n):
        if transitions.get(value) != frozenset({(value + 1) % n}):
            raise ValueError(
                f"batch kernels require the cyclic successor map, got T({value}) = "
                f"{transitions.get(value)}"
            )
    return n


class DetectionBook:
    """Per-row detection log aggregate: ``DetectionLog`` minus the events.

    ``record`` must be called in the same order the serial system calls
    ``SignalMonitor.test`` within a tick, so ``first_monitor`` names the
    same EA the serial log's first event does.

    With ``capture_events`` every violation is additionally appended to
    ``events`` as ``(row, now_ms, monitor_id)`` in record order — the
    per-row projection of the serial detection log's event sequence.
    The online serving engine drains these to emit detection events;
    the offline kernels leave capture off so the whole-grid fast path
    pays nothing for it.
    """

    def __init__(self, n: int, capture_events: bool = False) -> None:
        require_numpy()
        self.detected = np.zeros(n, dtype=bool)
        self.first_ms = np.full(n, -1, dtype=np.int64)
        self.first_monitor = np.full(n, -1, dtype=np.int64)
        self.count = np.zeros(n, dtype=np.int64)
        self.monitor_ids: List[str] = []
        self.events: Optional[List[Tuple[int, int, str]]] = (
            [] if capture_events else None
        )

    def _monitor_index(self, monitor_id: str) -> int:
        try:
            return self.monitor_ids.index(monitor_id)
        except ValueError:
            self.monitor_ids.append(monitor_id)
            return len(self.monitor_ids) - 1

    def record(self, violation, now_ms: int, monitor_id: str) -> None:
        """Record a violation mask for one monitor at sim-time *now_ms*."""
        if not violation.any():
            return
        index = self._monitor_index(monitor_id)
        self.count[violation] += 1
        fresh = violation & ~self.detected
        self.first_ms[fresh] = now_ms
        self.first_monitor[fresh] = index
        self.detected |= violation
        if self.events is not None:
            for row in np.nonzero(violation)[0]:
                self.events.append((int(row), now_ms, monitor_id))

    def drain_events(self) -> List[Tuple[int, int, str]]:
        """Pop and return captured ``(row, now_ms, monitor_id)`` events."""
        if self.events is None:
            return []
        drained, self.events = self.events, []
        return drained

    def row(self, r: int) -> Tuple[bool, Optional[int], int, Optional[str]]:
        """(detected, first_detection_ms, detection_count, first_monitor)."""
        if not self.detected[r]:
            return (False, None, int(self.count[r]), None)
        return (
            True,
            int(self.first_ms[r]),
            int(self.count[r]),
            self.monitor_ids[int(self.first_monitor[r])],
        )


class VecMonitor:
    """Vectorized :class:`~repro.core.monitor.SignalMonitor` for one EA.

    ``test(values, now_ms, mask, book)`` replays the serial monitor on
    the rows selected by *mask*: the assertion evaluates elementwise,
    violations are recorded into *book*, and the reference value is
    advanced exactly as the serial monitor's ``_prev`` is — on a pass it
    becomes the tested value; on a violation without recovery it still
    becomes the tested value (the default ``reference_policy="observed"``);
    with hold-last-valid recovery it becomes the recovered value, a
    masked select of the previous reference (or the parameter fallback
    when no reference exists yet).
    """

    def __init__(
        self,
        monitor_id: str,
        params: Union[ContinuousParams, DiscreteParams],
        n: int,
        recovery: bool = False,
    ) -> None:
        require_numpy()
        self.monitor_id = monitor_id
        self.params = params
        self.recovery = recovery
        self.prev = np.zeros(n, dtype=np.int64)
        self.has_prev = np.zeros(n, dtype=bool)
        self.discrete = isinstance(params, DiscreteParams)
        if self.discrete:
            self._domain_n = linear_cyclic_length(params)
            # HoldLastValid's no-reference fallback: min(domain, key=repr).
            self._fallback = min(params.domain, key=repr)
        else:
            self._hold_ok = ContinuousAssertion._unchanged_permitted(params)
            self._fallback = params.smin

    def holds(self, values):
        """Elementwise ``assertion.holds`` against the per-row references."""
        p = self.params
        prev = self.prev
        if self.discrete:
            n = self._domain_n
            in_domain = (values >= 0) & (values < n)
            prev_in_domain = (prev >= 0) & (prev < n)
            seq_ok = values == (prev + 1) % n
            return in_domain & (~self.has_prev | ~prev_in_domain | seq_ok)
        in_bounds = (values >= p.smin) & (values <= p.smax)
        up = values > prev
        down = values < prev
        delta_up = values - prev
        ok_up = (delta_up >= p.rmin_incr) & (delta_up <= p.rmax_incr)
        delta_down = prev - values
        ok_down = (delta_down >= p.rmin_decr) & (delta_down <= p.rmax_decr)
        if p.wrap:
            wrapped_up = (prev - p.smin) + (p.smax - values)
            ok_up |= (wrapped_up >= p.rmin_decr) & (wrapped_up <= p.rmax_decr)
            wrapped_down = (p.smax - prev) + (values - p.smin)
            ok_down |= (wrapped_down >= p.rmin_incr) & (wrapped_down <= p.rmax_incr)
        rate_ok = np.where(up, ok_up, np.where(down, ok_down, self._hold_ok))
        return in_bounds & (~self.has_prev | rate_ok)

    def test(self, values, now_ms: int, mask, book: DetectionBook):
        """Test the rows in *mask*; return the (possibly recovered) values."""
        if not mask.any():
            # No row selected: nothing is recorded, no reference advances,
            # and the recovery select reduces to the identity — skip the
            # whole battery.  (Slot-gated monitors hit this on most ticks.)
            return values
        ok = self.holds(values)
        violation = mask & ~ok
        book.record(violation, now_ms, self.monitor_id)
        if not self.recovery:
            self.prev = np.where(mask, values, self.prev)
            self.has_prev = self.has_prev | mask
            return values
        recovered = np.where(self.has_prev, self.prev, self._fallback)
        result = np.where(violation, recovered, values)
        self.prev = np.where(mask, result, self.prev)
        self.has_prev = self.has_prev | mask
        return result


def injection_masks(specs, signals, signal_variables=None):
    """Per-signal XOR arrays plus the per-row period/start arrays.

    Each spec flips one bit of one monitored signal: the byte-level XOR
    of the serial injector lands on a little-endian 16-bit variable, so
    flipping ``signal_bit`` of the stored value is ``value ^ (1 <<
    signal_bit)``.  Returns ``(xor_by_signal, period, start)`` where
    ``xor_by_signal[name]`` is an int64 array that is ``1 << bit`` on
    the rows injecting into *name* and 0 elsewhere.
    """
    require_numpy()
    n = len(specs)
    period = np.zeros(n, dtype=np.int64)
    start = np.zeros(n, dtype=np.int64)
    xor_by_signal = {name: np.zeros(n, dtype=np.int64) for name in signals}
    for r, spec in enumerate(specs):
        if spec.signal not in xor_by_signal:
            raise ValueError(f"row {r}: unknown batch signal {spec.signal!r}")
        if not 0 <= spec.signal_bit < 16:
            raise ValueError(f"row {r}: signal_bit must be 0..15, got {spec.signal_bit}")
        if spec.injection_period_ms < 1:
            raise ValueError(f"row {r}: injection period must be positive")
        if spec.injection_start_ms < 0:
            raise ValueError(f"row {r}: injection start must be non-negative")
        xor_by_signal[spec.signal][r] = 1 << spec.signal_bit
        period[r] = spec.injection_period_ms
        start[r] = spec.injection_start_ms
    return xor_by_signal, period, start


def injection_due(now_ms: int, period, start, active):
    """Rows whose injector fires at *now_ms* (the serial trigger test)."""
    return active & (now_ms >= start) & ((now_ms - start) % period == 0)


def injection_stats(start_ms: int, period_ms: int, last_ms: int) -> Tuple[Optional[int], int]:
    """Closed form of the time-triggered injector's counters.

    The serial injector fires at ``start, start + period, ...`` for every
    executed tick; a run whose last executed tick is *last_ms* therefore
    saw its first injection at *start_ms* iff ``last_ms >= start_ms``.
    """
    if last_ms < start_ms:
        return (None, 0)
    return (start_ms, int((last_ms - start_ms) // period_ms) + 1)
