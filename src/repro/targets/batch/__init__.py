"""Vectorized batch simulation kernels (opt-in ``run_batch`` capability).

``repro.targets.batch`` advances N injection runs in lockstep over numpy
arrays instead of N sequential Python tick loops: plant state, controller
state and monitor references live as ``(N,)`` tensors, bit flips are
applied as per-row XOR masks at per-row injection ticks, and the EA
checks evaluate as vectorized comparisons producing per-row detection
latencies.  The serial tick loop remains the oracle — the batch kernels
are pinned run-for-run against it by the differential harness in
``tests/targets/test_batch_equivalence.py``.

This package deliberately contains no imports: each target's kernel
module (``repro.targets.batch.arrestor``, ``repro.targets.batch.
tanklevel``) is imported lazily by its target adapter so neither target's
fingerprint closure picks up the other's kernel.
"""
