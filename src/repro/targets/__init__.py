"""Target layer: the protocol and registry the harness drives workloads by.

``repro.targets`` separates *what the paper's method needs from a
system* (memory map, monitored signals, versions, one-run execution,
failure classification, an instrumentation plan) from *which system it
is*.  The campaign grid, the parallel engine, the static linter and the
CLIs all resolve their workload through :func:`get_target`; two
reference workloads ship built in:

* ``arrestor`` — the paper's aircraft-arrestment system (default);
* ``tanklevel`` — a two-node tank-level controller exercising the
  Section-2 generality claim on an independent plant.

See ``docs/architecture.md`` ("The target layer") for how to add one.
"""

from repro.targets.base import BootedSystem, RunResult, Snapshot, Target, TestCase
from repro.targets.registry import (
    DEFAULT_TARGET,
    TARGET_ENV_VAR,
    default_target_name,
    get_target,
    register_target,
    target_names,
    unregister_target,
)
from repro.targets.snapshot import (
    SNAPSHOTS_ENV_VAR,
    booted_system,
    cache_stats,
    clear_cache,
    prefixed_system,
    snapshots_enabled_default,
)

__all__ = [
    "BootedSystem",
    "RunResult",
    "Snapshot",
    "Target",
    "TestCase",
    "SNAPSHOTS_ENV_VAR",
    "booted_system",
    "cache_stats",
    "clear_cache",
    "prefixed_system",
    "snapshots_enabled_default",
    "DEFAULT_TARGET",
    "TARGET_ENV_VAR",
    "default_target_name",
    "get_target",
    "register_target",
    "target_names",
    "unregister_target",
]
