"""The arresting system as a registered target.

A thin adapter over the existing :mod:`repro.arrestor` stack — it adds
no behaviour of its own, so campaigns routed through the target layer
are byte-for-byte identical to the pre-refactor direct wiring (the
committed golden trace is the regression oracle for that claim).
"""

from __future__ import annotations

import dataclasses
from typing import Any, List, Optional, Tuple

from repro.targets.base import Target, TestCase

__all__ = ["ArrestorTarget"]


class ArrestorTarget(Target):
    """Hiller's aircraft-arrestment system (Section 3): the paper's target."""

    name = "arrestor"
    description = (
        "two-node aircraft arrestor (master/slave, 7 monitored signals, "
        "EA1..EA7) — the paper's own target system"
    )

    @property
    def versions(self) -> Tuple[str, ...]:
        from repro.arrestor.instrumentation import EA_IDS

        return EA_IDS + ("All",)

    @property
    def monitored_signals(self) -> Tuple[str, ...]:
        from repro.arrestor.signals_map import MONITORED_SIGNALS

        return MONITORED_SIGNALS

    def memory(self) -> Any:
        from repro.arrestor.signals_map import MasterMemory

        return MasterMemory()

    def test_cases(self) -> List[TestCase]:
        from repro.experiments.testcases import make_test_cases

        return make_test_cases()

    def boot(
        self,
        test_case: TestCase,
        version: str = "All",
        run_config: Any = None,
        classifier: Any = None,
    ) -> Any:
        from repro.arrestor.system import TargetSystem

        enabled = self.version_eas(version)
        if run_config is not None:
            config = dataclasses.replace(run_config, enabled_eas=enabled)
            return TargetSystem(test_case, config=config, classifier=classifier)
        return TargetSystem(test_case, classifier=classifier, enabled_eas=enabled)

    def timeout_summary(self, test_case: TestCase, duration_s: float) -> Any:
        from repro.plant.failure import ArrestmentSummary

        return ArrestmentSummary(
            mass_kg=test_case.mass_kg,
            engagement_velocity_mps=test_case.velocity_mps,
            max_retardation_g=0.0,
            max_cable_force_n=0.0,
            stop_distance_m=0.0,
            stopped=False,
            duration_s=duration_s,
        )

    def supports_batch(self) -> bool:
        from repro.targets.batch.core import numpy_available

        return numpy_available()

    def run_batch(self, specs):
        from repro.targets.batch.arrestor import run_batch

        return run_batch(specs)

    def lint_target(self):
        from repro.arrestor.instrumentation import (
            build_instrumentation_plan,
            default_fmeca_entries,
        )

        return build_instrumentation_plan(), default_fmeca_entries()

    def fingerprint_sources(self) -> Tuple[str, ...]:
        # The default would hash all of repro.targets (this adapter's
        # package), needlessly invalidating arrestor results when an
        # unrelated workload changes; pin the arrestor's actual sources.
        return (
            "repro.core",
            "repro.memory",
            "repro.plant",
            "repro.rtos",
            "repro.injection",
            "repro.targets.base",
            "repro.targets.snapshot",
            "repro.targets.arrestor",
            "repro.targets.batch.core",
            "repro.targets.batch.arrestor",
            "repro.experiments.testcases",
            "repro.experiments.graph",
            "repro.experiments.dag",
            "repro.experiments.parallel",
            "repro.experiments.persistence",
            "repro.experiments.results",
            "repro.experiments.store",
            "repro.stats",
            "repro.arrestor",
        )
