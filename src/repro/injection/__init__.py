"""Fault injection: error sets, the SWIFI injector, the campaign controller."""

from repro.injection.errors import (
    E1_ERRORS_PER_SIGNAL,
    E2_RAM_ERRORS,
    E2_STACK_ERRORS,
    ErrorSpec,
    build_e1_error_set,
    build_e2_error_set,
)
from repro.injection.fic import CampaignController, ExperimentRecord
from repro.injection.injector import (
    INJECTION_PERIOD_MS,
    StuckAtInjector,
    TimeTriggeredInjector,
    TransientInjector,
)

__all__ = [
    "E1_ERRORS_PER_SIGNAL",
    "E2_RAM_ERRORS",
    "E2_STACK_ERRORS",
    "ErrorSpec",
    "build_e1_error_set",
    "build_e2_error_set",
    "CampaignController",
    "ExperimentRecord",
    "INJECTION_PERIOD_MS",
    "StuckAtInjector",
    "TimeTriggeredInjector",
    "TransientInjector",
]
