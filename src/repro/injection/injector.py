"""SWIFI injectors: time-triggered bit-flips and fault-model variants.

*"The error injections were time triggered and were injected with a
period of 20 ms."* (Section 3.4.)  :class:`TimeTriggeredInjector` is that
model: it flips the configured (address, bit) every ``period_ms``
starting at ``start_ms``, for the whole observation window — an
intermittent-fault model where the same disturbance keeps recurring.
Because a flip is an XOR, a re-injection into an untouched location
reverts the previous corruption; that toggling is part of the model's
realism (and of why monotonic counters are so easy to catch).

Two further fault models extend the paper's (which notes bit-flips model
*intermittent* hardware faults):

* :class:`TransientInjector` — a single flip at one instant (a transient
  upset, e.g. one particle strike);
* :class:`StuckAtInjector` — the bit is forced to a fixed value on every
  tick (a permanent fault in the cell or its driver).

All three share the one-method ``tick(now_ms, memory)`` protocol the
target system calls each millisecond.

Observability.  Each injector carries an optional ``tracer``
(:class:`repro.obs.TraceBus`); when set, every performed injection is
published as an ``injection/injection`` trace event.  The attribute
defaults to ``None`` and is tested only on ticks that actually inject,
so tracing disabled costs one predicate check per injection — nothing on
the every-millisecond fast path.
"""

from __future__ import annotations

from typing import Optional

from repro.injection.errors import ErrorSpec
from repro.memory.memmap import MemoryMap

__all__ = [
    "TimeTriggeredInjector",
    "TransientInjector",
    "StuckAtInjector",
    "INJECTION_PERIOD_MS",
]

#: The paper's injection period.
INJECTION_PERIOD_MS = 20


def _trace_injection(injector, now_ms: int, model: str) -> None:
    """Publish one ``injection`` event for *injector* (tracer known set)."""
    error = injector.error
    injector.tracer.emit(
        "injection",
        "injection",
        time_ms=now_ms,
        error=error.name,
        address=error.address,
        bit=error.bit,
        model=model,
        count=injector.injections,
    )


class TimeTriggeredInjector:
    """Periodically flips one (address, bit) pair in the target memory."""

    __slots__ = (
        "error",
        "period_ms",
        "start_ms",
        "injections",
        "first_injection_ms",
        "tracer",
    )

    def __init__(
        self,
        error: ErrorSpec,
        period_ms: int = INJECTION_PERIOD_MS,
        start_ms: int = 0,
        tracer=None,
    ) -> None:
        if period_ms <= 0:
            raise ValueError(f"period_ms must be positive, got {period_ms}")
        if start_ms < 0:
            raise ValueError(f"start_ms must be non-negative, got {start_ms}")
        self.error = error
        self.period_ms = period_ms
        self.start_ms = start_ms
        self.injections = 0
        self.first_injection_ms: Optional[int] = None
        self.tracer = tracer

    def tick(self, now_ms: int, memory: MemoryMap) -> bool:
        """Called every millisecond; injects when the trigger time is due."""
        if now_ms < self.start_ms or (now_ms - self.start_ms) % self.period_ms:
            return False
        memory.data[self.error.address] ^= 1 << self.error.bit
        self.injections += 1
        if self.first_injection_ms is None:
            self.first_injection_ms = now_ms
        if self.tracer is not None:
            _trace_injection(self, now_ms, "time-triggered")
        return True

    def reset(self) -> None:
        """Forget injection history (new experiment run)."""
        self.injections = 0
        self.first_injection_ms = None


class TransientInjector:
    """A single bit-flip at one instant (transient-upset fault model)."""

    __slots__ = ("error", "at_ms", "injections", "first_injection_ms", "tracer")

    def __init__(self, error: ErrorSpec, at_ms: int = 0, tracer=None) -> None:
        if at_ms < 0:
            raise ValueError(f"at_ms must be non-negative, got {at_ms}")
        self.error = error
        self.at_ms = at_ms
        self.injections = 0
        self.first_injection_ms: Optional[int] = None
        self.tracer = tracer

    def tick(self, now_ms: int, memory: MemoryMap) -> bool:
        if now_ms != self.at_ms or self.injections:
            return False
        memory.data[self.error.address] ^= 1 << self.error.bit
        self.injections = 1
        self.first_injection_ms = now_ms
        if self.tracer is not None:
            _trace_injection(self, now_ms, "transient")
        return True

    def reset(self) -> None:
        self.injections = 0
        self.first_injection_ms = None


class StuckAtInjector:
    """A bit forced to a constant value (permanent fault model).

    The bit at the error's (address, bit) is driven to ``stuck_value``
    on every tick from ``start_ms`` on, overriding anything the software
    writes — a stuck memory cell.  ``injections`` counts the ticks on
    which the forcing actually changed the stored value.
    """

    __slots__ = (
        "error",
        "stuck_value",
        "start_ms",
        "injections",
        "first_injection_ms",
        "tracer",
    )

    def __init__(
        self,
        error: ErrorSpec,
        stuck_value: int = 1,
        start_ms: int = 0,
        tracer=None,
    ) -> None:
        if stuck_value not in (0, 1):
            raise ValueError(f"stuck_value must be 0 or 1, got {stuck_value}")
        if start_ms < 0:
            raise ValueError(f"start_ms must be non-negative, got {start_ms}")
        self.error = error
        self.stuck_value = stuck_value
        self.start_ms = start_ms
        self.injections = 0
        self.first_injection_ms: Optional[int] = None
        self.tracer = tracer

    def tick(self, now_ms: int, memory: MemoryMap) -> bool:
        if now_ms < self.start_ms:
            return False
        mask = 1 << self.error.bit
        current = memory.data[self.error.address]
        forced = (current | mask) if self.stuck_value else (current & ~mask)
        if forced == current:
            return False
        memory.data[self.error.address] = forced
        self.injections += 1
        if self.first_injection_ms is None:
            self.first_injection_ms = now_ms
        if self.tracer is not None:
            _trace_injection(self, now_ms, "stuck-at")
        return True

    def reset(self) -> None:
        self.injections = 0
        self.first_injection_ms = None
