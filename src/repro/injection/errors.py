"""Error specifications and error sets (Section 3.4, Table 6).

Two error sets drive the evaluation:

* **E1** — one bit-flip error per bit position of each monitored signal:
  7 signals x 16 bits = 112 errors, numbered S1..S112 in signal order
  (Table 6).  E1 measures ``Pds``: detection given the error is in a
  monitored signal.
* **E2** — 200 bit-flip errors at uniformly random (address, bit)
  positions, 150 in the application RAM area and 50 in the stack area,
  sampled **with replacement** as in the paper.  E2 measures
  ``Pdetect``.

An :class:`ErrorSpec` is the downloadable injection parameter set of the
FIC3: a byte address and bit position, plus the metadata the result
tables group by.
"""

from __future__ import annotations

import dataclasses
import random
from typing import List, Optional, Sequence

__all__ = [
    "ErrorSpec",
    "build_e1_error_set",
    "build_e2_error_set",
    "E1_ERRORS_PER_SIGNAL",
    "E2_RAM_ERRORS",
    "E2_STACK_ERRORS",
]

#: Each signal is 16 bits long, hence 16 errors per signal (Table 6).
E1_ERRORS_PER_SIGNAL = 16

#: Of the 200 E2 errors, 150 were located in application RAM areas and 50
#: in the stack area (Section 3.4).
E2_RAM_ERRORS = 150
E2_STACK_ERRORS = 50


@dataclasses.dataclass(frozen=True)
class ErrorSpec:
    """One injectable error: flip *bit* of the byte at *address*.

    ``area`` is ``"ram"`` or ``"stack"``; ``signal`` names the monitored
    signal for E1 errors (``None`` for E2's random locations); ``name``
    is the S1..S112 (E1) / R1../K1.. (E2) label used in reports.
    """

    name: str
    address: int
    bit: int
    area: str
    signal: Optional[str] = None
    signal_bit: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0 <= self.bit <= 7:
            raise ValueError(f"bit must be 0..7 within a byte, got {self.bit}")
        if self.area not in ("ram", "stack"):
            raise ValueError(f"area must be 'ram' or 'stack', got {self.area!r}")


def build_e1_error_set(
    memory, signals: Optional[Sequence[str]] = None
) -> List[ErrorSpec]:
    """The E1 error set: every bit position of every monitored signal.

    *memory* is any target memory exposing ``signal_variable(name)``;
    *signals* defaults to the memory's own ``MONITORED_SIGNALS`` (for
    the arrestor's :class:`~repro.arrestor.signals_map.MasterMemory`,
    the seven Table-4 signals, giving the paper's 112 errors).  Error
    numbering follows Table 6: S1..S16 target SetValue, S17..S32
    IsValue, S33..S48 i, S49..S64 pulscnt, S65..S80 ms_slot_nbr,
    S81..S96 mscnt, S97..S112 OutValue.  Within a signal, errors go from
    bit 0 (LSB) to bit 15 (MSB).
    """
    if signals is None:
        signals = getattr(memory, "MONITORED_SIGNALS", None)
        if signals is None:
            raise TypeError(
                f"{type(memory).__name__} declares no MONITORED_SIGNALS; "
                f"pass signals= explicitly"
            )
    errors: List[ErrorSpec] = []
    number = 1
    for signal in signals:
        variable = memory.signal_variable(signal)
        for bit in range(E1_ERRORS_PER_SIGNAL):
            address = variable.address + (bit >> 3)
            errors.append(
                ErrorSpec(
                    name=f"S{number}",
                    address=address,
                    bit=bit & 7,
                    area="ram",
                    signal=signal,
                    signal_bit=bit,
                )
            )
            number += 1
    return errors


def build_e2_error_set(
    memory,
    seed: int = 2000,
    n_ram: int = E2_RAM_ERRORS,
    n_stack: int = E2_STACK_ERRORS,
) -> List[ErrorSpec]:
    """The E2 error set: uniform random (address, bit), with replacement.

    Locations are drawn uniformly over the target memory's whole ``ram``
    region (the paper's 417-byte application RAM) and its whole ``stack``
    region (1008 bytes) respectively; bit positions uniformly over 0..7.
    Sampling is with replacement, as in the paper, so duplicate errors
    can (and occasionally do) occur.
    """
    if n_ram < 0 or n_stack < 0:
        raise ValueError("error counts must be non-negative")
    rng = random.Random(seed)
    ram = memory.map.regions["ram"]
    stack = memory.map.regions["stack"]
    errors: List[ErrorSpec] = []
    for index in range(n_ram):
        address = rng.randrange(ram.start, ram.end)
        bit = rng.randrange(8)
        errors.append(ErrorSpec(f"R{index + 1}", address, bit, "ram"))
    for index in range(n_stack):
        address = rng.randrange(stack.start, stack.end)
        bit = rng.randrange(8)
        errors.append(ErrorSpec(f"K{index + 1}", address, bit, "stack"))
    return errors
