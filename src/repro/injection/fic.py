"""The fault-injection campaign controller (the paper's FIC3).

The FIC3 *"downloads error parameters to an injection interrupt routine
in the target system, which is then, during the experiment run, triggered
... when the actual injection is to be performed"*; it also records and
time-stamps the detection pin and stores the environment readouts for
failure analysis.  :class:`CampaignController` plays that role for the
simulated target: it builds a fresh system per run (the evaluation
reboots between runs), arms the injector, executes the run and packages
the readouts.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from repro.arrestor.system import RunConfig, RunResult, TargetSystem, TestCase
from repro.injection.errors import ErrorSpec
from repro.injection.injector import INJECTION_PERIOD_MS, TimeTriggeredInjector
from repro.plant.failure import ArrestmentSummary, FailureClassifier, FailureVerdict

__all__ = ["ExperimentRecord", "CampaignController", "TIMEOUT_VIOLATION"]

#: Constraint name recorded in the verdict of a timed-out run.
TIMEOUT_VIOLATION = "worker-timeout"


@dataclasses.dataclass(frozen=True)
class ExperimentRecord:
    """One experiment run: the injected error, the test case, the readouts."""

    error: Optional[ErrorSpec]
    version: str
    result: RunResult

    @property
    def detected(self) -> bool:
        return self.result.detected

    @property
    def failed(self) -> bool:
        return self.result.failed

    @property
    def latency_ms(self) -> Optional[float]:
        return self.result.detection_latency_ms


class CampaignController:
    """Executes experiment runs against freshly booted target systems.

    ``version`` names the system build under test: ``"EA1"``..``"EA7"``
    for the single-assertion versions, ``"All"`` for the version with all
    seven mechanisms active — the eight versions of Section 3.4 — or any
    explicit tuple of EA ids.
    """

    def __init__(
        self,
        classifier: Optional[FailureClassifier] = None,
        injection_period_ms: int = INJECTION_PERIOD_MS,
        injection_start_ms: int = 0,
        run_config: Optional[RunConfig] = None,
    ) -> None:
        self.classifier = classifier if classifier is not None else FailureClassifier()
        self.injection_period_ms = injection_period_ms
        self.injection_start_ms = injection_start_ms
        self.run_config = run_config
        self.runs_executed = 0

    @staticmethod
    def version_eas(version: str) -> Optional[Tuple[str, ...]]:
        """EA ids enabled in a named system version (None = all seven)."""
        if version == "All":
            return None
        return (version,)

    def _build_system(self, test_case: TestCase, version: str) -> TargetSystem:
        enabled = self.version_eas(version)
        if self.run_config is not None:
            config = dataclasses.replace(self.run_config, enabled_eas=enabled)
            return TargetSystem(test_case, config=config, classifier=self.classifier)
        return TargetSystem(
            test_case, classifier=self.classifier, enabled_eas=enabled
        )

    def run_reference(self, test_case: TestCase, version: str = "All") -> ExperimentRecord:
        """A fault-free reference run (the Section-3.4 precondition check)."""
        system = self._build_system(test_case, version)
        result = system.run()
        self.runs_executed += 1
        return ExperimentRecord(error=None, version=version, result=result)

    def run_injection(
        self,
        error: ErrorSpec,
        test_case: TestCase,
        version: str = "All",
    ) -> ExperimentRecord:
        """One injected experiment run on a freshly booted system."""
        system = self._build_system(test_case, version)
        injector = TimeTriggeredInjector(
            error,
            period_ms=self.injection_period_ms,
            start_ms=self.injection_start_ms,
        )
        result = system.run(injector)
        self.runs_executed += 1
        return ExperimentRecord(error=error, version=version, result=result)

    def timeout_record(
        self,
        error: Optional[ErrorSpec],
        test_case: TestCase,
        version: str,
        timeout_ms: int,
    ) -> ExperimentRecord:
        """A synthetic record for a run whose wall-clock budget expired.

        The campaign engine gives each run a wall-clock timeout so a
        wedged simulation cannot hang a worker (the FIC3 equivalently
        aborts runs whose target stops responding).  Such a run counts as
        wedged and failed — the aircraft was never confirmed stopped —
        with no detection and no latency.
        """
        summary = ArrestmentSummary(
            mass_kg=test_case.mass_kg,
            engagement_velocity_mps=test_case.velocity_mps,
            max_retardation_g=0.0,
            max_cable_force_n=0.0,
            stop_distance_m=0.0,
            stopped=False,
            duration_s=timeout_ms / 1000.0,
        )
        result = RunResult(
            test_case=test_case,
            summary=summary,
            verdict=FailureVerdict(failed=True, violated=(TIMEOUT_VIOLATION,)),
            detected=False,
            first_detection_ms=None,
            detection_count=0,
            first_injection_ms=None,
            injection_count=0,
            wedged=True,
            duration_ms=timeout_ms,
        )
        self.runs_executed += 1
        return ExperimentRecord(error=error, version=version, result=result)
