"""The fault-injection campaign controller (the paper's FIC3).

The FIC3 *"downloads error parameters to an injection interrupt routine
in the target system, which is then, during the experiment run, triggered
... when the actual injection is to be performed"*; it also records and
time-stamps the detection pin and stores the environment readouts for
failure analysis.  :class:`CampaignController` plays that role for the
simulated target: it builds a fresh system per run (the evaluation
reboots between runs), arms the injector, executes the run and packages
the readouts.

Observability.  Given a ``tracer`` (:class:`repro.obs.TraceBus`) the
controller emits the run-lifecycle events (``run-start``, ``run-end``,
``run-timeout``) and wires the bus into the run's detection log and
injector, so detections, recoveries and bit flips stream out with their
sim-times.  Given a ``metrics`` registry it maintains the campaign
counters and the per-monitor detection-latency histograms.

Snapshot acceleration.  With ``snapshots`` enabled (the default; see
``REPRO_SNAPSHOTS``), "a fresh system per run" is implemented by
restoring a cached boot-state snapshot instead of rebuilding the module
graph (:mod:`repro.targets.snapshot`), and — when ``injection_start_ms
> 0`` and no tracer is attached — by fast-forwarding through a memoized
fault-free prefix, so the pre-injection trajectory of a (version, case)
grid point is simulated once rather than once per error.  Both paths
are byte-identical to a cold run; fault-free reference runs are
additionally memoized outright (one simulation per (version, case)).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional, Tuple

from repro.injection.errors import ErrorSpec
from repro.injection.injector import INJECTION_PERIOD_MS, TimeTriggeredInjector
from repro.plant.failure import FailureVerdict
from repro.targets.base import RunResult, TestCase
from repro.targets.registry import get_target
from repro.targets import snapshot as snapshots_mod

__all__ = ["ExperimentRecord", "CampaignController", "TIMEOUT_VIOLATION"]

#: Memoized fault-free reference runs: cache key -> (RunResult, events).
#: Per process, like the snapshot cache (forked workers inherit it).
_REFERENCE_MEMO: Dict[Tuple, Tuple[RunResult, Tuple]] = {}


def clear_reference_memo() -> None:
    """Drop memoized reference results (tests; after editing a target)."""
    _REFERENCE_MEMO.clear()

#: Constraint name recorded in the verdict of a timed-out run.
TIMEOUT_VIOLATION = "worker-timeout"


@dataclasses.dataclass(frozen=True)
class ExperimentRecord:
    """One experiment run: the injected error, the test case, the readouts."""

    error: Optional[ErrorSpec]
    version: str
    result: RunResult

    @property
    def detected(self) -> bool:
        return self.result.detected

    @property
    def failed(self) -> bool:
        return self.result.failed

    @property
    def latency_ms(self) -> Optional[float]:
        return self.result.detection_latency_ms


class CampaignController:
    """Executes experiment runs against freshly booted target systems.

    ``version`` names the system build under test: one of the target's
    single-assertion versions (the arrestor's ``"EA1"``..``"EA7"``) or
    ``"All"`` for the build with every mechanism active — the versions
    of Section 3.4.

    ``target`` selects the workload: a registered name, a
    :class:`~repro.targets.base.Target` instance, or ``None`` for the
    registry default (``$REPRO_TARGET``, else the arrestor).
    ``classifier`` and ``run_config`` are forwarded to the target's
    ``boot``; ``None`` selects the target's own defaults.

    ``snapshots`` opts a controller in or out of warm-target snapshot
    reuse; ``None`` follows the session default (``REPRO_SNAPSHOTS``).
    Snapshot reuse silently disables itself when the target does not
    support it or a custom ``classifier`` instance is supplied (its
    identity cannot key a shared cache).
    """

    def __init__(
        self,
        classifier=None,
        injection_period_ms: int = INJECTION_PERIOD_MS,
        injection_start_ms: int = 0,
        run_config=None,
        tracer=None,
        metrics=None,
        target=None,
        snapshots: Optional[bool] = None,
    ) -> None:
        if injection_start_ms < 0:
            raise ValueError(
                f"injection_start_ms must be non-negative, got {injection_start_ms}"
            )
        self.target = get_target(target)
        self.classifier = classifier
        self.injection_period_ms = injection_period_ms
        self.injection_start_ms = injection_start_ms
        self.run_config = run_config
        self.tracer = tracer
        self.metrics = metrics
        self.runs_executed = 0
        if snapshots is None:
            snapshots = snapshots_mod.snapshots_enabled_default()
        self.snapshots = bool(snapshots)

    # -- observability ------------------------------------------------------

    @staticmethod
    def _run_id(error: Optional[ErrorSpec], test_case: TestCase, version: str) -> str:
        from repro.obs.events import run_id_for

        name = error.name if error is not None else "-"
        return run_id_for(version, name, test_case.mass_kg, test_case.velocity_mps)

    def _emit_run_start(
        self, error: Optional[ErrorSpec], test_case: TestCase, version: str
    ) -> None:
        tracer = self.tracer
        if tracer is None:
            return
        tracer.run_id = self._run_id(error, test_case, version)
        tracer.emit(
            "campaign",
            "run-start",
            time_ms=0.0,
            version=version,
            error=error.name if error is not None else None,
            signal=error.signal if error is not None else None,
            mass_kg=test_case.mass_kg,
            velocity_mps=test_case.velocity_mps,
            target=self.target.name,
        )

    def _emit_run_end(self, result: RunResult) -> None:
        tracer = self.tracer
        if tracer is None:
            return
        tracer.emit(
            "campaign",
            "run-end",
            time_ms=float(result.duration_ms),
            detected=result.detected,
            failed=result.failed,
            wedged=result.wedged,
            first_detection_ms=result.first_detection_ms,
            first_injection_ms=result.first_injection_ms,
            latency_ms=result.detection_latency_ms,
            detections=result.detection_count,
            injections=result.injection_count,
            duration_ms=result.duration_ms,
        )
        tracer.run_id = ""

    def _record_metrics(self, result: RunResult, detection_events=()) -> None:
        metrics = self.metrics
        if metrics is None:
            return
        metrics.counter("runs_total").inc()
        if result.detected:
            metrics.counter("runs_detected_total").inc()
        if result.failed:
            metrics.counter("runs_failed_total").inc()
        if result.wedged:
            metrics.counter("runs_wedged_total").inc()
        metrics.counter("injections_total").inc(result.injection_count)
        metrics.counter("detections_total").inc(result.detection_count)
        first_injection = result.first_injection_ms
        if result.detected and (
            first_injection is None or result.first_detection_ms < first_injection
        ):
            # A detection with nothing injected yet: the assertion fired
            # on the system's own behaviour (the false-alarm measure).
            metrics.counter("false_alarms_total").inc()
        latency = result.detection_latency_ms
        if latency is not None:
            metrics.histogram("detection_latency_ms").observe(latency)
        seen = set()
        for event in detection_events:
            monitor = str(event.monitor_id)
            metrics.counter("detections_total", monitor=monitor).inc()
            if (
                first_injection is not None
                and monitor not in seen
                and event.time >= first_injection
            ):
                seen.add(monitor)
                metrics.histogram(
                    "detection_latency_ms", monitor=monitor
                ).observe(event.time - first_injection)

    @staticmethod
    def version_eas(version: str) -> Optional[Tuple[str, ...]]:
        """EA ids enabled in a named system version (None = all)."""
        if version == "All":
            return None
        return (version,)

    def _snapshots_usable(self) -> bool:
        """Snapshot reuse applies: enabled, default classifier, capable target."""
        return (
            self.snapshots
            and self.classifier is None
            and self.target.supports_snapshots()
        )

    def _build_system(self, test_case: TestCase, version: str, fast_forward: bool = False):
        """A fresh system for one run — restored from the warm cache when sound.

        With *fast_forward* (injected runs whose first flip lands at
        ``injection_start_ms > 0``) the restored system has already been
        advanced through the memoized fault-free prefix.  Fast-forward is
        skipped under an attached tracer so the trace stream of the
        prefix window stays identical to a cold run's.
        """
        if self._snapshots_usable():
            if fast_forward and self.injection_start_ms > 0 and self.tracer is None:
                system = snapshots_mod.prefixed_system(
                    self.target,
                    test_case,
                    version,
                    self.injection_start_ms,
                    run_config=self.run_config,
                )
                if system is not None:
                    return system
            return snapshots_mod.booted_system(
                self.target, test_case, version, run_config=self.run_config
            )
        return self.target.boot(
            test_case,
            version,
            run_config=self.run_config,
            classifier=self.classifier,
        )

    def _reference_memo_key(self, test_case: TestCase, version: str) -> Tuple:
        return (
            self.target.name,
            version,
            test_case.mass_kg,
            test_case.velocity_mps,
            repr(self.run_config),
        )

    def run_reference(self, test_case: TestCase, version: str = "All") -> ExperimentRecord:
        """A fault-free reference run (the Section-3.4 precondition check).

        With snapshots enabled and no tracer attached, the result is
        memoized per (target, version, case, config): re-validating the
        reference grid — including the per-version fault-free rows of a
        campaign — costs one simulation per grid point per process.
        """
        self._emit_run_start(None, test_case, version)
        memo_key = None
        if self._snapshots_usable() and self.tracer is None:
            memo_key = self._reference_memo_key(test_case, version)
            cached = _REFERENCE_MEMO.get(memo_key)
            if cached is not None:
                result, events = cached
                self.runs_executed += 1
                self._emit_run_end(result)
                self._record_metrics(result, events)
                return ExperimentRecord(error=None, version=version, result=result)
        system = self._build_system(test_case, version)
        if self.tracer is not None:
            system.detection_log.tracer = self.tracer
        result = system.run()
        if memo_key is not None:
            _REFERENCE_MEMO[memo_key] = (result, tuple(system.detection_log.events))
        self.runs_executed += 1
        self._emit_run_end(result)
        self._record_metrics(result, system.detection_log.events)
        return ExperimentRecord(error=None, version=version, result=result)

    def run_injection(
        self,
        error: ErrorSpec,
        test_case: TestCase,
        version: str = "All",
    ) -> ExperimentRecord:
        """One injected experiment run on a freshly booted system."""
        self._emit_run_start(error, test_case, version)
        system = self._build_system(test_case, version, fast_forward=True)
        if self.tracer is not None:
            system.detection_log.tracer = self.tracer
        injector = TimeTriggeredInjector(
            error,
            period_ms=self.injection_period_ms,
            start_ms=self.injection_start_ms,
            tracer=self.tracer,
        )
        result = system.run(injector)
        self.runs_executed += 1
        self._emit_run_end(result)
        self._record_metrics(result, system.detection_log.events)
        return ExperimentRecord(error=error, version=version, result=result)

    def timeout_record(
        self,
        error: Optional[ErrorSpec],
        test_case: TestCase,
        version: str,
        timeout_ms: int,
    ) -> ExperimentRecord:
        """A synthetic record for a run whose wall-clock budget expired.

        The campaign engine gives each run a wall-clock timeout so a
        wedged simulation cannot hang a worker (the FIC3 equivalently
        aborts runs whose target stops responding).  Such a run counts as
        wedged and failed — the service was never confirmed delivered —
        with no detection and no latency.
        """
        summary = self.target.timeout_summary(test_case, timeout_ms / 1000.0)
        result = RunResult(
            test_case=test_case,
            summary=summary,
            verdict=FailureVerdict(failed=True, violated=(TIMEOUT_VIOLATION,)),
            detected=False,
            first_detection_ms=None,
            detection_count=0,
            first_injection_ms=None,
            injection_count=0,
            wedged=True,
            duration_ms=timeout_ms,
        )
        self.runs_executed += 1
        tracer = self.tracer
        if tracer is not None:
            # The aborted run_injection already emitted run-start; this
            # is the run's terminal event.
            tracer.run_id = self._run_id(error, test_case, version)
            tracer.emit(
                "campaign",
                "run-timeout",
                time_ms=float(timeout_ms),
                version=version,
                error=error.name if error is not None else None,
                timeout_ms=timeout_ms,
                target=self.target.name,
            )
            tracer.run_id = ""
        self._record_metrics(result)
        return ExperimentRecord(error=error, version=version, result=result)
