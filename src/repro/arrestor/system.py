"""The complete target system: master + slave + environment, one run.

:class:`TargetSystem` wires a master node, a slave node and an
environment simulator together and executes one arrestment under an
optional fault injector, producing the :class:`RunResult` the experiment
harness aggregates.

Observation window.  The paper observes each run for 40 s.  An
arrestment itself lasts 5-15 s, after which the signals are static and
the periodically re-injected error either violates a constraint quickly
or never will (the escapes are structural — a flip too small for the
envelope — not timing-dependent), so the reproduction truncates a run at
``post_stop_ms`` after the aircraft stops, at the overrun boundary (the
cable has fully paid out and the aircraft has left the arresting area),
or at ``observe_ms_max``, whichever comes first.  This is a simulation-
budget substitution documented in EXPERIMENTS.md.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional, Tuple

from repro.arrestor import constants as k
from repro.arrestor.master import MasterNode
from repro.arrestor.slave import SlaveNode
from repro.plant.environment import Environment
from repro.plant.failure import FailureClassifier
from repro.rtos.pins import DigitalPin
from repro.rtos.watchdog import WatchdogTimer
from repro.targets.base import RunResult, TestCase

__all__ = ["TestCase", "RunConfig", "RunResult", "TargetSystem"]

#: Simulation step: the 1-ms resolution of the target's time base.
_DT_S = 0.001


@dataclasses.dataclass(frozen=True)
class RunConfig:
    """Per-run configuration of the target system and its observation."""

    enabled_eas: Optional[Tuple[str, ...]] = None
    with_recovery: bool = False
    observe_ms_max: int = 25000
    post_stop_ms: int = 3000
    overrun_distance_m: float = 400.0
    #: When set, a watchdog with this timeout supervises the master node
    #: (an extension: the paper's mechanisms are not aimed at the
    #: control-flow errors a watchdog catches).
    watchdog_timeout_ms: Optional[int] = None
    #: When set, the seven monitored signals are sampled every this-many
    #: milliseconds into ``TargetSystem.signal_trace`` (used by the
    #: propagation measurements validating the Section-2.4 model).
    signal_trace_period_ms: Optional[int] = None
    #: Extension: guard the slave's set-point reception with the EA1
    #: assertion (plus hold-last-valid recovery), closing the unchecked
    #: COMM consumer path of the Table-4 placement.
    slave_assertion: bool = False

    def __post_init__(self) -> None:
        if self.observe_ms_max <= 0:
            raise ValueError("observe_ms_max must be positive")
        if self.post_stop_ms < 0:
            raise ValueError("post_stop_ms must be non-negative")
        if self.watchdog_timeout_ms is not None and self.watchdog_timeout_ms <= 0:
            raise ValueError("watchdog_timeout_ms must be positive when set")
        if self.enabled_eas is not None:
            object.__setattr__(self, "enabled_eas", tuple(self.enabled_eas))


@dataclasses.dataclass
class _LoopState:
    """Where a (possibly paused) run loop stands.

    Keeping the loop variables on the system instead of the stack is what
    makes a run *resumable*: :meth:`TargetSystem.run_prefix` can execute
    the fault-free prefix, the snapshot layer can deep-copy the whole
    system (this state included), and :meth:`TargetSystem.run` continues
    from the restored tick with behaviour byte-identical to an
    uninterrupted run.
    """

    #: The next millisecond to execute.
    next_ms: int = 0
    #: The last millisecond actually executed (-1 = none yet).
    last_ms: int = -1
    stop_deadline: Optional[int] = None
    events_seen: int = 0
    tx_pending: bool = False
    finished: bool = False


class TargetSystem:
    """Master + slave + environment, ready to execute one arrestment."""

    def __init__(
        self,
        test_case: TestCase,
        config: Optional[RunConfig] = None,
        classifier: Optional[FailureClassifier] = None,
        enabled_eas: Optional[Iterable[str]] = None,
    ) -> None:
        if config is None:
            config = RunConfig(
                enabled_eas=tuple(enabled_eas) if enabled_eas is not None else None
            )
        self.test_case = test_case
        self.config = config
        self.classifier = classifier if classifier is not None else FailureClassifier()
        self.env = Environment(test_case.mass_kg, test_case.velocity_mps)
        self.master = MasterNode(
            self.env,
            enabled_eas=config.enabled_eas,
            with_recovery=config.with_recovery,
        )
        receive_monitor = None
        if config.slave_assertion:
            from repro.arrestor.instrumentation import assertion_parameters
            from repro.core.classes import SignalClass
            from repro.core.monitor import SignalMonitor
            from repro.core.recovery import HoldLastValid

            receive_monitor = SignalMonitor(
                "SetValue",
                SignalClass.CONTINUOUS_RANDOM,
                assertion_parameters()["SetValue"],
                log=self.master.detection_log,
                recovery=HoldLastValid(),
                monitor_id="EA1-S",
            )
        self.slave = SlaveNode(self.env, receive_monitor=receive_monitor)
        self.detect_pin = DigitalPin("detect")
        self.watchdog = (
            WatchdogTimer(config.watchdog_timeout_ms)
            if config.watchdog_timeout_ms is not None
            else None
        )
        #: (time, mscnt, ms_slot_nbr, pulscnt, i, SetValue, IsValue,
        #: OutValue) samples when ``signal_trace_period_ms`` is set.
        self.signal_trace: list = []
        #: Loop state of an in-progress (or finished) run; ``None`` until
        #: the first :meth:`run`/:meth:`run_prefix` call.
        self._loop: Optional[_LoopState] = None

    @property
    def detection_log(self):
        """The master node's detection log (the target-protocol surface)."""
        return self.master.detection_log

    # -- serving seam (see repro.serve) --------------------------------------

    @property
    def clock_ms(self) -> int:
        """The next millisecond the run loop will execute."""
        return self._loop.next_ms if self._loop is not None else 0

    @property
    def finished(self) -> bool:
        """Whether the run has completed (window end or early stop)."""
        return self._loop is not None and self._loop.finished

    @property
    def horizon_ms(self) -> int:
        """The observation window's upper bound (runs may stop earlier)."""
        return self.config.observe_ms_max

    @property
    def memory_map(self):
        """The master node's injectable memory image."""
        return self.master.mem.map

    def run_prefix(self, until_ms: int) -> None:
        """Advance the fault-free run up to (excluding) tick *until_ms*.

        Used by the snapshot layer: the fault-free prefix of an injected
        run with ``injection_start_ms > 0`` is identical for every error,
        so it is simulated once, the paused system is snapshotted, and
        every run restores it and continues with :meth:`run`.  Ticking an
        armed-but-not-yet-due injector is a no-op, so skipping those
        ticks entirely preserves byte-identical behaviour.
        """
        if until_ms < 0:
            raise ValueError(f"until_ms must be non-negative, got {until_ms}")
        self._advance(None, until_ms)

    def run(self, injector=None) -> RunResult:
        """Execute the arrestment; *injector* is ticked every millisecond.

        On a system advanced with :meth:`run_prefix` the loop resumes
        where the prefix paused; otherwise it runs start to finish.
        """
        self._advance(injector, None)
        return self.result_now(injector)

    def result_now(self, injector=None) -> RunResult:
        """The run's result as it stands, without advancing the loop.

        The online serving path uses this to close a session whose
        telemetry stream ended before the arrestment did; :meth:`run`
        delegates here after advancing to the end.  *injector* only
        supplies the injection counters — anything with
        ``first_injection_ms``/``injections`` attributes duck-types.
        """
        last_ms = self._loop.last_ms if self._loop is not None else -1
        summary = self.env.summary()
        verdict = self.classifier.classify(summary)
        log = self.master.detection_log
        return RunResult(
            test_case=self.test_case,
            summary=summary,
            verdict=verdict,
            detected=log.detected,
            first_detection_ms=log.first_detection_time,
            detection_count=len(log.events),
            first_injection_ms=(
                injector.first_injection_ms if injector is not None else None
            ),
            injection_count=(injector.injections if injector is not None else 0),
            wedged=self.master.wedged,
            duration_ms=last_ms + 1,
            watchdog_fired_ms=(
                self.watchdog.fired_at_ms if self.watchdog is not None else None
            ),
        )

    def _advance(self, injector, until_ms: Optional[int]) -> None:
        """The run loop, from the stored state up to *until_ms* (or the end)."""
        state = self._loop
        if state is None:
            state = self._loop = _LoopState()
        if state.finished:
            return
        master = self.master
        slave = self.slave
        env = self.env
        config = self.config
        log = master.detection_log
        pin = self.detect_pin
        memory = master.mem.map
        comm_tx = master.mem.comm_tx_set_value

        overrun_m = config.overrun_distance_m
        post_stop = config.post_stop_ms
        stop_deadline = state.stop_deadline
        events_seen = state.events_seen
        now = state.next_ms
        watchdog = self.watchdog
        trace_period = config.signal_trace_period_ms
        tx_pending = state.tx_pending
        for now in range(state.next_ms, config.observe_ms_max):
            if until_ms is not None and now >= until_ms:
                # Pause *before* executing tick ``now``: the resumed run
                # executes it (injector first), exactly as the cold loop
                # would have.
                state.next_ms = now
                state.last_ms = now - 1
                state.stop_deadline = stop_deadline
                state.events_seen = events_seen
                state.tx_pending = tx_pending
                return
            if injector is not None:
                injector.tick(now, memory)
            slot = master.tick(now)
            # The link shifts the transmit buffer out during the
            # millisecond after COMM writes it, so the slave receives the
            # buffer *as it is at delivery time* — a bit flipped in that
            # window reaches the slave's drum (the propagation path the
            # slave-side EA1-S reception guard closes).  The slave only
            # consumes the set point at its V_REG slot, later in the
            # cycle, so fault-free behaviour is unchanged.
            if tx_pending:
                slave.receive_set_value(comm_tx.get())
                tx_pending = False
            if slot == k.SLOT_COMM:
                tx_pending = True
            slave.tick(now)
            env.advance(_DT_S)

            if watchdog is not None:
                if slot is not None:
                    watchdog.kick(now)
                watchdog.poll(now)

            if trace_period is not None and now % trace_period == 0:
                mem = master.mem
                self.signal_trace.append(
                    (
                        now,
                        mem.mscnt.get(),
                        mem.ms_slot_nbr.get(),
                        mem.pulscnt.get(),
                        mem.i.get(),
                        mem.set_value.get(),
                        mem.is_value.get(),
                        mem.out_value.get(),
                    )
                )

            if len(log.events) != events_seen:
                events_seen = len(log.events)
                pin.pulse(now)

            if stop_deadline is None:
                if env.arrestment_complete:
                    stop_deadline = now + post_stop
                elif env.aircraft.position_m >= overrun_m:
                    break
            elif now >= stop_deadline:
                break

        state.next_ms = now + 1
        state.last_ms = now
        state.stop_deadline = stop_deadline
        state.events_seen = events_seen
        state.tx_pending = tx_pending
        state.finished = True
