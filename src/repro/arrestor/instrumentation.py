"""Software instrumentation of the target system (Section 3.2, Table 4).

Applying the Section-2.3 process to the arresting system identifies seven
service-critical signals out of the system's 24; this module declares the
signal inventory, classifies the seven signals per the Figure-1 scheme and
derives their assertion parameter sets from the physical characteristics
of the system (sensor time constants, valve dynamics, actuator authority
— exactly the parameter sources Section 2.3 lists):

========== ==== ============== ============ ======================================
signal      EA   class          location     envelope source
========== ==== ============== ============ ======================================
SetValue    EA1  Co/Ra          V_REG        set-point authority + CALC slew limit
IsValue     EA2  Co/Ra          V_REG        valve first-order slew + quantisation
i           EA3  Co/Mo/Dy       CALC         six checkpoints, one step at a time
pulscnt     EA4  Co/Mo/Dy       DIST_S       max cable speed over the pulse pitch
ms_slot_nbr EA5  Di/Se/Li       CLOCK        the seven-slot cyclic schedule
mscnt       EA6  Co/Mo/St       CLOCK        1-ms clock, 16-bit wrap-around
OutValue    EA7  Co/Ra          PRES_A       valve command authority + PID dynamics
========== ==== ============== ============ ======================================
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Tuple, Union

from repro.arrestor import constants as k
from repro.core.classes import SignalClass
from repro.core.monitor import DetectionLog, SignalMonitor
from repro.core.parameters import ContinuousParams, DiscreteParams, linear_transition_map
from repro.core.process import FmecaEntry, InstrumentationPlan, SignalInventory
from repro.core.recovery import RecoveryStrategy, default_recovery_for
from repro.plant.hydraulics import VALVE_MAX_PA, VALVE_TIME_CONSTANT_S, PA_PER_COUNT

__all__ = [
    "EA_IDS",
    "EA_BY_SIGNAL",
    "SIGNAL_BY_EA",
    "ALL_EAS",
    "build_signal_inventory",
    "default_fmeca_entries",
    "assertion_parameters",
    "build_instrumentation_plan",
    "build_monitors",
]

#: Mechanism identifiers, in Table-4 / Table-6 order.
EA_IDS = ("EA1", "EA2", "EA3", "EA4", "EA5", "EA6", "EA7")

#: Signal monitored by each mechanism (the boldface pairs of Table 7).
SIGNAL_BY_EA: Dict[str, str] = {
    "EA1": "SetValue",
    "EA2": "IsValue",
    "EA3": "i",
    "EA4": "pulscnt",
    "EA5": "ms_slot_nbr",
    "EA6": "mscnt",
    "EA7": "OutValue",
}

EA_BY_SIGNAL: Dict[str, str] = {sig: ea for ea, sig in SIGNAL_BY_EA.items()}

ALL_EAS = frozenset(EA_IDS)

#: Test locations per Table 4.
_TEST_LOCATION: Dict[str, str] = {
    "SetValue": "V_REG",
    "IsValue": "V_REG",
    "i": "CALC",
    "pulscnt": "DIST_S",
    "ms_slot_nbr": "CLOCK",
    "mscnt": "CLOCK",
    "OutValue": "PRES_A",
}

#: Classifications per Table 4.
_CLASSIFICATION: Dict[str, SignalClass] = {
    "SetValue": SignalClass.CONTINUOUS_RANDOM,
    "IsValue": SignalClass.CONTINUOUS_RANDOM,
    "i": SignalClass.CONTINUOUS_MONOTONIC_DYNAMIC,
    "pulscnt": SignalClass.CONTINUOUS_MONOTONIC_DYNAMIC,
    "ms_slot_nbr": SignalClass.DISCRETE_SEQUENTIAL_LINEAR,
    "mscnt": SignalClass.CONTINUOUS_MONOTONIC_STATIC,
    "OutValue": SignalClass.CONTINUOUS_RANDOM,
}


def build_signal_inventory() -> SignalInventory:
    """Steps 1-3 of the process: the master node's signal dataflow (Figure 5)."""
    inventory = SignalInventory()
    inventory.declare("pulse_sensor", "input", "RotationSensor", ["DIST_S"])
    inventory.declare("pressure_sensor", "input", "PressureSensor", ["PRES_S"])
    inventory.declare("mscnt", "internal", "CLOCK", ["CALC"])
    inventory.declare("ms_slot_nbr", "internal", "CLOCK", ["CLOCK"])
    inventory.declare("pulscnt", "internal", "DIST_S", ["CALC"])
    inventory.declare("i", "internal", "CALC", ["CALC"])
    inventory.declare("SetValue", "internal", "CALC", ["V_REG", "COMM"])
    inventory.declare("IsValue", "internal", "PRES_S", ["V_REG"])
    inventory.declare("OutValue", "internal", "V_REG", ["PRES_A"])
    inventory.declare("valve_command", "output", "PRES_A", ["PressureValve"])
    inventory.declare("comm_SetValue", "output", "COMM", ["SlaveNode"])
    return inventory


def default_fmeca_entries() -> Tuple[FmecaEntry, ...]:
    """Step 4: the FMECA table that selects the seven monitored signals."""
    return (
        FmecaEntry("SetValue", "wrong braking set point", severity=9, occurrence=4),
        FmecaEntry("IsValue", "false pressure feedback", severity=8, occurrence=4),
        FmecaEntry("i", "checkpoint sequence corrupted", severity=8, occurrence=3),
        FmecaEntry("pulscnt", "distance count corrupted", severity=9, occurrence=3),
        FmecaEntry("ms_slot_nbr", "schedule derailed", severity=7, occurrence=3),
        FmecaEntry("mscnt", "time base corrupted", severity=7, occurrence=3),
        FmecaEntry("OutValue", "valve command corrupted", severity=9, occurrence=4),
        FmecaEntry("valve_command", "actuator interface stuck", severity=9, occurrence=1, detectability=4),
        FmecaEntry("comm_SetValue", "slave set point stale", severity=5, occurrence=2, detectability=5),
    )


# -- assertion envelopes (step 6) ---------------------------------------------

#: EA2/EA7 are tested every 7 ms (the V_REG / PRES_A period).
_TEST_PERIOD_S = k.N_SLOTS / 1000.0

#: Largest physically possible IsValue change between two 7-ms samples:
#: a full-scale first-order step decayed over one test period, plus one
#: count of quantisation.
_ISVALUE_MAX_SLEW = (
    int(
        math.ceil(
            VALVE_MAX_PA
            * (1.0 - math.exp(-_TEST_PERIOD_S / VALVE_TIME_CONSTANT_S))
            / PA_PER_COUNT
        )
    )
    + 1
)

#: SetValue moves at most SLEW * N_SLOTS counts between V_REG tests; the
#: envelope adds ~20 % margin.
_SETVALUE_MAX_RATE = (k.SETVALUE_SLEW_PER_PASS * k.N_SLOTS * 12) // 10

#: OutValue's per-test change is bounded by the set-point slew plus the
#: PID's proportional and integral response to a transient; 1000 counts
#: covers the worst fault-free transient with about 2x margin.
_OUTVALUE_MAX_RATE = 1000


def assertion_parameters() -> Dict[str, Union[ContinuousParams, DiscreteParams]]:
    """Step 6: the per-signal ``Pcont``/``Pdisc`` the assertions use."""
    return {
        "SetValue": ContinuousParams.random(
            0,
            k.SETVALUE_MAX_COUNTS,
            rmax_incr=_SETVALUE_MAX_RATE,
            rmax_decr=_SETVALUE_MAX_RATE,
        ),
        "IsValue": ContinuousParams.random(
            0,
            k.OUTVALUE_MAX_COUNTS,
            rmax_incr=_ISVALUE_MAX_SLEW,
            rmax_decr=_ISVALUE_MAX_SLEW,
        ),
        "i": ContinuousParams.dynamic_monotonic(
            0, k.N_CHECKPOINTS, rmin=0, rmax=1, increasing=True
        ),
        "pulscnt": ContinuousParams.dynamic_monotonic(
            0, 9000, rmin=0, rmax=k.MAX_PULSES_PER_MS, increasing=True
        ),
        "ms_slot_nbr": linear_transition_map(range(k.N_SLOTS), cyclic=True),
        "mscnt": ContinuousParams.static_monotonic(0, 0xFFFF, rate=1, wrap=True),
        "OutValue": ContinuousParams.random(
            0,
            k.OUTVALUE_MAX_COUNTS,
            rmax_incr=_OUTVALUE_MAX_RATE,
            rmax_decr=_OUTVALUE_MAX_RATE,
        ),
    }


def build_instrumentation_plan() -> InstrumentationPlan:
    """Steps 5-7 for the master node, validated against the inventory."""
    inventory = build_signal_inventory()
    plan = InstrumentationPlan(inventory)
    params = assertion_parameters()
    for ea in EA_IDS:
        signal = SIGNAL_BY_EA[ea]
        plan.plan(
            signal,
            _CLASSIFICATION[signal],
            params[signal],
            location=_TEST_LOCATION[signal],
            monitor_id=ea,
        )
    return plan


def build_monitors(
    enabled: Optional[Iterable[str]] = None,
    log: Optional[DetectionLog] = None,
    with_recovery: bool = False,
) -> Dict[str, SignalMonitor]:
    """Step 8: instantiate the monitors, keyed by EA id.

    *enabled* selects a subset of EA ids (the evaluation's eight system
    versions); ``None`` enables all seven.  All monitors share *log*.
    ``with_recovery`` attaches each signal's default recovery strategy
    (used by the recovery ablation, not by the paper's experiments).
    """
    enabled_set = set(enabled) if enabled is not None else set(EA_IDS)
    unknown = enabled_set - set(EA_IDS)
    if unknown:
        raise ValueError(f"unknown mechanism ids: {sorted(unknown)}")
    shared_log = log if log is not None else DetectionLog()
    params = assertion_parameters()
    monitors: Dict[str, SignalMonitor] = {}
    for ea in EA_IDS:
        if ea not in enabled_set:
            continue
        signal = SIGNAL_BY_EA[ea]
        recovery: Optional[RecoveryStrategy] = None
        if with_recovery:
            recovery = default_recovery_for(params[signal])
        monitors[ea] = SignalMonitor(
            signal,
            _CLASSIFICATION[signal],
            params[signal],
            log=shared_log,
            recovery=recovery,
            monitor_id=ea,
        )
    return monitors
