"""CALC: the background set-point calculator (Section 3.1).

CALC *"uses the signals mscnt and pulscnt to calculate a set point value
for the pressure valves, SetValue, at six predefined checkpoints along
the runway.  The distance between these checkpoints is constant, and
they are detected by comparing the current pulscnt with internally
stored pulscnt-values corresponding to the various checkpoints.  The
number of the current checkpoint is stored in the checkpoint counter,
i."*

Control law (integer arithmetic throughout, as on the 16-bit target):

* between checkpoints CALC slews ``SetValue`` toward its target by at
  most :data:`~repro.arrestor.constants.SETVALUE_SLEW_PER_PASS` counts
  per background pass (hydraulic-shock avoidance; also the basis of
  EA1's rate envelope);
* at checkpoint ``n`` it estimates the velocity from the pulse count and
  millisecond clock accumulated since the previous checkpoint, refines
  its mass estimate from the measured energy loss, computes the
  deceleration needed to stop at
  :data:`~repro.arrestor.constants.TARGET_STOP_DISTANCE_M`, converts the
  required force to a pressure set point and caps it against its
  certified-envelope curve.

CALC's working set (previous pulse count, distance and time accumulated
since the last checkpoint) lives on its stack frame — the frame of the
always-running background process — so stack-area injections can corrupt
a *live* computation.  Its frame linkage words are consulted every pass;
see :mod:`repro.memory.stack` for what corrupted linkage does.

Per Table 4, EA3 (checkpoint counter ``i``, continuous/monotonic/
dynamic) is placed here.
"""

from __future__ import annotations

from repro.arrestor import constants as k
from repro.arrestor.module_base import ModuleBase

__all__ = ["Calc"]

#: Centimetres per rotation pulse (5 cm at the 0.05 m pulse pitch).
_CM_PER_PULSE = 5

#: Remaining distance (cm) from each checkpoint to the stop target.
_D_REMAIN_CM = tuple(
    int(round((k.TARGET_STOP_DISTANCE_M - d) * 100.0)) for d in k.CHECKPOINT_DISTANCES_M
)


def _clamp(value: int, lo: int, hi: int) -> int:
    if value < lo:
        return lo
    if value > hi:
        return hi
    return value


class Calc(ModuleBase):
    """Background process: checkpoint detection and set-point calculation."""

    name = "CALC"

    def __init__(self, node) -> None:
        super().__init__(node)
        mem = node.mem
        self._frame = mem.calc_frame
        self._frame_words = range(len(mem.calc_frame))
        self._mscnt = mem.mscnt
        self._pulscnt = mem.pulscnt
        self._i = mem.i
        self._set_value = mem.set_value
        self._target = mem.target_set_value
        self._last_cp_pulscnt = mem.last_cp_pulscnt
        self._last_cp_mscnt = mem.last_cp_mscnt
        self._v_prev = mem.v_prev_cmps
        self._v0 = mem.v0_cmps
        self._m_est = mem.m_est_kg
        self._p_cap = mem.p_cap_counts
        self._cp_pulses = mem.cp_pulses
        self._telemetry_index = mem.telemetry_index
        self._telemetry_ring = mem.telemetry_ring
        self._mon_i = node.monitors.get("EA3")
        # The background frame's live working set (stack-resident).
        scratch = mem.scratch
        self._prev_pulscnt = scratch.slot("calc.prev_pulscnt")
        self._dist_acc = scratch.slot("calc.dist_acc")
        self._v_mean_tmp = scratch.slot("calc.v_mean")

    # -- per-pass body ---------------------------------------------------

    def step(self, now_ms: int) -> None:
        # Consult the frame-linkage words of the background frame.
        for word in self._frame_words:
            outcome = self._frame.consult(word)
            if outcome.kind == "wedge":
                self.node.wedge()
                return
            if outcome.kind != "ok":
                return  # this pass is lost to the control-flow upset

        i = self.checked(self._mon_i, self._i, now_ms)

        # Accumulate the live working set: distance and time since the
        # previous checkpoint.
        pulscnt = self._pulscnt.get()
        delta = (pulscnt - self._prev_pulscnt.get()) & 0xFFFF
        if delta > 0x8000:
            delta = 0  # the count appears to have moved backwards
        self._prev_pulscnt.set(pulscnt)
        self._dist_acc.add(delta)

        if i < k.N_CHECKPOINTS and pulscnt >= self._cp_pulses[i].get():
            self._handle_checkpoint(i)

        self._slew_set_value()

        if now_ms % k.TELEMETRY_PERIOD_MS == 0:
            self._write_telemetry(now_ms)

    # -- checkpoint handling ----------------------------------------------

    def _handle_checkpoint(self, i: int) -> None:
        dist_pulses = self._dist_acc.get()
        # Segment duration from the millisecond clock — CALC's use of
        # mscnt in the Figure-5 dataflow (a corrupted clock therefore
        # corrupts the velocity estimate, as on the real target).
        time_ms = (self._mscnt.get() - self._last_cp_mscnt.get()) & 0xFFFF
        if time_ms == 0:
            return  # cannot estimate anything yet; retry next pass
        # Mean segment velocity in cm/s, spilled to the frame and read
        # back (the compiled code keeps it as a stack local).
        self._v_mean_tmp.set(
            _clamp(dist_pulses * _CM_PER_PULSE * 1000 // time_ms, 0, 0xFFFF)
        )
        v_mean = self._v_mean_tmp.get()

        if i == 0:
            # Braking over the approach segment is negligible (pretension
            # only), so the mean is the engagement velocity.
            v_cmps = v_mean
            self._v0.set(v_cmps)
        else:
            # Under near-constant deceleration the checkpoint velocity is
            # the mean reflected about the segment: v_k = 2*mean - v_{k-1}.
            v_cmps = _clamp(2 * v_mean - self._v_prev.get(), 1, 0xFFFF)
            self._refine_mass_estimate(v_cmps, v_mean, dist_pulses)

        self._update_force_cap()
        self._command_pressure(v_cmps, i)

        # Roll the segment state over to the next checkpoint.
        self._v_prev.set(v_cmps)
        self._last_cp_pulscnt.set(self._pulscnt.get())
        self._last_cp_mscnt.set(self._mscnt.get())
        self._dist_acc.set(0)
        self._i.set(i + 1)

    def _refine_mass_estimate(self, v_cmps: int, v_mean: int, dist_pulses: int) -> None:
        """Correct the mass estimate from the segment's energy balance.

        ``(F_brake + F_drag) * d = m/2 * (v_prev^2 - v^2)`` with the brake
        force taken from the held set point (the valve's DC gain is unity)
        and the drag evaluated at the mean segment velocity.  The new
        measurement is blended 50/50 with the previous estimate to damp
        the noise that the endpoint-velocity reconstruction amplifies.
        """
        v_prev = self._v_prev.get()
        # (cm/s)^2 -> (m/s)^2 by dividing by 1e4 (32-bit intermediates).
        dv2 = (v_prev * v_prev - v_cmps * v_cmps) // 10000
        if dv2 <= 0:
            return  # no measurable deceleration over the segment
        brake_n = int(self._set_value.get() * k.FORCE_N_PER_COUNT)
        drag_n = 2 * v_mean * v_mean // 10000
        dist_cm = dist_pulses * _CM_PER_PULSE
        mass = 2 * (brake_n + drag_n) * dist_cm // (dv2 * 100)
        mass = (self._m_est.get() + mass) // 2
        self._m_est.set(_clamp(mass, k.MASS_ESTIMATE_MIN_KG, k.MASS_ESTIMATE_MAX_KG))

    def _update_force_cap(self) -> None:
        """Recompute the certified-envelope pressure cap from m_est and v0."""
        v0 = self._v0.get()
        v0_m2 = v0 * v0 // 10000  # (m/s)^2
        if v0_m2 <= 0:
            return
        f_cap = (
            k.FORCE_CAP_MARGIN_NUM
            * k.CONTROLLER_LIMIT_MARGIN_NUM
            * self._m_est.get()
            * v0_m2
            // (
                k.FORCE_CAP_MARGIN_DEN
                * k.CONTROLLER_LIMIT_MARGIN_DEN
                * 2
                * int(k.CONTROLLER_NOMINAL_STOP_M)
            )
        )
        self._p_cap.set(_clamp(int(f_cap // k.FORCE_N_PER_COUNT), 0, k.SETVALUE_MAX_COUNTS))

    def _command_pressure(self, v_cmps: int, i: int) -> None:
        """Required stop deceleration -> force -> pressure set point."""
        d_rem_cm = _D_REMAIN_CM[i] if i < k.N_CHECKPOINTS else _D_REMAIN_CM[-1]
        if d_rem_cm <= 0:
            return
        a_req_cmps2 = v_cmps * v_cmps // (2 * d_rem_cm)
        force_n = self._m_est.get() * a_req_cmps2 // 100
        # Aerodynamic/rolling drag provides part of the deceleration; only
        # the remainder must come from the brakes.
        force_n -= 2 * v_cmps * v_cmps // 10000
        if force_n < 0:
            force_n = 0
        counts = int(force_n // k.FORCE_N_PER_COUNT)
        cap = self._p_cap.get()
        if cap > 0:
            counts = min(counts, cap)
        self._target.set(_clamp(counts, k.PRETENSION_COUNTS, k.SETVALUE_MAX_COUNTS))

    # -- set-point slewing -------------------------------------------------

    def _slew_set_value(self) -> None:
        current = self._set_value.get()
        target = self._target.get()
        if current == target:
            return
        if current < target:
            step = target - current
            if step > k.SETVALUE_SLEW_PER_PASS:
                step = k.SETVALUE_SLEW_PER_PASS
            self._set_value.set(current + step)
        else:
            step = current - target
            if step > k.SETVALUE_SLEW_PER_PASS:
                step = k.SETVALUE_SLEW_PER_PASS
            self._set_value.set(current - step)

    # -- telemetry -------------------------------------------------------------

    def _write_telemetry(self, now_ms: int) -> None:
        ring = self._telemetry_ring
        index = self._telemetry_index.get() % (len(ring) // 4)
        base = index * 4
        ring[base].set(self._mscnt.get())
        ring[base + 1].set(self._pulscnt.get())
        ring[base + 2].set(self._set_value.get())
        ring[base + 3].set(self._m_est.get())
        self._telemetry_index.set(index + 1)
