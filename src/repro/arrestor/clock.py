"""CLOCK: time base and module scheduler (Section 3.1).

Provides the millisecond clock ``mscnt`` and the slot counter
``ms_slot_nbr`` that tells the scheduler which of the seven 1-ms slots is
current.  Per Table 4 the executable assertions EA5 (``ms_slot_nbr``,
discrete/sequential/linear) and EA6 (``mscnt``, continuous/monotonic/
static) are placed here and run every millisecond.
"""

from __future__ import annotations

from repro.arrestor import constants as k
from repro.arrestor.module_base import ModuleBase

__all__ = ["Clock"]


class Clock(ModuleBase):
    """Time-keeping module; also owns the slot counter."""

    name = "CLOCK"

    def __init__(self, node) -> None:
        super().__init__(node, return_slot=0)
        mem = node.mem
        self._mscnt = mem.mscnt
        self._slot = mem.ms_slot_nbr
        self._mon_slot = node.monitors.get("EA5")
        self._mon_mscnt = node.monitors.get("EA6")

    def step(self, now_ms: int) -> int:
        """Advance the time base; returns the slot the scheduler must run.

        The slot counter wraps through ``if (++slot >= N) slot = 0`` —
        the idiom a 16-bit target uses — so a corrupted value re-enters
        the valid domain within one tick while EA5 still observes the
        illegal transition.
        """
        if not self.enter():
            # The context block is corrupted: time-keeping is lost this
            # tick.  The scheduler still needs a slot; re-use the stored
            # one (whatever state it is in).
            return self._slot.get() % k.N_SLOTS

        self._mscnt.add(1)
        if self._mon_mscnt is not None:
            self.checked(self._mon_mscnt, self._mscnt, now_ms)

        slot = self._slot.get() + 1
        if slot >= k.N_SLOTS:
            slot = 0
        self._slot.set(slot)
        if self._mon_slot is not None:
            slot = self.checked(self._mon_slot, self._slot, now_ms)
        return slot % k.N_SLOTS
