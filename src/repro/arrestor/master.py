"""The master node: memory, modules, scheduler and instrumentation.

Assembles the software architecture of Figure 5: CLOCK (time base +
module scheduler), DIST_S, PRES_S, V_REG, PRES_A periodic modules, COMM
to the slave, and the CALC background process — with the executable
assertions of Table 4 placed inside the modules listed as their test
locations.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.arrestor import constants as k
from repro.arrestor.calc import Calc
from repro.arrestor.clock import Clock
from repro.arrestor.comm import Comm
from repro.arrestor.dist_s import DistS
from repro.arrestor.instrumentation import assertion_parameters, build_monitors
from repro.arrestor.pres_a import PresA
from repro.arrestor.pres_s import PresS
from repro.arrestor.signals_map import MasterMemory
from repro.arrestor.v_reg import VReg
from repro.core.monitor import DetectionLog, SignalMonitor
from repro.core.parameters import ContinuousParams
from repro.rtos.scheduler import SlotScheduler
from repro.rtos.task import Task

__all__ = ["MasterNode"]


class MasterNode:
    """The master control node of the arresting system."""

    def __init__(
        self,
        env,
        enabled_eas: Optional[Iterable[str]] = None,
        detection_log: Optional[DetectionLog] = None,
        with_recovery: bool = False,
    ) -> None:
        self.env = env
        self.mem = MasterMemory()
        self.detection_log = (
            detection_log if detection_log is not None else DetectionLog()
        )
        self.monitors: Dict[str, SignalMonitor] = build_monitors(
            enabled_eas, log=self.detection_log, with_recovery=with_recovery
        )
        self.wedged = False

        # Modules (constructed after monitors so they can bind them).
        self.clock = Clock(self)
        self.dist_s = DistS(self)
        self.pres_s = PresS(self)
        self.v_reg = VReg(self)
        self.pres_a = PresA(self)
        self.comm = Comm(self)
        self.calc = Calc(self)

        self.scheduler = SlotScheduler(k.N_SLOTS)
        self.scheduler.add_every_tick(Task("DIST_S", k.MODULE_DIST_S, self.dist_s.step))
        self.scheduler.add_slot_task(
            k.SLOT_PRES_S, Task("PRES_S", k.MODULE_PRES_S, self.pres_s.step)
        )
        self.scheduler.add_slot_task(
            k.SLOT_V_REG, Task("V_REG", k.MODULE_V_REG, self.v_reg.step)
        )
        self.scheduler.add_slot_task(
            k.SLOT_PRES_A, Task("PRES_A", k.MODULE_PRES_A, self.pres_a.step)
        )
        self.scheduler.add_slot_task(
            k.SLOT_COMM, Task("COMM", k.MODULE_COMM, self.comm.step)
        )
        self.scheduler.set_background(Task("CALC", k.MODULE_CALC, self.calc.step))
        self.scheduler.attach_control_words(self.mem.dispatch)

        # All stack frames are known now: fill the remaining stack depth.
        self.mem.finish_layout()
        self.boot()

    # -- lifecycle ------------------------------------------------------------

    def boot(self) -> None:
        """Power-on initialisation of the node's memory image."""
        mem = self.mem
        mem.map.clear()
        mem.dispatch.reset()
        mem.calc_frame.reset()
        mem.return_words.reset()

        mem.ms_slot_nbr.set(0)
        mem.mscnt.set(0)
        mem.set_value.set(k.PRETENSION_COUNTS)
        mem.target_set_value.set(k.PRETENSION_COUNTS)
        mem.m_est_kg.set(k.INITIAL_MASS_GUESS_KG)
        mem.p_cap_counts.set(0)
        mem.diag_boot_flags.set(0xA55A)
        for var, pulses in zip(mem.cp_pulses, k.CHECKPOINT_PULSES):
            var.set(pulses)
        self._fill_config_mirror()
        self._fill_ea_param_mirror()

        self.wedged = False
        self.scheduler.reset()

    def _fill_config_mirror(self) -> None:
        """Boot copy of the controller configuration (read at init only)."""
        values = [
            k.PRETENSION_COUNTS,
            k.SETVALUE_SLEW_PER_PASS,
            k.SETVALUE_MAX_COUNTS,
            k.OUTVALUE_MAX_COUNTS,
            k.PID_KP_NUM,
            k.PID_KP_DEN,
            k.PID_KI_SHIFT,
            k.PID_INTEGRAL_CLAMP,
            k.INITIAL_MASS_GUESS_KG,
            k.MASS_ESTIMATE_MIN_KG,
            k.MASS_ESTIMATE_MAX_KG,
            int(k.CONTROLLER_NOMINAL_STOP_M),
        ]
        for var, value in zip(self.mem.config_mirror, values):
            var.set(value)

    def _fill_ea_param_mirror(self) -> None:
        """Boot copy of the assertion parameter sets (read at init only)."""
        params = assertion_parameters()
        mirror = iter(self.mem.ea_param_mirror)
        for name in sorted(params):
            p = params[name]
            if isinstance(p, ContinuousParams):
                values = (
                    int(p.smin),
                    int(p.smax),
                    int(p.rmax_incr),
                    int(p.rmax_decr),
                    int(p.rmin_incr),
                    int(p.rmin_decr),
                )
            else:
                values = (len(p.domain), 0, 0, 0, 0, 0)
            for value in values:
                next(mirror).set(value)

    def wedge(self) -> None:
        """A control-flow error has taken the node's CPU into the weeds."""
        self.wedged = True
        self.scheduler.wedged = True

    # -- execution ----------------------------------------------------------------

    def tick(self, now_ms: int) -> Optional[int]:
        """One millisecond of node execution; returns the slot that ran.

        A wedged node executes nothing (its valves hold their last
        command) and returns ``None``.
        """
        if self.wedged:
            return None
        slot = self.clock.step(now_ms)
        if self.wedged:
            return None
        self.scheduler.tick(now_ms, slot)
        if self.scheduler.wedged:
            self.wedged = True
        return slot
