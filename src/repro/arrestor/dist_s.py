"""DIST_S: rotation-sensor monitor (Section 3.1).

Polls the rotation sensor every millisecond and accumulates the pulse
count of the arrestment into ``pulscnt``.  EA4 (continuous/monotonic/
dynamic) is placed here per Table 4.
"""

from __future__ import annotations

from repro.arrestor.module_base import ModuleBase

__all__ = ["DistS"]


class DistS(ModuleBase):
    """Distance sensing: pulse accumulation from the tooth wheel."""

    name = "DIST_S"

    def __init__(self, node) -> None:
        super().__init__(node, return_slot=1)
        mem = node.mem
        self._pulscnt = mem.pulscnt
        self._latch = mem.raw_pulse_latch
        self._env = node.env
        self._mon = node.monitors.get("EA4")

    def step(self, now_ms: int) -> None:
        if not self.enter():
            return
        # Hardware read into the interface latch, then accumulate from the
        # latch — the two-stage pattern of a real sensor interface.
        self._latch.set(self._env.poll_rotation_pulses())
        new_pulses = self._latch.get()
        if new_pulses:
            self._pulscnt.add(new_pulses)
        if self._mon is not None:
            self.checked(self._mon, self._pulscnt, now_ms)
