"""The slave node.

Per Section 3.1 the slave's software omits DIST_S and CALC: *"The slave
node simply receives a set point value from the master node, which it
then applies to its tape drum"* with its own PRES_S / V_REG / PRES_A
chain (and CLOCK).  The paper injects errors into the master node only
and places no assertions on the slave, so the slave is modelled with
plain state rather than injectable memory — it participates in the
physics and in set-point propagation, not in the error model.

Extension: the paper's placement (Table 4) checks ``SetValue`` only in
the master's V_REG, which leaves the COMM transmission to the slave
unprotected — a corrupt set point sampled between the master's V_REG and
COMM slots reaches the slave's drum unchecked.  Passing a
:class:`~repro.core.monitor.SignalMonitor` as ``receive_monitor`` guards
the reception with the same executable assertion (and, with recovery,
repairs it); the ``bench_ablation_slave_assertion`` benchmark measures
what that buys.
"""

from __future__ import annotations

from typing import Optional

from repro.arrestor import constants as k
from repro.core.monitor import SignalMonitor

__all__ = ["SlaveNode"]


def _clamp(value: int, lo: int, hi: int) -> int:
    if value < lo:
        return lo
    if value > hi:
        return hi
    return value


class SlaveNode:
    """Pressure-follower node for the slave tape drum."""

    def __init__(self, env, receive_monitor: Optional[SignalMonitor] = None) -> None:
        self.env = env
        self.set_value = k.PRETENSION_COUNTS
        self.is_value = 0
        self.out_value = 0
        self.integral = 0
        self.comm_receptions = 0
        self.receive_monitor = receive_monitor
        self._now_ms = 0

    def receive_set_value(self, value: int) -> None:
        """Deliver a set point from the master's COMM transmission.

        With a reception monitor configured, the value passes the
        executable assertion first; a recovery-equipped monitor replaces
        a rejected value before it reaches the slave's regulator.
        """
        value &= 0xFFFF
        if self.receive_monitor is not None:
            value = self.receive_monitor.test(value, self._now_ms)
        self.set_value = value
        self.comm_receptions += 1

    def tick(self, now_ms: int) -> None:
        """One millisecond of slave execution (its own 7-slot schedule)."""
        self._now_ms = now_ms
        slot = now_ms % k.N_SLOTS
        if slot == k.SLOT_PRES_S:
            self.is_value = self.env.read_slave_pressure_counts()
        elif slot == k.SLOT_V_REG:
            err = self.set_value - self.is_value
            self.integral = _clamp(
                self.integral + (err >> k.PID_KI_SHIFT),
                -k.PID_INTEGRAL_CLAMP,
                k.PID_INTEGRAL_CLAMP,
            )
            out = self.set_value + (err * k.PID_KP_NUM) // k.PID_KP_DEN + self.integral
            self.out_value = _clamp(out, 0, k.OUTVALUE_MAX_COUNTS)
        elif slot == k.SLOT_PRES_A:
            self.env.command_slave_valve_counts(self.out_value)
