"""System constants of the arresting-system software.

Everything the embedded code of the master/slave nodes needs to agree on:
module identities, slot layout, signal scaling, controller gains and the
checkpoint configuration.  The executable-assertion envelopes derived
from these constants live in :mod:`repro.arrestor.instrumentation`.

Signal scaling (all signals are 16-bit, as in the paper):

========== ======================= =========================
signal      unit                    range used in practice
========== ======================= =========================
mscnt       1 ms                    0 .. 40 000 per run
ms_slot_nbr slot index              0 .. 6
pulscnt     rotation pulses         0 .. ~6 700 (335 m)
i           checkpoint index        0 .. 6
SetValue    pressure counts (kPa)   0 .. ~5 700
IsValue     pressure counts (kPa)   0 .. 10 000
OutValue    pressure counts (kPa)   0 .. 10 000
========== ======================= =========================
"""

from __future__ import annotations

from repro.plant.aircraft import BRAKE_FORCE_PER_PA
from repro.plant.drum import PULSE_PITCH_M

__all__ = [
    "N_SLOTS",
    "MODULE_IDLE",
    "MODULE_CLOCK",
    "MODULE_DIST_S",
    "MODULE_PRES_S",
    "MODULE_V_REG",
    "MODULE_PRES_A",
    "MODULE_CALC",
    "MODULE_COMM",
    "SLOT_PRES_S",
    "SLOT_V_REG",
    "SLOT_PRES_A",
    "SLOT_COMM",
    "CHECKPOINT_DISTANCES_M",
    "CHECKPOINT_PULSES",
    "N_CHECKPOINTS",
    "TARGET_STOP_DISTANCE_M",
    "PRETENSION_COUNTS",
    "SETVALUE_SLEW_PER_PASS",
    "SETVALUE_MAX_COUNTS",
    "OUTVALUE_MAX_COUNTS",
    "PID_KP_NUM",
    "PID_KP_DEN",
    "PID_KI_SHIFT",
    "PID_INTEGRAL_CLAMP",
    "INITIAL_MASS_GUESS_KG",
    "MASS_ESTIMATE_MIN_KG",
    "MASS_ESTIMATE_MAX_KG",
    "FORCE_CAP_MARGIN_NUM",
    "FORCE_CAP_MARGIN_DEN",
    "CONTROLLER_LIMIT_MARGIN_NUM",
    "CONTROLLER_LIMIT_MARGIN_DEN",
    "CONTROLLER_NOMINAL_STOP_M",
    "FORCE_N_PER_COUNT",
    "MAX_PULSES_PER_MS",
    "TELEMETRY_PERIOD_MS",
]

#: The system operates in seven 1-ms slots (Section 3.1).
N_SLOTS = 7

# Module identity bytes: these appear in dispatch/control words, so a
# corrupted word that still names a valid id redirects control flow.
MODULE_IDLE = 0x00
MODULE_CLOCK = 0x01
MODULE_DIST_S = 0x02
MODULE_PRES_S = 0x03
MODULE_V_REG = 0x04
MODULE_PRES_A = 0x05
MODULE_CALC = 0x06
MODULE_COMM = 0x07

# Slot layout of the 7-ms modules on the master node.  CLOCK and DIST_S
# run every tick; CALC runs in the background.
SLOT_PRES_S = 0
SLOT_V_REG = 2
SLOT_PRES_A = 4
SLOT_COMM = 6

#: The six set-point checkpoints along the runway (Section 3.1: constant
#: spacing; the first sits early so the controller gets a velocity
#: estimate before committing to a braking profile).
CHECKPOINT_DISTANCES_M = (10.0, 60.0, 110.0, 160.0, 210.0, 260.0)
N_CHECKPOINTS = len(CHECKPOINT_DISTANCES_M)

#: The same checkpoints expressed in rotation pulses — the internally
#: stored pulscnt values the current count is compared against.
CHECKPOINT_PULSES = tuple(
    int(round(d / PULSE_PITCH_M)) for d in CHECKPOINT_DISTANCES_M
)

#: Where the controller aims to bring the aircraft to rest (15 m margin
#: to the 335 m runway limit).
TARGET_STOP_DISTANCE_M = 320.0

#: Cable pretension pressure applied before the first checkpoint, counts.
PRETENSION_COUNTS = 200

#: CALC moves SetValue toward its target by at most this many counts per
#: background pass (1 ms), avoiding hydraulic shock and giving EA1 a
#: tight rate envelope: at most 7 * 30 = 210 counts per 7-ms V_REG test.
SETVALUE_SLEW_PER_PASS = 30

#: Set-point authority.  The largest legitimate set point across the
#: evaluation envelope is ~5 700 counts (0.9 * Fmax(20 t, 70 m/s) / 40).
SETVALUE_MAX_COUNTS = 6000

#: Valve command authority (full valve scale).
OUTVALUE_MAX_COUNTS = 10000

# V_REG's PID (integer arithmetic, as on the 16-bit target):
#   OutValue = SetValue + err * KP_NUM / KP_DEN + integral
#   integral += err >> KI_SHIFT, clamped to +/- PID_INTEGRAL_CLAMP.
PID_KP_NUM = 3
PID_KP_DEN = 4
PID_KI_SHIFT = 3
PID_INTEGRAL_CLAMP = 1500

#: CALC's initial mass estimate: the design-minimum aircraft, so the
#: first braking segment can never over-force a light aircraft.  The
#: estimate is corrected from measured energy loss at later checkpoints.
INITIAL_MASS_GUESS_KG = 8000
MASS_ESTIMATE_MIN_KG = 6000
MASS_ESTIMATE_MAX_KG = 30000

#: The controller caps its commanded force at this fraction of its own
#: certified-envelope curve (margin * m * v0^2 / (2 * nominal stop)).
FORCE_CAP_MARGIN_NUM = 9
FORCE_CAP_MARGIN_DEN = 10
CONTROLLER_LIMIT_MARGIN_NUM = 135
CONTROLLER_LIMIT_MARGIN_DEN = 100
CONTROLLER_NOMINAL_STOP_M = 260.0

#: Newtons of cable force per pressure count commanded on both drums:
#: 2 drums * BRAKE_FORCE_PER_PA * 1000 Pa/count = 40 N/count.
FORCE_N_PER_COUNT = 2.0 * BRAKE_FORCE_PER_PA * 1000.0

#: Physical ceiling on rotation pulses per millisecond: even 100 m/s of
#: cable payout yields 2 pulses/ms at the 0.05 m pulse pitch.
MAX_PULSES_PER_MS = 2

#: CALC writes a telemetry record into the rotating RAM buffer this often.
TELEMETRY_PERIOD_MS = 100
