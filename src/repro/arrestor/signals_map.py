"""Memory layout of the master node.

The paper injects into the application RAM (417 bytes) and stack (1008
bytes) of the master node; this module lays those areas out.  The seven
monitored signals of Table 4 live in RAM together with the *unmonitored*
application state (controller estimates, PID state, checkpoint table,
communication buffer, telemetry ring, configuration mirrors), so random
RAM errors have the realistic mix of consequences: corrupting a monitored
signal directly, corrupting state that propagates into one, or hitting a
cold byte and staying benign.

The stack area holds the scheduler dispatch words, CALC's always-live
frame linkage, per-module return words and scratch locals, with the
remaining depth filled by anonymous deep-stack space (present and
injectable, but not touched at the simulated call depth) — see
:mod:`repro.memory.stack` for the control-flow-error semantics.
"""

from __future__ import annotations

from typing import Dict, List

from repro.arrestor import constants as k
from repro.memory.layout import APP_RAM_SIZE, STACK_SIZE, MemoryRegion, RegionAllocator
from repro.memory.memmap import MemoryMap, Variable
from repro.memory.stack import ControlWordTable, ScratchArena

__all__ = ["MasterMemory", "RAM_REGION", "STACK_REGION", "MONITORED_SIGNALS"]

RAM_REGION = MemoryRegion("ram", 0x0000, APP_RAM_SIZE)
STACK_REGION = MemoryRegion("stack", 0x0200, STACK_SIZE)

#: The seven service-critical signals of Table 4, in table order.
MONITORED_SIGNALS = (
    "SetValue",
    "IsValue",
    "i",
    "pulscnt",
    "ms_slot_nbr",
    "mscnt",
    "OutValue",
)


class MasterMemory:
    """The master node's emulated memory, symbols and typed handles."""

    #: The monitored-signal names this memory's E1 error set targets
    #: (the generic default of ``build_e1_error_set``).
    MONITORED_SIGNALS = MONITORED_SIGNALS

    def __init__(self) -> None:
        self.map = MemoryMap([RAM_REGION, STACK_REGION])
        self.ram = RegionAllocator(RAM_REGION)
        self.stack = RegionAllocator(STACK_REGION)

        # -- the monitored signals (Table 4) ---------------------------------
        self.mscnt = self._var("mscnt")
        self.ms_slot_nbr = self._var("ms_slot_nbr")
        self.pulscnt = self._var("pulscnt")
        self.i = self._var("i")
        self.set_value = self._var("SetValue")
        self.is_value = self._var("IsValue")
        self.out_value = self._var("OutValue")

        # -- CALC's controller state ----------------------------------------
        self.target_set_value = self._var("target_SetValue")
        self.last_cp_pulscnt = self._var("last_cp_pulscnt")
        self.last_cp_mscnt = self._var("last_cp_mscnt")
        self.v_prev_cmps = self._var("v_prev_cmps")
        self.v0_cmps = self._var("v0_cmps")
        self.m_est_kg = self._var("m_est_kg")
        self.p_cap_counts = self._var("p_cap_counts")

        # -- V_REG's PID state -------------------------------------------------
        self.pid_integral = self._var("pid_integral", signed=True)
        self.pid_last_err = self._var("pid_last_err", signed=True)

        # -- communication with the slave node ---------------------------------
        self.comm_tx_set_value = self._var("comm_tx_SetValue")
        self.comm_seq = self._var("comm_seq")

        # -- sensor interface latches -------------------------------------------
        self.raw_pulse_latch = self._var("raw_pulse_latch")
        self.raw_pressure_latch = self._var("raw_pressure_latch")

        # -- checkpoint table (installation config, copied to RAM at boot) -----
        self.cp_pulses: List[Variable] = [
            Variable(self.map, sym)
            for sym in self.ram.allocate_array("cp_pulses", k.N_CHECKPOINTS)
        ]

        # -- boot-time configuration mirror (read at initialisation only) ------
        self.config_mirror: List[Variable] = [
            Variable(self.map, sym)
            for sym in self.ram.allocate_array("config_mirror", 12)
        ]

        # -- executable-assertion parameter mirror (read at boot only) ---------
        self.ea_param_mirror: List[Variable] = [
            Variable(self.map, sym)
            for sym in self.ram.allocate_array("ea_params", 42)
        ]

        # -- telemetry ring (4 words per record) -------------------------------
        self.telemetry_index = self._var("telemetry_index")
        self.telemetry_ring: List[Variable] = [
            Variable(self.map, sym)
            for sym in self.ram.allocate_array("telemetry", 48)
        ]

        # -- diagnostic counters ---------------------------------------------
        self.diag_comm_errors = self._var("diag_comm_errors")
        self.diag_boot_flags = self._var("diag_boot_flags")
        self.diag_watchdog = self._var("diag_watchdog")

        # Remaining RAM bytes stay unallocated: cold spare capacity, as on
        # the real target (still mapped, still injectable, never read).

        # -- stack: dispatch words, CALC frame, return words, scratch ----------
        self.dispatch = ControlWordTable(
            self.map,
            self.stack,
            self._slot_module_ids(),
            name="dispatch",
        )
        # The background process's frame linkage: the return chain and
        # frame pointers of CALC's call tree (checkpoint handler, mass
        # refinement, envelope cap, set-point computation and their
        # callees).  The frame is live for the whole run — CALC is always
        # either executing or preempted — so every word is consulted on
        # every background pass.
        self.calc_frame = ControlWordTable(
            self.map,
            self.stack,
            [k.MODULE_CALC] * 10,
            name="calc_frame",
        )
        self.return_words = ControlWordTable(
            self.map,
            self.stack,
            [
                k.MODULE_CLOCK,
                k.MODULE_DIST_S,
                k.MODULE_PRES_S,
                k.MODULE_V_REG,
                k.MODULE_PRES_A,
            ],
            name="return_words",
        )
        self.scratch = ScratchArena(self.map, self.stack)

    def _var(self, name: str, signed: bool = False) -> Variable:
        return Variable(self.map, self.ram.allocate(name, 2), signed=signed)

    @staticmethod
    def _slot_module_ids() -> List[int]:
        ids = [k.MODULE_IDLE] * k.N_SLOTS
        ids[k.SLOT_PRES_S] = k.MODULE_PRES_S
        ids[k.SLOT_V_REG] = k.MODULE_V_REG
        ids[k.SLOT_PRES_A] = k.MODULE_PRES_A
        ids[k.SLOT_COMM] = k.MODULE_COMM
        return ids

    def signal_variable(self, name: str) -> Variable:
        """The :class:`Variable` handle of a monitored signal, by Table-4 name."""
        mapping: Dict[str, Variable] = {
            "SetValue": self.set_value,
            "IsValue": self.is_value,
            "i": self.i,
            "pulscnt": self.pulscnt,
            "ms_slot_nbr": self.ms_slot_nbr,
            "mscnt": self.mscnt,
            "OutValue": self.out_value,
        }
        return mapping[name]

    def finish_layout(self) -> None:
        """Fill the remaining stack depth with anonymous deep-stack space."""
        self.scratch.fill_remainder(STACK_REGION)
