"""The target system: an aircraft-arresting embedded control system."""

from repro.arrestor import constants
from repro.arrestor.instrumentation import (
    ALL_EAS,
    EA_BY_SIGNAL,
    EA_IDS,
    SIGNAL_BY_EA,
    assertion_parameters,
    build_instrumentation_plan,
    build_monitors,
    build_signal_inventory,
    default_fmeca_entries,
)
from repro.arrestor.master import MasterNode
from repro.arrestor.signals_map import MONITORED_SIGNALS, MasterMemory
from repro.arrestor.slave import SlaveNode
from repro.arrestor.system import RunConfig, RunResult, TargetSystem, TestCase

__all__ = [
    "constants",
    "ALL_EAS",
    "EA_BY_SIGNAL",
    "EA_IDS",
    "SIGNAL_BY_EA",
    "assertion_parameters",
    "build_instrumentation_plan",
    "build_monitors",
    "build_signal_inventory",
    "default_fmeca_entries",
    "MasterNode",
    "MONITORED_SIGNALS",
    "MasterMemory",
    "SlaveNode",
    "RunConfig",
    "RunResult",
    "TargetSystem",
    "TestCase",
]
