"""Common machinery for the target's software modules.

Each module:

* keeps its state in the node's emulated memory (so injections reach it),
* consults its saved-context/return word in the stack-resident context
  block before running — a corrupted word loses the invocation or wedges
  the node (the control-flow-error semantics of
  :mod:`repro.memory.stack`),
* runs the executable assertions placed at its location (Table 4) via
  :meth:`checked`, which also writes a recovery value back into the
  signal's memory when the monitor is configured with recovery.
"""

from __future__ import annotations

from typing import Optional

from repro.core.monitor import SignalMonitor
from repro.memory.memmap import Variable

__all__ = ["ModuleBase"]


class ModuleBase:
    """Base class for CLOCK, DIST_S, PRES_S, V_REG, PRES_A, COMM and CALC."""

    #: Subclasses set their name for diagnostics.
    name = "MODULE"

    def __init__(self, node, return_slot: Optional[int] = None) -> None:
        self.node = node
        self._return_slot = return_slot
        self._return_table = node.mem.return_words if return_slot is not None else None

    # -- control flow ------------------------------------------------------

    def enter(self) -> bool:
        """Consult the module's saved-context word; False loses the call.

        A ``redirect``/``skip`` outcome means the corrupted context sent
        execution somewhere harmless-but-wrong: the module body does not
        run this invocation.  A ``wedge`` outcome halts the node.
        """
        if self._return_table is None:
            return True
        outcome = self._return_table.consult(self._return_slot)
        if outcome.kind == "ok":
            return True
        if outcome.kind == "wedge":
            self.node.wedge()
        return False

    # -- executable assertions ---------------------------------------------

    @staticmethod
    def checked(monitor: Optional[SignalMonitor], var: Variable, now_ms: int) -> int:
        """Read *var* through *monitor* (when enabled) at time *now_ms*.

        Returns the value the module should compute with; a recovery
        replacement is written back to memory so the rest of the system
        sees the recovered signal.
        """
        value = var.get()
        if monitor is None:
            return value
        result = monitor.test(value, now_ms)
        if result != value:
            var.set(result)
        return result

    # -- interface -----------------------------------------------------------

    def step(self, now_ms: int) -> None:
        raise NotImplementedError
