"""PRES_A: pressure actuation (Section 3.1).

Uses ``OutValue`` to set the pressure valve.  EA7 (``OutValue``,
continuous/random) is placed here — PRES_A is the consumer — per
Table 4.
"""

from __future__ import annotations

from repro.arrestor.module_base import ModuleBase

__all__ = ["PresA"]


class PresA(ModuleBase):
    """Valve actuation for the master drum."""

    name = "PRES_A"

    def __init__(self, node) -> None:
        super().__init__(node, return_slot=4)
        self._out_value = node.mem.out_value
        self._env = node.env
        self._mon = node.monitors.get("EA7")

    def step(self, now_ms: int) -> None:
        if not self.enter():
            return
        out = self.checked(self._mon, self._out_value, now_ms)
        self._env.command_master_valve_counts(out)
