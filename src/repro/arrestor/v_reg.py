"""V_REG: the software-implemented PID pressure regulator (Section 3.1).

Uses ``SetValue`` and ``IsValue`` to control ``OutValue``, the command to
the pressure valve: a feed-forward of the set point plus an integer PI
correction for the valve's lag.  EA1 (``SetValue``) and EA2 (``IsValue``)
are placed here — V_REG is the consumer of both — per Table 4.
"""

from __future__ import annotations

from repro.arrestor import constants as k
from repro.arrestor.module_base import ModuleBase

__all__ = ["VReg"]


def _clamp(value: int, lo: int, hi: int) -> int:
    if value < lo:
        return lo
    if value > hi:
        return hi
    return value


class VReg(ModuleBase):
    """PI(D) regulator: OutValue = SetValue + Kp*err + integral."""

    name = "V_REG"

    def __init__(self, node) -> None:
        super().__init__(node, return_slot=3)
        mem = node.mem
        self._set_value = mem.set_value
        self._is_value = mem.is_value
        self._out_value = mem.out_value
        self._integral = mem.pid_integral
        self._last_err = mem.pid_last_err
        self._err_scratch = node.mem.scratch.slot("v_reg.err")
        self._mon_set = node.monitors.get("EA1")
        self._mon_is = node.monitors.get("EA2")

    def step(self, now_ms: int) -> None:
        if not self.enter():
            return
        set_value = self.checked(self._mon_set, self._set_value, now_ms)
        is_value = self.checked(self._mon_is, self._is_value, now_ms)

        # The error term passes through a stack local (as the compiled
        # 16-bit code would spill it) before the P term is formed.
        self._err_scratch.set(set_value - is_value)
        err = self._err_scratch.get()
        if err >= 0x8000:
            err -= 0x10000

        integral = self._integral.get()
        integral = _clamp(
            integral + (err >> k.PID_KI_SHIFT),
            -k.PID_INTEGRAL_CLAMP,
            k.PID_INTEGRAL_CLAMP,
        )
        self._integral.set(integral)
        self._last_err.set(err)

        out = set_value + (err * k.PID_KP_NUM) // k.PID_KP_DEN + integral
        self._out_value.set(_clamp(out, 0, k.OUTVALUE_MAX_COUNTS))
