"""PRES_S: pressure-sensor monitor (Section 3.1).

Samples the pressure actually applied by the node's valve and publishes
it as ``IsValue`` for the PID regulator.  ``IsValue`` itself is tested in
V_REG (its consumer), per Table 4.
"""

from __future__ import annotations

from repro.arrestor.module_base import ModuleBase

__all__ = ["PresS"]


class PresS(ModuleBase):
    """Pressure sensing for the master drum."""

    name = "PRES_S"

    def __init__(self, node) -> None:
        super().__init__(node, return_slot=2)
        mem = node.mem
        self._is_value = mem.is_value
        self._latch = mem.raw_pressure_latch
        self._env = node.env

    def step(self, now_ms: int) -> None:
        if not self.enter():
            return
        self._latch.set(self._env.read_master_pressure_counts())
        self._is_value.set(self._latch.get())
