"""COMM: set-point transfer to the slave node.

The slave node *"receives its set point pressure value from the master
node and applies this to its drum"* (Section 3).  COMM publishes the
master's current ``SetValue`` into the transmit buffer once per 7-ms
cycle; the communication link (modelled in
:class:`repro.arrestor.system.TargetSystem`) delivers it to the slave.
A corrupted transmit buffer therefore reaches the slave's drum — one of
the propagation paths random RAM errors can take.
"""

from __future__ import annotations

from repro.arrestor.module_base import ModuleBase

__all__ = ["Comm"]


class Comm(ModuleBase):
    """Master-to-slave set-point transmission."""

    name = "COMM"

    def __init__(self, node) -> None:
        super().__init__(node)
        mem = node.mem
        self._set_value = mem.set_value
        self._tx = mem.comm_tx_set_value
        self._seq = mem.comm_seq

    def step(self, now_ms: int) -> None:
        # COMM has no saved-context word of its own: it runs from the
        # dispatch table's slot word directly.
        self._tx.set(self._set_value.get())
        self._seq.add(1)
