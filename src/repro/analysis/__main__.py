"""Command-line interface of the assertion linter.

::

    python -m repro.analysis                         # arrestor self-check
    python -m repro.analysis --target tanklevel      # a registered target
    python -m repro.analysis --all-targets           # the whole registry
    python -m repro.analysis --source --target NAME  # + EA4xx/EA5xx source pass
    python -m repro.analysis --list-targets          # registered workloads
    python -m repro.analysis --format json           # machine-readable
    python -m repro.analysis --list-rules            # the rule catalogue
    python -m repro.analysis --target pkg.mod:build  # lint your own plan

A ``--target`` is either a registered workload name (see
``--list-targets``) whose shipped plan is linted via
:meth:`~repro.targets.base.Target.lint_target`, or — when it contains a
``:`` — a zero-argument callable as ``module:function`` that may return
an ``InstrumentationPlan``, a ``(plan, fmeca_entries)`` pair, or a
mapping with ``"plan"`` and optional ``"fmeca"`` keys.

``--source`` additionally parses the target's fingerprinted source
modules (never importing them) and runs the EA4xx placement and EA5xx
drift rules; such findings carry ``file:line`` in both text and JSON
output.  It requires a registered target (or ``--all-targets``), since
only those ship source to analyse.

Exit status: 0 when no error-severity diagnostics were produced (or with
``--strict``, none at all), 1 on findings, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import importlib
import sys
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.process import FmecaEntry, InstrumentationPlan

from repro.analysis.diagnostics import AnalysisOptions, AnalysisReport
from repro.analysis.engine import analyze_plan
from repro.analysis.registry import RuleRegistry, default_registry
from repro.analysis.selfcheck import build_default_target

__all__ = ["main"]

DEFAULT_TARGET = "the arrestor instrumentation (Table 4)"


class UsageError(Exception):
    """Bad CLI input: unknown target, unloadable callable, bad rule id."""


def _resolve_target(
    spec: Optional[str],
) -> Tuple[InstrumentationPlan, Tuple[FmecaEntry, ...], str]:
    if spec is None:
        plan, fmeca = build_default_target()
        return plan, fmeca, DEFAULT_TARGET
    if ":" not in spec:
        from repro.targets import get_target

        try:
            target = get_target(spec)
        except KeyError as exc:
            raise UsageError(str(exc.args[0])) from None
        plan, fmeca = target.lint_target()
        return plan, tuple(fmeca), f"target {target.name!r}"
    module_name, _, attr = spec.partition(":")
    if not module_name or not attr:
        raise UsageError(f"--target must look like 'module:callable', got {spec!r}")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise UsageError(f"cannot import target module {module_name!r}: {exc}") from exc
    try:
        factory = getattr(module, attr)
    except AttributeError:
        raise UsageError(f"module {module_name!r} has no attribute {attr!r}") from None
    result = factory()
    if isinstance(result, InstrumentationPlan):
        return result, (), spec
    if isinstance(result, dict):
        plan = result.get("plan")
        if not isinstance(plan, InstrumentationPlan):
            raise UsageError(f"target {spec!r} returned no 'plan' entry")
        return plan, tuple(result.get("fmeca", ())), spec
    try:
        plan, fmeca = result
    except (TypeError, ValueError):
        raise UsageError(
            f"target {spec!r} must return an InstrumentationPlan, a "
            f"(plan, fmeca) pair, or a dict with a 'plan' key"
        ) from None
    if not isinstance(plan, InstrumentationPlan):
        raise UsageError(f"target {spec!r} returned {type(plan).__name__}, not a plan")
    return plan, tuple(fmeca), spec


def _split_ids(values: Iterable[str]) -> List[str]:
    ids: List[str] = []
    for value in values:
        ids.extend(part.strip() for part in value.split(",") if part.strip())
    return ids


def _restrict(
    registry: RuleRegistry,
    select: Iterable[str],
    ignore: Iterable[str],
) -> RuleRegistry:
    select_ids = _split_ids(select)
    ignore_ids = _split_ids(ignore)
    if not select_ids and not ignore_ids:
        return registry
    try:
        return registry.select(select_ids or None, ignore_ids)
    except KeyError as exc:
        raise UsageError(str(exc)) from None


def _print_rules(registry: RuleRegistry) -> None:
    width = max(len(rule.id) for rule in registry)
    for rule in sorted(registry, key=lambda r: r.id):
        print(f"{rule.id:<{width}}  {rule.severity.value:<7}  "
              f"[{rule.pack}] {rule.title}")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static lint for executable-assertion configurations, "
        "instrumentation plans and coverage holes.",
    )
    parser.add_argument(
        "--target",
        metavar="NAME|MODULE:CALLABLE",
        help="a registered target name, or a zero-argument callable "
        "returning the plan to analyse (default: the arrestor's own "
        "instrumentation)",
    )
    parser.add_argument(
        "--all-targets",
        action="store_true",
        help="lint every registered target's shipped plan",
    )
    parser.add_argument(
        "--source",
        action="store_true",
        help="also run the source-level EA4xx/EA5xx rules over the "
        "target's fingerprinted modules (registered targets only)",
    )
    parser.add_argument(
        "--list-targets",
        action="store_true",
        help="print the registered targets and exit",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="IDS",
        help="comma-separated rule ids to run exclusively (repeatable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="IDS",
        help="comma-separated rule ids to skip (repeatable)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on warnings and notes too, not only errors",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--rpn-threshold",
        type=int,
        default=AnalysisOptions.critical_rpn,
        metavar="N",
        help="FMECA RPN at or above which an unmonitored signal is an "
        "error (default: %(default)s)",
    )
    parser.add_argument(
        "--pds-floor",
        type=float,
        default=AnalysisOptions.pds_floor,
        metavar="P",
        help="minimum static per-assertion Pds estimate (default: %(default)s)",
    )
    parser.add_argument(
        "--pem-floor",
        type=float,
        default=AnalysisOptions.pem_floor,
        metavar="P",
        help="minimum RPN-weighted criticality coverage (default: %(default)s)",
    )
    return parser


def _render(report: AnalysisReport, fmt: str, target: str, n_rules: int) -> None:
    if fmt == "json":
        print(report.to_json())
        return
    if report.clean:
        print(f"OK: {target} — no findings from {n_rules} rule(s)")
    else:
        print(f"findings for {target}:")
        print(report.format_text())


def _run_all_targets(
    registry: RuleRegistry,
    options: AnalysisOptions,
    fmt: str,
    strict: bool,
    source: bool = False,
) -> int:
    import json as _json

    from repro.analysis.selfcheck import check_all_targets, check_snapshot_determinism

    reports = check_all_targets(registry=registry, options=options, source=source)
    snapshot_failures = {
        name: failure
        for name in reports
        if (failure := check_snapshot_determinism(name)) is not None
    }
    if fmt == "json":
        payload = {
            name: {
                **_json.loads(report.to_json()),
                "snapshot_determinism": snapshot_failures.get(name),
            }
            for name, report in reports.items()
        }
        print(_json.dumps(payload, indent=2))
    else:
        for name, report in reports.items():
            _render(report, fmt, f"target {name!r}", len(registry))
            if name in snapshot_failures:
                print(f"SNAPSHOT DIVERGENCE: {name}: {snapshot_failures[name]}")
            else:
                print(f"OK: target {name!r} — snapshot-enabled run identical to cold run")
    passed = (
        all(r.clean for r in reports.values())
        if strict
        else all(r.ok for r in reports.values())
    ) and not snapshot_failures
    return 0 if passed else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        registry = _restrict(default_registry(), args.select, args.ignore)
        if args.list_rules:
            _print_rules(registry)
            return 0
        if args.list_targets:
            from repro.targets import default_target_name, get_target, target_names

            default = default_target_name()
            for name in target_names():
                marker = "  (default)" if name == default else ""
                print(f"{name:12s} {get_target(name).description}{marker}")
            return 0
        options = AnalysisOptions(
            critical_rpn=args.rpn_threshold,
            pds_floor=args.pds_floor,
            pem_floor=args.pem_floor,
        )
        if args.all_targets:
            if args.target is not None:
                raise UsageError("--all-targets and --target are mutually exclusive")
            return _run_all_targets(
                registry, options, args.format, args.strict, args.source
            )
        if args.source:
            if args.target is None:
                raise UsageError("--source requires --target NAME or --all-targets")
            if ":" in args.target:
                raise UsageError(
                    "--source needs a registered target (its fingerprinted "
                    "sources), not a module:callable plan factory"
                )
        plan, fmeca, target = _resolve_target(args.target)
    except (UsageError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = analyze_plan(plan, fmeca, registry=registry, options=options)
    if args.source:
        from repro.analysis.engine import analyze_target_source
        from repro.targets import get_target

        report = report.merged(
            analyze_target_source(
                get_target(args.target), registry=registry, options=options
            )
        )
    _render(report, args.format, target, len(registry))
    if args.strict:
        return 0 if report.clean else 1
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
