"""Source-level def-use analysis of target implementation modules.

The dynamic harness proves what the shipped instrumentation *does*; this
module proves things about what the target source *says*.  It parses —
never imports or executes — every module named by
:meth:`~repro.targets.base.Target.fingerprint_sources` plus the
intra-repository modules those transitively import, and builds a
per-signal def-use model:

* **memory models** — classes exposing a ``signal_variable`` mapping are
  recognised as target memories; their ``__init__`` allocations
  (``self.x = self._var("Sym")`` / ``Variable(map, region.allocate("Sym",
  n))``) yield the attribute → signal-symbol table that keys everything
  else;
* **signal events** — every ``.get()`` / ``.set()`` / ``.add()`` on a
  resolvable signal handle and every check idiom
  (``ModuleBase.checked(monitor, var, now)`` and ``monitor.test(var.get(),
  now)``) becomes a :class:`SignalEvent` with module/function/order and
  file:line, with class-level (``self._slot = mem.slot_id``) and local
  (``comm_tx = master.mem.comm_tx_set_value``) aliases resolved;
* **taint + wrap tracking** — a local assigned from a standalone
  unchecked read is tainted by that signal; folding it through the wrap
  idiom (``if slot >= N: slot = 0`` or ``slot % N``) records the modulus
  ``N`` (resolved through module constants and ``import ... as k``
  aliases, ``-1`` when unresolvable), so the EA401 placement rule can
  decide whether a later check is phase-locked against the injection
  period;
* **import closure** — intra-repository imports of covered modules are
  walked; imports that no fingerprint entry covers are recorded with
  their file:line for the EA504 stale-cache rule.

A fingerprint entry covers a module when it names the module, an
ancestor package, or a descendant (so an entry like ``repro.targets.base``
also vouches for the pure-facade package ``repro.targets`` it sits in).
Module files are resolved by path arithmetic under the root package's
search path — the analyser imports nothing, matching the
:mod:`repro.analysis` contract that the system under analysis is never
executed.

The model is deliberately syntactic: it recognises the handle idioms
this repository's targets use, not arbitrary Python.  Rules built on it
(:mod:`repro.analysis.rules_dataflow`, :mod:`repro.analysis.rules_drift`)
are tuned so that the shipped targets pass clean and each seeded-defect
fixture fires.
"""

from __future__ import annotations

import ast
import dataclasses
import importlib.util
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "SignalEvent",
    "MemoryModel",
    "FunctionInfo",
    "ImportRecord",
    "SourceModel",
    "build_source_model",
    "DEFAULT_FINGERPRINT_EXEMPT",
]

#: Default module-name prefixes exempt from fingerprint coverage (see
#: :class:`~repro.analysis.diagnostics.AnalysisOptions.fingerprint_exempt`):
#: the observability layer (result-neutrality is enforced dynamically by
#: the golden-trace harness), the target registry (pure dispatch —
#: covering it would weld every target's result cache to every
#: workload), and the analysis package itself (the linter never runs
#: during a campaign).
DEFAULT_FINGERPRINT_EXEMPT: Tuple[str, ...] = (
    "repro.obs",
    "repro.targets.registry",
    "repro.analysis",
)

#: Check-helper method names (the arrestor's ``ModuleBase.checked`` and
#: the tank node's ``_checked`` share the read-test-writeback shape).
_CHECK_HELPERS = ("checked", "_checked")


@dataclasses.dataclass(frozen=True)
class SignalEvent:
    """One access to a monitored-memory signal found in target source.

    ``kind`` is ``"read"`` / ``"write"`` / ``"check"``.  ``index`` orders
    events within ``function``; it counts events, not lines, so it is
    invariant under comment/whitespace edits.  ``in_write`` marks a read
    nested in a same-signal write (the exempt read-modify-write shape);
    ``tainted`` marks a write whose value derives from a standalone
    unchecked read of the same signal, with ``wrap_modulus`` the wrap
    fold applied in between (``None`` no wrap, ``-1`` unresolvable).
    ``consumer`` names the method a read is passed straight into
    (``drain.receive(mem.comm_set_point.get())`` → ``"receive"``).
    """

    signal: str
    kind: str
    module: str
    file: str
    line: int
    function: str
    index: int
    in_write: bool = False
    tainted: bool = False
    rmw: bool = False
    wrap_modulus: Optional[int] = None
    consumer: Optional[str] = None


@dataclasses.dataclass(frozen=True)
class MemoryModel:
    """One recognised target-memory class (has a ``signal_variable`` map)."""

    class_name: str
    module: str
    file: str
    line: int
    #: Keys of the ``signal_variable`` mapping, in declaration order.
    mapped_signals: Tuple[str, ...]
    #: The module-level ``MONITORED_SIGNALS`` tuple, when present.
    declared_signals: Tuple[str, ...]
    #: Attribute name → signal symbol, from ``__init__`` allocations.
    attr_symbols: Mapping[str, str]

    @property
    def monitored(self) -> Tuple[str, ...]:
        """Mapped ∪ declared signals, mapped order first."""
        seen = list(self.mapped_signals)
        for name in self.declared_signals:
            if name not in seen:
                seen.append(name)
        return tuple(seen)


@dataclasses.dataclass(frozen=True)
class FunctionInfo:
    """Guard capabilities of one parsed function/method (for EA404)."""

    name: str
    qualname: str
    module: str
    file: str
    line: int
    has_test_call: bool = False
    has_clamp: bool = False

    @property
    def guarded(self) -> bool:
        return self.has_test_call or self.has_clamp


@dataclasses.dataclass(frozen=True)
class ImportRecord:
    """An intra-repository import no fingerprint entry covers (EA504)."""

    module: str
    importer: str
    file: str
    line: int


@dataclasses.dataclass(frozen=True)
class SourceModel:
    """The def-use model :func:`build_source_model` produces."""

    target_name: str
    entries: Tuple[str, ...]
    unresolved_entries: Tuple[str, ...]
    modules: Tuple[str, ...]
    memories: Tuple[MemoryModel, ...]
    events: Tuple[SignalEvent, ...]
    functions: Tuple[FunctionInfo, ...]
    uncovered_imports: Tuple[ImportRecord, ...]

    def for_signal(self, signal: str) -> List[SignalEvent]:
        return [e for e in self.events if e.signal == signal]

    def signals(self) -> Tuple[str, ...]:
        return tuple(sorted({e.signal for e in self.events}))

    @property
    def monitored(self) -> Tuple[str, ...]:
        """Union of every memory model's monitored signals, stable order."""
        seen: List[str] = []
        for memory in self.memories:
            for name in memory.monitored:
                if name not in seen:
                    seen.append(name)
        return tuple(seen)

    def comm_signals(self) -> Tuple[str, ...]:
        """Communication-buffer symbols (by the ``comm`` naming convention)."""
        names = {e.signal for e in self.events}
        for memory in self.memories:
            names.update(memory.attr_symbols.values())
        return tuple(sorted(n for n in names if "comm" in n.lower()))

    def functions_named(self, name: str) -> List[FunctionInfo]:
        return [f for f in self.functions if f.name == name]

    def structure(self) -> Tuple[Tuple[object, ...], ...]:
        """A location-free view of the event stream.

        Excludes file paths and line numbers, so it is invariant under
        comment- and whitespace-only edits to the analysed sources — the
        property the def-use tests pin.
        """
        return tuple(
            (
                e.module,
                e.function,
                e.index,
                e.signal,
                e.kind,
                e.in_write,
                e.tainted,
                e.rmw,
                e.wrap_modulus,
                e.consumer,
            )
            for e in self.events
        )


# -- module location ----------------------------------------------------------


class _Locator:
    """Resolve dotted module names to source files by path arithmetic.

    Only the *root* package of a dotted name is looked up through the
    import machinery (and the roots in play — ``repro``, test fixtures —
    are already imported); every submodule is resolved as a file-system
    path under the root's search locations, so the analyser never
    triggers an import of the code it is inspecting.
    """

    def __init__(self, extra: Mapping[str, str]):
        self.extra = dict(extra)
        self._roots: Dict[str, Optional[List[Path]]] = {}

    def _root_paths(self, root: str) -> Optional[List[Path]]:
        if root not in self._roots:
            try:
                spec = importlib.util.find_spec(root)
            except (ImportError, ValueError):
                spec = None
            if spec is None or not spec.submodule_search_locations:
                self._roots[root] = None
            else:
                self._roots[root] = [Path(p) for p in spec.submodule_search_locations]
        return self._roots[root]

    def locate(self, name: str) -> Optional[Tuple[str, Path]]:
        """``("module" | "package", path-to-.py-file)`` or ``None``."""
        root, _, rest = name.partition(".")
        bases = self._root_paths(root)
        if bases is None:
            return None
        for base in bases:
            path = base.joinpath(*rest.split(".")) if rest else base
            init = path / "__init__.py"
            if path.is_dir() and init.is_file():
                return ("package", init)
            if rest:
                as_file = path.with_suffix(".py")
                if as_file.is_file():
                    return ("module", as_file)
        return None

    def is_module(self, name: str) -> bool:
        return name in self.extra or self.locate(name) is not None

    def package_dir(self, name: str) -> Optional[Path]:
        found = self.locate(name)
        if found and found[0] == "package":
            return found[1].parent
        return None


def _covered(module: str, entries: Sequence[str]) -> bool:
    """Whether any fingerprint entry vouches for *module*.

    An entry covers the module itself, its descendants, and its ancestor
    packages (an ancestor is a facade whose source the entry's own hash
    chain already depends on through the re-export).
    """
    return any(
        module == entry
        or module.startswith(entry + ".")
        or entry.startswith(module + ".")
        for entry in entries
    )


def _exempt(module: str, prefixes: Sequence[str]) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".") for prefix in prefixes
    )


# -- parsing ------------------------------------------------------------------


@dataclasses.dataclass
class _ParsedModule:
    name: str
    file: str
    tree: ast.Module
    constants: Dict[str, int] = dataclasses.field(default_factory=dict)
    import_aliases: Dict[str, str] = dataclasses.field(default_factory=dict)
    declared_signals: Tuple[str, ...] = ()


def _parse(name: str, file: str, text: str) -> _ParsedModule:
    tree = ast.parse(text, filename=file)
    parsed = _ParsedModule(name=name, file=file, tree=tree)
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                value = node.value
                if isinstance(value, ast.Constant) and isinstance(value.value, int):
                    parsed.constants[target.id] = value.value
                elif target.id == "MONITORED_SIGNALS" and isinstance(
                    value, (ast.Tuple, ast.List)
                ):
                    names = [
                        e.value
                        for e in value.elts
                        if isinstance(e, ast.Constant) and isinstance(e.value, str)
                    ]
                    parsed.declared_signals = tuple(names)
    return parsed


def _module_imports(
    tree: ast.Module, locator: _Locator
) -> List[Tuple[str, int]]:
    """All absolute imports in *tree* as ``(module name, line)`` pairs.

    ``from pkg import name`` resolves to the submodule ``pkg.name`` when
    that is an importable module, else to ``pkg`` itself (a facade
    re-export).  Relative imports do not occur in this repository and
    are ignored.
    """
    found: List[Tuple[str, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                found.append((alias.name, node.lineno))
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            for alias in node.names:
                candidate = f"{node.module}.{alias.name}"
                if locator.is_module(candidate):
                    found.append((candidate, node.lineno))
                else:
                    found.append((node.module, node.lineno))
    return found


def _record_import_aliases(parsed: _ParsedModule, locator: _Locator) -> None:
    for node in ast.walk(parsed.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    parsed.import_aliases[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            for alias in node.names:
                candidate = f"{node.module}.{alias.name}"
                if locator.is_module(candidate):
                    parsed.import_aliases[alias.asname or alias.name] = candidate


# -- memory-class recognition -------------------------------------------------


def _allocation_symbol(call: ast.Call) -> Optional[str]:
    """The signal symbol allocated by one ``__init__`` call, if any."""
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr == "_var"
        and call.args
        and isinstance(call.args[0], ast.Constant)
        and isinstance(call.args[0].value, str)
    ):
        return call.args[0].value
    for arg in call.args:
        if (
            isinstance(arg, ast.Call)
            and isinstance(arg.func, ast.Attribute)
            and arg.func.attr == "allocate"
            and arg.args
            and isinstance(arg.args[0], ast.Constant)
            and isinstance(arg.args[0].value, str)
        ):
            return arg.args[0].value
    return None


def _signal_variable_mapping(func: ast.FunctionDef) -> Tuple[str, ...]:
    """Keys of the ``signal_variable`` dict literal, in order."""
    for node in ast.walk(func):
        if isinstance(node, ast.Dict) and node.keys:
            keys = [
                k.value
                for k in node.keys
                if isinstance(k, ast.Constant) and isinstance(k.value, str)
            ]
            values_ok = all(
                isinstance(v, ast.Attribute)
                and isinstance(v.value, ast.Name)
                and v.value.id == "self"
                for v in node.values
            )
            if keys and len(keys) == len(node.keys) and values_ok:
                return tuple(keys)
    return ()


def _find_memories(parsed: _ParsedModule) -> List[MemoryModel]:
    memories: List[MemoryModel] = []
    for node in parsed.tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        methods = {
            item.name: item
            for item in node.body
            if isinstance(item, ast.FunctionDef)
        }
        mapper = methods.get("signal_variable")
        if mapper is None:
            continue
        mapped = _signal_variable_mapping(mapper)
        if not mapped:
            continue
        attr_symbols: Dict[str, str] = {}
        init = methods.get("__init__")
        if init is not None:
            for stmt in ast.walk(init):
                if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                    continue
                target = stmt.targets[0]
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                if isinstance(stmt.value, ast.Call):
                    symbol = _allocation_symbol(stmt.value)
                    if symbol is not None:
                        attr_symbols[target.attr] = symbol
        memories.append(
            MemoryModel(
                class_name=node.name,
                module=parsed.name,
                file=parsed.file,
                line=node.lineno,
                mapped_signals=mapped,
                declared_signals=parsed.declared_signals,
                attr_symbols=attr_symbols,
            )
        )
    return memories


# -- event extraction ---------------------------------------------------------


class _ExprInfo:
    """What scanning one expression surfaced (for taint propagation)."""

    __slots__ = ("reads", "tainted", "had_check")

    def __init__(self) -> None:
        self.reads: List[str] = []
        self.tainted: List[str] = []
        self.had_check = False

    def merge(self, other: "_ExprInfo") -> None:
        self.reads.extend(other.reads)
        self.tainted.extend(other.tainted)
        self.had_check = self.had_check or other.had_check


class _FunctionScanner:
    """Extract :class:`SignalEvent` records from one function body."""

    def __init__(
        self,
        parsed: _ParsedModule,
        qualname: str,
        class_attr_symbols: Mapping[str, str],
        global_attr_symbols: Mapping[str, str],
        constants_of: Mapping[str, Mapping[str, int]],
        events: List[SignalEvent],
    ) -> None:
        self.parsed = parsed
        self.qualname = qualname
        self.class_attrs = class_attr_symbols
        self.global_attrs = global_attr_symbols
        self.constants_of = constants_of
        self.events = events
        self.index = 0
        self.taint: Dict[str, Tuple[str, Optional[int]]] = {}
        self.local_symbols: Dict[str, str] = {}
        self.has_test_call = False
        self.has_clamp = False

    # -- resolution -------------------------------------------------------

    def resolve_handle(self, expr: ast.expr) -> Optional[str]:
        """The signal symbol a handle expression denotes, if known."""
        if isinstance(expr, ast.Name):
            return self.local_symbols.get(expr.id)
        if isinstance(expr, ast.Attribute):
            attr = expr.attr
            if (
                isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and attr in self.class_attrs
            ):
                return self.class_attrs[attr]
            return self.global_attrs.get(attr)
        return None

    def resolve_constant(self, expr: ast.expr) -> Optional[int]:
        """An integer modulus: literal, module constant, or ``k.NAME``."""
        if isinstance(expr, ast.Constant) and isinstance(expr.value, int):
            return expr.value
        if isinstance(expr, ast.Name):
            return self.parsed.constants.get(expr.id)
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            module = self.parsed.import_aliases.get(expr.value.id)
            if module is not None:
                return self.constants_of.get(module, {}).get(expr.attr)
        return None

    # -- emission ---------------------------------------------------------

    def emit(
        self,
        kind: str,
        signal: str,
        node: ast.AST,
        *,
        in_write: bool = False,
        tainted: bool = False,
        rmw: bool = False,
        wrap_modulus: Optional[int] = None,
        consumer: Optional[str] = None,
    ) -> None:
        self.events.append(
            SignalEvent(
                signal=signal,
                kind=kind,
                module=self.parsed.name,
                file=self.parsed.file,
                line=getattr(node, "lineno", 0),
                function=self.qualname,
                index=self.index,
                in_write=in_write,
                tainted=tainted,
                rmw=rmw,
                wrap_modulus=wrap_modulus,
                consumer=consumer,
            )
        )
        self.index += 1

    # -- expressions ------------------------------------------------------

    def scan_expr(self, node: Optional[ast.expr], wstack: List[str]) -> _ExprInfo:
        info = _ExprInfo()
        if node is None:
            return info
        if isinstance(node, ast.Call):
            self._scan_call(node, wstack, info)
        elif isinstance(node, ast.Name):
            if node.id in self.taint:
                info.tainted.append(node.id)
        else:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    info.merge(self.scan_expr(child, wstack))
        return info

    def _scan_call(self, node: ast.Call, wstack: List[str], info: _ExprInfo) -> None:
        func = node.func
        name = None
        if isinstance(func, ast.Attribute):
            name = func.attr
        elif isinstance(func, ast.Name):
            name = func.id

        if name in ("min", "max") or (name and "clamp" in name.lower()):
            self.has_clamp = True

        # The read-test-writeback helper: checked(monitor, var, now).
        if name in _CHECK_HELPERS and len(node.args) >= 2:
            signal = self.resolve_handle(node.args[1])
            if signal is not None:
                self.emit("check", signal, node)
                info.had_check = True
                for position, arg in enumerate(node.args):
                    if position != 1:
                        info.merge(self.scan_expr(arg, wstack))
                return

        # Direct monitor use: monitor.test(var.get(), now) or .test(value, now).
        if name == "test":
            self.has_test_call = True
            args = list(node.args)
            if args:
                first = args[0]
                if (
                    isinstance(first, ast.Call)
                    and isinstance(first.func, ast.Attribute)
                    and first.func.attr == "get"
                ):
                    signal = self.resolve_handle(first.func.value)
                    if signal is not None:
                        self.emit("check", signal, node)
                        info.had_check = True
                        for arg in args[1:]:
                            info.merge(self.scan_expr(arg, wstack))
                        return
            info.had_check = True
            for arg in args:
                info.merge(self.scan_expr(arg, wstack))
            return

        # Variable-handle accesses: handle.get() / .set(v) / .add(v).
        if isinstance(func, ast.Attribute) and name in ("get", "set", "add"):
            signal = self.resolve_handle(func.value)
            if signal is not None:
                if name == "get":
                    in_write = bool(wstack) and wstack[-1] == signal
                    self.emit("read", signal, node, in_write=in_write)
                    if not in_write:
                        info.reads.append(signal)
                else:
                    inner = _ExprInfo()
                    for arg in node.args:
                        inner.merge(self.scan_expr(arg, wstack + [signal]))
                    wrap: Optional[int] = None
                    tainted = False
                    for local in inner.tainted:
                        taint_signal, taint_wrap = self.taint[local]
                        if taint_signal == signal:
                            tainted = True
                            wrap = taint_wrap
                            break
                    self.emit(
                        "write",
                        signal,
                        node,
                        tainted=tainted,
                        rmw=(name == "add"),
                        wrap_modulus=wrap,
                    )
                    info.merge(inner)
                return
            # Unresolvable handle (e.g. a parameter): scan args only.
            for arg in node.args:
                info.merge(self.scan_expr(arg, wstack))
            return

        # Generic call: flag reads handed straight to a consumer method.
        consumer = name if isinstance(func, ast.Attribute) else None
        for arg in node.args:
            if (
                isinstance(arg, ast.Call)
                and isinstance(arg.func, ast.Attribute)
                and arg.func.attr == "get"
            ):
                signal = self.resolve_handle(arg.func.value)
                if signal is not None:
                    self.emit("read", signal, arg, consumer=consumer)
                    info.reads.append(signal)
                    continue
            info.merge(self.scan_expr(arg, wstack))
        for keyword in node.keywords:
            info.merge(self.scan_expr(keyword.value, wstack))
        if isinstance(func, ast.Attribute):
            info.merge(self.scan_expr(func.value, wstack))

    # -- statements -------------------------------------------------------

    def _assign_name(self, name: str, info: _ExprInfo) -> None:
        self.local_symbols.pop(name, None)
        if info.had_check:
            # The value went through a monitor: a validated local.
            self.taint.pop(name, None)
        elif info.reads:
            self.taint[name] = (info.reads[0], None)
        elif info.tainted:
            self.taint[name] = self.taint[info.tainted[0]]
        else:
            self.taint.pop(name, None)

    def _apply_wrap(self, name: str, modulus_expr: ast.expr) -> None:
        if name not in self.taint:
            return
        signal, _ = self.taint[name]
        modulus = self.resolve_constant(modulus_expr)
        self.taint[name] = (signal, modulus if modulus is not None else -1)

    def _wrap_candidate(
        self, node: ast.If
    ) -> Optional[Tuple[str, str, Optional[int]]]:
        """The wrap idiom ``if x >= K: x = 0`` (also ``>`` / ``==``).

        Returns ``(local, signal, modulus)`` when the folded local is
        currently tainted; the caller re-applies the taint *after* the
        branch bodies are scanned (the ``x = 0`` reset would otherwise
        clear it).
        """
        test = node.test
        if not (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], (ast.GtE, ast.Gt, ast.Eq))
            and isinstance(test.left, ast.Name)
        ):
            return None
        name = test.left.id
        if name not in self.taint:
            return None
        resets = any(
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == name
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value == 0
            for stmt in node.body
        )
        if not resets:
            return None
        signal, _ = self.taint[name]
        modulus = self.resolve_constant(test.comparators[0])
        return (name, signal, modulus if modulus is not None else -1)

    def scan_stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
            if (
                len(targets) == 1
                and isinstance(targets[0], ast.Name)
                and isinstance(value, ast.Attribute)
            ):
                symbol = self.resolve_handle(value)
                if symbol is not None:
                    # A handle alias (comm_tx = master.mem.comm_tx_set_value):
                    # binding a Variable object is not a memory read.
                    name = targets[0].id
                    self.local_symbols[name] = symbol
                    self.taint.pop(name, None)
                    return
            info = self.scan_expr(value, [])
            if (
                isinstance(value, ast.BinOp)
                and isinstance(value.op, ast.Mod)
                and info.reads
            ):
                modulus = self.resolve_constant(value.right)
                info_wrap: Optional[int] = modulus if modulus is not None else -1
            else:
                info_wrap = None
            for target in targets:
                if isinstance(target, ast.Name):
                    self._assign_name(target.id, info)
                    if info_wrap is not None and target.id in self.taint:
                        signal, _ = self.taint[target.id]
                        self.taint[target.id] = (signal, info_wrap)
        elif isinstance(node, ast.AnnAssign):
            info = self.scan_expr(node.value, [])
            if isinstance(node.target, ast.Name) and node.value is not None:
                self._assign_name(node.target.id, info)
        elif isinstance(node, ast.AugAssign):
            info = self.scan_expr(node.value, [])
            if isinstance(node.target, ast.Name) and isinstance(node.op, ast.Mod):
                self._apply_wrap(node.target.id, node.value)
        elif isinstance(node, ast.If):
            self.scan_expr(node.test, [])
            wrap = self._wrap_candidate(node)
            for stmt in node.body:
                self.scan_stmt(stmt)
            for stmt in node.orelse:
                self.scan_stmt(stmt)
            if wrap is not None:
                name, signal, modulus = wrap
                self.taint[name] = (signal, modulus)
        elif isinstance(node, ast.Expr):
            self.scan_expr(node.value, [])
        elif isinstance(node, ast.Return):
            self.scan_expr(node.value, [])
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self.scan_expr(node.iter, [])
            for stmt in node.body:
                self.scan_stmt(stmt)
            for stmt in node.orelse:
                self.scan_stmt(stmt)
        elif isinstance(node, ast.While):
            self.scan_expr(node.test, [])
            for stmt in node.body:
                self.scan_stmt(stmt)
            for stmt in node.orelse:
                self.scan_stmt(stmt)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                self.scan_expr(item.context_expr, [])
            for stmt in node.body:
                self.scan_stmt(stmt)
        elif isinstance(node, ast.Try):
            for stmt in node.body:
                self.scan_stmt(stmt)
            for handler in node.handlers:
                for stmt in handler.body:
                    self.scan_stmt(stmt)
            for stmt in node.orelse:
                self.scan_stmt(stmt)
            for stmt in node.finalbody:
                self.scan_stmt(stmt)
        elif isinstance(node, (ast.Assert, ast.Raise)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.scan_expr(child, [])
        # Nested function/class definitions are not descended into.


def _class_attr_symbols(
    node: ast.ClassDef, global_attrs: Mapping[str, str]
) -> Dict[str, str]:
    """``self._x = mem.slot_id``-style aliases from a class ``__init__``."""
    aliases: Dict[str, str] = {}
    for item in node.body:
        if not (isinstance(item, ast.FunctionDef) and item.name == "__init__"):
            continue
        for stmt in ast.walk(item):
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            value = stmt.value
            if isinstance(value, ast.Attribute) and value.attr in global_attrs:
                aliases[target.attr] = global_attrs[value.attr]
    return aliases


def _scan_module_events(
    parsed: _ParsedModule,
    global_attrs: Mapping[str, str],
    constants_of: Mapping[str, Mapping[str, int]],
    events: List[SignalEvent],
    functions: List[FunctionInfo],
) -> None:
    def scan_function(
        func: ast.FunctionDef, qualname: str, class_attrs: Mapping[str, str]
    ) -> None:
        scanner = _FunctionScanner(
            parsed, qualname, class_attrs, global_attrs, constants_of, events
        )
        for stmt in func.body:
            scanner.scan_stmt(stmt)
        functions.append(
            FunctionInfo(
                name=func.name,
                qualname=qualname,
                module=parsed.name,
                file=parsed.file,
                line=func.lineno,
                has_test_call=scanner.has_test_call,
                has_clamp=scanner.has_clamp,
            )
        )

    for node in parsed.tree.body:
        if isinstance(node, ast.ClassDef):
            class_attrs = _class_attr_symbols(node, global_attrs)
            for item in node.body:
                if isinstance(item, ast.FunctionDef):
                    scan_function(item, f"{node.name}.{item.name}", class_attrs)
        elif isinstance(node, ast.FunctionDef):
            scan_function(node, node.name, {})


# -- the builder --------------------------------------------------------------


def build_source_model(
    target: Optional[object] = None,
    *,
    entries: Optional[Sequence[str]] = None,
    extra_sources: Optional[Mapping[str, str]] = None,
    exempt: Sequence[str] = DEFAULT_FINGERPRINT_EXEMPT,
    target_name: Optional[str] = None,
) -> SourceModel:
    """Parse a target's fingerprinted sources into a :class:`SourceModel`.

    *entries* defaults to ``target.fingerprint_sources()``.
    *extra_sources* maps dotted module names to source text and takes
    precedence over the file system — the fixture tests use it to
    analyse seeded-defect modules that are never importable.  *exempt*
    prefixes are neither required in the fingerprint nor walked.
    """
    if entries is None:
        if target is None:
            raise ValueError("build_source_model needs a target or explicit entries")
        entries = tuple(target.fingerprint_sources())
    else:
        entries = tuple(entries)
    name = target_name or getattr(target, "name", None) or "<unnamed>"
    extra = dict(extra_sources or {})
    locator = _Locator(extra)

    roots = {entry.partition(".")[0] for entry in entries}
    roots.update(key.partition(".")[0] for key in extra)

    # Expand fingerprint entries to concrete module files.
    to_parse: Dict[str, Tuple[str, Optional[str]]] = {}
    unresolved: List[str] = []
    for entry in entries:
        matched = False
        for key, text in extra.items():
            if key == entry or key.startswith(entry + "."):
                to_parse.setdefault(key, (f"<fixture:{key}>", text))
                matched = True
        found = locator.locate(entry)
        if found is not None:
            matched = True
            kind, init_file = found
            if kind == "module":
                to_parse.setdefault(entry, (str(init_file), None))
            else:
                package_dir = init_file.parent
                for source_file in sorted(package_dir.rglob("*.py")):
                    relative = source_file.relative_to(package_dir)
                    parts = list(relative.parts)
                    if parts[-1] == "__init__.py":
                        parts = parts[:-1]
                    else:
                        parts[-1] = parts[-1][: -len(".py")]
                    module = ".".join([entry] + parts)
                    to_parse.setdefault(module, (str(source_file), None))
        if not matched:
            unresolved.append(entry)

    # Parse the entry modules, then walk covered imports to a fixpoint.
    parsed: Dict[str, _ParsedModule] = {}
    uncovered: Dict[Tuple[str, str], ImportRecord] = {}
    queue = sorted(to_parse)

    def parse_one(module: str, file: str, text: Optional[str]) -> None:
        if text is None:
            text = Path(file).read_text(encoding="utf-8")
        parsed[module] = _parse(module, file, text)

    for module in queue:
        file, text = to_parse[module]
        parse_one(module, file, text)

    while queue:
        module = queue.pop()
        current = parsed[module]
        for imported, line in _module_imports(current.tree, locator):
            if imported.partition(".")[0] not in roots:
                continue
            if _exempt(imported, exempt):
                continue
            if not _covered(imported, entries):
                key = (imported, current.file)
                if key not in uncovered:
                    uncovered[key] = ImportRecord(
                        module=imported,
                        importer=current.name,
                        file=current.file,
                        line=line,
                    )
                continue
            if imported in parsed:
                continue
            if imported in extra:
                parse_one(imported, f"<fixture:{imported}>", extra[imported])
                queue.append(imported)
                continue
            found = locator.locate(imported)
            if found is not None:
                parse_one(imported, str(found[1]), None)
                queue.append(imported)

    # Phase A: constants, import aliases, memory models, the symbol table.
    ordered = [parsed[module] for module in sorted(parsed)]
    memories: List[MemoryModel] = []
    global_attrs: Dict[str, str] = {}
    constants_of: Dict[str, Mapping[str, int]] = {}
    for module in ordered:
        _record_import_aliases(module, locator)
        constants_of[module.name] = module.constants
        for memory in _find_memories(module):
            memories.append(memory)
            global_attrs.update(memory.attr_symbols)

    # Phase B: the event stream.
    events: List[SignalEvent] = []
    functions: List[FunctionInfo] = []
    for module in ordered:
        _scan_module_events(module, global_attrs, constants_of, events, functions)

    return SourceModel(
        target_name=name,
        entries=entries,
        unresolved_entries=tuple(unresolved),
        modules=tuple(module.name for module in ordered),
        memories=tuple(memories),
        events=tuple(events),
        functions=tuple(functions),
        uncovered_imports=tuple(
            uncovered[key] for key in sorted(uncovered)
        ),
    )
