"""Static analysis of executable-assertion configurations.

The paper's mechanisms are generic algorithms *instantiated with
parameters alone*, and the Section-2.3 process chooses those parameters
and their placement by hand — so a mis-parameterised assertion or an
unmonitored critical pathway is a silent configuration bug, not a code
bug.  This package is a rule-based linter that catches such bugs without
executing the system: it inspects parameter sets (``Pcont``/``Pdisc``,
modal sets), :class:`~repro.core.process.InstrumentationPlan` objects and
their inventories, and emits structured :class:`Diagnostic` records.

Five built-in rule packs (27 rules):

* **parameter vacuity** (EA101-EA109) — envelopes wider than the domain,
  unbuildable templates, degenerate transition relations, vacuous modes;
* **plan completeness** (EA201-EA206) — critical signals without
  assertions, dead dataflow, duplicate monitor ids, class/parameter
  contradictions;
* **coverage** (EA301-EA303) — static bounds on the Section-2.4 model's
  ``Pds`` and ``Pem`` terms, unguarded output pathways;
* **source dataflow/placement** (EA401-EA404) — an AST def-use pass over
  the target's fingerprinted source modules: phase-locked checks behind
  the wrap idiom, written-never-checked signals, dead monitors,
  unguarded communication-buffer consumption (Section 2.3 placement);
* **source drift** (EA501-EA505) — memory map vs plan vs
  ``monitored_signals`` disagreement, and fingerprint-completeness of
  the import closure (the incremental store's stale-cache guard).

Library use::

    from repro.analysis import analyze_plan
    report = analyze_plan(plan, fmeca_entries)
    assert report.ok, report.format_text()

CLI use (``--help`` for the full surface)::

    python -m repro.analysis                 # lint the arrestor's own plan
    python -m repro.analysis --format json --target mymod:build_plan

Custom rules register into a :class:`RuleRegistry` — see
:mod:`repro.analysis.registry`.
"""

from repro.analysis.diagnostics import (
    AnalysisOptions,
    AnalysisReport,
    Diagnostic,
    Finding,
    Severity,
)
from repro.analysis.engine import analyze_params, analyze_plan, analyze_target_source
from repro.analysis.registry import Rule, RuleContext, RuleRegistry, default_registry
from repro.analysis.rules_coverage import estimate_pds
from repro.analysis.selfcheck import build_default_target, self_check
from repro.analysis.source import (
    DEFAULT_FINGERPRINT_EXEMPT,
    SignalEvent,
    SourceModel,
    build_source_model,
)

__all__ = [
    "AnalysisOptions",
    "AnalysisReport",
    "Diagnostic",
    "Finding",
    "Severity",
    "analyze_params",
    "analyze_plan",
    "analyze_target_source",
    "Rule",
    "RuleContext",
    "RuleRegistry",
    "default_registry",
    "estimate_pds",
    "build_default_target",
    "self_check",
    "SignalEvent",
    "SourceModel",
    "build_source_model",
    "DEFAULT_FINGERPRINT_EXEMPT",
]
