"""Source-level dataflow/placement rules (EA401-EA404).

Section 2.3 places each assertion at the point where its signal is
produced or consumed; these rules check that the shipped source actually
realises those placements.  They run over the
:class:`~repro.analysis.source.SourceModel` def-use graph, so every
finding carries a ``file:line``.

* **EA401** — a check ordered *after* a write that folded an unchecked
  read of the same signal through the wrap idiom (``if x >= N: x = 0``
  or ``x % N``), where ``N`` divides the injection period.  That check
  is phase-locked: every injected corruption is wrapped back into the
  legal domain before the monitor sees it, so the assertion observes
  only the one legal transition and detects nothing.  This is precisely
  the tank-level ``slot_id`` bug the dynamic PR-4 experiments caught —
  its 5-slot cycle divides the 20-ms injection period, while the
  arrestor's 7-slot cycle does not (which is why the paper's own
  post-wrap Table-4 placement is safe there).
* **EA402** — a monitored signal is written somewhere but no check of it
  exists anywhere: the FMECA selected it, the plan claims it, the code
  never tests it.
* **EA403** — a dead monitor: a signal is checked but never written, so
  the check can only ever see the boot value.
* **EA404** — a communication-buffer read handed straight to a consumer
  method that contains neither a monitor ``.test`` nor a clamp: the
  receiving node consumes the buffer unguarded (the slave-assertion gap
  of Section 3 — the paper's slave-side EA validates the received
  SetValue before use).
"""

from __future__ import annotations

from typing import Iterator, List

from repro.analysis.diagnostics import Finding, Severity
from repro.analysis.registry import Rule, RuleContext, RuleRegistry
from repro.analysis.source import SignalEvent, SourceModel

__all__ = ["register", "PACK"]

PACK = "source-dataflow"


def _model(ctx: RuleContext) -> SourceModel | None:
    source = ctx.source
    return source if isinstance(source, SourceModel) else None


def check_phase_locked_placement(ctx: RuleContext) -> Iterator[Finding]:
    """A check placed after a wrap-folding write it can never fail on."""
    model = _model(ctx)
    if model is None:
        return
    period = ctx.options.injection_period_ms
    for write in model.events:
        if write.kind != "write" or not write.tainted or write.wrap_modulus is None:
            continue
        checks_after: List[SignalEvent] = [
            event
            for event in model.for_signal(write.signal)
            if event.kind == "check"
            and event.module == write.module
            and event.function == write.function
            and event.index > write.index
        ]
        if not checks_after:
            continue
        check = checks_after[0]
        modulus = write.wrap_modulus
        if modulus == -1:
            yield Finding(
                write.signal,
                f"check in {check.function} runs after the wrap-folding write "
                f"at line {write.line} and the wrap modulus could not be "
                f"resolved; if it divides the {period}-ms injection period "
                f"the check is phase-locked",
                hint="move the check to the consumption point, before the "
                "wrap idiom folds corrupted values back into the domain",
                severity=Severity.WARNING,
                file=check.file,
                line=check.line,
            )
        elif modulus > 0 and period % modulus == 0:
            yield Finding(
                write.signal,
                f"check in {check.function} is phase-locked: it runs after "
                f"the write at line {write.line} folds the signal through a "
                f"wrap of modulus {modulus}, which divides the {period}-ms "
                f"injection period — every injected corruption is wrapped "
                f"back into the legal domain before the monitor sees it",
                hint="test the signal at its consumption point, before the "
                "wrap idiom (the tank-level PR-4 fix)",
                file=check.file,
                line=check.line,
            )


def check_written_never_checked(ctx: RuleContext) -> Iterator[Finding]:
    """A monitored signal with writes but no check anywhere in the source."""
    model = _model(ctx)
    if model is None:
        return
    for signal in model.monitored:
        events = model.for_signal(signal)
        writes = [e for e in events if e.kind == "write"]
        if not writes:
            continue
        if any(e.kind == "check" for e in events):
            continue
        first = writes[0]
        yield Finding(
            signal,
            f"monitored signal is written in {first.function} but no "
            f"executable assertion checks it anywhere in the analysed source",
            hint="add the planned check at the signal's production or "
            "consumption point, or drop it from the monitored set",
            file=first.file,
            line=first.line,
        )


def check_dead_monitor(ctx: RuleContext) -> Iterator[Finding]:
    """A check of a signal no analysed code ever writes."""
    model = _model(ctx)
    if model is None:
        return
    for signal in model.monitored:
        events = model.for_signal(signal)
        checks = [e for e in events if e.kind == "check"]
        if not checks:
            continue
        if any(e.kind == "write" for e in events):
            continue
        first = checks[0]
        yield Finding(
            signal,
            f"dead monitor: {first.function} checks the signal but no "
            f"analysed code ever writes it, so only the boot value is tested",
            hint="either the producing write is missing from the analysed "
            "sources (fingerprint drift) or the monitor guards nothing",
            file=first.file,
            line=first.line,
        )


def check_unguarded_comm_consumption(ctx: RuleContext) -> Iterator[Finding]:
    """A COMM-buffer read consumed with no check or clamp at the receiver."""
    model = _model(ctx)
    if model is None:
        return
    comm = set(model.comm_signals())
    for event in model.events:
        if event.kind != "read" or event.consumer is None:
            continue
        if event.signal not in comm:
            continue
        if any(e.kind == "check" for e in model.for_signal(event.signal)):
            continue
        consumers = model.functions_named(event.consumer)
        if not consumers or any(f.guarded for f in consumers):
            continue
        yield Finding(
            event.signal,
            f"communication buffer is passed to {event.consumer}() which "
            f"contains neither a monitor test nor a range clamp — the "
            f"receiving node consumes the buffer unguarded",
            hint="validate the received value before use (the paper's "
            "slave-side assertion tests SetValue on reception)",
            file=event.file,
            line=event.line,
        )


def register(registry: RuleRegistry) -> None:
    """Register the dataflow/placement pack into *registry*."""
    registry.add(
        Rule(
            "EA401",
            "check phase-locked behind a wrap-folding write",
            Severity.ERROR,
            "source",
            check_phase_locked_placement,
            pack=PACK,
        )
    )
    registry.add(
        Rule(
            "EA402",
            "monitored signal written but never checked",
            Severity.ERROR,
            "source",
            check_written_never_checked,
            pack=PACK,
        )
    )
    registry.add(
        Rule(
            "EA403",
            "dead monitor: checked signal is never written",
            Severity.WARNING,
            "source",
            check_dead_monitor,
            pack=PACK,
        )
    )
    registry.add(
        Rule(
            "EA404",
            "communication buffer consumed without a guard",
            Severity.WARNING,
            "source",
            check_unguarded_comm_consumption,
            pack=PACK,
        )
    )
