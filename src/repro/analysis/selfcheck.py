"""Self-check: lint the shipped targets' own instrumentation.

The repository ships a full Section-2.3 outcome for every registered
workload — an instrumentation plan plus its FMECA table, exposed through
:meth:`repro.targets.base.Target.lint_target`.  Linting them is both a
regression guard for the shipped configurations and the reference
example of plans the analyser considers clean; ``python -m
repro.analysis`` runs the arrestor by default, ``--all-targets`` sweeps
the whole registry, and ``make lint`` wires the sweep into CI.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.process import FmecaEntry, InstrumentationPlan

from repro.analysis.diagnostics import AnalysisOptions, AnalysisReport
from repro.analysis.engine import analyze_plan
from repro.analysis.registry import RuleRegistry

__all__ = ["build_default_target", "self_check", "check_all_targets"]


def build_default_target() -> Tuple[InstrumentationPlan, Tuple[FmecaEntry, ...]]:
    """The arrestor's own plan + FMECA table (the CLI's default target)."""
    from repro.arrestor.instrumentation import (
        build_instrumentation_plan,
        default_fmeca_entries,
    )

    return build_instrumentation_plan(), default_fmeca_entries()


def self_check(
    *,
    registry: Optional[RuleRegistry] = None,
    options: Optional[AnalysisOptions] = None,
) -> AnalysisReport:
    """Analyse the arrestor's Table-4 instrumentation; expected clean."""
    plan, fmeca = build_default_target()
    return analyze_plan(plan, fmeca, registry=registry, options=options)


def check_all_targets(
    *,
    registry: Optional[RuleRegistry] = None,
    options: Optional[AnalysisOptions] = None,
) -> Dict[str, AnalysisReport]:
    """Lint every registered target's shipped plan; all expected clean.

    Returns ``{target name: report}`` in registry order, so CI can both
    gate on the aggregate and point at the offending workload.
    """
    from repro.targets import get_target, target_names

    reports: Dict[str, AnalysisReport] = {}
    for name in target_names():
        plan, fmeca = get_target(name).lint_target()
        reports[name] = analyze_plan(plan, fmeca, registry=registry, options=options)
    return reports
