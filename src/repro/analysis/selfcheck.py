"""Self-check: lint the shipped targets' own instrumentation.

The repository ships a full Section-2.3 outcome for every registered
workload — an instrumentation plan plus its FMECA table, exposed through
:meth:`repro.targets.base.Target.lint_target`.  Linting them is both a
regression guard for the shipped configurations and the reference
example of plans the analyser considers clean; ``python -m
repro.analysis`` runs the arrestor by default, ``--all-targets`` sweeps
the whole registry, and ``make lint`` wires the sweep into CI.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.process import FmecaEntry, InstrumentationPlan

from repro.analysis.diagnostics import AnalysisOptions, AnalysisReport
from repro.analysis.engine import analyze_plan
from repro.analysis.registry import RuleRegistry

__all__ = [
    "build_default_target",
    "self_check",
    "check_all_targets",
    "check_snapshot_determinism",
]


def build_default_target() -> Tuple[InstrumentationPlan, Tuple[FmecaEntry, ...]]:
    """The arrestor's own plan + FMECA table (the CLI's default target)."""
    from repro.arrestor.instrumentation import (
        build_instrumentation_plan,
        default_fmeca_entries,
    )

    return build_instrumentation_plan(), default_fmeca_entries()


def self_check(
    *,
    registry: Optional[RuleRegistry] = None,
    options: Optional[AnalysisOptions] = None,
) -> AnalysisReport:
    """Analyse the arrestor's Table-4 instrumentation; expected clean."""
    plan, fmeca = build_default_target()
    return analyze_plan(plan, fmeca, registry=registry, options=options)


def check_all_targets(
    *,
    registry: Optional[RuleRegistry] = None,
    options: Optional[AnalysisOptions] = None,
    source: bool = False,
) -> Dict[str, AnalysisReport]:
    """Lint every registered target's shipped plan; all expected clean.

    Returns ``{target name: report}`` in registry order, so CI can both
    gate on the aggregate and point at the offending workload.  With
    *source* the EA4xx/EA5xx source-level pass (see
    :func:`~repro.analysis.engine.analyze_target_source`) runs per
    target and its findings are merged into each report.
    """
    from repro.analysis.engine import analyze_target_source
    from repro.targets import get_target, target_names

    reports: Dict[str, AnalysisReport] = {}
    for name in target_names():
        target = get_target(name)
        plan, fmeca = target.lint_target()
        report = analyze_plan(plan, fmeca, registry=registry, options=options)
        if source:
            report = report.merged(
                analyze_target_source(target, registry=registry, options=options)
            )
        reports[name] = report
    return reports


def check_snapshot_determinism(name: str) -> Optional[str]:
    """Verify snapshot-restored runs match cold runs for one target.

    Executes the same injected experiment three ways — cold boot,
    snapshot-miss (capture then restore), snapshot-hit (pure restore
    through the prefix fast-forward path) — and compares the full
    :class:`~repro.targets.base.RunResult` of each.  Returns ``None``
    when they are identical (or the target opts out of snapshots), else
    a one-line description of the divergence.  ``--all-targets`` runs
    this per registered workload, so ``make lint`` also guards the
    dynamic equivalence the snapshot layer promises, not just the static
    plans.
    """
    from repro.injection.fic import CampaignController
    from repro.targets import clear_cache, get_target

    target = get_target(name)
    if not target.supports_snapshots():
        return None  # harness reverts to reboot-per-run; nothing to compare
    case = target.test_cases()[0]
    error = target.e1_error_set()[0]
    start_ms = 1000
    clear_cache()
    cold = CampaignController(
        target=target, snapshots=False, injection_start_ms=start_ms
    )
    warm = CampaignController(
        target=target, snapshots=True, injection_start_ms=start_ms
    )
    reference = cold.run_injection(error, case).result
    for label in ("snapshot-miss", "snapshot-hit"):
        result = warm.run_injection(error, case).result
        if result != reference:
            return (
                f"{label} run diverged from the cold run for error "
                f"{error.name!r} (case m={case.mass_kg}, v={case.velocity_mps})"
            )
    return None
