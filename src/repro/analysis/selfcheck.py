"""Self-check: lint the arresting system's own instrumentation.

The repository ships a full Section-2.3 outcome for the target system —
:func:`repro.arrestor.instrumentation.build_instrumentation_plan` plus
its FMECA table.  Linting it is both a regression guard for the arrestor
configuration and the reference example of a plan the analyser considers
clean; ``python -m repro.analysis`` runs it by default and ``make lint``
wires it into CI.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.process import FmecaEntry, InstrumentationPlan

from repro.analysis.diagnostics import AnalysisOptions, AnalysisReport
from repro.analysis.engine import analyze_plan
from repro.analysis.registry import RuleRegistry

__all__ = ["build_default_target", "self_check"]


def build_default_target() -> Tuple[InstrumentationPlan, Tuple[FmecaEntry, ...]]:
    """The arrestor's own plan + FMECA table (the CLI's default target)."""
    from repro.arrestor.instrumentation import (
        build_instrumentation_plan,
        default_fmeca_entries,
    )

    return build_instrumentation_plan(), default_fmeca_entries()


def self_check(
    *,
    registry: Optional[RuleRegistry] = None,
    options: Optional[AnalysisOptions] = None,
) -> AnalysisReport:
    """Analyse the arrestor's Table-4 instrumentation; expected clean."""
    plan, fmeca = build_default_target()
    return analyze_plan(plan, fmeca, registry=registry, options=options)
