"""Diagnostic records and reports of the assertion linter.

The analyser never executes the system under analysis; it inspects
parameter sets, instrumentation plans and monitor wiring and reports what
it finds as :class:`Diagnostic` records — one finding per record, each
carrying the rule id that produced it (``EA101`` ...), a severity, the
subject (usually a signal name) and a fix hint.  A whole analysis run is
an :class:`AnalysisReport`.

Severities follow the usual linter convention:

* ``error`` — the configuration is broken: the assertion cannot be built,
  or a service-critical signal is left unmonitored.  Errors make the CLI
  exit non-zero.
* ``warning`` — the configuration runs but detects less than it appears
  to (vacuous parameters, coverage holes).
* ``info`` — stylistic or informational findings.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = [
    "Severity",
    "Diagnostic",
    "Finding",
    "AnalysisReport",
    "AnalysisOptions",
]


class Severity(enum.Enum):
    """Severity of one diagnostic, ordered ``ERROR > WARNING > INFO``."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 2, "warning": 1, "info": 0}[self.value]

    def __lt__(self, other: "Severity") -> bool:
        if not isinstance(other, Severity):
            return NotImplemented
        return self.rank < other.rank

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls(text.lower())
        except ValueError:
            valid = ", ".join(s.value for s in cls)
            raise ValueError(f"unknown severity {text!r}; valid: {valid}") from None


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analyser.

    ``file`` and ``line`` locate the finding in target source when the
    producing rule works at source level (the EA4xx/EA5xx packs); the
    parameter/plan rules have no source location and leave them ``None``.
    """

    rule_id: str
    severity: Severity
    subject: str
    message: str
    hint: Optional[str] = None
    file: Optional[str] = None
    line: Optional[int] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "subject": self.subject,
            "message": self.message,
            "hint": self.hint,
            "file": self.file,
            "line": self.line,
        }

    @property
    def location(self) -> Optional[str]:
        """``path:line`` when the finding carries a source location."""
        if self.file is None:
            return None
        if self.line is None:
            return self.file
        return f"{self.file}:{self.line}"

    def format(self) -> str:
        line = f"{self.rule_id} {self.severity.value:<7} {self.subject}: {self.message}"
        location = self.location
        if location:
            line = f"{location}: {line}"
        if self.hint:
            line += f"\n    hint: {self.hint}"
        return line


@dataclasses.dataclass(frozen=True)
class Finding:
    """What a rule's check function yields.

    The engine stamps the rule id and default severity onto each finding
    to build the :class:`Diagnostic`; a rule may override the severity per
    finding (e.g. escalate when the defect is certain).
    """

    subject: str
    message: str
    hint: Optional[str] = None
    severity: Optional[Severity] = None
    file: Optional[str] = None
    line: Optional[int] = None


@dataclasses.dataclass(frozen=True)
class AnalysisOptions:
    """Thresholds the coverage and completeness rules evaluate against.

    ``critical_rpn``
        FMECA risk-priority-number at or above which an unmonitored
        signal is an error (rule EA201).
    ``pds_floor``
        Minimum acceptable static ``Pds`` estimate per assertion (EA301).
    ``pem_floor``
        Minimum acceptable RPN-weighted share of criticality covered by
        the plan — the static surrogate for the Section-2.4 ``Pem``
        (EA302).
    ``word_values``
        Size of the corrupted-value space the ``Pds`` surrogate assumes;
        the paper's target stores every signal in a 16-bit word.
    ``injection_period_ms``
        The campaign's injection period; the source-level placement rule
        EA401 flags post-wrap checks whose wrap modulus divides it (the
        phase-lock idiom: every injected corruption is folded back into
        the legal domain before the check runs).
    ``fingerprint_exempt``
        Module-name prefixes the fingerprint-completeness rule EA504
        neither requires in ``fingerprint_sources()`` nor walks further.
        Defaults: the observability layer (result-neutral by the golden
        trace harness), the target registry (pure dispatch — covering
        it would weld every target's result cache to every workload)
        and the analysis package itself (the linter never runs during a
        campaign).
    """

    critical_rpn: int = 100
    pds_floor: float = 0.9
    pem_floor: float = 0.8
    word_values: int = 1 << 16
    injection_period_ms: int = 20
    fingerprint_exempt: Tuple[str, ...] = (
        "repro.obs",
        "repro.targets.registry",
        "repro.analysis",
    )

    def __post_init__(self) -> None:
        if self.critical_rpn < 1:
            raise ValueError(f"critical_rpn must be >= 1, got {self.critical_rpn}")
        for name in ("pds_floor", "pem_floor"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.word_values < 2:
            raise ValueError(f"word_values must be >= 2, got {self.word_values}")
        if self.injection_period_ms < 1:
            raise ValueError(
                f"injection_period_ms must be >= 1, got {self.injection_period_ms}"
            )
        object.__setattr__(self, "fingerprint_exempt", tuple(self.fingerprint_exempt))


class AnalysisReport:
    """An ordered collection of diagnostics with linter-style accessors."""

    __slots__ = ("diagnostics",)

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()) -> None:
        self.diagnostics: Tuple[Diagnostic, ...] = tuple(diagnostics)

    # -- verdicts ----------------------------------------------------------

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def infos(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.INFO]

    @property
    def ok(self) -> bool:
        """Whether the configuration passed (no error-severity findings)."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """Whether the analyser found nothing at all."""
        return not self.diagnostics

    # -- queries ---------------------------------------------------------

    def by_rule(self) -> Dict[str, List[Diagnostic]]:
        grouped: Dict[str, List[Diagnostic]] = {}
        for diag in self.diagnostics:
            grouped.setdefault(diag.rule_id, []).append(diag)
        return grouped

    def for_subject(self, subject: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.subject == subject]

    def rule_ids(self) -> List[str]:
        return sorted({d.rule_id for d in self.diagnostics})

    def merged(self, other: "AnalysisReport") -> "AnalysisReport":
        return AnalysisReport(self.diagnostics + other.diagnostics)

    # -- rendering ---------------------------------------------------------

    def format_text(self) -> str:
        """Human-readable rendering, most severe first."""
        if not self.diagnostics:
            return "no findings"
        ordered = sorted(
            self.diagnostics,
            key=lambda d: (-d.severity.rank, d.rule_id, d.subject),
        )
        lines = [diag.format() for diag in ordered]
        lines.append(
            f"{len(self.diagnostics)} finding(s): {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s), {len(self.infos)} note(s)"
        )
        return "\n".join(lines)

    def to_dicts(self) -> List[Dict[str, object]]:
        return [d.to_dict() for d in self.diagnostics]

    def to_json(self, indent: Optional[int] = 2) -> str:
        payload = {
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "infos": len(self.infos),
            "diagnostics": self.to_dicts(),
        }
        return json.dumps(payload, indent=indent)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __repr__(self) -> str:
        return (
            f"AnalysisReport({len(self.errors)} errors, "
            f"{len(self.warnings)} warnings, {len(self.infos)} infos)"
        )
