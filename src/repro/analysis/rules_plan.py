"""Plan-completeness rule pack (EA2xx).

The Section-2.3 process is only as good as its outcome: an
:class:`~repro.core.process.InstrumentationPlan` that skips a critical
signal, wires two mechanisms to one id, or pairs a signal class with the
wrong kind of parameters caps ``Pdetect`` before the system ever runs.
These rules cross-check the plan against its signal inventory and the
FMECA table.

========  ========  ==============================================================
rule id   severity  finding
========  ========  ==============================================================
EA201     error     FMECA-critical signal (RPN >= ``critical_rpn``) with no
                    planned assertion
EA202     warning   signal on no pathway to any system output (dead end in the
                    dataflow graph)
EA203     warning   signal produced but consumed by no module
EA204     error     two planned assertions sharing one monitor id
EA205     error     planned class contradicts the declared parameter type or
                    the Table-1 template the parameters actually satisfy
EA206     info      monitored signal absent from the FMECA table
========  ========  ==============================================================
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.core.classes import SignalClass
from repro.core.parameters import (
    ContinuousParams,
    DiscreteParams,
    ModalParameterSet,
    classify_continuous,
)
from repro.core.process import InstrumentationPlan

from repro.analysis.diagnostics import Finding, Severity
from repro.analysis.registry import RuleContext, RuleRegistry

__all__ = ["PACK", "register"]

PACK = "plan-completeness"


def _plan(ctx: RuleContext) -> InstrumentationPlan:
    assert ctx.plan is not None
    return ctx.plan


def check_unmonitored_critical(ctx: RuleContext) -> Iterable[Finding]:
    """Every FMECA-critical signal needs a planned assertion."""
    plan = _plan(ctx)
    worst: Dict[str, int] = {}
    for entry in ctx.fmeca:
        worst[entry.signal] = max(worst.get(entry.signal, 0), entry.rpn)
    for signal, rpn in sorted(worst.items()):
        if rpn >= ctx.options.critical_rpn and signal not in plan:
            yield Finding(
                signal,
                f"FMECA ranks this signal critical (RPN {rpn} >= "
                f"{ctx.options.critical_rpn}) but the plan monitors it "
                f"nowhere; errors there contribute nothing to Pdetect",
                hint="plan an assertion for the signal, or justify and record "
                "why its criticality is acceptable unmonitored",
            )


def check_dead_end_signals(ctx: RuleContext) -> Iterable[Finding]:
    """A signal that can influence no output is dead configuration."""
    plan = _plan(ctx)
    inventory = plan.inventory
    if not inventory.outputs:
        return
    for decl in inventory.signals:
        if decl.kind == "output":
            continue
        if not inventory.influence_on_outputs(decl.name):
            yield Finding(
                decl.name,
                "no pathway leads from this signal to any system output; "
                "either the dataflow declaration is incomplete or the signal "
                "is dead weight in the inventory",
                hint="declare the missing consumers, or remove the signal "
                "from the inventory",
            )


def check_unconsumed_signals(ctx: RuleContext) -> Iterable[Finding]:
    """A produced-but-never-consumed signal cannot matter downstream."""
    plan = _plan(ctx)
    for decl in plan.inventory.signals:
        if not decl.consumers:
            yield Finding(
                decl.name,
                f"module {decl.producer!r} produces this signal but no module "
                f"consumes it",
                hint="declare the consumers, or drop the signal",
            )


def check_duplicate_monitor_ids(ctx: RuleContext) -> Iterable[Finding]:
    """Monitor ids must be unique or detections become unattributable."""
    plan = _plan(ctx)
    by_id: Dict[str, List[str]] = {}
    for planned in plan:
        by_id.setdefault(planned.monitor_id, []).append(planned.signal)
    for monitor_id, signals in sorted(by_id.items()):
        if len(signals) > 1:
            yield Finding(
                monitor_id,
                f"monitor id {monitor_id!r} is assigned to "
                f"{len(signals)} signals ({', '.join(sorted(signals))}); "
                f"detection events and per-mechanism selection become "
                f"ambiguous",
                hint="give each planned assertion a unique monitor id",
            )


def _mismatch(declared: SignalClass, params, mode: str = "") -> str:
    where = f" (mode {mode})" if mode else ""
    if isinstance(params, ContinuousParams):
        actual = classify_continuous(params)
        if declared.is_continuous and actual is declared:
            return ""
        if not declared.is_continuous:
            return (
                f"declared {declared.value} (discrete) but the parameters"
                f"{where} are a Pcont"
            )
        actual_name = actual.value if actual is not None else "no template"
        return (
            f"declared {declared.value} but the Pcont{where} satisfies "
            f"{actual_name}"
        )
    if isinstance(params, DiscreteParams):
        if not declared.is_discrete:
            return (
                f"declared {declared.value} (continuous) but the parameters"
                f"{where} are a Pdisc"
            )
        actual = params.classify()
        if actual is declared:
            return ""
        return (
            f"declared {declared.value} but the Pdisc{where} describes "
            f"{actual.value}"
        )
    return f"unsupported parameter object{where}: {type(params).__name__}"


def check_class_params_mismatch(ctx: RuleContext) -> Iterable[Finding]:
    """The declared class must match what the parameters actually satisfy."""
    plan = _plan(ctx)
    for planned in plan:
        params = planned.params
        if isinstance(params, ModalParameterSet):
            problems = [
                _mismatch(planned.signal_class, params.params_for(mode), repr(mode))
                for mode in sorted(params.modes, key=repr)
            ]
        else:
            problems = [_mismatch(planned.signal_class, params)]
        for problem in filter(None, problems):
            yield Finding(
                planned.signal,
                f"{problem}; step 8 (build_monitor_bank) will reject the plan",
                hint="fix the classification or the parameters so the Table-1 "
                "template matches",
            )


def check_unranked_monitored(ctx: RuleContext) -> Iterable[Finding]:
    """Monitoring a signal the FMECA never ranked deserves a second look."""
    plan = _plan(ctx)
    if not ctx.fmeca:
        return
    ranked = {entry.signal for entry in ctx.fmeca}
    for planned in plan:
        if planned.signal not in ranked:
            yield Finding(
                planned.signal,
                "the plan monitors this signal but the FMECA table never "
                "ranked it; the step-4 criticality argument is missing",
                hint="add an FMECA entry for the signal, or record why it is "
                "monitored without one",
            )


def register(registry: RuleRegistry) -> None:
    """Register the plan-completeness pack into *registry*."""
    from repro.analysis.registry import Rule

    add = registry.add
    add(Rule("EA201", "critical signal unmonitored", Severity.ERROR, "plan",
             check_unmonitored_critical, pack=PACK))
    add(Rule("EA202", "signal influences no output", Severity.WARNING, "plan",
             check_dead_end_signals, pack=PACK))
    add(Rule("EA203", "signal never consumed", Severity.WARNING, "plan",
             check_unconsumed_signals, pack=PACK))
    add(Rule("EA204", "duplicate monitor id", Severity.ERROR, "plan",
             check_duplicate_monitor_ids, pack=PACK))
    add(Rule("EA205", "class/parameter mismatch", Severity.ERROR, "plan",
             check_class_params_mismatch, pack=PACK))
    add(Rule("EA206", "monitored signal not in FMECA", Severity.INFO, "plan",
             check_unranked_monitored, pack=PACK))
