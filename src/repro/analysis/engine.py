"""Analysis drivers: run registered rules over parameters and plans.

Two entry points mirror the two things worth linting before deployment:

* :func:`analyze_params` — one ``Pcont``/``Pdisc``/modal set in
  isolation (the step-6 review);
* :func:`analyze_plan` — a whole
  :class:`~repro.core.process.InstrumentationPlan` with its inventory and
  FMECA table (the step-7 review), which also runs the parameter rules
  on every planned assertion.

Both are pure functions of their inputs: nothing is executed, no monitor
is instantiated, and the system under analysis is never imported.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

from repro.core.parameters import ContinuousParams, DiscreteParams, ModalParameterSet
from repro.core.process import FmecaEntry, InstrumentationPlan

from repro.analysis.diagnostics import (
    AnalysisOptions,
    AnalysisReport,
    Diagnostic,
    Finding,
)
from repro.analysis.registry import Rule, RuleContext, RuleRegistry, default_registry

__all__ = ["analyze_params", "analyze_plan", "analyze_target_source"]

Params = Union[ContinuousParams, DiscreteParams, ModalParameterSet]


def _run_rule(rule: Rule, ctx: RuleContext, out: List[Diagnostic]) -> None:
    for finding in rule.check(ctx):
        if not isinstance(finding, Finding):
            raise TypeError(
                f"rule {rule.id} yielded {type(finding).__name__}; "
                f"check functions must yield Finding objects"
            )
        severity = finding.severity if finding.severity is not None else rule.severity
        out.append(
            Diagnostic(
                rule_id=rule.id,
                severity=severity,
                subject=finding.subject or ctx.subject,
                message=finding.message,
                hint=finding.hint,
                file=finding.file,
                line=finding.line,
            )
        )


def _scope_of(params: Params) -> str:
    if isinstance(params, ContinuousParams):
        return "continuous"
    if isinstance(params, DiscreteParams):
        return "discrete"
    if isinstance(params, ModalParameterSet):
        return "modal"
    raise TypeError(
        f"cannot analyse parameters of type {type(params).__name__}; "
        f"expected ContinuousParams, DiscreteParams or ModalParameterSet"
    )


def _analyze_params_into(
    params: Params,
    subject: str,
    registry: RuleRegistry,
    options: AnalysisOptions,
    out: List[Diagnostic],
) -> None:
    scope = _scope_of(params)
    ctx = RuleContext(options=options, subject=subject, params=params)
    for rule in registry.for_scope(scope):
        _run_rule(rule, ctx, out)
    if isinstance(params, ModalParameterSet):
        # Each mode's parameter set is a full Pcont/Pdisc in its own right.
        for mode in sorted(params.modes, key=repr):
            _analyze_params_into(
                params.params_for(mode),
                f"{subject}[mode={mode!r}]",
                registry,
                options,
                out,
            )


def analyze_params(
    params: Params,
    subject: str = "params",
    *,
    registry: Optional[RuleRegistry] = None,
    options: Optional[AnalysisOptions] = None,
) -> AnalysisReport:
    """Lint one parameter set (the Section-2.3 step-6 outcome).

    Modal sets are analysed twice over: once by the modal-scope rules on
    the set as a whole, then per mode by the continuous/discrete rules,
    with the mode spliced into the subject (``"flow[mode='idle']"``).
    """
    registry = registry if registry is not None else default_registry()
    options = options if options is not None else AnalysisOptions()
    diagnostics: List[Diagnostic] = []
    _analyze_params_into(params, subject, registry, options, diagnostics)
    return AnalysisReport(diagnostics)


def analyze_plan(
    plan: InstrumentationPlan,
    fmeca: Iterable[FmecaEntry] = (),
    *,
    registry: Optional[RuleRegistry] = None,
    options: Optional[AnalysisOptions] = None,
) -> AnalysisReport:
    """Lint a whole instrumentation plan (the step-7 outcome).

    Runs the parameter packs on every planned assertion's parameters,
    then the plan-scope packs (completeness + coverage) against the plan,
    its inventory and the *fmeca* table.  Rules needing FMECA data stay
    silent when none is supplied.
    """
    registry = registry if registry is not None else default_registry()
    options = options if options is not None else AnalysisOptions()
    diagnostics: List[Diagnostic] = []
    for planned in plan:
        _analyze_params_into(
            planned.params, planned.signal, registry, options, diagnostics
        )
    ctx = RuleContext(options=options, subject="plan", plan=plan, fmeca=tuple(fmeca))
    for rule in registry.for_scope("plan"):
        _run_rule(rule, ctx, diagnostics)
    return AnalysisReport(diagnostics)


def analyze_target_source(
    target,
    *,
    registry: Optional[RuleRegistry] = None,
    options: Optional[AnalysisOptions] = None,
    source_model=None,
) -> AnalysisReport:
    """Run the source-scope rules (EA4xx/EA5xx) over one target.

    Parses the modules named by ``target.fingerprint_sources()`` (plus
    their intra-repository import closure) into a
    :class:`~repro.analysis.source.SourceModel` — nothing is imported or
    executed — and checks placement (dataflow) and drift against the
    target's shipped plan.  Pass *source_model* to reuse a prebuilt
    model (the fixture tests do).
    """
    from repro.analysis.source import build_source_model

    registry = registry if registry is not None else default_registry()
    options = options if options is not None else AnalysisOptions()
    if source_model is None:
        source_model = build_source_model(
            target, exempt=options.fingerprint_exempt
        )
    plan, fmeca = target.lint_target()
    ctx = RuleContext(
        options=options,
        subject=getattr(target, "name", "target"),
        plan=plan,
        fmeca=tuple(fmeca),
        target=target,
        source=source_model,
    )
    diagnostics: List[Diagnostic] = []
    for rule in registry.for_scope("source"):
        _run_rule(rule, ctx, diagnostics)
    return AnalysisReport(diagnostics)
