"""Coverage rule pack (EA3xx) — the Section-2.4 model, applied statically.

The paper decomposes total detection probability as::

    Pdetect = (Pen * Pprop + Pem) * Pds

``Pds`` (detection given the error sits in a monitored signal) and
``Pem`` (the chance an error lands in a monitored signal at all) can both
be *bounded before running anything*: ``Pds`` from the fraction of the
word's value space an assertion accepts, ``Pem`` from the share of FMECA
criticality the plan covers.  These rules flag placements whose static
bound is already too low — the configurations Section 5.1 predicts will
let errors escape.

========  ========  ==============================================================
rule id   severity  finding
========  ========  ==============================================================
EA301     warning   per-assertion static ``Pds`` estimate below ``pds_floor``
EA302     warning   RPN-weighted monitored share of criticality (the static
                    ``Pem`` surrogate) below ``pem_floor``
EA303     warning   system output with no monitored signal anywhere on its
                    input pathways (an unguarded pathway caps ``Pdetect``)
========  ========  ==============================================================
"""

from __future__ import annotations

from typing import Dict, Iterable, Union

from repro.core.parameters import ContinuousParams, DiscreteParams, ModalParameterSet
from repro.core.process import InstrumentationPlan

from repro.analysis.diagnostics import Finding, Severity
from repro.analysis.registry import RuleContext, RuleRegistry

__all__ = ["PACK", "estimate_pds", "register"]

PACK = "coverage"

Params = Union[ContinuousParams, DiscreteParams, ModalParameterSet]


def estimate_pds(params: Params, word_values: int = 1 << 16) -> float:
    """Static ``Pds`` surrogate: detected fraction of uniform value corruption.

    Models the paper's SWIFI error as replacing the signal's stored word
    with a value uniform over its *word_values* representable values (the
    Section-5.1 view: high-order bit flips leave the domain and are
    caught, low-order flips stay inside the acceptance window and
    escape).  The assertion accepts a corrupted sample only if it passes
    both the domain test and, given a reference value, the tightest
    change test, so the accepted window is bounded by::

        continuous:  min(span + 1, rmax_incr + rmax_decr + 1)   (x2 if wrap)
        discrete:    |T(d)| averaged over d  (|D| for random signals)

    and ``Pds ~ 1 - accepted / word_values``.  For a
    :class:`~repro.core.parameters.ModalParameterSet` the *weakest* mode
    is reported, since an error can strike in any mode.
    """
    if isinstance(params, ModalParameterSet):
        return min(
            estimate_pds(params.params_for(mode), word_values)
            for mode in params.modes
        )
    if isinstance(params, ContinuousParams):
        in_domain = params.span + 1
        window = params.rmax_incr + params.rmax_decr + 1
        if params.wrap:
            window *= 2
        accepted = min(in_domain, window)
    elif isinstance(params, DiscreteParams):
        if params.transitions is not None:
            sizes = [len(targets) for targets in params.transitions.values()]
            accepted = max(sum(sizes) / len(sizes), 1.0)
        else:
            accepted = len(params.domain)
    else:
        raise TypeError(f"cannot estimate Pds for {type(params).__name__}")
    return max(0.0, 1.0 - accepted / word_values)


def _plan(ctx: RuleContext) -> InstrumentationPlan:
    assert ctx.plan is not None
    return ctx.plan


def check_low_pds_placement(ctx: RuleContext) -> Iterable[Finding]:
    """Assertions whose acceptance window is too wide to detect much."""
    plan = _plan(ctx)
    floor = ctx.options.pds_floor
    for planned in plan:
        try:
            pds = estimate_pds(planned.params, ctx.options.word_values)
        except TypeError:
            continue  # EA205 reports unsupported parameter objects
        if pds < floor:
            yield Finding(
                planned.signal,
                f"static Pds estimate {pds:.3f} is below the floor "
                f"{floor:.3f}: the assertion accepts so much of the value "
                f"space that most corruptions pass unnoticed "
                f"(Pdetect = (Pen*Pprop + Pem) * Pds caps accordingly)",
                hint="tighten the domain bounds or rate envelope, or lower "
                "pds_floor if the wide envelope is physically required",
            )


def check_low_plan_reach(ctx: RuleContext) -> Iterable[Finding]:
    """The plan should cover most of the FMECA-established criticality."""
    plan = _plan(ctx)
    if not ctx.fmeca:
        return
    worst: Dict[str, int] = {}
    for entry in ctx.fmeca:
        worst[entry.signal] = max(worst.get(entry.signal, 0), entry.rpn)
    total = sum(worst.values())
    if total == 0:
        return
    covered = sum(rpn for signal, rpn in worst.items() if signal in plan)
    pem_hat = covered / total
    if pem_hat < ctx.options.pem_floor:
        missing = sorted(signal for signal in worst if signal not in plan)
        yield Finding(
            "plan",
            f"the plan covers {pem_hat:.2f} of the RPN-weighted criticality "
            f"(floor {ctx.options.pem_floor:.2f}); in the Section-2.4 model "
            f"this caps Pem and hence Pdetect regardless of how good the "
            f"individual assertions are (unmonitored: {', '.join(missing)})",
            hint="plan assertions for the highest-RPN unmonitored signals",
        )


def check_unguarded_pathways(ctx: RuleContext) -> Iterable[Finding]:
    """Every output's input cone should contain at least one monitor."""
    plan = _plan(ctx)
    inventory = plan.inventory
    monitored = {planned.signal for planned in plan}
    for output in inventory.outputs:
        cone = inventory.upstream_signals(output) | {output}
        if not cone & monitored:
            yield Finding(
                output,
                "no signal on any pathway into this output is monitored; "
                "errors anywhere on those pathways can only be detected by "
                "propagating out of them (Pem = 0 for the whole cone)",
                hint="monitor the output itself or a signal on its pathways",
            )


def register(registry: RuleRegistry) -> None:
    """Register the coverage pack into *registry*."""
    from repro.analysis.registry import Rule

    add = registry.add
    add(Rule("EA301", "low static Pds placement", Severity.WARNING, "plan",
             check_low_pds_placement, pack=PACK))
    add(Rule("EA302", "plan covers too little criticality", Severity.WARNING,
             "plan", check_low_plan_reach, pack=PACK))
    add(Rule("EA303", "unguarded output pathway", Severity.WARNING, "plan",
             check_unguarded_pathways, pack=PACK))
