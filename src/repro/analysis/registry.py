"""Rule model and registry of the assertion linter.

A :class:`Rule` packages one check: an id (``EA101``), a human title, a
default severity, the *scope* it runs in and the check function itself.
Scopes partition the rule set by what a check needs to see:

``continuous`` / ``discrete``
    one ``Pcont`` / ``Pdisc`` parameter set at a time;
``modal``
    a whole :class:`~repro.core.parameters.ModalParameterSet` (its
    per-mode sets are additionally analysed under their own scope);
``plan``
    an :class:`~repro.core.process.InstrumentationPlan` with its
    inventory and (optionally) the FMECA table;
``source``
    a :class:`~repro.analysis.source.SourceModel` def-use graph of the
    target's fingerprinted source modules, alongside the plan and the
    target object (the EA4xx/EA5xx packs).

Users extend the analyser by registering custom rules::

    registry = default_registry()

    @registry.rule("X901", title="no negative domains", scope="continuous",
                   severity=Severity.WARNING, pack="custom")
    def check_no_negative(ctx):
        if ctx.params.smin < 0:
            yield Finding(ctx.subject, "domain extends below zero")

    report = analyze_plan(plan, registry=registry)
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.core.parameters import ContinuousParams, DiscreteParams, ModalParameterSet
from repro.core.process import FmecaEntry, InstrumentationPlan

from repro.analysis.diagnostics import AnalysisOptions, Finding, Severity

__all__ = [
    "SCOPES",
    "RuleContext",
    "Rule",
    "RuleRegistry",
    "default_registry",
]

#: The scopes a rule may declare.
SCOPES = ("continuous", "discrete", "modal", "plan", "source")

Params = Union[ContinuousParams, DiscreteParams, ModalParameterSet]


@dataclasses.dataclass(frozen=True)
class RuleContext:
    """Everything a check function may look at.

    Which fields are populated depends on the rule's scope: parameter
    scopes get ``subject`` + ``params``; the plan scope gets ``plan`` and
    ``fmeca``; the source scope additionally gets ``target`` (the
    :class:`~repro.targets.base.Target` under analysis) and ``source``
    (its :class:`~repro.analysis.source.SourceModel`).  ``options`` is
    always set.
    """

    options: AnalysisOptions
    subject: str = ""
    params: Optional[Params] = None
    plan: Optional[InstrumentationPlan] = None
    fmeca: Tuple[FmecaEntry, ...] = ()
    target: Optional[object] = None
    source: Optional[object] = None


CheckFunction = Callable[[RuleContext], Iterable[Finding]]


@dataclasses.dataclass(frozen=True)
class Rule:
    """One static check of the linter."""

    id: str
    title: str
    severity: Severity
    scope: str
    check: CheckFunction
    pack: str = "custom"

    def __post_init__(self) -> None:
        if not self.id:
            raise ValueError("rule id must be non-empty")
        if self.scope not in SCOPES:
            raise ValueError(f"unknown rule scope {self.scope!r}; valid: {SCOPES}")

    @property
    def description(self) -> str:
        """First line of the check function's docstring, or the title."""
        doc = self.check.__doc__
        if doc:
            return doc.strip().splitlines()[0]
        return self.title


class RuleRegistry:
    """Mutable, ordered collection of rules keyed by rule id."""

    def __init__(self, rules: Iterable[Rule] = ()) -> None:
        self._rules: Dict[str, Rule] = {}
        for rule in rules:
            self.add(rule)

    def add(self, rule: Rule, replace: bool = False) -> Rule:
        """Register *rule*; duplicate ids are rejected unless *replace*."""
        if not replace and rule.id in self._rules:
            raise ValueError(f"a rule with id {rule.id!r} is already registered")
        self._rules[rule.id] = rule
        return rule

    def rule(
        self,
        rule_id: str,
        *,
        title: str,
        scope: str,
        severity: Severity = Severity.WARNING,
        pack: str = "custom",
        replace: bool = False,
    ) -> Callable[[CheckFunction], CheckFunction]:
        """Decorator form of :meth:`add` for check functions."""

        def decorate(check: CheckFunction) -> CheckFunction:
            self.add(
                Rule(rule_id, title, severity, scope, check, pack=pack),
                replace=replace,
            )
            return check

        return decorate

    def remove(self, rule_id: str) -> None:
        del self._rules[rule_id]

    def get(self, rule_id: str) -> Rule:
        return self._rules[rule_id]

    def select(
        self,
        include: Optional[Iterable[str]] = None,
        exclude: Iterable[str] = (),
    ) -> "RuleRegistry":
        """A new registry restricted to *include* minus *exclude* rule ids."""
        wanted = set(include) if include is not None else set(self._rules)
        dropped = set(exclude)
        unknown = (wanted | dropped) - set(self._rules)
        if unknown:
            raise KeyError(f"unknown rule ids: {sorted(unknown)}")
        return RuleRegistry(
            rule
            for rule in self._rules.values()
            if rule.id in wanted and rule.id not in dropped
        )

    def for_scope(self, scope: str) -> List[Rule]:
        """The registered rules of one *scope*, in registration order."""
        if scope not in SCOPES:
            raise ValueError(f"unknown rule scope {scope!r}; valid: {SCOPES}")
        return [rule for rule in self._rules.values() if rule.scope == scope]

    @property
    def ids(self) -> List[str]:
        return list(self._rules)

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules.values())


def default_registry() -> RuleRegistry:
    """A fresh registry holding every built-in rule pack.

    Returns a new instance each time so callers can add or remove rules
    without affecting other users.
    """
    from repro.analysis import (
        rules_coverage,
        rules_dataflow,
        rules_drift,
        rules_params,
        rules_plan,
    )

    registry = RuleRegistry()
    rules_params.register(registry)
    rules_plan.register(registry)
    rules_coverage.register(registry)
    rules_dataflow.register(registry)
    rules_drift.register(registry)
    return registry
