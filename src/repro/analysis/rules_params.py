"""Parameter-vacuity rule pack (EA1xx).

A mis-parameterised assertion is worse than a missing one: it runs, costs
cycles, and silently detects nothing.  These rules inspect a single
``Pcont``/``Pdisc``/:class:`~repro.core.parameters.ModalParameterSet` and
flag configurations whose Table-2/Table-3 tests are vacuous, unbuildable
or degenerate.

========  ========  ==============================================================
rule id   severity  finding
========  ========  ==============================================================
EA101     warning   rate envelope at least as wide as the domain span (rate
                    tests 3a/3b can never fire on in-domain samples)
EA102     error     parameters fit no Table-1 template (assertion unbuildable)
EA103     warning   wrap-around enabled on a random signal (Table 1 reserves
                    wrap for the monotonic classes; on a random signal it only
                    widens the acceptance region)
EA104     warning   transition states unreachable from every other state
EA105     warning   absorbing transition states (empty or self-only successors)
EA106     warning   modal set with modes sharing identical parameters
EA107     info      modal set with a single mode
EA108     warning   random signal that cannot legally hold its value
EA109     warning   transition relation allowing every state from every state
                    (sequential test equivalent to the random-discrete test)
========  ========  ==============================================================
"""

from __future__ import annotations

from typing import Iterable, List

from repro.core.parameters import (
    ContinuousParams,
    DiscreteParams,
    ModalParameterSet,
    classify_continuous,
)

from repro.analysis.diagnostics import Finding, Severity
from repro.analysis.registry import RuleContext, RuleRegistry

__all__ = ["PACK", "register"]

PACK = "parameter-vacuity"


def _continuous(ctx: RuleContext) -> ContinuousParams:
    assert isinstance(ctx.params, ContinuousParams)
    return ctx.params


def _discrete(ctx: RuleContext) -> DiscreteParams:
    assert isinstance(ctx.params, DiscreteParams)
    return ctx.params


def _modal(ctx: RuleContext) -> ModalParameterSet:
    assert isinstance(ctx.params, ModalParameterSet)
    return ctx.params


# -- continuous rules -----------------------------------------------------


def check_vacuous_rate_envelope(ctx: RuleContext) -> Iterable[Finding]:
    """Rate bounds wider than the domain span make the rate tests unfireable."""
    p = _continuous(ctx)
    span = p.span
    for direction, rmin, rmax in (
        ("increase", p.rmin_incr, p.rmax_incr),
        ("decrease", p.rmin_decr, p.rmax_decr),
    ):
        if rmax == 0:
            continue  # direction forbidden; nothing vacuous about that
        if rmin == 0 and rmax >= span:
            yield Finding(
                ctx.subject,
                f"{direction} envelope [0, {rmax}] covers the whole domain span "
                f"({span}): any in-domain {direction} passes, so the Table-2 "
                f"rate test can never fire",
                hint=f"tighten rmax_{direction[:4]} below the domain span, or "
                f"drop the rate test and monitor bounds only",
            )


def check_no_template(ctx: RuleContext) -> Iterable[Finding]:
    """Parameters fitting no Table-1 template cannot instantiate an assertion."""
    p = _continuous(ctx)
    if classify_continuous(p) is None:
        yield Finding(
            ctx.subject,
            "parameters fit no Table-1 template (both directions forbidden: "
            "a frozen signal); build_assertion() will reject them",
            hint="allow change in at least one direction, or model the signal "
            "as discrete with a one-value domain",
        )


def check_wrap_on_random(ctx: RuleContext) -> Iterable[Finding]:
    """Wrap-around on a random signal only widens the acceptance region."""
    p = _continuous(ctx)
    if p.wrap and p.is_random():
        yield Finding(
            ctx.subject,
            "wrap-around is enabled on a random signal; Table 1 reserves wrap "
            "for monotonic counters — on a random signal every rejected change "
            "gets a second chance through the domain edge, weakening detection",
            hint="disable wrap, or reclassify the signal as a monotonic counter",
        )


def check_restless_random(ctx: RuleContext) -> Iterable[Finding]:
    """A random signal with both minimum rates positive can never hold still."""
    p = _continuous(ctx)
    if p.is_random() and p.rmin_incr > 0 and p.rmin_decr > 0:
        yield Finding(
            ctx.subject,
            f"both minimum rates are positive (rmin_incr={p.rmin_incr}, "
            f"rmin_decr={p.rmin_decr}): a sample equal to the reference fails "
            f"tests 3c/4c/5c, so any held value is flagged as an error",
            hint="set at least one minimum rate to 0 unless the signal is "
            "guaranteed to change between consecutive tests",
        )


# -- discrete rules -------------------------------------------------------


def check_unreachable_states(ctx: RuleContext) -> Iterable[Finding]:
    """States no transition leads to are dead weight in T(d)."""
    p = _discrete(ctx)
    if p.transitions is None:
        return
    reachable = set()
    for targets in p.transitions.values():
        reachable.update(targets)
    unreachable = sorted(map(repr, p.domain - reachable))
    if unreachable:
        yield Finding(
            ctx.subject,
            f"state(s) {', '.join(unreachable)} are the target of no "
            f"transition: they can only ever appear as initial values, and "
            f"their outgoing transitions are exercised at most once",
            hint="remove the states from D, or add the missing transitions",
        )


def check_absorbing_states(ctx: RuleContext) -> Iterable[Finding]:
    """Absorbing states trap the monitored signal: every exit is flagged."""
    p = _discrete(ctx)
    if p.transitions is None or len(p.domain) < 2:
        return
    absorbing: List[str] = []
    for state, targets in p.transitions.items():
        if not targets - {state}:
            absorbing.append(repr(state))
    if absorbing:
        yield Finding(
            ctx.subject,
            f"state(s) {', '.join(sorted(absorbing))} have no successor other "
            f"than themselves: once entered, every subsequent change of the "
            f"signal is reported as an error",
            hint="add outgoing transitions, or confirm the state is a genuine "
            "terminal state of the signal",
        )


def check_vacuous_transitions(ctx: RuleContext) -> Iterable[Finding]:
    """T(d) = D everywhere degenerates the sequential test to s in D."""
    p = _discrete(ctx)
    if p.transitions is None or len(p.domain) < 2:
        return
    if all(targets == p.domain for targets in p.transitions.values()):
        yield Finding(
            ctx.subject,
            "every state may transition to every state: the Table-3 "
            "sequential test s in T(s') is equivalent to the domain test "
            "s in D, so the transition relation detects nothing extra",
            hint="declare the signal Di/Ra (random discrete) instead, or "
            "restrict the transition relation",
        )


# -- modal rules ----------------------------------------------------------


def check_identical_modes(ctx: RuleContext) -> Iterable[Finding]:
    """Modes with identical parameter sets make the mode split vacuous."""
    modal = _modal(ctx)
    modes = sorted(modal.modes, key=repr)
    duplicates = []
    for i, mode in enumerate(modes):
        for other in modes[i + 1 :]:
            if modal.params_for(mode) == modal.params_for(other):
                duplicates.append(f"{mode!r} = {other!r}")
    if duplicates:
        yield Finding(
            ctx.subject,
            f"modes with identical parameter sets: {', '.join(duplicates)}; "
            f"switching between them changes nothing about the assertion",
            hint="merge the duplicate modes, or differentiate their parameters",
        )


def check_single_mode(ctx: RuleContext) -> Iterable[Finding]:
    """A one-mode modal set is a plain parameter set with extra machinery."""
    modal = _modal(ctx)
    if len(modal.modes) == 1:
        (only,) = modal.modes
        yield Finding(
            ctx.subject,
            f"modal parameter set has the single mode {only!r}; the per-mode "
            f"indirection adds state without adding constraints",
            hint="use the mode's Pcont/Pdisc directly",
        )


def register(registry: RuleRegistry) -> None:
    """Register the parameter-vacuity pack into *registry*."""
    add = registry.add
    from repro.analysis.registry import Rule

    add(Rule("EA101", "vacuous rate envelope", Severity.WARNING, "continuous",
             check_vacuous_rate_envelope, pack=PACK))
    add(Rule("EA102", "parameters fit no Table-1 template", Severity.ERROR,
             "continuous", check_no_template, pack=PACK))
    add(Rule("EA103", "wrap-around on a random signal", Severity.WARNING,
             "continuous", check_wrap_on_random, pack=PACK))
    add(Rule("EA104", "unreachable transition states", Severity.WARNING,
             "discrete", check_unreachable_states, pack=PACK))
    add(Rule("EA105", "absorbing transition states", Severity.WARNING,
             "discrete", check_absorbing_states, pack=PACK))
    add(Rule("EA106", "modes with identical parameters", Severity.WARNING,
             "modal", check_identical_modes, pack=PACK))
    add(Rule("EA107", "single-mode modal set", Severity.INFO, "modal",
             check_single_mode, pack=PACK))
    add(Rule("EA108", "random signal cannot hold its value", Severity.WARNING,
             "continuous", check_restless_random, pack=PACK))
    add(Rule("EA109", "vacuous transition relation", Severity.WARNING,
             "discrete", check_vacuous_transitions, pack=PACK))
