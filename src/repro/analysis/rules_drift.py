"""Configuration-drift rules (EA501-EA505).

The instrumentation plan, the memory map, the target's
``monitored_signals`` surface and the ``fingerprint_sources()`` list all
describe the same configuration from different angles; when they drift
apart the campaign silently measures something other than what the plan
claims.  These rules cross-check the
:class:`~repro.analysis.source.SourceModel` against the plan and the
target object:

* **EA501** — a signal the memory map declares as monitored
  (``signal_variable`` / ``MONITORED_SIGNALS``) is missing from the
  instrumentation plan;
* **EA502** — a planned signal does not exist in any analysed memory
  map: the plan monitors a phantom;
* **EA503** — ``Target.monitored_signals`` disagrees with the plan's
  signal list (the campaign's E1 error set and the plan would diverge);
* **EA504** — a module the target source transitively imports is covered
  by no ``fingerprint_sources()`` entry.  This is the stale-cache bug
  class of the incremental result store: edits to the uncovered module
  change behaviour without invalidating cached campaign results;
* **EA505** — a ``fingerprint_sources()`` entry resolves to no module or
  package: the store hashes nothing for it, so the entry is dead weight
  (or a typo hiding a real source).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.analysis.diagnostics import Finding, Severity
from repro.analysis.registry import Rule, RuleContext, RuleRegistry
from repro.analysis.source import SourceModel

__all__ = ["register", "PACK"]

PACK = "source-drift"


def _model(ctx: RuleContext) -> Optional[SourceModel]:
    source = ctx.source
    return source if isinstance(source, SourceModel) else None


def check_memory_signal_unplanned(ctx: RuleContext) -> Iterator[Finding]:
    """A memory-map monitored signal is absent from the plan."""
    model = _model(ctx)
    if model is None or ctx.plan is None:
        return
    planned = set(ctx.plan.signals)
    for memory in model.memories:
        for signal in memory.monitored:
            if signal not in planned:
                yield Finding(
                    signal,
                    f"{memory.class_name} declares the signal as monitored "
                    f"but the instrumentation plan has no assertion for it",
                    hint="plan the assertion or remove the signal from the "
                    "memory map's monitored set",
                    file=memory.file,
                    line=memory.line,
                )


def check_planned_signal_unmapped(ctx: RuleContext) -> Iterator[Finding]:
    """A planned signal exists in no analysed memory map."""
    model = _model(ctx)
    if model is None or ctx.plan is None or not model.memories:
        return
    mapped = set()
    for memory in model.memories:
        mapped.update(memory.monitored)
    for signal in ctx.plan.signals:
        if signal not in mapped:
            memory = model.memories[0]
            yield Finding(
                signal,
                f"the plan monitors a signal that no analysed memory map "
                f"declares (checked {', '.join(m.class_name for m in model.memories)})",
                hint="the plan and the memory layout have drifted apart; "
                "the campaign cannot inject into a signal that has no "
                "memory-map symbol",
                file=memory.file,
                line=memory.line,
            )


def check_target_plan_agreement(ctx: RuleContext) -> Iterator[Finding]:
    """``Target.monitored_signals`` and the plan name the same signals."""
    model = _model(ctx)
    target = ctx.target
    if model is None or ctx.plan is None or target is None:
        return
    try:
        declared = set(target.monitored_signals)
    except Exception:  # pragma: no cover - degenerate target objects
        return
    planned = set(ctx.plan.signals)
    for signal in sorted(declared - planned):
        yield Finding(
            signal,
            "Target.monitored_signals lists the signal but the plan has no "
            "assertion for it — the E1 error set and the plan diverge",
        )
    for signal in sorted(planned - declared):
        yield Finding(
            signal,
            "the plan monitors the signal but Target.monitored_signals does "
            "not list it — the E1 error set and the plan diverge",
        )


def check_fingerprint_completeness(ctx: RuleContext) -> Iterator[Finding]:
    """Every transitively imported module is fingerprint-covered."""
    model = _model(ctx)
    if model is None:
        return
    for record in model.uncovered_imports:
        yield Finding(
            record.module,
            f"{record.importer} imports {record.module}, which no "
            f"fingerprint_sources() entry covers — edits there change run "
            f"behaviour without invalidating cached campaign results",
            hint="add the module (or a covering package) to "
            "fingerprint_sources(), or exempt it via "
            "AnalysisOptions.fingerprint_exempt if it is result-neutral",
            file=record.file,
            line=record.line,
        )


def check_fingerprint_resolvable(ctx: RuleContext) -> Iterator[Finding]:
    """Every fingerprint entry names an existing module or package."""
    model = _model(ctx)
    if model is None:
        return
    for entry in model.unresolved_entries:
        yield Finding(
            entry,
            "fingerprint_sources() names a module that does not resolve to "
            "any source file; the result store hashes nothing for it",
            hint="fix the name or drop the entry",
        )


def register(registry: RuleRegistry) -> None:
    """Register the drift pack into *registry*."""
    registry.add(
        Rule(
            "EA501",
            "memory-map monitored signal missing from the plan",
            Severity.ERROR,
            "source",
            check_memory_signal_unplanned,
            pack=PACK,
        )
    )
    registry.add(
        Rule(
            "EA502",
            "planned signal absent from every memory map",
            Severity.ERROR,
            "source",
            check_planned_signal_unmapped,
            pack=PACK,
        )
    )
    registry.add(
        Rule(
            "EA503",
            "Target.monitored_signals and the plan disagree",
            Severity.ERROR,
            "source",
            check_target_plan_agreement,
            pack=PACK,
        )
    )
    registry.add(
        Rule(
            "EA504",
            "transitively imported module not fingerprint-covered",
            Severity.ERROR,
            "source",
            check_fingerprint_completeness,
            pack=PACK,
        )
    )
    registry.add(
        Rule(
            "EA505",
            "unresolvable fingerprint_sources() entry",
            Severity.WARNING,
            "source",
            check_fingerprint_resolvable,
            pack=PACK,
        )
    )
