"""repro: Executable assertions for detecting data errors in embedded
control systems — a reproduction of Hiller (DSN 2000).

The package splits into:

* :mod:`repro.core` — the paper's contribution: the signal classification
  scheme, the parameterised executable assertions, monitors, recovery,
  the coverage model and the incorporation process;
* :mod:`repro.stats` — coverage estimators and latency summaries;
* :mod:`repro.memory`, :mod:`repro.rtos`, :mod:`repro.plant`,
  :mod:`repro.arrestor` — the target system: emulated memory, the slot
  scheduler, the environment simulator and the arresting-system software;
* :mod:`repro.targets` — the target protocol and scenario registry the
  harness drives workloads through (the arrestor adapter plus the
  tank-level reference workload);
* :mod:`repro.injection`, :mod:`repro.experiments` — the fault-injection
  machinery and the campaign harness regenerating the paper's tables;
* :mod:`repro.analysis` — a static linter for assertion configurations,
  instrumentation plans and coverage holes (``python -m repro.analysis``);
* :mod:`repro.obs` — observability: structured trace events, metrics,
  sinks, trace/CSV reconciliation and the golden-trace recorder.
"""

from repro.core import (
    AssertionResult,
    ContinuousAssertion,
    ContinuousParams,
    CoverageModel,
    DetectionLog,
    DiscreteAssertion,
    DiscreteParams,
    ModalParameterSet,
    MonitorBank,
    ParameterError,
    SignalClass,
    SignalMonitor,
    build_assertion,
    linear_transition_map,
)
from repro.targets import (
    Target,
    get_target,
    register_target,
    target_names,
    unregister_target,
)

__version__ = "1.0.0"

__all__ = [
    "AssertionResult",
    "ContinuousAssertion",
    "ContinuousParams",
    "CoverageModel",
    "DetectionLog",
    "DiscreteAssertion",
    "DiscreteParams",
    "ModalParameterSet",
    "MonitorBank",
    "ParameterError",
    "SignalClass",
    "SignalMonitor",
    "Target",
    "build_assertion",
    "get_target",
    "linear_transition_map",
    "register_target",
    "target_names",
    "unregister_target",
    "__version__",
]
