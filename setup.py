"""Setup shim: enables `pip install -e .` on environments without the
`wheel` package (legacy setup.py develop path)."""

from setuptools import setup

setup()
