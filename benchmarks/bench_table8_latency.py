"""Table 8: error detection latencies (ms) per signal x version.

Regenerates the latency table from the shared E1 campaign and checks the
paper's latency shape: the counter-monitoring mechanisms (which achieve
100 % coverage) also have the shortest average latencies, and overall
averages stay in the sub-second regime.
"""

from repro.experiments.campaign import E1_VERSIONS
from repro.experiments.tables import render_table8


def test_table8_detection_latencies(benchmark, e1_results):
    table = benchmark(render_table8, e1_results, E1_VERSIONS)

    print()
    print("Table 8. Error detection latencies for all errors (ms)")
    print("(paper, All version totals: min 20 / avg 511 / max 7781).")
    print(table)

    # -- the qualitative latency shape --------------------------------------
    # Counter mechanisms detect within roughly one injection period.
    for counter in ("mscnt", "ms_slot_nbr", "i"):
        avg = e1_results.latency(signal=counter, version="All").average
        assert avg is not None
        assert avg <= 60.0, f"{counter} average latency {avg} ms"

    # Propagated (cross-mechanism) detection is slower than direct
    # detection: SetValue errors take longer to surface at EA7 (through
    # V_REG and PRES_A) than at EA1, the signal's own mechanism.  This is
    # the same effect that stretches the paper's E2 latencies.
    direct = e1_results.latency(signal="SetValue", version="EA1").average
    propagated = e1_results.latency(signal="SetValue", version="EA7").average
    if direct is not None and propagated is not None:
        assert propagated >= direct

    total = e1_results.latency(version="All")
    assert total.defined
    assert total.average < 2000.0  # paper: 511 ms
    assert total.minimum <= 40.0  # paper: 20 ms
