"""Source-level lint cost: wall-time and rule traffic per target.

Runs the full static analysis (plan rules + the EA4xx/EA5xx source
packs, including the AST def-use pass over every fingerprinted module)
on each registered target and writes ``BENCH_lint.json``::

    {
      "benchmark": "lint",
      "schema_version": 1,
      "repeats": N,
      "rules": N,
      "targets": {
        "<name>": {
          "seconds": S,
          "modules": N,
          "events": N,
          "memories": N,
          "findings": {"error": N, "warning": N, "info": N}
        },
        ...
      },
      "total_seconds": S
    }

``seconds`` is the median of ``--repeats`` timed repeats of the whole
pipeline (parse, def-use, rules) with one untimed warm-up; ``modules``
and ``events`` size the analysed closure so cost regressions can be
attributed (more source vs slower pass).  The schema check also fails
when any target reports error-severity findings — the benchmark doubles
as a lint gate for the emitted artefact.

Usage::

    python benchmarks/bench_lint.py [--target NAME] [--repeats N] [--out FILE]
    python benchmarks/bench_lint.py --check FILE    # validate schema
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

SCHEMA_VERSION = 1

_FINDING_KEYS = ("error", "warning", "info")


def validate_bench_json(data: dict) -> None:
    """Raise ``ValueError`` unless *data* matches the BENCH_lint schema.

    Also enforces the lint gate: no target may report error-severity
    findings.
    """
    if data.get("benchmark") != "lint":
        raise ValueError("benchmark field must be 'lint'")
    if data.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(f"schema_version must be {SCHEMA_VERSION}")
    repeats = data.get("repeats")
    if isinstance(repeats, bool) or not isinstance(repeats, int) or repeats < 1:
        raise ValueError("repeats must be a positive integer")
    rules = data.get("rules")
    if isinstance(rules, bool) or not isinstance(rules, int) or rules < 1:
        raise ValueError("rules must be a positive integer")
    targets = data.get("targets")
    if not isinstance(targets, dict) or not targets:
        raise ValueError("targets must be a non-empty object")
    for name, section in targets.items():
        if not isinstance(section, dict):
            raise ValueError(f"targets.{name} must be an object")
        for key in ("modules", "events", "memories"):
            value = section.get(key)
            if isinstance(value, bool) or not isinstance(value, int) or value < 0:
                raise ValueError(f"targets.{name}.{key} must be a non-negative int")
        seconds = section.get("seconds")
        if isinstance(seconds, bool) or not isinstance(seconds, (int, float)):
            raise ValueError(f"targets.{name}.seconds must be a number")
        findings = section.get("findings")
        if not isinstance(findings, dict) or set(findings) != set(_FINDING_KEYS):
            raise ValueError(
                f"targets.{name}.findings must have exactly keys {_FINDING_KEYS}"
            )
        for key in _FINDING_KEYS:
            value = findings[key]
            if isinstance(value, bool) or not isinstance(value, int) or value < 0:
                raise ValueError(
                    f"targets.{name}.findings.{key} must be a non-negative int"
                )
        if findings["error"]:
            raise ValueError(
                f"lint gate: target {name!r} reports {findings['error']} "
                f"error-severity finding(s)"
            )
    total = data.get("total_seconds")
    if isinstance(total, bool) or not isinstance(total, (int, float)):
        raise ValueError("total_seconds must be a number")


def _median(samples) -> float:
    ordered = sorted(samples)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _lint_once(name, registry):
    from repro.analysis.engine import analyze_plan, analyze_target_source
    from repro.analysis.source import build_source_model
    from repro.targets.registry import get_target

    target = get_target(name)
    model = build_source_model(target)
    plan, fmeca = target.lint_target()
    report = analyze_plan(plan, fmeca, registry=registry).merged(
        analyze_target_source(target, registry=registry, source_model=model)
    )
    return model, report


def run_benchmark(targets, repeats: int = 3) -> dict:
    from repro.analysis.registry import default_registry

    registry = default_registry()
    sections = {}
    total = 0.0
    for name in targets:
        model, report = _lint_once(name, registry)  # warm-up (untimed)
        samples = []
        for _ in range(repeats):
            start = time.perf_counter()
            model, report = _lint_once(name, registry)
            samples.append(time.perf_counter() - start)
        seconds = _median(samples)
        total += seconds
        sections[name] = {
            "seconds": round(seconds, 3),
            "modules": len(model.modules),
            "events": len(model.events),
            "memories": len(model.memories),
            "findings": {
                "error": len(report.errors),
                "warning": len(report.warnings),
                "info": len(report.infos),
            },
        }
    return {
        "benchmark": "lint",
        "schema_version": SCHEMA_VERSION,
        "repeats": repeats,
        "rules": len(registry),
        "targets": sections,
        "total_seconds": round(total, 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--target",
        default=None,
        metavar="NAME",
        help="lint only this registered target (default: all targets)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        metavar="N",
        help="timed repeats per target; the median is reported "
        "(default: %(default)s)",
    )
    parser.add_argument("--out", default="BENCH_lint.json", metavar="FILE")
    parser.add_argument(
        "--check",
        default=None,
        metavar="FILE",
        help="validate an emitted BENCH_lint.json instead of benchmarking",
    )
    args = parser.parse_args(argv)

    if args.check:
        with open(args.check, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        try:
            validate_bench_json(data)
        except ValueError as exc:
            print(f"{args.check}: INVALID: {exc}")
            return 1
        print(
            f"{args.check}: schema OK ({len(data['targets'])} target(s), "
            f"{data['total_seconds']} s total)"
        )
        return 0

    if args.repeats < 1:
        parser.error("--repeats must be at least 1")
    from repro.targets.registry import target_names

    names = [args.target] if args.target else list(target_names())
    data = run_benchmark(names, repeats=args.repeats)
    validate_bench_json(data)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2)
        handle.write("\n")
    for name, section in data["targets"].items():
        findings = section["findings"]
        print(
            f"[{name}] {section['modules']} modules, {section['events']} "
            f"def-use events through {data['rules']} rule(s) in "
            f"{section['seconds']} s "
            f"(errors {findings['error']}, warnings {findings['warning']})"
        )
    print(f"total {data['total_seconds']} s -> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
