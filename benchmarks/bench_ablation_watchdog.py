"""Ablation: closing the control-flow-error gap with a watchdog.

Sections 5.2/6 of the paper explain the poor stack-error coverage:
*"errors in the stack often cause control-flow errors, and the evaluated
mechanisms are not aimed at detecting such errors."*  This ablation adds
the mechanism that is — a deadline watchdog on the master node — and
measures detection over a probe set of control-flow errors (corrupted
dispatch/frame words) with and without it.
"""

import dataclasses

from repro.arrestor import constants as k
from repro.arrestor.system import RunConfig, TargetSystem, TestCase

_CASE = TestCase(14000.0, 55.0)

#: Control-word corruptions: (table, slot, xor) -> consequence class.
_PROBES = [
    ("dispatch", k.SLOT_V_REG, 0x4000),   # wedge: node hangs
    ("dispatch", k.SLOT_PRES_A, 0x8000),  # wedge: node hangs
    ("calc_frame", 0, 0x1000),            # wedge via the background frame
    ("calc_frame", 5, 0x2000),            # wedge via the background frame
]


def _run_probe(table_name, slot, xor, watchdog_timeout_ms):
    config = RunConfig(watchdog_timeout_ms=watchdog_timeout_ms)
    system = TargetSystem(_CASE, config=config)
    word = getattr(system.master.mem, table_name).word_variable(slot)
    word.set(word.get() ^ xor)
    return system.run()


def _detection_counts(watchdog_timeout_ms):
    assertion_hits = 0
    combined_hits = 0
    failures = 0
    for table_name, slot, xor in _PROBES:
        result = _run_probe(table_name, slot, xor, watchdog_timeout_ms)
        assertion_hits += result.detected
        combined_hits += result.detected_with_watchdog
        failures += result.failed
    return assertion_hits, combined_hits, failures


def test_ablation_watchdog(benchmark):
    def run_both():
        return {
            "assertions-only": _detection_counts(None),
            "with-watchdog": _detection_counts(50),
        }

    outcome = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print()
    print(f"Ablation: {len(_PROBES)} control-flow errors (wedging corruptions)")
    for config, (asserts, combined, failures) in outcome.items():
        print(
            f"  {config:16s} assertion detections={asserts}  "
            f"total detections={combined}  failures={failures}"
        )

    asserts_only = outcome["assertions-only"]
    with_watchdog = outcome["with-watchdog"]
    # The paper's gap: assertions see none of these.
    assert asserts_only[0] == 0
    assert with_watchdog[0] == 0
    # The watchdog sees all of them.
    assert with_watchdog[1] == len(_PROBES)
    # Control-flow errors at these words break the arrestment either way
    # (detection is not recovery).
    assert asserts_only[2] == with_watchdog[2] == len(_PROBES)


def test_ablation_watchdog_timeout_sensitivity():
    """A watchdog detects a wedge roughly one timeout after it happens."""
    latencies = {}
    for timeout in (20, 100, 500):
        result = _run_probe("dispatch", k.SLOT_V_REG, 0x4000, timeout)
        assert result.watchdog_fired_ms is not None
        latencies[timeout] = result.watchdog_fired_ms
    assert latencies[20] < latencies[100] < latencies[500]
