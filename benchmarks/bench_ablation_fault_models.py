"""Ablation: detection under different fault models.

The paper injects periodic bit-flips ("bit-flips can be used to model
intermittent hardware faults", Section 3.4).  This ablation runs the
same signal/bit errors under three fault models — transient (one flip),
intermittent (the paper's 20-ms periodic flip) and permanent (stuck-at-1)
— and compares coverage.  The expected ordering: a recurring disturbance
gives the mechanisms at least as many chances as a single one, so
transient coverage lower-bounds the other two.
"""

from repro.arrestor.signals_map import MasterMemory
from repro.arrestor.system import TargetSystem, TestCase
from repro.injection.errors import build_e1_error_set
from repro.injection.injector import (
    StuckAtInjector,
    TimeTriggeredInjector,
    TransientInjector,
)

_CASE = TestCase(14000.0, 55.0)

#: Probed errors: a spread of signals and bit positions.
_PROBES = [
    ("mscnt", 4),
    ("ms_slot_nbr", 1),
    ("pulscnt", 7),
    ("i", 2),
    ("SetValue", 5),
    ("SetValue", 12),
    ("IsValue", 13),
    ("OutValue", 14),
]


def _coverage(make_injector):
    errors = build_e1_error_set(MasterMemory())
    by_signal = {}
    for error in errors:
        by_signal.setdefault(error.signal, []).append(error)
    detected = 0
    for signal, bit in _PROBES:
        system = TargetSystem(_CASE)
        result = system.run(make_injector(by_signal[signal][bit]))
        detected += result.detected
    return detected


def test_ablation_fault_models(benchmark):
    def run_all():
        return {
            "transient": _coverage(lambda e: TransientInjector(e, at_ms=500)),
            "intermittent": _coverage(lambda e: TimeTriggeredInjector(e, start_ms=500)),
            "stuck-at-1": _coverage(lambda e: StuckAtInjector(e, stuck_value=1, start_ms=500)),
        }

    outcome = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print(f"Ablation: detections over {len(_PROBES)} probed errors per fault model")
    for model, count in outcome.items():
        print(f"  {model:14s} {count}/{len(_PROBES)}")

    # A single transient flip cannot be easier to catch than the same
    # flip repeated every 20 ms.
    assert outcome["transient"] <= outcome["intermittent"]
    # Every fault model catches the counter errors.
    assert outcome["transient"] >= 4
