"""Campaign-engine throughput: cold vs snapshot-accelerated runs/sec.

Runs the same (small, deterministic) E1 slice through the engine's
configurations, checks every result set is record-for-record identical,
and writes ``BENCH_campaign.json``::

    {
      "benchmark": "campaign",
      "schema_version": 6,
      "repeats": N,
      "cpus": N,
      "scale": {"target": T, "versions": [...], "errors": N, "cases": N,
                "runs": N},
      "serial":   {"runs": N, "seconds": S, "runs_per_sec": R},
      "parallel": {"workers": W, "runs": N, "seconds": S, "runs_per_sec": R},
      "speedup": X,
      "pool_scaling": Y,
      "equivalent": true,
      "snapshot": {
        "injection_start_ms": MS,
        "cold": {"runs": N, "seconds": S, "runs_per_sec": R},
        "warm": {"runs": N, "seconds": S, "runs_per_sec": R},
        "speedup": X
      },
      "store_hit": {"runs": N, "seconds": S, "runs_per_sec": R, "hits": N},
      "tracing": {
        "off":       {"runs": N, "seconds": S, "runs_per_sec": R},
        "null_sink": {"runs": N, "seconds": S, "runs_per_sec": R},
        "overhead_pct": X,
        "null_sink_overhead_pct": Y
      },
      "batch": {
        "supported": true,
        "grid": {"versions": N, "errors": N, "runs": N},
        "vectorized": {"runs": N, "seconds": S, "runs_per_sec": R},
        "speedup_vs_cold_serial": X,
        "equivalent": true
      },
      "graph": {
        "cold": {"runs": N, "seconds": S, "runs_per_sec": R},
        "warm_replay": {"runs": N, "seconds": S, "runs_per_sec": R},
        "replay_speedup": X,
        "cache_hit_rate": 1.0,
        "shard_merge": {"shards": 2, "merged_nodes": N, "seconds": S},
        "equivalent": true
      }
    }

Interpreting the sections:

* ``serial`` is the **cold baseline**: one process, snapshots disabled,
  every run re-boots and re-simulates from t=0 — the engine exactly as
  it behaved before snapshot acceleration.
* ``parallel`` is the **production configuration**: snapshot reuse on,
  a pre-warmed pool of ``--workers`` processes.  ``speedup`` compares it
  against the cold baseline, so it reports the end-to-end acceleration
  a user gets, whatever its source (snapshot reuse, prefix
  fast-forward, or pool parallelism).
* ``pool_scaling`` isolates the pool's own contribution: warm-serial
  over warm-parallel wall-clock.  On a single-CPU container (``cpus``
  reports the affinity mask) this hovers around 1.0 — the honest
  number — and the overall speedup comes from the snapshot layer.
* ``snapshot`` prices that layer alone: the identical serial slice cold
  vs warm (boot snapshots + fault-free prefix fast-forward at the
  listed ``injection_start_ms``).  ``make bench-smoke``'s regression
  guard fails the build if ``warm`` drops below ``cold``.
* ``store_hit`` replays the slice against a pre-filled result store:
  every record restores from disk and zero runs are simulated.
* ``tracing`` guards the observability hot path (snapshots off, so the
  numbers stay comparable across schema versions): ``overhead_pct``
  should stay within timing noise (a few percent either way on a busy
  machine) and ``null_sink`` prices event construction.
* ``batch`` (schema v5) prices the vectorized kernel: the target's
  **full E1 grid** (every version x every error x one case) executed as
  one ``Target.run_batch`` call.  ``speedup_vs_cold_serial`` compares
  its runs/sec against the cold serial baseline, and ``equivalent`` is
  the built-in differential gate — the bench slice re-executed through
  ``execute_specs(batch=True)`` must be record-for-record identical to
  the cold serial records.  The validator refuses a document whose gate
  is false.
* ``graph`` (schema v6) prices the campaign task-graph runtime: the
  bench slice built as a content-addressed DAG and executed cold
  (``--force``, every node runs and is stored) vs warm (every node
  replays from the node store; ``cache_hit_rate`` must be 1.0 and the
  ``--smoke`` guard fails the build if ``replay_speedup`` drops below
  1.0).  ``shard_merge`` prices the distribution protocol: the same
  slice run as two ``--shard i/2`` halves into separate stores, then
  ``merge``\\ d — its ``seconds`` is the end-to-end overhead of
  splitting a campaign across workers.  ``equivalent`` gates the graph
  results against the cold serial records.

Every timed configuration is preceded by one untimed warm-up run and
then measured as the **median of ``--repeats`` (>= 3) timed repeats**;
single-shot timings of a seconds-scale workload jitter enough that the
overhead comparison used to come out negative (tracing "faster" than no
tracing) on a loaded machine.

Usage::

    python benchmarks/bench_campaign.py [--target NAME] [--signals S1,S2]
                                        [--cases N] [--workers N]
                                        [--injection-start MS]
                                        [--repeats N] [--out FILE]
    python benchmarks/bench_campaign.py --check FILE    # validate schema

``make bench`` runs the tiny default scale and then validates the
emitted file; ``make bench-smoke`` sweeps every registered target at
``--repeats 1`` and enforces the warm >= cold guard.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments.campaign import CampaignConfig, run_e1_campaign  # noqa: E402

SCHEMA_VERSION = 6

#: Pool width pinned by ``--smoke`` runs, so smoke artifacts (and the
#: schema check over them) are deterministic across host CPU counts.
SMOKE_WORKERS = 2

#: A cheap, always-detected signal per built-in target (the default slice).
DEFAULT_SIGNALS = {"arrestor": "mscnt", "tanklevel": "tick"}

#: Default first-injection time per target: late enough that the shared
#: fault-free prefix dominates the run, so the fast-forward win is
#: visible even at bench scale (arrestor horizon 25 s, tanklevel 6 s).
DEFAULT_INJECTION_START = {"arrestor": 12000, "tanklevel": 3000}

_THROUGHPUT_KEYS = {"runs": int, "seconds": float, "runs_per_sec": float}


def validate_bench_json(data: dict, smoke: bool = False) -> None:
    """Raise ``ValueError`` unless *data* matches the BENCH_campaign schema.

    With *smoke*, additionally enforce the throughput-regression guard:
    the snapshot-accelerated configuration must not be slower than the
    cold baseline.
    """

    def _throughput(name: str, section, extra: dict = {}) -> None:
        if not isinstance(section, dict):
            raise ValueError(f"missing or non-object section {name!r}")
        for key, kind in {**_THROUGHPUT_KEYS, **extra}.items():
            if key not in section:
                raise ValueError(f"{name}.{key} missing")
            accepted = (int, float) if kind is float else kind
            if isinstance(section[key], bool) or not isinstance(section[key], accepted):
                raise ValueError(
                    f"{name}.{key} should be {kind.__name__}, "
                    f"got {type(section[key]).__name__}"
                )

    def _number(name: str, value) -> None:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"{name} must be a number")

    if data.get("benchmark") != "campaign":
        raise ValueError("benchmark field must be 'campaign'")
    if data.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(f"schema_version must be {SCHEMA_VERSION}")
    repeats = data.get("repeats")
    if isinstance(repeats, bool) or not isinstance(repeats, int) or repeats < 1:
        raise ValueError("repeats must be a positive integer")
    if isinstance(data.get("cpus"), bool) or not isinstance(data.get("cpus"), int):
        raise ValueError("cpus must be an integer")
    scale = data.get("scale")
    if not isinstance(scale, dict) or not isinstance(scale.get("versions"), list):
        raise ValueError("scale must be an object with a versions list")
    if not isinstance(scale.get("target"), str) or not scale["target"]:
        raise ValueError("scale.target must be a non-empty string")
    for key in ("errors", "cases", "runs"):
        if not isinstance(scale.get(key), int):
            raise ValueError(f"scale.{key} must be an integer")
    _throughput("serial", data.get("serial"))
    _throughput("parallel", data.get("parallel"), {"workers": int})
    _number("speedup", data.get("speedup"))
    _number("pool_scaling", data.get("pool_scaling"))
    if data.get("equivalent") is not True:
        raise ValueError("equivalent must be true (configurations disagree)")

    snapshot = data.get("snapshot")
    if not isinstance(snapshot, dict):
        raise ValueError("missing or non-object section 'snapshot'")
    if isinstance(snapshot.get("injection_start_ms"), bool) or not isinstance(
        snapshot.get("injection_start_ms"), int
    ):
        raise ValueError("snapshot.injection_start_ms must be an integer")
    _throughput("snapshot.cold", snapshot.get("cold"))
    _throughput("snapshot.warm", snapshot.get("warm"))
    _number("snapshot.speedup", snapshot.get("speedup"))
    if smoke and snapshot["speedup"] < 1.0:
        raise ValueError(
            f"throughput regression: snapshot-accelerated runs are slower "
            f"than cold runs (speedup {snapshot['speedup']}x < 1.0x)"
        )

    _throughput("store_hit", data.get("store_hit"), {"hits": int})
    if data["store_hit"]["hits"] != data["store_hit"]["runs"]:
        raise ValueError("store_hit.hits must equal store_hit.runs (stale store)")

    tracing = data.get("tracing")
    if not isinstance(tracing, dict):
        raise ValueError("missing or non-object section 'tracing'")
    _throughput("tracing.off", tracing.get("off"))
    _throughput("tracing.null_sink", tracing.get("null_sink"))
    _number("tracing.overhead_pct", tracing.get("overhead_pct"))
    _number("tracing.null_sink_overhead_pct", tracing.get("null_sink_overhead_pct"))

    batch = data.get("batch")
    if not isinstance(batch, dict):
        raise ValueError("missing or non-object section 'batch'")
    if not isinstance(batch.get("supported"), bool):
        raise ValueError("batch.supported must be a boolean")
    if batch["supported"]:
        grid = batch.get("grid")
        if not isinstance(grid, dict):
            raise ValueError("batch.grid must be an object")
        for key in ("versions", "errors", "runs"):
            if isinstance(grid.get(key), bool) or not isinstance(grid.get(key), int):
                raise ValueError(f"batch.grid.{key} must be an integer")
        _throughput("batch.vectorized", batch.get("vectorized"))
        _number("batch.speedup_vs_cold_serial", batch.get("speedup_vs_cold_serial"))
        if batch.get("equivalent") is not True:
            raise ValueError(
                "batch.equivalent must be true (the vectorized kernel "
                "disagrees with the serial oracle)"
            )
        if smoke and batch["speedup_vs_cold_serial"] < 1.0:
            raise ValueError(
                f"throughput regression: the vectorized kernel is slower than "
                f"cold serial runs "
                f"(speedup {batch['speedup_vs_cold_serial']}x < 1.0x)"
            )

    graph = data.get("graph")
    if not isinstance(graph, dict):
        raise ValueError("missing or non-object section 'graph'")
    _throughput("graph.cold", graph.get("cold"))
    _throughput("graph.warm_replay", graph.get("warm_replay"))
    _number("graph.replay_speedup", graph.get("replay_speedup"))
    _number("graph.cache_hit_rate", graph.get("cache_hit_rate"))
    if not 0.0 <= graph["cache_hit_rate"] <= 1.0:
        raise ValueError("graph.cache_hit_rate must be within [0, 1]")
    shard_merge = graph.get("shard_merge")
    if not isinstance(shard_merge, dict):
        raise ValueError("graph.shard_merge must be an object")
    for key in ("shards", "merged_nodes"):
        if isinstance(shard_merge.get(key), bool) or not isinstance(
            shard_merge.get(key), int
        ):
            raise ValueError(f"graph.shard_merge.{key} must be an integer")
    _number("graph.shard_merge.seconds", shard_merge.get("seconds"))
    if graph.get("equivalent") is not True:
        raise ValueError(
            "graph.equivalent must be true (the task-graph runtime "
            "disagrees with the flat engine)"
        )
    if smoke:
        if graph["cache_hit_rate"] < 1.0:
            raise ValueError(
                f"replay regression: an unchanged graph re-run should replay "
                f"every node (cache_hit_rate {graph['cache_hit_rate']} < 1.0)"
            )
        if graph["replay_speedup"] < 1.0:
            raise ValueError(
                f"throughput regression: warm graph replay is slower than "
                f"cold execution (speedup {graph['replay_speedup']}x < 1.0x)"
            )


def _median(samples) -> float:
    ordered = sorted(samples)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _measure(run_once, repeats: int):
    """One warm-up run, then the median wall-clock of *repeats* timed runs."""
    results = run_once()  # warm-up (untimed; also fills the snapshot caches)
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        results = run_once()
        samples.append(time.perf_counter() - start)
    return results, _median(samples)


def _throughput(runs: int, seconds: float) -> dict:
    return {
        "runs": runs,
        "seconds": round(seconds, 3),
        "runs_per_sec": round(runs / seconds, 3) if seconds else 0.0,
    }


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def run_benchmark(signals, cases: int, workers: int, repeats: int = 3,
                  target=None, injection_start_ms=None) -> dict:
    from repro.experiments.parallel import enumerate_e1_specs, execute_specs
    from repro.experiments.store import ResultStore
    from repro.obs import MetricsRegistry, NullSink, TraceBus
    from repro.targets.registry import get_target

    resolved = get_target(target)
    if injection_start_ms is None:
        injection_start_ms = DEFAULT_INJECTION_START.get(resolved.name, 0)
    versions = ("All",)
    error_filter = lambda e: e.signal in signals  # noqa: E731

    def _config(workers: int, snapshots: bool) -> CampaignConfig:
        return CampaignConfig(
            cases_all=cases,
            versions=versions,
            workers=workers,
            target=resolved.name,
            injection_start_ms=injection_start_ms,
            snapshots=snapshots,
        )

    cold_cfg = _config(workers=1, snapshots=False)
    warm_cfg = _config(workers=1, snapshots=True)
    parallel_cfg = _config(workers=workers, snapshots=True)

    # The cold baseline (strict reboot-per-run, one process) vs the
    # production configuration (snapshots + pre-warmed pool).
    cold_results, cold_s = _measure(
        lambda: run_e1_campaign(cold_cfg, error_filter=error_filter), repeats
    )
    warm_results, warm_s = _measure(
        lambda: run_e1_campaign(warm_cfg, error_filter=error_filter), repeats
    )
    parallel_results, parallel_s = _measure(
        lambda: run_e1_campaign(parallel_cfg, error_filter=error_filter), repeats
    )

    # Store replay: fill a fresh store once, then measure pure-hit passes.
    store_dir = tempfile.mkdtemp(prefix="bench_store_")
    try:
        store = ResultStore(
            store_dir, target=resolved.name,
            injection_start_ms=injection_start_ms,
        )
        run_e1_campaign(warm_cfg, error_filter=error_filter, store=store)

        def _replay():
            replay_store = ResultStore(
                store_dir, target=resolved.name,
                injection_start_ms=injection_start_ms,
            )
            return replay_store, run_e1_campaign(
                warm_cfg, error_filter=error_filter, store=replay_store
            )

        (replay_store, store_results), store_s = _measure(_replay, repeats)
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)

    # Disabled-tracing overhead: the same slice through the spec executor
    # with no tracer, then with an enabled bus discarding into a NullSink.
    # Snapshots stay off so these numbers price tracing, not caching.
    specs = enumerate_e1_specs(cold_cfg, error_filter)
    off_results, off_s = _measure(
        lambda: execute_specs(specs, trace=None, metrics=None, snapshots=False),
        repeats,
    )
    null_results, null_s = _measure(
        lambda: execute_specs(
            specs,
            trace=TraceBus([NullSink()]),
            metrics=MetricsRegistry(),
            snapshots=False,
        ),
        repeats,
    )

    equivalent = (
        cold_results.records == warm_results.records == parallel_results.records
        == store_results.records == off_results.records == null_results.records
    )

    runs = len(cold_results)
    cold_rps = runs / cold_s if cold_s else 0.0
    off_rps = runs / off_s if off_s else 0.0
    null_rps = runs / null_s if null_s else 0.0

    # Vectorized batch kernel: the full E1 grid (every version x every
    # error x one test case) as a single run_batch call per target, plus
    # the built-in differential gate — the bench slice through the batch
    # path must reproduce the cold serial records exactly.
    if resolved.supports_batch():
        full_cfg = CampaignConfig(
            cases_all=1,
            cases_per_ea=1,
            workers=1,
            target=resolved.name,
            injection_start_ms=injection_start_ms,
        )
        full_specs = enumerate_e1_specs(full_cfg)
        batch_results, batch_s = _measure(
            lambda: execute_specs(full_specs, batch=True, snapshots=False),
            repeats,
        )
        batch_slice = execute_specs(specs, batch=True, snapshots=False)
        batch_rps = len(full_specs) / batch_s if batch_s else 0.0
        batch_section = {
            "supported": True,
            "grid": {
                "versions": len(full_cfg.versions),
                "errors": len(full_specs) // len(full_cfg.versions),
                "runs": len(full_specs),
            },
            "vectorized": _throughput(len(full_specs), batch_s),
            "speedup_vs_cold_serial": (
                round(batch_rps / cold_rps, 3) if cold_rps else 0.0
            ),
            "equivalent": batch_slice.records == off_results.records,
        }
    else:
        batch_section = {"supported": False}

    # Task-graph runtime: the bench slice as a content-addressed DAG.
    # Cold forces every node to execute (and store); warm replays the
    # whole campaign from the node store without simulating anything.
    from repro.experiments.dag import run_campaign_graph
    from repro.experiments.graph import NodeStore, merge_stores

    graph_dir = tempfile.mkdtemp(prefix="bench_graph_")
    try:
        graph_store = NodeStore(os.path.join(graph_dir, "nodes"))
        cold_graph, graph_cold_s = _measure(
            lambda: run_campaign_graph(specs, store=graph_store, force=True),
            repeats,
        )
        warm_graph, graph_warm_s = _measure(
            lambda: run_campaign_graph(specs, store=graph_store), repeats
        )

        # Distribution protocol: two shards into separate stores, then
        # one merge — end-to-end overhead of splitting the campaign.
        shard_start = time.perf_counter()
        shard_stores = []
        for index in range(2):
            shard_store = NodeStore(os.path.join(graph_dir, f"shard{index}"))
            run_campaign_graph(specs, store=shard_store, shard=(index, 2))
            shard_stores.append(shard_store)
        merged_store = NodeStore(os.path.join(graph_dir, "merged"))
        merged_nodes, _ = merge_stores(merged_store, shard_stores)
        shard_merge_s = time.perf_counter() - shard_start
    finally:
        shutil.rmtree(graph_dir, ignore_errors=True)

    graph_cold_rps = runs / graph_cold_s if graph_cold_s else 0.0
    graph_warm_rps = runs / graph_warm_s if graph_warm_s else 0.0
    graph_section = {
        "cold": _throughput(runs, graph_cold_s),
        "warm_replay": _throughput(runs, graph_warm_s),
        "replay_speedup": (
            round(graph_warm_rps / graph_cold_rps, 3) if graph_cold_rps else 0.0
        ),
        "cache_hit_rate": round(warm_graph.stats.hit_rate, 4),
        "shard_merge": {
            "shards": 2,
            "merged_nodes": merged_nodes,
            "seconds": round(shard_merge_s, 3),
        },
        "equivalent": (
            cold_graph.results.records == off_results.records
            and warm_graph.results.records == off_results.records
        ),
    }

    return {
        "benchmark": "campaign",
        "schema_version": SCHEMA_VERSION,
        "repeats": repeats,
        "cpus": _cpus(),
        "scale": {
            "target": resolved.name,
            "versions": list(versions),
            "errors": runs // cases if cases else 0,
            "cases": cases,
            "runs": runs,
        },
        "serial": _throughput(runs, cold_s),
        "parallel": {
            "workers": workers,
            **_throughput(len(parallel_results), parallel_s),
        },
        "speedup": round(cold_s / parallel_s, 3) if parallel_s else 0.0,
        "pool_scaling": round(warm_s / parallel_s, 3) if parallel_s else 0.0,
        "equivalent": equivalent,
        "snapshot": {
            "injection_start_ms": injection_start_ms,
            "cold": _throughput(runs, cold_s),
            "warm": _throughput(runs, warm_s),
            "speedup": round(cold_s / warm_s, 3) if warm_s else 0.0,
        },
        "store_hit": {
            **_throughput(runs, store_s),
            "hits": replay_store.stats.hits,
        },
        "batch": batch_section,
        "graph": graph_section,
        "tracing": {
            "off": _throughput(runs, off_s),
            "null_sink": _throughput(runs, null_s),
            "overhead_pct": (
                round((cold_rps - off_rps) / cold_rps * 100.0, 2)
                if cold_rps
                else 0.0
            ),
            "null_sink_overhead_pct": (
                round((off_rps - null_rps) / off_rps * 100.0, 2) if off_rps else 0.0
            ),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--target",
        default=None,
        metavar="NAME",
        help="registered workload to benchmark (default: $REPRO_TARGET or "
        "'arrestor')",
    )
    parser.add_argument(
        "--signals",
        default=None,
        help="comma-separated monitored signals to inject (16 errors each; "
        "default: one cheap signal of the selected target)",
    )
    parser.add_argument("--cases", type=int, default=1, metavar="N")
    parser.add_argument(
        "--workers",
        type=int,
        # At least 2 so the pool path is exercised even on one core
        # (where pool_scaling reports ~1.0 and the speedup is snapshots').
        default=max(2, min(4, os.cpu_count() or 1)),
        metavar="N",
    )
    parser.add_argument(
        "--injection-start",
        type=int,
        default=None,
        metavar="MS",
        help="first-injection sim-time for the snapshot section "
        "(default: per-target, e.g. arrestor 12000)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        metavar="N",
        help="timed repeats per configuration; the median is reported "
        "(default: %(default)s)",
    )
    parser.add_argument("--out", default="BENCH_campaign.json", metavar="FILE")
    parser.add_argument(
        "--check",
        default=None,
        metavar="FILE",
        help="validate an emitted BENCH_campaign.json instead of benchmarking",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="with --check: also enforce the throughput-regression guards; "
        "when benchmarking: pin --workers to a fixed width so the emitted "
        "artifact is deterministic across host CPU counts",
    )
    args = parser.parse_args(argv)

    if args.check:
        with open(args.check, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        try:
            validate_bench_json(data, smoke=args.smoke)
        except ValueError as exc:
            print(f"{args.check}: INVALID: {exc}")
            return 1
        print(
            f"{args.check}: schema OK (speedup {data['speedup']}x, "
            f"snapshot {data['snapshot']['speedup']}x)"
        )
        return 0

    if args.repeats < 1:
        parser.error("--repeats must be at least 1")
    if args.smoke:
        args.workers = SMOKE_WORKERS
    if args.signals is not None:
        signals = tuple(args.signals.split(","))
    else:
        from repro.targets.registry import get_target

        resolved = get_target(args.target)
        signals = (
            DEFAULT_SIGNALS.get(resolved.name, resolved.monitored_signals[0]),
        )
    data = run_benchmark(
        signals=signals,
        cases=args.cases,
        workers=args.workers,
        repeats=args.repeats,
        target=args.target,
        injection_start_ms=args.injection_start,
    )
    validate_bench_json(data, smoke=args.smoke)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2)
        handle.write("\n")
    snapshot = data["snapshot"]
    tracing = data["tracing"]
    print(
        f"[{data['scale']['target']}] {data['scale']['runs']} runs x "
        f"{data['repeats']} repeats on {data['cpus']} cpu(s): "
        f"cold-serial {data['serial']['runs_per_sec']}/s, "
        f"warm-parallel[{data['parallel']['workers']}] "
        f"{data['parallel']['runs_per_sec']}/s "
        f"(speedup {data['speedup']}x, pool_scaling {data['pool_scaling']}x, "
        f"equivalent={data['equivalent']}) -> {args.out}"
    )
    print(
        f"snapshot layer: warm {snapshot['warm']['runs_per_sec']}/s vs cold "
        f"{snapshot['cold']['runs_per_sec']}/s = {snapshot['speedup']}x "
        f"(prefix at {snapshot['injection_start_ms']} ms); "
        f"store replay {data['store_hit']['runs_per_sec']}/s "
        f"({data['store_hit']['hits']} hits)"
    )
    print(
        f"tracing: disabled overhead {tracing['overhead_pct']}% "
        f"(off {tracing['off']['runs_per_sec']}/s), "
        f"null-sink overhead {tracing['null_sink_overhead_pct']}% "
        f"({tracing['null_sink']['runs_per_sec']}/s)"
    )
    batch = data["batch"]
    if batch["supported"]:
        print(
            f"batch kernel: full E1 grid ({batch['grid']['runs']} runs) "
            f"{batch['vectorized']['runs_per_sec']}/s = "
            f"{batch['speedup_vs_cold_serial']}x over cold serial "
            f"(equivalent={batch['equivalent']})"
        )
    else:
        print("batch kernel: not supported by this target (serial path only)")
    graph = data["graph"]
    print(
        f"task graph: warm replay {graph['warm_replay']['runs_per_sec']}/s vs "
        f"cold {graph['cold']['runs_per_sec']}/s = {graph['replay_speedup']}x "
        f"(hit rate {graph['cache_hit_rate']}); 2-shard run+merge "
        f"{graph['shard_merge']['seconds']}s for "
        f"{graph['shard_merge']['merged_nodes']} node(s) "
        f"(equivalent={graph['equivalent']})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
