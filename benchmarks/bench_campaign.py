"""Campaign-engine throughput: serial vs parallel runs/sec.

Runs the same (small, deterministic) E1 slice through the serial path
(``workers=1``) and the process-pool path, checks the result sets are
record-for-record identical, and writes ``BENCH_campaign.json``::

    {
      "benchmark": "campaign",
      "schema_version": 3,
      "repeats": N,
      "scale": {"target": T, "versions": [...], "errors": N, "cases": N,
                "runs": N},
      "serial":   {"runs": N, "seconds": S, "runs_per_sec": R},
      "parallel": {"workers": W, "runs": N, "seconds": S, "runs_per_sec": R},
      "speedup": X,
      "equivalent": true,
      "tracing": {
        "off":       {"runs": N, "seconds": S, "runs_per_sec": R},
        "null_sink": {"runs": N, "seconds": S, "runs_per_sec": R},
        "overhead_pct": X,
        "null_sink_overhead_pct": Y
      }
    }

The tracing section guards the observability layer's hot-path budget:
``off`` repeats the serial slice with tracing disabled (publishers hold
``tracer=None``, so the entire cost is one predicate check), and
``overhead_pct`` compares it against the ``serial`` measurement of the
*same* configuration — the disabled-tracing overhead, which must stay
within noise (< 2%).  ``null_sink`` runs the slice with an enabled bus
discarding every event, pricing event construction itself.

Every timed configuration is preceded by one untimed warm-up run and
then measured as the **median of ``--repeats`` (>= 3) timed repeats**;
single-shot timings of a seconds-scale workload jitter enough that the
overhead comparison used to come out negative (tracing "faster" than no
tracing) on a loaded machine.

Usage::

    python benchmarks/bench_campaign.py [--target NAME] [--signals S1,S2]
                                        [--cases N] [--workers N]
                                        [--repeats N] [--out FILE]
    python benchmarks/bench_campaign.py --check FILE    # validate schema

``make bench`` runs the tiny default scale and then validates the
emitted file; ``make bench-smoke`` sweeps every registered target at
``--repeats 1``.  Scale up (more signals / ``--cases``) for a meaningful
speedup measurement on a multi-core machine; on a single core the
parallel figure mostly measures pool overhead.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments.campaign import CampaignConfig, run_e1_campaign  # noqa: E402

SCHEMA_VERSION = 3

#: A cheap, always-detected signal per built-in target (the default slice).
DEFAULT_SIGNALS = {"arrestor": "mscnt", "tanklevel": "tick"}

_THROUGHPUT_KEYS = {"runs": int, "seconds": float, "runs_per_sec": float}


def validate_bench_json(data: dict) -> None:
    """Raise ``ValueError`` unless *data* matches the BENCH_campaign schema."""

    def _section(name: str, extra: dict) -> None:
        section = data.get(name)
        if not isinstance(section, dict):
            raise ValueError(f"missing or non-object section {name!r}")
        for key, kind in {**_THROUGHPUT_KEYS, **extra}.items():
            if key not in section:
                raise ValueError(f"{name}.{key} missing")
            accepted = (int, float) if kind is float else kind
            if isinstance(section[key], bool) or not isinstance(section[key], accepted):
                raise ValueError(
                    f"{name}.{key} should be {kind.__name__}, "
                    f"got {type(section[key]).__name__}"
                )

    if data.get("benchmark") != "campaign":
        raise ValueError("benchmark field must be 'campaign'")
    if data.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(f"schema_version must be {SCHEMA_VERSION}")
    repeats = data.get("repeats")
    if isinstance(repeats, bool) or not isinstance(repeats, int) or repeats < 1:
        raise ValueError("repeats must be a positive integer")
    scale = data.get("scale")
    if not isinstance(scale, dict) or not isinstance(scale.get("versions"), list):
        raise ValueError("scale must be an object with a versions list")
    if not isinstance(scale.get("target"), str) or not scale["target"]:
        raise ValueError("scale.target must be a non-empty string")
    for key in ("errors", "cases", "runs"):
        if not isinstance(scale.get(key), int):
            raise ValueError(f"scale.{key} must be an integer")
    _section("serial", {})
    _section("parallel", {"workers": int})
    if not isinstance(data.get("speedup"), (int, float)):
        raise ValueError("speedup must be a number")
    if data.get("equivalent") is not True:
        raise ValueError("equivalent must be true (parallel != serial results)")
    tracing = data.get("tracing")
    if not isinstance(tracing, dict):
        raise ValueError("missing or non-object section 'tracing'")
    for name in ("off", "null_sink"):
        sub = tracing.get(name)
        if not isinstance(sub, dict):
            raise ValueError(f"missing or non-object section tracing.{name}")
        for key, kind in _THROUGHPUT_KEYS.items():
            accepted = (int, float) if kind is float else kind
            if isinstance(sub.get(key), bool) or not isinstance(sub.get(key), accepted):
                raise ValueError(f"tracing.{name}.{key} should be {kind.__name__}")
    for key in ("overhead_pct", "null_sink_overhead_pct"):
        if isinstance(tracing.get(key), bool) or not isinstance(
            tracing.get(key), (int, float)
        ):
            raise ValueError(f"tracing.{key} must be a number")


def _median(samples) -> float:
    ordered = sorted(samples)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _measure(run_once, repeats: int):
    """One warm-up run, then the median wall-clock of *repeats* timed runs."""
    results = run_once()  # warm-up (untimed)
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        results = run_once()
        samples.append(time.perf_counter() - start)
    return results, _median(samples)


def _throughput(runs: int, seconds: float) -> dict:
    return {
        "runs": runs,
        "seconds": round(seconds, 3),
        "runs_per_sec": round(runs / seconds, 3) if seconds else 0.0,
    }


def run_benchmark(signals, cases: int, workers: int, repeats: int = 3,
                  target=None) -> dict:
    from repro.experiments.parallel import enumerate_e1_specs, execute_specs
    from repro.obs import MetricsRegistry, NullSink, TraceBus
    from repro.targets.registry import get_target

    resolved = get_target(target)
    versions = ("All",)
    error_filter = lambda e: e.signal in signals  # noqa: E731
    serial_cfg = CampaignConfig(
        cases_all=cases, versions=versions, workers=1, target=resolved.name
    )
    parallel_cfg = CampaignConfig(
        cases_all=cases, versions=versions, workers=workers, target=resolved.name
    )

    serial_results, serial_s = _measure(
        lambda: run_e1_campaign(serial_cfg, error_filter=error_filter), repeats
    )
    parallel_results, parallel_s = _measure(
        lambda: run_e1_campaign(parallel_cfg, error_filter=error_filter), repeats
    )

    # Disabled-tracing overhead: the same serial slice through the spec
    # executor with no tracer, then with an enabled bus discarding into a
    # NullSink.  Same warm-up + median discipline as above.
    specs = enumerate_e1_specs(serial_cfg, error_filter)
    off_results, off_s = _measure(
        lambda: execute_specs(specs, trace=None, metrics=None), repeats
    )
    null_results, null_s = _measure(
        lambda: execute_specs(
            specs, trace=TraceBus([NullSink()]), metrics=MetricsRegistry()
        ),
        repeats,
    )
    assert off_results.records == serial_results.records == null_results.records

    runs = len(serial_results)
    serial_rps = runs / serial_s if serial_s else 0.0
    off_rps = runs / off_s if off_s else 0.0
    null_rps = runs / null_s if null_s else 0.0
    return {
        "benchmark": "campaign",
        "schema_version": SCHEMA_VERSION,
        "repeats": repeats,
        "scale": {
            "target": resolved.name,
            "versions": list(versions),
            "errors": runs // cases if cases else 0,
            "cases": cases,
            "runs": runs,
        },
        "serial": _throughput(runs, serial_s),
        "parallel": {
            "workers": workers,
            **_throughput(len(parallel_results), parallel_s),
        },
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else 0.0,
        "equivalent": serial_results.records == parallel_results.records,
        "tracing": {
            "off": _throughput(runs, off_s),
            "null_sink": _throughput(runs, null_s),
            "overhead_pct": (
                round((serial_rps - off_rps) / serial_rps * 100.0, 2)
                if serial_rps
                else 0.0
            ),
            "null_sink_overhead_pct": (
                round((off_rps - null_rps) / off_rps * 100.0, 2) if off_rps else 0.0
            ),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--target",
        default=None,
        metavar="NAME",
        help="registered workload to benchmark (default: $REPRO_TARGET or "
        "'arrestor')",
    )
    parser.add_argument(
        "--signals",
        default=None,
        help="comma-separated monitored signals to inject (16 errors each; "
        "default: one cheap signal of the selected target)",
    )
    parser.add_argument("--cases", type=int, default=1, metavar="N")
    parser.add_argument(
        "--workers",
        type=int,
        # At least 2 so the pool path is exercised even on one core
        # (where the figure measures dispatch overhead, not speedup).
        default=max(2, min(4, os.cpu_count() or 1)),
        metavar="N",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        metavar="N",
        help="timed repeats per configuration; the median is reported "
        "(default: %(default)s)",
    )
    parser.add_argument("--out", default="BENCH_campaign.json", metavar="FILE")
    parser.add_argument(
        "--check",
        default=None,
        metavar="FILE",
        help="validate an emitted BENCH_campaign.json instead of benchmarking",
    )
    args = parser.parse_args(argv)

    if args.check:
        with open(args.check, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        try:
            validate_bench_json(data)
        except ValueError as exc:
            print(f"{args.check}: INVALID: {exc}")
            return 1
        print(f"{args.check}: schema OK (speedup {data['speedup']}x)")
        return 0

    if args.repeats < 1:
        parser.error("--repeats must be at least 1")
    if args.signals is not None:
        signals = tuple(args.signals.split(","))
    else:
        from repro.targets.registry import get_target

        resolved = get_target(args.target)
        signals = (
            DEFAULT_SIGNALS.get(resolved.name, resolved.monitored_signals[0]),
        )
    data = run_benchmark(
        signals=signals,
        cases=args.cases,
        workers=args.workers,
        repeats=args.repeats,
        target=args.target,
    )
    validate_bench_json(data)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2)
        handle.write("\n")
    tracing = data["tracing"]
    print(
        f"[{data['scale']['target']}] {data['scale']['runs']} runs x "
        f"{data['repeats']} repeats: serial {data['serial']['runs_per_sec']}/s, "
        f"parallel[{data['parallel']['workers']}] {data['parallel']['runs_per_sec']}/s "
        f"(speedup {data['speedup']}x, equivalent={data['equivalent']}) -> {args.out}"
    )
    print(
        f"tracing: disabled overhead {tracing['overhead_pct']}% "
        f"(off {tracing['off']['runs_per_sec']}/s), "
        f"null-sink overhead {tracing['null_sink_overhead_pct']}% "
        f"({tracing['null_sink']['runs_per_sec']}/s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
