"""Figures 5/6: the instrumented target system on fault-free arrestments.

The experimental precondition of Section 3.4: across the whole test-case
envelope, the fully instrumented system (all seven assertions active at
the Figure-6 locations) reports no detection and violates no constraint.
The benchmark measures one full arrestment of the mid-envelope aircraft.
"""

from repro.arrestor.system import TargetSystem, TestCase
from repro.experiments.testcases import make_test_cases


def test_fig5_fault_free_arrestment(benchmark):
    def arrest():
        return TargetSystem(TestCase(14000.0, 55.0)).run()

    result = benchmark.pedantic(arrest, rounds=3, iterations=1)
    assert not result.detected
    assert not result.failed
    assert result.summary.stopped

    print()
    print("Figures 5/6. Fault-free arrestment, mid-envelope aircraft:")
    s = result.summary
    print(f"  stop distance {s.stop_distance_m:6.1f} m   (limit 335 m)")
    print(f"  peak retardation {s.max_retardation_g:4.2f} g  (limit 2.8 g)")
    print(f"  peak cable force {s.max_cable_force_n / 1e3:6.1f} kN")
    print(f"  duration {s.duration_s:5.1f} s")


def test_fig5_fault_free_grid_precondition(benchmark):
    corners = [
        case
        for case in make_test_cases()
        if case.mass_kg in (8000.0, 20000.0) and case.velocity_mps in (40.0, 70.0)
    ]

    def arrest_corners():
        return [TargetSystem(case).run() for case in corners]

    results = benchmark.pedantic(arrest_corners, rounds=1, iterations=1)
    assert len(results) == 4
    for result in results:
        assert not result.detected
        assert not result.failed
        assert result.summary.stop_distance_m < 335.0
