"""Validation of the Section-2.4 coverage model.

``Pdetect = (Pen * Pprop + Pem) * Pds`` — the paper measures ``Pds``
(E1) and ``Pdetect`` (E2) and notes (Section 5.2) that turning one into
the other requires knowing how errors distribute over the monitored
signals, which "is most likely not the case" to be uniform.  This
benchmark measures the missing middle term ``Pprop`` directly, by
comparing monitored-signal trajectories against fault-free runs, and
confronts the model's prediction with the measured detection rate.

Expected outcome (and the paper's own caveat, quantified): the model
*over-predicts* — errors that propagate into a monitored signal arrive
as small, smooth disturbances that the envelopes tolerate far more often
than the bit-flip errors behind the E1-measured ``Pds``.
"""

from repro.arrestor.signals_map import MasterMemory
from repro.arrestor.system import TestCase
from repro.experiments.propagation import compute_pem, run_propagation_study
from repro.injection.errors import build_e2_error_set

_CASE = TestCase(14000.0, 55.0)
_N_ERRORS = 60


def test_model_validation(benchmark, e1_results):
    errors = build_e2_error_set(MasterMemory())[:_N_ERRORS]

    def study_run():
        return run_propagation_study(errors, _CASE)

    study = benchmark.pedantic(study_run, rounds=1, iterations=1)

    pds = e1_results.coverage(version="All").p_d.fraction
    predicted = study.predicted_pdetect(pds)
    measured = study.detected.fraction

    print()
    print("Section 2.4 model validation (non-monitored-location errors):")
    print(f"  Pem   (layout)      = {study.pem:.4f}")
    print(f"  Pprop (measured)    = {study.pprop.format()} %")
    print(f"  Pds   (E1 measured) = {100 * pds:.1f} %")
    print(f"  model Pdetect       = {100 * predicted:.1f} %")
    print(f"  measured detection  = {study.detected.format()} %")
    print("  -> the model upper-bounds the measurement: propagated errors")
    print("     arrive as smooth disturbances the envelopes tolerate")

    # Structural sanity of the inputs.
    assert 0.0 < study.pem < 0.05  # 14 monitored bytes of 1425
    assert study.pprop.ne >= _N_ERRORS * 0.8  # few errors sit in monitored bytes
    # Propagation exists but is far from universal.
    assert 0.0 < study.pprop.fraction < 0.6
    # The model's uniformity assumption over-predicts detection for
    # propagated errors (the paper's Section-5.2 caveat).
    assert predicted >= measured


def test_pem_is_layout_deterministic():
    assert compute_pem() == compute_pem()
    # 7 signals x 2 bytes over 417 + 1008 bytes.
    assert abs(compute_pem() - 14 / 1425) < 1e-12
