"""Ablation: assertion test period vs detectability.

The Table-2 rates are *per test*: testing a signal less often widens the
legal per-test change and with it the envelope an error can hide in.
This ablation runs the same pulse-counter stream (the paper's pulscnt
shape) through monitors tested every 1 / 7 / 21 ms — the candidate
module periods of the target — with the rate envelope scaled to the
period, and measures which injected bit-flips stay detectable.

The effect the paper's placement implicitly exploits: DIST_S tests
pulscnt at the fastest (1-ms) period, which keeps the envelope at 2
pulses per test and catches everything above bit 1.
"""

from repro.core.assertions import ContinuousAssertion
from repro.core.parameters import ContinuousParams

#: Simulated engagement: 55 m/s over the pulse pitch = 1.1 pulses/ms.
_PULSES_PER_MS = 1.1
_DURATION_MS = 8000
_INJECT_EVERY_MS = 20
_BITS = (1, 2, 3, 4, 5, 6)


def _pulse_count(t_ms):
    return int(_PULSES_PER_MS * t_ms)


def _detects(test_period_ms, bit):
    """Does a period-scaled monitor catch a toggling 2^bit error?"""
    envelope = ContinuousParams.dynamic_monotonic(
        0, 60000, rmin=0, rmax=2 * test_period_ms, increasing=True
    )
    assertion = ContinuousAssertion(envelope)
    prev = None
    corrupted = 0
    for t in range(0, _DURATION_MS, test_period_ms):
        if (t // _INJECT_EVERY_MS) % 2 == 1:
            corrupted = 1 << bit  # the toggling flip is currently applied
        else:
            corrupted = 0
        sample = _pulse_count(t) + corrupted
        if not assertion.holds(sample, prev):
            return True
        prev = sample
    return False


def test_ablation_test_period(benchmark):
    def sweep():
        return {
            period: [bit for bit in _BITS if _detects(period, bit)]
            for period in (1, 7, 21)
        }

    detected = benchmark(sweep)

    print()
    print("Ablation: detectable pulscnt bit-flips vs assertion test period")
    for period, bits in detected.items():
        escaped = [b for b in _BITS if b not in bits]
        print(f"  period {period:2d} ms (rmax={2 * period:2d}/test): "
              f"detected bits {bits}, escaped {escaped}")

    # Faster testing => tighter envelope => at least as many bits caught.
    assert set(detected[7]) <= set(detected[1])
    assert set(detected[21]) <= set(detected[7])
    # The 1-ms period catches everything from bit 2 up (the paper's EA4).
    assert {2, 3, 4, 5, 6} <= set(detected[1])
    # The 21-ms period lets more low bits hide: any flip smaller than the
    # ~23-pulse natural increment keeps the per-test delta positive and
    # inside the 42-pulse envelope.
    assert 4 not in detected[21]
