"""Serving-engine throughput: fleet-scale online monitoring in one process.

Streams synthetic telemetry through :mod:`repro.serve` and writes
``BENCH_serve.json``::

    {
      "benchmark": "serve",
      "schema_version": 1,
      "target": T,
      "cpus": N,
      "workers": N,
      "frame_ticks": N,
      "sustained": {"sessions": N, "frames": N, "rounds": N, "seconds": S,
                    "frames_per_sec": F, "ticks_per_sec": T,
                    "dropped_frames": 0, "completed_sessions": N,
                    "detections": N},
      "latency_ms": {"p50": X, "p95": X, "p99": X, "samples": N},
      "paths": {"sessions": N, "horizon_ms": MS,
                "serial": {"frames": N, "seconds": S, "frames_per_sec": F},
                "batch":  {"frames": N, "seconds": S, "frames_per_sec": F},
                "speedup": X},
      "saturation": [{"sessions": N, "frames_per_sec": F,
                      "ticks_per_sec": T, "seconds": S}, ...],
      "equivalence": {"checked_runs": N, "identical": true,
                      "targets": ["arrestor", "tanklevel"]}
    }

Interpreting the sections:

* ``sustained`` is the headline: one process serving ``--sessions``
  concurrent monitored instances on the vectorized path, every session
  streamed to its natural window end, with **zero dropped frames**.
  ``frames_per_sec`` is measured over the streaming loop only (boots go
  through the snapshot cache before the clock starts).
* ``latency_ms`` is the wall-clock frame-serving latency distribution
  (ingress enqueue to monitors-advanced) over the sustained run.
* ``paths`` prices the vectorized serving path against the serial
  fallback on the identical load (same sessions, same stream).
  ``speedup`` is the committed artifact's >= 5x gate; ``--check
  --smoke`` only requires >= 1x so tiny smoke scales stay honest.
* ``saturation`` sweeps session counts at a short horizon so the knee
  (where per-frame scheduling overhead stops amortizing) is visible.
* ``equivalence`` is the correctness gate: for every checked spec, the
  fleet's online detection-event sequence must be event-for-event
  identical to the offline campaign path (a fresh system driven by
  ``TimeTriggeredInjector``) on **both** registered targets, serial and
  vectorized.  The validator refuses a document whose gate is false.

Usage::

    python benchmarks/bench_serve.py [--target NAME] [--sessions N]
                                     [--frame-ticks MS] [--workers N]
                                     [--out FILE] [--smoke]
    python benchmarks/bench_serve.py --check FILE [--smoke]

``make bench-serve`` writes the committed full-scale artifact;
``make serve-smoke`` (wired into ``make lint``) runs the tiny smoke
scale and validates it.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.serve import (  # noqa: E402
    FleetConfig,
    SessionSpec,
    percentile,
    serve_replay,
    synthetic_specs,
)
from repro.serve.session import events_key  # noqa: E402

SCHEMA_VERSION = 1

#: Shard width pinned for emitted artifacts, deterministic across hosts.
BENCH_WORKERS = 2

#: Sim-milliseconds per telemetry frame.  Large enough that kernel work
#: (not per-frame scheduling) dominates, as a monitoring heartbeat would.
BENCH_FRAME_TICKS = 100

_THROUGHPUT_KEYS = {"frames": int, "seconds": float, "frames_per_sec": float}


def validate_bench_json(data: dict, smoke: bool = False) -> None:
    """Raise ``ValueError`` unless *data* matches the BENCH_serve schema.

    Always enforced: zero dropped frames and the serve-vs-offline
    equivalence gate.  Full artifacts (``smoke=False``) must additionally
    show >= 1000 sustained sessions and a >= 5x vectorized-path speedup;
    smoke artifacts only need the batch path to not be a regression
    (>= 1x).
    """

    def _section(name: str, keys: dict) -> dict:
        section = data
        for part in name.split("."):
            section = section.get(part) if isinstance(section, dict) else None
        if not isinstance(section, dict):
            raise ValueError(f"missing or non-object section {name!r}")
        for key, kind in keys.items():
            value = section.get(key)
            accepted = (int, float) if kind is float else kind
            if value is None or isinstance(value, bool) or not isinstance(value, accepted):
                raise ValueError(f"{name}.{key} must be {kind.__name__}")
        return section

    if data.get("benchmark") != "serve":
        raise ValueError("benchmark field must be 'serve'")
    if data.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(f"schema_version must be {SCHEMA_VERSION}")
    if not isinstance(data.get("target"), str) or not data["target"]:
        raise ValueError("target must be a non-empty string")
    for key in ("cpus", "workers", "frame_ticks"):
        if isinstance(data.get(key), bool) or not isinstance(data.get(key), int):
            raise ValueError(f"{key} must be an integer")

    sustained = _section(
        "sustained",
        {
            "sessions": int,
            "rounds": int,
            "dropped_frames": int,
            "completed_sessions": int,
            "detections": int,
            **_THROUGHPUT_KEYS,
            "ticks_per_sec": float,
        },
    )
    if sustained["dropped_frames"] != 0:
        raise ValueError(
            f"sustained.dropped_frames must be 0 under backpressure, "
            f"got {sustained['dropped_frames']}"
        )
    if not smoke and sustained["sessions"] < 1000:
        raise ValueError(
            f"sustained.sessions must be >= 1000 for a full artifact, "
            f"got {sustained['sessions']}"
        )

    latency = _section("latency_ms", {"p50": float, "p95": float, "p99": float,
                                      "samples": int})
    if not latency["p50"] <= latency["p95"] <= latency["p99"]:
        raise ValueError("latency_ms percentiles must be non-decreasing")

    paths = _section("paths", {"sessions": int, "horizon_ms": int, "speedup": float})
    _section("paths.serial", _THROUGHPUT_KEYS)
    _section("paths.batch", _THROUGHPUT_KEYS)
    floor = 1.0 if smoke else 5.0
    if paths["speedup"] < floor:
        raise ValueError(
            f"throughput regression: vectorized serving is only "
            f"{paths['speedup']}x the serial path (floor {floor}x)"
        )

    saturation = data.get("saturation")
    if not isinstance(saturation, list) or not saturation:
        raise ValueError("saturation must be a non-empty list")
    for index, point in enumerate(saturation):
        if not isinstance(point, dict):
            raise ValueError(f"saturation[{index}] must be an object")
        for key in ("sessions", "frames_per_sec", "ticks_per_sec", "seconds"):
            value = point.get(key)
            if value is None or isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                raise ValueError(f"saturation[{index}].{key} must be a number")

    equivalence = _section("equivalence", {"checked_runs": int})
    if equivalence["checked_runs"] < 1:
        raise ValueError("equivalence.checked_runs must be positive")
    if not isinstance(equivalence.get("targets"), list) or not equivalence["targets"]:
        raise ValueError("equivalence.targets must be a non-empty list")
    if equivalence.get("identical") is not True:
        raise ValueError(
            "equivalence.identical must be true (online serving disagrees "
            "with the offline campaign path)"
        )


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _throughput(frames: int, seconds: float) -> dict:
    return {
        "frames": frames,
        "seconds": round(seconds, 3),
        "frames_per_sec": round(frames / seconds, 1) if seconds else 0.0,
    }


def _offline_events(target, spec: SessionSpec):
    """The offline oracle: one campaign-path run of *spec*'s schedule."""
    from repro.injection.errors import ErrorSpec
    from repro.injection.fic import CampaignController
    from repro.injection.injector import TimeTriggeredInjector

    controller = CampaignController(
        target=target,
        injection_period_ms=spec.period_ms,
        injection_start_ms=spec.start_ms,
    )
    system = controller._build_system(spec.test_case(), spec.version,
                                      fast_forward=True)
    variable = target.memory().signal_variable(spec.signal)
    error = ErrorSpec(
        name="bench",
        address=variable.address + (spec.signal_bit >> 3),
        bit=spec.signal_bit & 7,
        area="ram",
        signal=spec.signal,
        signal_bit=spec.signal_bit,
    )
    injector = TimeTriggeredInjector(
        error, period_ms=spec.period_ms, start_ms=spec.start_ms
    )
    result = system.run(injector)
    key = [
        (e.time, e.monitor_id, e.signal, e.value, e.previous)
        for e in system.detection_log.events
    ]
    return result, key


def check_equivalence(frame_ticks: int, specs_per_target: int = 2) -> dict:
    """Serve vs offline, event-for-event, on every registered target."""
    from repro.targets.registry import get_target, target_names

    checked = 0
    identical = True
    targets = []
    for name in target_names():
        target = get_target(name)
        if not target.supports_snapshots():
            continue
        targets.append(name)
        signals = target.monitored_signals
        for index in range(specs_per_target):
            spec = SessionSpec(
                session_id=f"eq-{name}-{index}",
                target=name,
                signal=signals[index % len(signals)],
                signal_bit=(3 * index + 1) % 16,
                period_ms=20,
                start_ms=0,
            )
            offline_result, offline_key = _offline_events(target, spec)
            modes = [False] + ([True] if target.supports_batch() else [])
            for batch in modes:
                report = serve_replay(
                    [spec],
                    FleetConfig(workers=1, batch=batch),
                    frame_ticks=frame_ticks,
                )
                outcome = report.outcomes[spec.session_id]
                served = events_key(outcome.events)
                if batch:
                    # The vectorized book keeps (time, monitor, signal) only.
                    same = [(t, m, s) for (t, m, s, _, _) in served] == [
                        (t, m, s) for (t, m, s, _, _) in offline_key
                    ]
                else:
                    same = served == offline_key
                same = same and (
                    outcome.result.detected == offline_result.detected
                    and outcome.result.injection_count
                    == offline_result.injection_count
                    and outcome.result.duration_ms == offline_result.duration_ms
                )
                checked += 1
                identical = identical and same
    return {"checked_runs": checked, "identical": identical, "targets": targets}


def run_benchmark(
    target: str = "tanklevel",
    sessions: int = 1000,
    frame_ticks: int = BENCH_FRAME_TICKS,
    workers: int = BENCH_WORKERS,
    smoke: bool = False,
) -> dict:
    def _config(batch: bool) -> FleetConfig:
        return FleetConfig(workers=workers, batch=batch)

    # Sustained load: every session streamed to its natural window end
    # on the vectorized path (the production configuration).
    sustained_specs = synthetic_specs(target, sessions)
    sustained = serve_replay(
        sustained_specs,
        _config(batch=True),
        frame_ticks=frame_ticks,
        horizon_ms=500 if smoke else None,
    )
    latency = sorted(sustained.latency_samples)

    # Serial vs vectorized on the identical (smaller) load.  The smoke
    # scale sits above the batch path's break-even (~48 sessions at this
    # frame size) so the >= 1x guard measures the path, not fixed costs.
    paths_sessions = 96 if smoke else max(64, sessions // 2)
    paths_horizon = 1000 if smoke else 2000
    paths_specs = synthetic_specs(target, paths_sessions)
    serial = serve_replay(
        paths_specs, _config(batch=False),
        frame_ticks=frame_ticks, horizon_ms=paths_horizon,
    )
    batch = serve_replay(
        paths_specs, _config(batch=True),
        frame_ticks=frame_ticks, horizon_ms=paths_horizon,
    )
    speedup = (
        batch.frames_per_sec / serial.frames_per_sec
        if serial.frames_per_sec
        else 0.0
    )

    # Saturation sweep: where does adding sessions stop paying?
    sweep = [max(4, sessions // 16), max(8, sessions // 4)] if smoke else sorted(
        {max(64, sessions // 8), max(128, sessions // 4), max(256, sessions // 2),
         sessions}
    )
    saturation = []
    for count in sweep:
        point = serve_replay(
            synthetic_specs(target, count),
            _config(batch=True),
            frame_ticks=frame_ticks,
            horizon_ms=500 if smoke else 1000,
        )
        saturation.append(
            {
                "sessions": count,
                "frames_per_sec": round(point.frames_per_sec, 1),
                "ticks_per_sec": round(point.ticks_per_sec, 1),
                "seconds": round(point.seconds, 3),
            }
        )

    equivalence = check_equivalence(
        frame_ticks=20, specs_per_target=1 if smoke else 2
    )

    return {
        "benchmark": "serve",
        "schema_version": SCHEMA_VERSION,
        "target": target,
        "cpus": _cpus(),
        "workers": workers,
        "frame_ticks": frame_ticks,
        "sustained": {
            "sessions": len(sustained_specs),
            "rounds": sustained.rounds,
            **_throughput(sustained.frames_sent, sustained.seconds),
            "ticks_per_sec": round(sustained.ticks_per_sec, 1),
            "dropped_frames": sustained.dropped,
            "completed_sessions": sum(
                1 for o in sustained.outcomes.values() if o.completed
            ),
            "detections": sustained.detections,
        },
        "latency_ms": {
            "p50": round(percentile(latency, 0.50), 3),
            "p95": round(percentile(latency, 0.95), 3),
            "p99": round(percentile(latency, 0.99), 3),
            "samples": len(latency),
        },
        "paths": {
            "sessions": paths_sessions,
            "horizon_ms": paths_horizon,
            "serial": _throughput(serial.frames_sent, serial.seconds),
            "batch": _throughput(batch.frames_sent, batch.seconds),
            "speedup": round(speedup, 3),
        },
        "saturation": saturation,
        "equivalence": equivalence,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--target",
        default="tanklevel",
        metavar="NAME",
        help="workload for the throughput sections; equivalence always "
        "covers every servable target (default: %(default)s — the one "
        "with a vectorized serving kernel)",
    )
    parser.add_argument("--sessions", type=int, default=1000, metavar="N")
    parser.add_argument(
        "--frame-ticks", type=int, default=BENCH_FRAME_TICKS, metavar="MS"
    )
    parser.add_argument("--workers", type=int, default=BENCH_WORKERS, metavar="N")
    parser.add_argument("--out", default="BENCH_serve.json", metavar="FILE")
    parser.add_argument(
        "--check",
        default=None,
        metavar="FILE",
        help="validate an emitted BENCH_serve.json instead of benchmarking",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny scale (and, with --check, the relaxed smoke gates)",
    )
    args = parser.parse_args(argv)

    if args.check:
        with open(args.check, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        try:
            validate_bench_json(data, smoke=args.smoke)
        except ValueError as exc:
            print(f"{args.check}: INVALID: {exc}")
            return 1
        print(
            f"{args.check}: schema OK "
            f"({data['sustained']['sessions']} sessions sustained, "
            f"batch path {data['paths']['speedup']}x, "
            f"equivalent={data['equivalence']['identical']})"
        )
        return 0

    if args.smoke:
        args.sessions = min(args.sessions, 48)
    data = run_benchmark(
        target=args.target,
        sessions=args.sessions,
        frame_ticks=args.frame_ticks,
        workers=args.workers,
        smoke=args.smoke,
    )
    validate_bench_json(data, smoke=args.smoke)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2)
        handle.write("\n")
    sustained = data["sustained"]
    latency = data["latency_ms"]
    paths = data["paths"]
    print(
        f"[{data['target']}] sustained {sustained['sessions']} sessions on "
        f"{data['cpus']} cpu(s): {sustained['frames_per_sec']} frames/s "
        f"({sustained['ticks_per_sec']} sim-ticks/s), "
        f"{sustained['dropped_frames']} dropped, "
        f"{sustained['completed_sessions']} completed, "
        f"{sustained['detections']} detections -> {args.out}"
    )
    print(
        f"frame latency: p50={latency['p50']}ms p95={latency['p95']}ms "
        f"p99={latency['p99']}ms over {latency['samples']} frames"
    )
    print(
        f"paths[{paths['sessions']} sessions]: serial "
        f"{paths['serial']['frames_per_sec']}/s vs batch "
        f"{paths['batch']['frames_per_sec']}/s = {paths['speedup']}x"
    )
    knee = ", ".join(
        f"{p['sessions']}:{p['frames_per_sec']}/s" for p in data["saturation"]
    )
    print(f"saturation: {knee}")
    print(
        f"equivalence: {data['equivalence']['checked_runs']} runs on "
        f"{', '.join(data['equivalence']['targets'])} -> "
        f"identical={data['equivalence']['identical']}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
