"""Ablation: sensitivity to the 20-ms injection period.

Section 3.4 fixes the time-triggered injection period at 20 ms (most
module periods are 7 ms), so errors may be injected during assertion
execution.  This ablation probes how the period choice affects detection
of a timing-sensitive error: the LSB of pulscnt, whose detection relies
on an un-flip coinciding with a zero-pulse millisecond.
"""

from repro.arrestor.signals_map import MasterMemory
from repro.arrestor.system import TestCase
from repro.injection.errors import build_e1_error_set
from repro.injection.fic import CampaignController

_CASE = TestCase(14000.0, 45.0)
_PERIODS_MS = (7, 20, 200)


def _latency_for_period(period_ms):
    errors = build_e1_error_set(MasterMemory())
    pulscnt_lsb = [e for e in errors if e.signal == "pulscnt"][0]
    controller = CampaignController(injection_period_ms=period_ms)
    record = controller.run_injection(pulscnt_lsb, _CASE, "All")
    return record.detected, record.latency_ms


def test_ablation_injection_period(benchmark):
    def sweep():
        return {p: _latency_for_period(p) for p in _PERIODS_MS}

    outcome = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("Ablation: pulscnt LSB detection vs injection period")
    for period, (detected, latency) in outcome.items():
        print(f"  period {period:4d} ms: detected={detected}  first latency={latency} ms")

    # More frequent injection gives the toggling error more chances to be
    # caught: detection must not degrade as the period shrinks.
    detected_flags = [outcome[p][0] for p in _PERIODS_MS]
    for faster, slower in zip(detected_flags, detected_flags[1:]):
        assert faster >= slower
