"""Table 6: the distribution of errors in the error set E1.

Regenerates the table (7 signals x 16 bit-flip errors, numbered S1-S112)
and benchmarks error-set construction.
"""

from repro.arrestor.signals_map import MONITORED_SIGNALS, MasterMemory
from repro.experiments.tables import render_table6
from repro.injection.errors import build_e1_error_set, build_e2_error_set


def test_table6_error_set_distribution(benchmark):
    memory = MasterMemory()
    errors = benchmark(build_e1_error_set, memory)

    assert len(errors) == 112
    for signal in MONITORED_SIGNALS:
        assert sum(1 for e in errors if e.signal == signal) == 16

    print()
    print("Table 6. The distribution of errors in the error set E1.")
    print(render_table6(errors, cases_per_error=25))


def test_table6_e2_error_set_construction(benchmark):
    memory = MasterMemory()
    errors = benchmark(build_e2_error_set, memory)
    assert len(errors) == 200
    assert sum(1 for e in errors if e.area == "ram") == 150
    assert sum(1 for e in errors if e.area == "stack") == 50
