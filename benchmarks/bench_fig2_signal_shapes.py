"""Figure 2: the three continuous signal shapes.

Generates traces with the shapes of Figure 2 — (a) random, (b) static
monotonic with wrap-around, (c) dynamic monotonic — runs the assertion
engines along them (clean traces must pass every test) and benchmarks
the assertion sweep.  A perturbed copy of each trace must fail.
"""

import math

from repro.core.assertions import ContinuousAssertion
from repro.core.parameters import ContinuousParams

_N = 2000


def _random_trace():
    # A bounded pseudo-random walk (deterministic: sum of sines).
    return [
        int(500 + 200 * math.sin(0.07 * t) + 120 * math.sin(0.31 * t + 1.0))
        for t in range(_N)
    ]


def _static_wrap_trace():
    return [(7 * t) % 1000 for t in range(_N)]


def _dynamic_trace():
    value, out = 0, []
    for t in range(_N):
        value += (t * 2654435761 >> 8) % 4  # 0..3 pseudo-random increments
        out.append(value)
    return out


_SHAPES = {
    "random": (
        _random_trace(),
        ContinuousParams.random(0, 1000, rmax_incr=60, rmax_decr=60),
    ),
    "static-monotonic-wrap": (
        _static_wrap_trace(),
        # The Table-2 wrap formula measures (s'-smin)+(smax-s) across the
        # edge, so smax is set one rate-step below the modulus.
        ContinuousParams.static_monotonic(0, 1000, 7, wrap=True),
    ),
    "dynamic-monotonic": (
        _dynamic_trace(),
        ContinuousParams.dynamic_monotonic(0, 10_000, 0, 3),
    ),
}


def _sweep(assertion, trace):
    prev = None
    failures = 0
    for value in trace:
        if not assertion.holds(value, prev):
            failures += 1
        prev = value
    return failures


def test_fig2_clean_traces_pass(benchmark):
    engines = {
        name: (ContinuousAssertion(params), trace)
        for name, (trace, params) in _SHAPES.items()
    }

    def sweep_all():
        return {name: _sweep(a, trace) for name, (a, trace) in engines.items()}

    failures = benchmark(sweep_all)

    print()
    print("Figure 2. Continuous signal shapes, assertion failures on clean traces:")
    for name, count in failures.items():
        print(f"  {name:25s} {count} / {_N} samples flagged")
    assert all(count == 0 for count in failures.values()), failures


def test_fig2_perturbed_traces_fail():
    for name, (trace, params) in _SHAPES.items():
        assertion = ContinuousAssertion(params)
        corrupted = list(trace)
        corrupted[_N // 2] ^= 1 << 9  # a bit-9 flip mid-trace
        assert _sweep(assertion, corrupted) > 0, f"{name} should flag the flip"
