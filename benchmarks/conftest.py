"""Shared campaign fixtures for the benchmark suite.

The E1/E2 campaigns are the expensive part (hundreds to thousands of
simulated arrestments); they run once per session here and are shared by
every table/figure benchmark.  Campaign sizing follows
:meth:`repro.experiments.CampaignConfig.from_env`:

* default: every error, a reduced test-case subset (minutes of runtime);
* ``REPRO_FULL=1``: the paper's full 25-case scale (hours);
* ``REPRO_CASES_ALL`` / ``REPRO_CASES_EA`` / ``REPRO_CASES_E2``:
  individual overrides.
"""

import sys
import time

import pytest

from repro.experiments.campaign import (
    CampaignConfig,
    run_e1_campaign,
    run_e2_campaign,
)


def _progress(label):
    start = time.time()

    def hook(done, total):
        if done % 50 == 0 or done == total:
            elapsed = time.time() - start
            sys.stderr.write(
                f"\r[{label}] {done}/{total} runs ({elapsed:.0f}s elapsed)"
            )
            if done == total:
                sys.stderr.write("\n")
            sys.stderr.flush()

    return hook


@pytest.fixture(scope="session")
def campaign_config():
    return CampaignConfig.from_env()


@pytest.fixture(scope="session")
def e1_results(campaign_config):
    """The E1 experiment (Tables 7 and 8), run once per session."""
    return run_e1_campaign(campaign_config, progress=_progress("E1"))


@pytest.fixture(scope="session")
def e2_results(campaign_config):
    """The E2 experiment (Table 9), run once per session."""
    return run_e2_campaign(campaign_config, progress=_progress("E2"))
