"""Ablation: detection probability vs injected bit position.

Section 5.1 explains the continuous signals' partial coverage: *"the
errors most likely to remain undetected are those affecting the least
significant bits of the signal"*.  This ablation makes that analysis a
measurement: detection per bit position for a counter signal (mscnt) and
for a continuous environment signal (SetValue).
"""

from repro.arrestor.signals_map import MasterMemory
from repro.arrestor.system import TestCase
from repro.injection.errors import build_e1_error_set
from repro.injection.fic import CampaignController

_CASE = TestCase(14000.0, 55.0)
_BITS = (0, 2, 4, 6, 8, 10, 12, 14)


def _sweep(signal):
    errors = [e for e in build_e1_error_set(MasterMemory()) if e.signal == signal]
    controller = CampaignController()
    outcome = {}
    for bit in _BITS:
        record = controller.run_injection(errors[bit], _CASE, "All")
        outcome[bit] = record.detected
    return outcome


def test_ablation_bit_position(benchmark):
    def sweep_both():
        return {"mscnt": _sweep("mscnt"), "SetValue": _sweep("SetValue")}

    outcomes = benchmark.pedantic(sweep_both, rounds=1, iterations=1)

    print()
    print("Ablation: detection vs bit position (x = detected, . = escaped)")
    for signal, per_bit in outcomes.items():
        row = " ".join("x" if per_bit[b] else "." for b in _BITS)
        print(f"  {signal:10s} bits {_BITS}: {row}")

    # The counter catches every probed bit.
    assert all(outcomes["mscnt"].values())
    # The continuous signal misses low bits and catches high bits.
    assert not outcomes["SetValue"][0]
    assert outcomes["SetValue"][14]
    low = [outcomes["SetValue"][b] for b in (0, 2, 4)]
    high = [outcomes["SetValue"][b] for b in (10, 12, 14)]
    assert sum(high) > sum(low)
