"""Table 9: results for error set E2 (random RAM/stack locations).

Regenerates the E2 table from the shared campaign and checks the shape
the paper reports:

* overall detection probability is low (most random locations are cold);
* RAM errors that cause failure are detected with high probability
  (paper: 81 %) — failures come from state that propagates into the
  monitored signals;
* stack errors are detected worse than RAM errors (control-flow errors,
  which the mechanisms are not aimed at);
* E2 latencies exceed E1 latencies (propagation takes time).
"""

from repro.experiments.tables import render_table9


def test_table9_random_memory_errors(benchmark, e1_results, e2_results):
    table = benchmark(render_table9, e2_results)

    print()
    print("Table 9. Results for error set E2")
    print("(paper: RAM P(d)=12.8, P(d|fail)=81.1; stack P(d)=4.2, P(d|fail)=13.7;")
    print(" total P(d)=10.6, P(d|fail)=39.4).")
    print(table)

    ram = e2_results.coverage(area="ram")
    stack = e2_results.coverage(area="stack")
    total = e2_results.coverage()

    # Overall coverage is low: most random bits are cold.
    assert total.p_d.percent < 40.0  # paper: 10.6

    # RAM failures are caught with high probability.
    if ram.p_d_fail.defined and ram.p_d_fail.ne >= 3:
        assert ram.p_d_fail.percent >= 50.0  # paper: 81.1

    # Stack coverage below RAM coverage (control-flow errors).
    assert stack.p_d.percent <= ram.p_d.percent + 5.0

    # E2 latencies longer than E1 latencies (propagation delay).
    e1_avg = e1_results.latency(version="All").average
    e2_avg = e2_results.latency().average
    if e2_avg is not None and e1_avg is not None:
        assert e2_avg > 0.5 * e1_avg
