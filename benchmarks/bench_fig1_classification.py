"""Figure 1: the signal classification scheme, executable.

The figure is a taxonomy; its executable counterpart is the Table-1
template dispatch: given a parameter set, which leaf class does it
satisfy?  The benchmark measures classification dispatch and asserts the
taxonomy's structure.
"""

from repro.core.classes import CONTINUOUS_CLASSES, DISCRETE_CLASSES, SignalClass
from repro.core.parameters import (
    ContinuousParams,
    DiscreteParams,
    classify_continuous,
    linear_transition_map,
)

_EXAMPLES = [
    (ContinuousParams.static_monotonic(0, 0xFFFF, 1), SignalClass.CONTINUOUS_MONOTONIC_STATIC),
    (ContinuousParams.dynamic_monotonic(0, 9000, 0, 2), SignalClass.CONTINUOUS_MONOTONIC_DYNAMIC),
    (ContinuousParams.random(0, 6000, 250, 250), SignalClass.CONTINUOUS_RANDOM),
]


def test_fig1_continuous_classification(benchmark):
    def classify_all():
        return [classify_continuous(params) for params, _ in _EXAMPLES]

    classes = benchmark(classify_all)
    assert classes == [expected for _, expected in _EXAMPLES]


def test_fig1_discrete_classification(benchmark):
    sequential_linear = linear_transition_map(range(7))
    sequential_nonlinear = DiscreteParams.sequential(
        {"v1": ["v2", "v4"], "v2": ["v3", "v4"], "v3": ["v4"], "v4": ["v5"], "v5": ["v1"]}
    )
    random_discrete = DiscreteParams.random({"on", "off", "standby"})

    def classify_all():
        return [
            sequential_linear.classify(),
            sequential_nonlinear.classify(),
            random_discrete.classify(),
        ]

    classes = benchmark(classify_all)
    assert classes == [
        SignalClass.DISCRETE_SEQUENTIAL_LINEAR,
        SignalClass.DISCRETE_SEQUENTIAL_NONLINEAR,
        SignalClass.DISCRETE_RANDOM,
    ]

    print()
    print("Figure 1. Signal classification scheme (leaf classes):")
    for cls in sorted(CONTINUOUS_CLASSES | DISCRETE_CLASSES, key=lambda c: c.value):
        print(f"  {cls.value:10s}  {cls.name}")
