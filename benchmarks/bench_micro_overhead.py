"""Micro-benchmarks: the run-time cost of the mechanisms themselves.

The paper positions executable assertions as a *low-cost* technique;
these benchmarks quantify the per-test cost of each engine and the
end-to-end overhead the seven assertions add to a control cycle.
"""

from repro.arrestor.system import TargetSystem, TestCase
from repro.core.assertions import ContinuousAssertion, DiscreteAssertion
from repro.core.monitor import SignalMonitor
from repro.core.classes import SignalClass
from repro.core.parameters import ContinuousParams, linear_transition_map

_CASE = TestCase(14000.0, 55.0)


def test_continuous_assertion_throughput(benchmark):
    assertion = ContinuousAssertion(
        ContinuousParams.random(0, 10000, rmax_incr=460, rmax_decr=460)
    )
    samples = [(i * 37) % 8000 for i in range(1000)]

    def sweep():
        prev = None
        ok = 0
        for value in samples:
            if assertion.holds(value, prev):
                ok += 1
            prev = value
        return ok

    benchmark(sweep)


def test_discrete_assertion_throughput(benchmark):
    assertion = DiscreteAssertion(linear_transition_map(range(7)))
    samples = [i % 7 for i in range(1, 1001)]

    def sweep():
        prev = 0
        ok = 0
        for value in samples:
            if assertion.holds(value, prev):
                ok += 1
            prev = value
        return ok

    benchmark(sweep)


def test_signal_monitor_throughput(benchmark):
    monitor = SignalMonitor(
        "mscnt",
        SignalClass.CONTINUOUS_MONOTONIC_STATIC,
        ContinuousParams.static_monotonic(0, 0xFFFF, 1, wrap=True),
    )

    def sweep():
        for value in range(1000):
            monitor.test(value, value)

    benchmark.pedantic(sweep, rounds=20, iterations=1, setup=monitor.reset)


def test_arrestment_with_and_without_assertions(benchmark):
    """End-to-end overhead of the full instrumentation."""

    def instrumented():
        return TargetSystem(_CASE).run().duration_ms

    duration = benchmark.pedantic(instrumented, rounds=2, iterations=1)

    bare = TargetSystem(_CASE, enabled_eas=()).run()
    assert abs(bare.duration_ms - duration) < 500  # same control behaviour
