"""Ablation: guarding the unchecked COMM consumer of SetValue.

Table 4 places SetValue's assertion in V_REG (one of its two consumers);
the COMM transmission to the slave node samples the signal *without*
passing the test, so with recovery enabled on the master a corrupt set
point can still reach the slave's drum between the V_REG and COMM slots.
This ablation adds the same assertion (plus hold-last-valid recovery) at
the slave's reception and measures the end-to-end effect on SetValue
MSB errors — a placement-completeness experiment in the spirit of the
paper's step 7 ("decide on locations for the mechanisms").
"""

from repro.arrestor.signals_map import MasterMemory
from repro.arrestor.system import RunConfig, TargetSystem, TestCase
from repro.injection.errors import build_e1_error_set
from repro.injection.injector import TimeTriggeredInjector

_CASE = TestCase(14000.0, 55.0)
_BITS = (12, 13, 14, 15)


def _failures(with_slave_assertion):
    errors = [
        e for e in build_e1_error_set(MasterMemory()) if e.signal == "SetValue"
    ]
    failures = 0
    detections = 0
    for bit in _BITS:
        config = RunConfig(
            with_recovery=True,
            slave_assertion=with_slave_assertion,
        )
        system = TargetSystem(_CASE, config=config)
        result = system.run(TimeTriggeredInjector(errors[bit], start_ms=500))
        failures += result.failed
        detections += result.detected
    return failures, detections


def test_ablation_slave_assertion(benchmark):
    def run_both():
        return {
            "master-recovery-only": _failures(False),
            "plus-slave-assertion": _failures(True),
        }

    outcome = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print()
    print(f"Ablation: SetValue MSB errors (bits {_BITS}) with recovery enabled")
    for config, (failures, detections) in outcome.items():
        print(f"  {config:22s} failures={failures}/{len(_BITS)}  detections={detections}/{len(_BITS)}")

    unguarded_failures, _ = outcome["master-recovery-only"]
    guarded_failures, guarded_detections = outcome["plus-slave-assertion"]
    # The unchecked consumer path loses arrestments; guarding it helps.
    assert guarded_failures < unguarded_failures
    assert guarded_detections == len(_BITS)
