"""Ablation: detection-only vs detection + recovery.

The paper's mechanisms include a recovery half that the evaluation does
not exercise.  This ablation measures what it buys: the failure rate over
a set of failure-prone E1 errors with recovery off (the paper's
configuration) and on.
"""

import dataclasses

from repro.arrestor.signals_map import MasterMemory
from repro.arrestor.system import RunConfig, TestCase
from repro.injection.errors import build_e1_error_set
from repro.injection.fic import CampaignController

_CASE = TestCase(14000.0, 55.0)

#: Failure-prone errors: high bits of the counters CALC steers by.
_PROBES = [("mscnt", 10), ("mscnt", 13), ("i", 1), ("pulscnt", 11), ("pulscnt", 13)]


def _failure_count(with_recovery):
    errors = build_e1_error_set(MasterMemory())
    by_signal = {}
    for error in errors:
        by_signal.setdefault(error.signal, []).append(error)
    # Injection starts after the monitors have established their reference
    # values: recovery extrapolates from the reference, so corrupting the
    # very first observed sample would teach it the corrupt trajectory.
    controller = CampaignController(
        run_config=RunConfig(with_recovery=with_recovery),
        injection_start_ms=500,
    )
    failures = 0
    detections = 0
    for signal, bit in _PROBES:
        record = controller.run_injection(by_signal[signal][bit], _CASE, "All")
        failures += record.failed
        detections += record.detected
    return failures, detections


def test_ablation_recovery(benchmark):
    def run_both():
        return {
            "detection-only": _failure_count(with_recovery=False),
            "detection+recovery": _failure_count(with_recovery=True),
        }

    outcome = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print()
    print("Ablation: failures over", len(_PROBES), "failure-prone errors")
    for config, (failures, detections) in outcome.items():
        print(f"  {config:20s} failures={failures}  detections={detections}")

    without_failures, without_detections = outcome["detection-only"]
    with_failures, with_detections = outcome["detection+recovery"]
    # Recovery strictly reduces failures on this probe set while keeping
    # detection reporting intact.
    assert with_failures < without_failures
    assert with_detections == len(_PROBES)
    assert without_detections == len(_PROBES)
