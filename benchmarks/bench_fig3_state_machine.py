"""Figure 3: the example non-linear sequential discrete signal.

Builds the five-state diagram of Figure 3, walks valid paths through it
(clean walks must pass), and checks that every invalid transition is
detected.  The benchmark measures the Table-3 test throughput.
"""

from repro.core.assertions import DiscreteAssertion
from repro.core.parameters import DiscreteParams

_FIGURE3 = {
    "v1": ["v2", "v4"],
    "v2": ["v3", "v4"],
    "v3": ["v4"],
    "v4": ["v5"],
    "v5": ["v1"],
}

#: A long valid walk: the cycle v1-v2-v3-v4-v5 with occasional shortcuts.
_WALK = (["v1", "v2", "v3", "v4", "v5"] * 100 + ["v1", "v4", "v5"] * 100)


def test_fig3_valid_walks_pass(benchmark):
    assertion = DiscreteAssertion(DiscreteParams.sequential(_FIGURE3))

    def sweep():
        prev = None
        failures = 0
        for state in _WALK:
            if not assertion.holds(state, prev):
                failures += 1
            prev = state
        return failures

    failures = benchmark(sweep)
    assert failures == 0

    print()
    print("Figure 3. Non-linear sequential signal: D and T(d):")
    for state, targets in _FIGURE3.items():
        print(f"  T({state}) = {{{', '.join(targets)}}}")


def test_fig3_every_invalid_transition_detected():
    assertion = DiscreteAssertion(DiscreteParams.sequential(_FIGURE3))
    states = sorted(_FIGURE3)
    detected = 0
    checked = 0
    for prev in states:
        for state in states:
            checked += 1
            expected_valid = state in _FIGURE3[prev]
            assert assertion.holds(state, prev) == expected_valid
            if not expected_valid:
                detected += 1
    assert checked == 25
    assert detected == 25 - sum(len(t) for t in _FIGURE3.values())
