"""Table 7: error detection probabilities (%) per signal x version.

Regenerates the paper's headline table from the shared E1 campaign and
checks the qualitative shape the paper reports:

* counter-like signals (i, pulscnt, ms_slot_nbr, mscnt) detected at or
  near 100 % under the all-assertions version;
* environment-valued continuous signals (SetValue, IsValue, OutValue)
  partially covered (LSB errors escape);
* total P(d) around the paper's 74 %, total P(d|fail) near 100 %.
"""

from repro.experiments.campaign import E1_VERSIONS
from repro.experiments.tables import render_table7


def test_table7_detection_probabilities(benchmark, e1_results):
    table = benchmark(render_table7, e1_results, E1_VERSIONS)

    print()
    print("Table 7. Error detection probabilities (%) with 95% confidence")
    print("intervals (paper totals, All version: P(d)=74.0, P(d|fail)=99.6,")
    print("P(d|no fail)=60.6).")
    print(table)

    # -- the paper's qualitative shape --------------------------------------
    for counter in ("i", "pulscnt", "ms_slot_nbr", "mscnt"):
        cell = e1_results.coverage(signal=counter, version="All").p_d
        assert cell.percent >= 90.0, f"{counter} should be ~100% under All"

    for continuous in ("SetValue", "IsValue", "OutValue"):
        cell = e1_results.coverage(signal=continuous, version="All").p_d
        assert 15.0 <= cell.percent <= 85.0, (
            f"{continuous} should be partially covered, got {cell.percent}"
        )

    total = e1_results.coverage(version="All")
    assert 55.0 <= total.p_d.percent <= 90.0  # paper: 74.0
    assert total.p_d_fail.percent >= 90.0  # paper: 99.6
    assert total.p_d_no_fail.percent < total.p_d_fail.percent  # paper: 60.6 < 99.6

    # Single-mechanism versions cover less than the combined version.
    for version in E1_VERSIONS[:-1]:
        single = e1_results.coverage(version=version).p_d
        assert single.percent < total.p_d.percent
