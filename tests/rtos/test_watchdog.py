"""Tests for the watchdog timer extension."""

import pytest

from repro.rtos.watchdog import WatchdogTimer


class TestWatchdogTimer:
    def test_does_not_fire_while_kicked(self):
        watchdog = WatchdogTimer(timeout_ms=50)
        for now in range(200):
            watchdog.kick(now)
            assert not watchdog.poll(now)
        assert not watchdog.fired

    def test_fires_after_timeout_without_kicks(self):
        watchdog = WatchdogTimer(timeout_ms=50)
        watchdog.kick(10)
        fired_edge = None
        for now in range(11, 100):
            if watchdog.poll(now):
                fired_edge = now
                break
        assert fired_edge == 61  # first tick with now - 10 > 50
        assert watchdog.fired_at_ms == 61

    def test_fires_once_and_latches(self):
        watchdog = WatchdogTimer(timeout_ms=10)
        edges = sum(watchdog.poll(now) for now in range(100))
        assert edges == 1
        assert watchdog.fired

    def test_late_kick_does_not_unfire(self):
        watchdog = WatchdogTimer(timeout_ms=10)
        for now in range(30):
            watchdog.poll(now)
        watchdog.kick(31)
        assert watchdog.fired

    def test_reset(self):
        watchdog = WatchdogTimer(timeout_ms=10)
        for now in range(30):
            watchdog.poll(now)
        watchdog.reset()
        assert not watchdog.fired
        watchdog.kick(0)
        assert not watchdog.poll(5)

    def test_validation(self):
        with pytest.raises(ValueError):
            WatchdogTimer(timeout_ms=0)


class TestWatchdogOnTargetSystem:
    def test_wedge_is_caught_by_watchdog_not_assertions(self):
        from repro.arrestor import constants as k
        from repro.arrestor.system import RunConfig, TargetSystem, TestCase

        config = RunConfig(watchdog_timeout_ms=50)
        system = TargetSystem(TestCase(14000, 55), config=config)
        word = system.master.mem.dispatch.word_variable(k.SLOT_V_REG)
        word.set(word.get() ^ 0x4000)
        result = system.run()
        assert result.wedged
        assert not result.detected
        assert result.watchdog_fired_ms is not None
        assert result.watchdog_fired_ms <= 60
        assert result.detected_with_watchdog

    def test_fault_free_run_never_trips_the_watchdog(self):
        from repro.arrestor.system import RunConfig, TargetSystem, TestCase

        config = RunConfig(watchdog_timeout_ms=20)
        result = TargetSystem(TestCase(14000, 55), config=config).run()
        assert result.watchdog_fired_ms is None
        assert not result.detected_with_watchdog
