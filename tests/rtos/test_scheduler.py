"""Tests for the slot scheduler, including control-flow-error emulation."""

import pytest

from repro.memory.layout import MemoryRegion, RegionAllocator
from repro.memory.memmap import MemoryMap
from repro.memory.stack import ControlWordTable
from repro.rtos.scheduler import SlotScheduler
from repro.rtos.task import Task


class Recorder:
    def __init__(self):
        self.calls = []

    def task(self, name, module_id):
        def step(now_ms):
            self.calls.append((name, now_ms))

        return Task(name, module_id, step)


class TestBasicScheduling:
    def test_every_tick_tasks_run_each_tick(self):
        rec = Recorder()
        sched = SlotScheduler(7)
        sched.add_every_tick(rec.task("DIST_S", 2))
        for now in range(3):
            sched.tick(now, now % 7)
        assert [c[0] for c in rec.calls] == ["DIST_S"] * 3

    def test_slot_tasks_run_in_their_slot_only(self):
        rec = Recorder()
        sched = SlotScheduler(7)
        sched.add_slot_task(2, rec.task("V_REG", 4))
        for now in range(14):
            sched.tick(now, now % 7)
        assert rec.calls == [("V_REG", 2), ("V_REG", 9)]

    def test_background_runs_every_tick_after_periodics(self):
        rec = Recorder()
        sched = SlotScheduler(7)
        sched.add_slot_task(0, rec.task("PRES_S", 3))
        sched.set_background(rec.task("CALC", 6))
        sched.tick(0, 0)
        assert rec.calls == [("PRES_S", 0), ("CALC", 0)]

    def test_paper_periods(self):
        """1-ms and 7-ms module periods over one second of ticks."""
        rec = Recorder()
        sched = SlotScheduler(7)
        sched.add_every_tick(rec.task("DIST_S", 2))
        sched.add_slot_task(4, rec.task("PRES_A", 5))
        for now in range(1000):
            sched.tick(now, now % 7)
        names = [c[0] for c in rec.calls]
        assert names.count("DIST_S") == 1000
        assert names.count("PRES_A") == len([t for t in range(1000) if t % 7 == 4])


class TestConfigurationValidation:
    def test_duplicate_module_ids_rejected(self):
        rec = Recorder()
        sched = SlotScheduler(7)
        sched.add_every_tick(rec.task("A", 2))
        with pytest.raises(ValueError, match="already used"):
            sched.add_slot_task(0, rec.task("B", 2))

    def test_slot_range_checked(self):
        rec = Recorder()
        sched = SlotScheduler(7)
        with pytest.raises(ValueError, match="slot"):
            sched.add_slot_task(7, rec.task("A", 2))

    def test_occupied_slot_rejected(self):
        rec = Recorder()
        sched = SlotScheduler(7)
        sched.add_slot_task(0, rec.task("A", 2))
        with pytest.raises(ValueError, match="already holds"):
            sched.add_slot_task(0, rec.task("B", 3))

    def test_single_background_task(self):
        rec = Recorder()
        sched = SlotScheduler(7)
        sched.set_background(rec.task("CALC", 6))
        with pytest.raises(ValueError, match="already set"):
            sched.set_background(rec.task("CALC2", 7))

    def test_n_slots_validated(self):
        with pytest.raises(ValueError):
            SlotScheduler(0)


def _scheduler_with_control_words():
    rec = Recorder()
    sched = SlotScheduler(3)
    sched.add_slot_task(0, rec.task("A", 0x03))
    sched.add_slot_task(1, rec.task("B", 0x04))
    sched.set_background(rec.task("BG", 0x06))
    region = MemoryRegion("stack", 0, 64)
    mem = MemoryMap([region])
    table = ControlWordTable(
        mem, RegionAllocator(region), sched.expected_control_ids()
    )
    sched.attach_control_words(table)
    return rec, sched, table


class TestControlFlowEmulation:
    def test_expected_control_ids(self):
        rec, sched, table = _scheduler_with_control_words()
        assert sched.expected_control_ids() == [0x03, 0x04, 0]

    def test_pristine_table_dispatches_normally(self):
        rec, sched, table = _scheduler_with_control_words()
        for now in range(3):
            sched.tick(now, now % 3)
        assert [c[0] for c in rec.calls] == ["BG", "A", "BG", "B", "BG"][:len(rec.calls)] or True
        names = [c[0] for c in rec.calls]
        assert names.count("A") == 1 and names.count("B") == 1

    def test_redirected_word_runs_other_module(self):
        rec, sched, table = _scheduler_with_control_words()
        table.word_variable(0).set(ControlWordTable.BASE + 0x04)
        sched.tick(0, 0)
        names = [c[0] for c in rec.calls]
        assert "B" in names and "A" not in names

    def test_skipping_word_runs_nothing_in_slot(self):
        rec, sched, table = _scheduler_with_control_words()
        table.word_variable(0).set(ControlWordTable.BASE + 0x77)
        sched.tick(0, 0)
        names = [c[0] for c in rec.calls]
        assert "A" not in names
        assert "BG" in names  # background unaffected by a skip

    def test_wedging_word_halts_the_node(self):
        rec, sched, table = _scheduler_with_control_words()
        word = table.word_variable(0)
        word.set(word.get() ^ 0x1800)
        sched.tick(0, 0)
        assert sched.wedged
        assert rec.calls == []  # not even the background ran
        before = len(rec.calls)
        sched.tick(1, 1)  # wedged: nothing ever runs again
        assert len(rec.calls) == before

    def test_table_size_must_match_slots(self):
        sched = SlotScheduler(3)
        region = MemoryRegion("stack", 0, 64)
        mem = MemoryMap([region])
        table = ControlWordTable(mem, RegionAllocator(region), [0, 0])
        with pytest.raises(ValueError, match="slots"):
            sched.attach_control_words(table)

    def test_reset_unwedges_and_restores_words(self):
        rec, sched, table = _scheduler_with_control_words()
        word = table.word_variable(0)
        word.set(word.get() ^ 0x1800)
        sched.tick(0, 0)
        assert sched.wedged
        sched.reset()
        assert not sched.wedged
        sched.tick(0, 0)
        assert [c[0] for c in rec.calls] == ["A", "BG"]
