"""Tests for the detection output pin."""

from repro.rtos.pins import DigitalPin
from repro.rtos.task import Task

import pytest


class TestDigitalPin:
    def test_initially_low(self):
        pin = DigitalPin("detect")
        assert not pin.is_high
        assert pin.first_rise_time is None

    def test_rising_edge_recorded_once_while_high(self):
        pin = DigitalPin("detect")
        pin.raise_high(5.0)
        pin.raise_high(6.0)  # still high: no new edge
        assert pin.rise_times == [5.0]
        assert pin.is_high

    def test_lower_then_raise_records_new_edge(self):
        pin = DigitalPin("detect")
        pin.raise_high(5.0)
        pin.lower()
        pin.raise_high(9.0)
        assert pin.rise_times == [5.0, 9.0]

    def test_pulse_leaves_pin_low(self):
        pin = DigitalPin("detect")
        pin.pulse(3.0)
        pin.pulse(4.0)
        assert not pin.is_high
        assert pin.rise_times == [3.0, 4.0]
        assert pin.first_rise_time == 3.0

    def test_reset(self):
        pin = DigitalPin("detect")
        pin.pulse(3.0)
        pin.reset()
        assert pin.first_rise_time is None
        assert not pin.is_high


class TestTask:
    def test_counts_invocations(self):
        calls = []
        task = Task("T", 0x10, calls.append)
        task.run(5)
        task.run(6)
        assert task.invocations == 2
        assert calls == [5, 6]

    def test_module_id_validated(self):
        with pytest.raises(ValueError, match="one byte"):
            Task("T", 0x100, lambda now: None)

    def test_repr(self):
        assert "0x10" in repr(Task("T", 0x10, lambda now: None))
