"""Tests for the time-triggered injector and the campaign controller."""

import pytest

from repro.arrestor.signals_map import MasterMemory
from repro.arrestor.system import TestCase
from repro.injection.errors import ErrorSpec, build_e1_error_set
from repro.injection.fic import CampaignController
from repro.injection.injector import INJECTION_PERIOD_MS, TimeTriggeredInjector


def _spec(address=0x08, bit=3):
    return ErrorSpec("T1", address, bit, "ram")


class TestTimeTriggeredInjector:
    def test_paper_period(self):
        assert INJECTION_PERIOD_MS == 20

    def test_injects_on_the_20ms_grid(self):
        memory = MasterMemory().map
        injector = TimeTriggeredInjector(_spec())
        fired = [now for now in range(100) if injector.tick(now, memory)]
        assert fired == [0, 20, 40, 60, 80]
        assert injector.injections == 5

    def test_start_offset(self):
        memory = MasterMemory().map
        injector = TimeTriggeredInjector(_spec(), start_ms=15)
        fired = [now for now in range(60) if injector.tick(now, memory)]
        assert fired == [15, 35, 55]
        assert injector.first_injection_ms == 15

    def test_repeated_injection_toggles_the_bit(self):
        memory = MasterMemory().map
        injector = TimeTriggeredInjector(_spec(address=0x08, bit=3))
        injector.tick(0, memory)
        assert memory.read_u8(0x08) == 8
        injector.tick(20, memory)
        assert memory.read_u8(0x08) == 0

    def test_reset(self):
        memory = MasterMemory().map
        injector = TimeTriggeredInjector(_spec())
        injector.tick(0, memory)
        injector.reset()
        assert injector.injections == 0
        assert injector.first_injection_ms is None

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeTriggeredInjector(_spec(), period_ms=0)
        with pytest.raises(ValueError):
            TimeTriggeredInjector(_spec(), start_ms=-1)


class TestCampaignController:
    def test_version_eas(self):
        assert CampaignController.version_eas("All") is None
        assert CampaignController.version_eas("EA3") == ("EA3",)

    def test_reference_run_is_clean(self):
        controller = CampaignController()
        record = controller.run_reference(TestCase(14000, 55))
        assert record.error is None
        assert not record.detected
        assert not record.failed
        assert record.latency_ms is None
        assert controller.runs_executed == 1

    def test_injection_run_mscnt_detected_quickly(self):
        controller = CampaignController()
        errors = build_e1_error_set(MasterMemory())
        mscnt_bit7 = [e for e in errors if e.signal == "mscnt"][7]
        record = controller.run_injection(mscnt_bit7, TestCase(14000, 55), "All")
        assert record.detected
        assert record.latency_ms is not None
        assert record.latency_ms <= 40

    def test_single_ea_version_limits_monitors(self):
        controller = CampaignController()
        errors = build_e1_error_set(MasterMemory())
        # An mscnt error is invisible to the EA1-only version unless it
        # propagates into SetValue's envelope.
        mscnt_bit0 = [e for e in errors if e.signal == "mscnt"][0]
        record = controller.run_injection(mscnt_bit0, TestCase(14000, 55), "EA1")
        ea_ids = {e.monitor_id for e in [] }  # no direct access needed
        assert record.version == "EA1"

    def test_runs_are_independent(self):
        """Each run boots a fresh system: no cross-run contamination."""
        controller = CampaignController()
        errors = build_e1_error_set(MasterMemory())
        big = [e for e in errors if e.signal == "SetValue"][15]
        first = controller.run_injection(big, TestCase(14000, 55), "All")
        reference = controller.run_reference(TestCase(14000, 55))
        assert first.detected
        assert not reference.detected
