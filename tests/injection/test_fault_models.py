"""Tests for the transient and stuck-at fault-model extensions."""

import pytest

from repro.arrestor.signals_map import MasterMemory
from repro.arrestor.system import TargetSystem, TestCase
from repro.injection.errors import ErrorSpec, build_e1_error_set
from repro.injection.injector import StuckAtInjector, TransientInjector

CASE = TestCase(14000.0, 55.0)


def _spec(address=0x08, bit=3):
    return ErrorSpec("T", address, bit, "ram")


class TestTransientInjector:
    def test_fires_exactly_once(self):
        memory = MasterMemory().map
        injector = TransientInjector(_spec(), at_ms=30)
        fired = [now for now in range(100) if injector.tick(now, memory)]
        assert fired == [30]
        assert injector.injections == 1
        assert injector.first_injection_ms == 30
        assert memory.read_u8(0x08) == 8

    def test_reset_allows_refire(self):
        memory = MasterMemory().map
        injector = TransientInjector(_spec(), at_ms=0)
        injector.tick(0, memory)
        injector.reset()
        assert injector.tick(0, memory)

    def test_validation(self):
        with pytest.raises(ValueError):
            TransientInjector(_spec(), at_ms=-1)


class TestStuckAtInjector:
    def test_forces_bit_high_against_rewrites(self):
        memory = MasterMemory().map
        injector = StuckAtInjector(_spec(address=0x08, bit=3), stuck_value=1)
        injector.tick(0, memory)
        assert memory.read_u8(0x08) & 8
        memory.write_u8(0x08, 0)  # the software rewrites the byte
        injector.tick(1, memory)
        assert memory.read_u8(0x08) & 8

    def test_stuck_at_zero(self):
        memory = MasterMemory().map
        memory.write_u8(0x08, 0xFF)
        injector = StuckAtInjector(_spec(address=0x08, bit=3), stuck_value=0)
        injector.tick(0, memory)
        assert not memory.read_u8(0x08) & 8

    def test_counts_only_effective_forcings(self):
        memory = MasterMemory().map
        injector = StuckAtInjector(_spec(), stuck_value=1)
        injector.tick(0, memory)  # changes the bit
        injector.tick(1, memory)  # bit already high: no change
        assert injector.injections == 1

    def test_start_offset(self):
        memory = MasterMemory().map
        injector = StuckAtInjector(_spec(), stuck_value=1, start_ms=10)
        assert not injector.tick(5, memory)
        assert injector.tick(10, memory)
        assert injector.first_injection_ms == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            StuckAtInjector(_spec(), stuck_value=2)
        with pytest.raises(ValueError):
            StuckAtInjector(_spec(), start_ms=-1)


class TestFaultModelsOnTargetSystem:
    """The three fault models against the same signal bit."""

    @staticmethod
    def _mscnt_error(bit=10):
        errors = build_e1_error_set(MasterMemory())
        return [e for e in errors if e.signal == "mscnt"][bit]

    def test_transient_clock_upset_detected_once_then_clean(self):
        system = TargetSystem(CASE)
        result = system.run(TransientInjector(self._mscnt_error(), at_ms=500))
        assert result.detected
        # One upset -> one EA6 event (the counter re-synchronises on the
        # observed-value policy).
        ea6_events = [
            e for e in system.master.detection_log.events if e.monitor_id == "EA6"
        ]
        assert len(ea6_events) == 1

    def test_stuck_at_clock_bit_detected_repeatedly(self):
        system = TargetSystem(CASE)
        result = system.run(StuckAtInjector(self._mscnt_error(), stuck_value=1, start_ms=500))
        assert result.detected
        ea6_events = [
            e for e in system.master.detection_log.events if e.monitor_id == "EA6"
        ]
        # The natural count tries to toggle bit 10 every 1024 ms and the
        # stuck cell fights back: one violation per roll-over point.
        assert len(ea6_events) >= 5

    def test_stuck_at_lsb_of_pressure_escapes(self):
        errors = build_e1_error_set(MasterMemory())
        lsb = [e for e in errors if e.signal == "SetValue"][0]
        result = TargetSystem(CASE).run(StuckAtInjector(lsb, stuck_value=1))
        assert not result.detected
        assert not result.failed
