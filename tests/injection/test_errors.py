"""Tests for the error sets E1 and E2 (Section 3.4, Table 6)."""

import pytest

from repro.arrestor.signals_map import MONITORED_SIGNALS, MasterMemory
from repro.injection.errors import (
    ErrorSpec,
    build_e1_error_set,
    build_e2_error_set,
)


class TestErrorSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            ErrorSpec("x", 0, 8, "ram")
        with pytest.raises(ValueError):
            ErrorSpec("x", 0, 0, "rom")


class TestE1ErrorSet:
    def setup_method(self):
        self.memory = MasterMemory()
        self.errors = build_e1_error_set(self.memory)

    def test_112_errors(self):
        """Table 6: 7 signals x 16 bits."""
        assert len(self.errors) == 112

    def test_16_errors_per_signal(self):
        for signal in MONITORED_SIGNALS:
            assert sum(1 for e in self.errors if e.signal == signal) == 16

    def test_numbering_follows_table6(self):
        assert self.errors[0].name == "S1"
        assert self.errors[-1].name == "S112"
        # S1-S16 SetValue ... S97-S112 OutValue, in table order.
        assert self.errors[0].signal == "SetValue"
        assert self.errors[16].signal == "IsValue"
        assert self.errors[96].signal == "OutValue"

    def test_bits_cover_all_16_positions(self):
        setvalue = [e for e in self.errors if e.signal == "SetValue"]
        assert [e.signal_bit for e in setvalue] == list(range(16))

    def test_addresses_resolve_to_signal_bytes(self):
        for error in self.errors:
            var = self.memory.signal_variable(error.signal)
            assert var.address <= error.address < var.address + 2
            # High-byte bits land on the second byte.
            expected_offset = error.signal_bit >> 3
            assert error.address == var.address + expected_offset
            assert error.bit == error.signal_bit & 7

    def test_all_in_ram_area(self):
        assert all(e.area == "ram" for e in self.errors)

    def test_flipping_via_spec_equals_signal_bit(self):
        for error in self.errors[:32]:
            memory = MasterMemory()
            var = memory.signal_variable(error.signal)
            var.set(0)
            memory.map.data[error.address] ^= 1 << error.bit
            assert var.get() == 1 << error.signal_bit


class TestE2ErrorSet:
    def setup_method(self):
        self.memory = MasterMemory()

    def test_default_composition(self):
        """Section 3.4: 150 RAM + 50 stack errors."""
        errors = build_e2_error_set(self.memory)
        assert len(errors) == 200
        assert sum(1 for e in errors if e.area == "ram") == 150
        assert sum(1 for e in errors if e.area == "stack") == 50

    def test_addresses_within_declared_areas(self):
        ram = self.memory.map.regions["ram"]
        stack = self.memory.map.regions["stack"]
        for error in build_e2_error_set(self.memory):
            region = ram if error.area == "ram" else stack
            assert region.contains(error.address)

    def test_deterministic_for_a_seed(self):
        a = build_e2_error_set(self.memory, seed=7)
        b = build_e2_error_set(self.memory, seed=7)
        assert a == b

    def test_different_seeds_differ(self):
        a = build_e2_error_set(self.memory, seed=7)
        b = build_e2_error_set(self.memory, seed=8)
        assert a != b

    def test_sampling_with_replacement_allows_duplicates(self):
        # With 200 draws over ~11 000 (address, bit) pairs duplicates are
        # not guaranteed; just check the constructor does not de-duplicate
        # by drawing a large set over a tiny region.
        errors = build_e2_error_set(self.memory, seed=1, n_ram=2000, n_stack=0)
        pairs = [(e.address, e.bit) for e in errors]
        assert len(set(pairs)) < len(pairs)

    def test_spread_over_both_bytes_and_bits(self):
        errors = build_e2_error_set(self.memory)
        assert len({e.bit for e in errors}) == 8
        assert len({e.address for e in errors}) > 100

    def test_counts_validated(self):
        with pytest.raises(ValueError):
            build_e2_error_set(self.memory, n_ram=-1)

    def test_naming(self):
        errors = build_e2_error_set(self.memory)
        assert errors[0].name == "R1"
        assert errors[150].name == "K1"
