"""Integration: the Section-3.4 experimental precondition.

*"All test cases are such that if they are run on the target system
without error injection, none of the error detection mechanisms report
detection."*  — and, implicitly, none of them fails.
"""

import pytest

from repro.arrestor.system import TargetSystem, TestCase
from repro.experiments.testcases import make_test_cases


@pytest.fixture(scope="module")
def grid_results():
    results = []
    for case in make_test_cases():
        system = TargetSystem(case)
        results.append((case, system, system.run()))
    return results


class TestFaultFreeGrid:
    def test_no_detections_anywhere(self, grid_results):
        offenders = [
            (case.mass_kg, case.velocity_mps)
            for case, _, result in grid_results
            if result.detected
        ]
        assert offenders == []

    def test_no_failures_anywhere(self, grid_results):
        offenders = [
            (case.mass_kg, case.velocity_mps, result.verdict.violated)
            for case, _, result in grid_results
            if result.failed
        ]
        assert offenders == []

    def test_every_aircraft_stops_with_margin(self, grid_results):
        for case, _, result in grid_results:
            assert result.summary.stopped
            assert 250.0 < result.summary.stop_distance_m < 330.0

    def test_retardation_comfortably_under_limit(self, grid_results):
        for _, _, result in grid_results:
            assert result.summary.max_retardation_g < 1.5

    def test_force_margin_under_structural_limit(self, grid_results):
        for case, system, result in grid_results:
            limit = system.classifier.force_limit_for(case.mass_kg, case.velocity_mps)
            assert result.summary.max_cable_force_n < 0.9 * limit

    def test_duration_in_papers_range(self, grid_results):
        """Typical failure-free arrestments run ~5 s (low energy) to ~15 s."""
        for _, _, result in grid_results:
            assert 3.0 < result.summary.duration_s < 20.0

    def test_mass_estimates_converge(self, grid_results):
        for case, system, _ in grid_results:
            estimate = system.master.mem.m_est_kg.get()
            assert estimate == pytest.approx(case.mass_kg, rel=0.10)

    def test_all_checkpoints_visited(self, grid_results):
        for _, system, _ in grid_results:
            assert system.master.mem.i.get() == 6
