"""Integration: the simulation is fully deterministic.

Determinism is what makes scaled campaigns comparable and resumable:
identical configurations must produce identical readouts, detections and
memory images, with no hidden global state leaking between runs.
"""

from repro.arrestor.signals_map import MasterMemory
from repro.arrestor.system import RunConfig, TargetSystem, TestCase
from repro.injection.errors import build_e1_error_set, build_e2_error_set
from repro.injection.injector import TimeTriggeredInjector

CASE = TestCase(12600.0, 61.0)


def _run_once(error=None):
    system = TargetSystem(CASE)
    injector = TimeTriggeredInjector(error) if error is not None else None
    result = system.run(injector)
    return result, system.master.mem.map.snapshot()


class TestDeterminism:
    def test_fault_free_runs_identical(self):
        first, mem_first = _run_once()
        second, mem_second = _run_once()
        assert first == second
        assert mem_first == mem_second

    def test_injected_runs_identical(self):
        error = [e for e in build_e1_error_set(MasterMemory()) if e.signal == "pulscnt"][6]
        first, mem_first = _run_once(error)
        second, mem_second = _run_once(error)
        assert first == second
        assert mem_first == mem_second

    def test_runs_do_not_contaminate_each_other(self):
        """A heavy injected run leaves no trace in a following clean run."""
        error = [e for e in build_e1_error_set(MasterMemory()) if e.signal == "SetValue"][15]
        clean_before, _ = _run_once()
        _run_once(error)
        clean_after, _ = _run_once()
        assert clean_before == clean_after

    def test_e2_error_set_is_reproducible(self):
        first = build_e2_error_set(MasterMemory())
        second = build_e2_error_set(MasterMemory())
        assert first == second

    def test_detection_events_identical(self):
        error = [e for e in build_e1_error_set(MasterMemory()) if e.signal == "mscnt"][9]

        def events():
            system = TargetSystem(CASE)
            system.run(TimeTriggeredInjector(error))
            return [
                (e.signal, e.time, e.value, e.previous, e.monitor_id)
                for e in system.master.detection_log.events
            ]

        assert events() == events()

    def test_signal_trace_identical(self):
        config = RunConfig(signal_trace_period_ms=50)
        traces = []
        for _ in range(2):
            system = TargetSystem(CASE, config=config)
            system.run()
            traces.append(system.signal_trace)
        assert traces[0] == traces[1]
