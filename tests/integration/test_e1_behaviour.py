"""Integration: qualitative E1 properties the paper establishes.

Counters are detected (at or near 100 %) with short latencies; continuous
environment-valued signals let least-significant-bit errors escape while
most-significant-bit errors are caught (and tend to cause failure);
errors propagate across signals so non-primary mechanisms detect too.
"""

import pytest

from repro.arrestor.signals_map import MasterMemory
from repro.arrestor.system import TestCase
from repro.injection.errors import build_e1_error_set
from repro.injection.fic import CampaignController

CASE = TestCase(14000.0, 55.0)


@pytest.fixture(scope="module")
def errors_by_signal():
    errors = build_e1_error_set(MasterMemory())
    return {
        signal: [e for e in errors if e.signal == signal]
        for signal in {e.signal for e in errors}
    }


@pytest.fixture(scope="module")
def controller():
    return CampaignController()


class TestCounterSignals:
    """mscnt / ms_slot_nbr / i / pulscnt: tight envelopes catch everything."""

    @pytest.mark.parametrize("signal", ["mscnt", "ms_slot_nbr", "i"])
    @pytest.mark.parametrize("bit", [0, 7, 13])
    def test_every_probed_bit_detected(self, errors_by_signal, controller, signal, bit):
        record = controller.run_injection(errors_by_signal[signal][bit], CASE, "All")
        assert record.detected

    @pytest.mark.parametrize("bit", [3, 9, 15])
    def test_pulscnt_bits_detected(self, errors_by_signal, controller, bit):
        record = controller.run_injection(errors_by_signal["pulscnt"][bit], CASE, "All")
        assert record.detected

    def test_counter_latency_is_tens_of_milliseconds(self, errors_by_signal, controller):
        record = controller.run_injection(errors_by_signal["mscnt"][5], CASE, "All")
        assert record.latency_ms is not None
        assert record.latency_ms <= 60


class TestContinuousSignals:
    """SetValue / IsValue / OutValue: liberal envelopes let LSBs escape."""

    @pytest.mark.parametrize("signal", ["SetValue", "IsValue", "OutValue"])
    def test_lsb_errors_escape(self, errors_by_signal, controller, signal):
        record = controller.run_injection(errors_by_signal[signal][0], CASE, "All")
        assert not record.detected
        assert not record.failed  # an LSB of pressure is noise-level

    @pytest.mark.parametrize("signal", ["SetValue", "IsValue", "OutValue"])
    def test_msb_errors_detected(self, errors_by_signal, controller, signal):
        record = controller.run_injection(errors_by_signal[signal][15], CASE, "All")
        assert record.detected

    def test_msb_set_value_error_causes_failure(self, errors_by_signal, controller):
        record = controller.run_injection(errors_by_signal["SetValue"][14], CASE, "All")
        assert record.failed
        assert record.detected  # P(d|fail) ~ 100 % in the paper

    def test_detection_threshold_follows_rate_envelope(self, errors_by_signal, controller):
        """Bits below the EA1 rate bound escape; bits above are caught."""
        below = controller.run_injection(errors_by_signal["SetValue"][6], CASE, "EA1")
        above = controller.run_injection(errors_by_signal["SetValue"][10], CASE, "EA1")
        assert not below.detected
        assert above.detected


class TestCrossDetection:
    """Off-diagonal mass in Table 7: propagation reaches other monitors."""

    def test_ea7_detects_big_set_value_errors(self, errors_by_signal, controller):
        # V_REG amplifies a SetValue jump into OutValue, where EA7 (the
        # only active mechanism in this version) sees the rate violation.
        record = controller.run_injection(errors_by_signal["SetValue"][13], CASE, "EA7")
        assert record.detected

    def test_ea1_alone_cannot_see_pure_out_value_errors(self, errors_by_signal, controller):
        # OutValue is downstream of SetValue: no propagation path back.
        record = controller.run_injection(errors_by_signal["OutValue"][13], CASE, "EA1")
        assert not record.detected


class TestVersionMonotonicity:
    def test_all_version_detects_what_single_version_detects(
        self, errors_by_signal, controller
    ):
        """In a deterministic target, All supersets any single mechanism."""
        for signal, bit, version in [
            ("SetValue", 12, "EA1"),
            ("pulscnt", 9, "EA4"),
            ("mscnt", 4, "EA6"),
        ]:
            single = controller.run_injection(errors_by_signal[signal][bit], CASE, version)
            combined = controller.run_injection(errors_by_signal[signal][bit], CASE, "All")
            if single.detected:
                assert combined.detected
