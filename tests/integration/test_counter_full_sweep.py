"""Integration: full 16-bit sweeps over the counter signals.

Table 7's strongest per-signal claims are the 100.0 rows: every bit
position of every counter-like signal is detected under the
all-assertions version.  These sweeps verify the claim bit by bit for
the two clock signals (cheap 16-run sweeps; pulscnt and i are covered by
the campaign benchmarks).
"""

import pytest

from repro.arrestor.signals_map import MasterMemory
from repro.arrestor.system import TestCase
from repro.injection.errors import build_e1_error_set
from repro.injection.fic import CampaignController

CASE = TestCase(11000.0, 47.5)


@pytest.fixture(scope="module")
def sweep():
    errors = build_e1_error_set(MasterMemory())
    controller = CampaignController()

    def run(signal):
        return [
            controller.run_injection(error, CASE, "All")
            for error in errors
            if error.signal == signal
        ]

    return run


class TestMscntSweep:
    def test_all_16_bits_detected(self, sweep):
        records = sweep("mscnt")
        assert len(records) == 16
        undetected = [i for i, r in enumerate(records) if not r.detected]
        assert undetected == []

    def test_latency_is_one_injection_period_everywhere(self, sweep):
        for record in sweep("mscnt"):
            assert record.latency_ms == 20


class TestSlotSweep:
    def test_all_16_bits_detected(self, sweep):
        records = sweep("ms_slot_nbr")
        undetected = [i for i, r in enumerate(records) if not r.detected]
        assert undetected == []

    def test_detection_within_two_injection_periods(self, sweep):
        for record in sweep("ms_slot_nbr"):
            assert record.latency_ms is not None
            assert record.latency_ms <= 40
