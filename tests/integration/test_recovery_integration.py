"""Integration: detection + recovery keeps the system in service.

The paper's mechanisms include a recovery half ("the signal can be
returned to a valid state"); the evaluation measures detection only.
This test establishes the recovery ablation's premise: a
failure-causing error becomes survivable when recovery is enabled.
"""

import pytest

from repro.arrestor.signals_map import MasterMemory
from repro.arrestor.system import RunConfig, TargetSystem, TestCase
from repro.injection.errors import build_e1_error_set
from repro.injection.injector import TimeTriggeredInjector

CASE = TestCase(14000.0, 55.0)


def _mscnt_error():
    errors = build_e1_error_set(MasterMemory())
    return [e for e in errors if e.signal == "mscnt"][10]


def _run(with_recovery):
    config = RunConfig(with_recovery=with_recovery)
    system = TargetSystem(CASE, config=config)
    return system.run(TimeTriggeredInjector(_mscnt_error(), start_ms=500))


class TestRecoveryAblation:
    def test_without_recovery_the_error_kills_the_run(self):
        result = _run(with_recovery=False)
        assert result.detected
        assert result.failed

    def test_with_recovery_the_run_survives(self):
        # EA6 repairs the clock within one tick (rate extrapolation), so
        # CALC's velocity estimates stay sound and the arrestment succeeds.
        result = _run(with_recovery=True)
        assert result.detected  # detection still reported
        assert not result.failed  # but the signal was repaired in time
        assert result.summary.stopped

    def test_recovery_does_not_disturb_fault_free_runs(self):
        config = RunConfig(with_recovery=True)
        result = TargetSystem(CASE, config=config).run()
        assert not result.detected
        assert not result.failed

    def test_recovery_cannot_protect_unchecked_consumers(self):
        """The Table-4 placement limits recovery's reach: COMM transmits
        SetValue without passing V_REG's assertion, so a flip landing
        between the V_REG and COMM slots reaches the slave drum anyway."""
        errors = build_e1_error_set(MasterMemory())
        set_value_msb = [e for e in errors if e.signal == "SetValue"][14]
        config = RunConfig(with_recovery=True)
        system = TargetSystem(CASE, config=config)
        result = system.run(TimeTriggeredInjector(set_value_msb, start_ms=500))
        assert result.detected
        assert result.failed  # the slave's drum still sees corrupt set points
