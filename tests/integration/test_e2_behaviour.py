"""Integration: qualitative E2 properties (random memory errors).

Cold RAM bytes are benign; live controller state propagates into the
monitored signals; stack control words cause control-flow errors that the
mechanisms are not aimed at detecting (the paper's explanation for the
low stack coverage).
"""

import pytest

from repro.arrestor.signals_map import MasterMemory
from repro.arrestor.system import TargetSystem, TestCase
from repro.injection.errors import ErrorSpec
from repro.injection.fic import CampaignController
from repro.injection.injector import TimeTriggeredInjector

CASE = TestCase(14000.0, 55.0)


def _run(error):
    return CampaignController().run_injection(error, CASE, "All")


class TestColdRamBytes:
    def test_padding_byte_corruption_is_benign(self):
        memory = MasterMemory()
        # The last RAM byte is unallocated padding.
        region = memory.map.regions["ram"]
        assert memory.ram.symbol_at(region.end - 1) is None
        record = _run(ErrorSpec("pad", region.end - 1, 5, "ram"))
        assert not record.detected
        assert not record.failed

    def test_telemetry_ring_corruption_is_benign(self):
        memory = MasterMemory()
        address = memory.telemetry_ring[20].address
        record = _run(ErrorSpec("tel", address, 6, "ram"))
        assert not record.failed

    def test_boot_mirror_corruption_is_benign(self):
        # The config mirror is read at boot only; runs inject after boot.
        memory = MasterMemory()
        address = memory.config_mirror[3].address
        record = _run(ErrorSpec("cfg", address, 7, "ram"))
        assert not record.detected
        assert not record.failed


class TestLiveStatePropagation:
    def test_target_set_value_corruption_disturbs_control(self):
        memory = MasterMemory()
        address = memory.target_set_value.address + 1  # high byte
        record = _run(ErrorSpec("tgt", address, 6, "ram"))
        # The toggling 16384-count target error makes CALC slew the set
        # point up and down; the valve filters much of it, but the run
        # cannot be indistinguishable from fault-free.
        clean = TargetSystem(CASE).run()
        assert (
            record.detected
            or record.failed
            or abs(
                record.result.summary.stop_distance_m - clean.summary.stop_distance_m
            )
            > 0.5
        )

    def test_mass_estimate_corruption_disturbs_control(self):
        memory = MasterMemory()
        address = memory.m_est_kg.address + 1
        record = _run(ErrorSpec("mass", address, 6, "ram"))
        # A x2-ish mass error swings the set point; expect failure,
        # detection, or both — but not a silent clean run with identical
        # readouts to fault-free.
        clean = TargetSystem(CASE).run()
        assert (
            record.detected
            or record.failed
            or abs(
                record.result.summary.stop_distance_m - clean.summary.stop_distance_m
            )
            > 0.5
        )


class TestStackErrors:
    def test_dispatch_word_wedge_is_failure_without_detection(self):
        memory = MasterMemory()
        # Corrupt two tag bits of the V_REG dispatch word: per the CFE
        # model the node wedges, the valves freeze at pretension and the
        # aircraft overruns with no mechanism alive to report anything.
        from repro.arrestor import constants as k

        word = memory.dispatch.word_variable(k.SLOT_V_REG)
        system = TargetSystem(CASE)
        target_word = system.master.mem.dispatch.word_variable(k.SLOT_V_REG)
        target_word.set(target_word.get() ^ 0x1800)
        result = system.run()
        assert system.master.wedged
        assert result.failed
        assert not result.detected

    def test_deep_stack_corruption_is_benign(self):
        memory = MasterMemory()
        region = memory.map.regions["stack"]
        record = _run(ErrorSpec("deep", region.end - 3, 2, "stack"))
        assert not record.detected
        assert not record.failed

    def test_calc_working_set_corruption_can_disturb_control(self):
        memory = MasterMemory()
        node_mem = TargetSystem(CASE).master.mem
        address = node_mem.scratch.slot("calc.dist_acc").address + 1
        record = _run(ErrorSpec("acc", address, 5, "stack"))
        clean = TargetSystem(CASE).run()
        assert (
            record.detected
            or record.failed
            or abs(
                record.result.summary.stop_distance_m - clean.summary.stop_distance_m
            )
            > 0.5
        )


class TestInjectionMechanics:
    def test_first_injection_time_recorded(self):
        memory = MasterMemory()
        error = ErrorSpec("pad", memory.map.regions["ram"].end - 1, 0, "ram")
        system = TargetSystem(CASE)
        injector = TimeTriggeredInjector(error, start_ms=40)
        result = system.run(injector)
        assert result.first_injection_ms == 40
        assert result.injection_count > 100
