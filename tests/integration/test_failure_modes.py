"""Integration: injected corruptions map onto the Section-3.3 failure modes.

Each of the three specification constraints has a characteristic cause:
too much braking violates force (heavy aircraft) or retardation (light
aircraft, same force over less mass), too little braking violates the
stopping distance.  These tests pin the mapping down with targeted
corruptions.
"""

from repro.arrestor import constants as k
from repro.arrestor.signals_map import MasterMemory
from repro.arrestor.system import TargetSystem, TestCase
from repro.injection.errors import build_e1_error_set
from repro.injection.injector import StuckAtInjector


def _out_value_stuck_high(case):
    """OutValue bit 13 stuck at 1: the valve is commanded ~8200+ counts."""
    errors = [e for e in build_e1_error_set(MasterMemory()) if e.signal == "OutValue"]
    system = TargetSystem(case)
    result = system.run(StuckAtInjector(errors[13], stuck_value=1, start_ms=1000))
    return result


class TestOverBraking:
    def test_light_aircraft_violates_force_and_nears_the_g_limit(self):
        # With the energy-based Fmax substitute, the structural limit of a
        # light aircraft (~102 kN at 8 t / 70 m/s) binds long before 2.8 g,
        # but the retardation climbs towards the limit as well.
        result = _out_value_stuck_high(TestCase(8000.0, 70.0))
        assert result.failed
        assert "retardation" in result.verdict.violated or "force" in result.verdict.violated
        assert result.summary.max_retardation_g > 2.0

    def test_heavy_aircraft_violates_force(self):
        result = _out_value_stuck_high(TestCase(20000.0, 40.0))
        assert result.failed
        assert "force" in result.verdict.violated

    def test_retardation_binds_when_the_airframe_is_strong(self):
        """With a generous structural table, the 2.8-g constraint is the
        one that catches the over-braking (exercising constraint 1)."""
        from repro.arrestor.system import RunConfig
        from repro.plant.failure import FailureClassifier
        from repro.plant.milspec import ForceLimitTable

        generous = ForceLimitTable(
            masses=[6000.0, 26000.0],
            velocities=[30.0, 80.0],
            limits=[[900e3, 900e3], [900e3, 900e3]],
        )
        errors = [
            e for e in build_e1_error_set(MasterMemory()) if e.signal == "OutValue"
        ]
        case = TestCase(8000.0, 70.0)
        system = TargetSystem(case, classifier=FailureClassifier(force_limits=generous))
        # Pin both high bits of OutValue: full valve authority on the
        # master drum regardless of the regulator's output.
        injector = StuckAtInjector(errors[13], stuck_value=1, start_ms=1000)
        result = system.run(injector)
        if result.failed:
            assert result.verdict.violated == ("retardation",)
        else:
            # The adaptive slave compensation kept it under 2.8 g: the
            # retardation still dominates every other constraint here.
            assert result.summary.max_retardation_g > 2.0

    def test_over_braking_is_detected(self):
        # EA7 sees the stuck command violate OutValue's rate envelope.
        result = _out_value_stuck_high(TestCase(14000.0, 55.0))
        assert result.detected


class TestUnderBraking:
    @staticmethod
    def _silence(system, slot):
        word = system.master.mem.dispatch.word_variable(slot)
        word.set(word.get() ^ 0x0100)  # skip-class corruption

    def test_losing_one_regulator_is_tolerated(self):
        """Losing the master's V_REG alone does NOT fail the arrestment:
        the slave drum still brakes and CALC's mass estimation raises the
        set point to compensate — redundancy the architecture provides."""
        system = TargetSystem(TestCase(14000.0, 55.0))
        self._silence(system, k.SLOT_V_REG)
        result = system.run()
        assert not result.failed
        assert result.summary.stopped
        assert result.summary.stop_distance_m < 335.0
        # The compensation is visible: the commanded set point exceeds
        # the two-drum value for this case (~2100 counts).
        assert system.master.mem.set_value.get() > 2500

    def test_losing_both_braking_paths_violates_distance(self):
        system = TargetSystem(TestCase(14000.0, 55.0))
        self._silence(system, k.SLOT_V_REG)   # master valve never driven
        self._silence(system, k.SLOT_COMM)    # slave never gets a set point
        result = system.run()
        assert result.failed
        assert "distance" in result.verdict.violated
        assert not result.summary.stopped

    def test_under_braking_ends_at_the_overrun_boundary(self):
        system = TargetSystem(TestCase(14000.0, 55.0))
        self._silence(system, k.SLOT_V_REG)
        self._silence(system, k.SLOT_COMM)
        result = system.run()
        assert result.summary.stop_distance_m >= system.config.overrun_distance_m


class TestFailureModeExclusivity:
    def test_fault_free_run_violates_nothing(self):
        result = TargetSystem(TestCase(14000.0, 55.0)).run()
        assert result.verdict.violated == ()
