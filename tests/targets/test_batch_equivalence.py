"""Differential harness pinning batch ≡ serial, row for row.

The vectorized kernels in :mod:`repro.targets.batch` are an execution
strategy, not a second semantics: for every registered target the full
E1 error-set grid (every version x every monitored-signal bit flip)
must produce *identical* records through ``execute_specs(batch=True)``
and through the serial engine.  A kernel-level pass additionally checks
the first-detecting monitor against the serial detection log, which the
flattened records do not carry.

These tests are tier-1 on purpose — any drift between a kernel and the
serial oracle (new module semantics, changed EA parameters, reordered
within-tick tests) fails here first.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.experiments.campaign import CampaignConfig
from repro.experiments.parallel import enumerate_e1_specs, execute_specs
from repro.injection.injector import TimeTriggeredInjector
from repro.targets.registry import get_target, target_names

#: First-injection time per target: mid-run, so the kernels prove both
#: the fault-free prefix and the injected suffix against the serial
#: path (start=0 is covered by the property suite and the bench gate).
INJECTION_START = {"arrestor": 12000, "tanklevel": 3000}


def _full_grid_specs(target_name):
    config = CampaignConfig(
        cases_all=1,
        cases_per_ea=1,
        target=target_name,
        injection_start_ms=INJECTION_START[target_name],
    )
    return enumerate_e1_specs(config)


@pytest.mark.parametrize("name", target_names())
class TestFullGridEquivalence:
    """Every registered target: full E1 grid, engine serial vs batch."""

    def test_supports_batch(self, name):
        assert get_target(name).supports_batch()

    def test_full_e1_grid_identical(self, name):
        specs = _full_grid_specs(name)
        target = get_target(name)
        assert len(specs) == len(target.versions) * 16 * len(
            target.monitored_signals
        )
        serial = execute_specs(specs)
        batched = execute_specs(specs, batch=True)
        assert serial.records == batched.records


@pytest.mark.parametrize("name", target_names())
class TestFirstMonitorDetail:
    """The kernel's first-detecting EA matches the serial detection log.

    The flattened records compared above do not carry the detecting
    monitor, so this pass drives the kernel surface directly against
    serially booted systems.  One representative bit per byte half plus
    the sign bit keeps the serial side cheap; the full grids were used
    to validate the kernels and the engine path above re-covers them.
    """

    BITS = (0, 7, 15)

    def test_detail_matches_serial_log(self, name):
        from repro.targets.batch.core import BatchRunSpec

        target = get_target(name)
        module = __import__(
            f"repro.targets.batch.{name}", fromlist=["run_batch_detailed"]
        )
        errors = [
            e for e in target.e1_error_set() if e.signal_bit in self.BITS
        ]
        case = target.test_cases()[0]
        specs = [
            BatchRunSpec(
                version="All",
                signal=error.signal,
                signal_bit=error.signal_bit,
                mass_kg=case.mass_kg,
                velocity_mps=case.velocity_mps,
            )
            for error in errors
        ]
        outcomes = module.run_batch_detailed(specs)
        for error, outcome in zip(errors, outcomes):
            system = target.boot(case, "All")
            result = system.run(TimeTriggeredInjector(error, period_ms=20))
            events = system.detection_log.events
            first_monitor = events[0].monitor_id if events else None
            assert outcome.result == result, error.name
            assert outcome.first_monitor == first_monitor, error.name


class TestBatchEligibility:
    """Specs the kernels cannot express stay on the serial path."""

    def test_e2_specs_are_not_batchable(self):
        from repro.experiments.parallel import _split_batchable, enumerate_e2_specs

        config = CampaignConfig(cases_e2=1, target="arrestor")
        specs = enumerate_e2_specs(config)
        batchable, rest = _split_batchable(specs, None)
        assert batchable == []
        assert rest == specs

    def test_run_config_forces_serial(self):
        from repro.arrestor.system import RunConfig
        from repro.experiments.parallel import _split_batchable

        specs = _full_grid_specs("arrestor")[:4]
        batchable, rest = _split_batchable(specs, RunConfig())
        assert batchable == []
        assert rest == specs

    def test_default_e1_specs_are_batchable(self):
        from repro.experiments.parallel import _split_batchable

        specs = _full_grid_specs("tanklevel")[:8]
        batchable, rest = _split_batchable(specs, None)
        assert batchable == specs
        assert rest == []

    def test_base_target_defaults_off(self):
        from repro.targets.base import Target

        class Stub(Target):
            name = "stub"
            versions = ("All",)
            monitored_signals = ("s",)

            def memory(self):
                raise NotImplementedError

            def test_cases(self):
                return []

            def boot(self, *a, **k):
                raise NotImplementedError

            def timeout_summary(self, *a, **k):
                raise NotImplementedError

            def lint_target(self):
                raise NotImplementedError

        stub = Stub()
        assert stub.supports_batch() is False
        with pytest.raises(NotImplementedError, match="batch"):
            stub.run_batch([])
