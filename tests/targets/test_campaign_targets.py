"""Campaign engine behaviour across registered targets."""

import dataclasses

import pytest

from repro.experiments.campaign import CampaignConfig, run_e1_campaign
from repro.targets.registry import get_target


def _tiny_config(target, workers=1):
    return CampaignConfig(
        cases_all=1,
        cases_per_ea=1,
        versions=("All",),
        workers=workers,
        target=target,
    )


def _keyed(results):
    return sorted(dataclasses.astuple(r) for r in results.records)


class TestTargetRouting:
    def test_config_resolves_target_versions(self):
        config = CampaignConfig(target="tanklevel")
        assert config.target == "tanklevel"
        assert config.versions == get_target("tanklevel").versions

    def test_unknown_target_version_rejected(self):
        with pytest.raises(ValueError, match="unknown versions"):
            CampaignConfig(target="tanklevel", versions=("EA7",))

    def test_default_target_versions_unchanged(self):
        from repro.experiments.campaign import E1_VERSIONS

        assert CampaignConfig().versions == E1_VERSIONS


class TestTanklevelCampaign:
    def test_e1_covers_the_tanklevel_error_set(self):
        results = run_e1_campaign(_tiny_config("tanklevel"))
        target = get_target("tanklevel")
        assert len(results) == 16 * len(target.monitored_signals)
        assert set(r.signal for r in results.records) == set(
            target.monitored_signals
        )
        # High-bit errors must be detected on every signal (the paper's
        # bit-threshold structure carries over to the second workload).
        for signal in target.monitored_signals:
            high = [
                r
                for r in results.records
                if r.signal == signal and r.signal_bit == 15
            ]
            assert high and all(r.detected for r in high), signal

    def test_serial_parallel_equivalence(self):
        serial = run_e1_campaign(_tiny_config("tanklevel", workers=1))
        parallel = run_e1_campaign(_tiny_config("tanklevel", workers=2))
        assert _keyed(serial) == _keyed(parallel)
