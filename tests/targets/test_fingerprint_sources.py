"""Regression pins for the corrected fingerprint lists (EA504 fixes).

PR 6's source analysis found both shipped targets fingerprinting fewer
modules than they actually import (``repro.targets.snapshot`` and
``repro.experiments.testcases`` were missing): cached campaign results
survived edits that change behaviour.  These tests pin the corrected
lists and prove the import closure is now fully covered.
"""

import pytest

from repro.analysis.source import build_source_model
from repro.targets.registry import get_target

# The execution engine and campaign task graph decide how runs execute,
# replay and aggregate, so both targets fingerprint them alongside the
# simulation stack.
ENGINE_FINGERPRINT = {
    "repro.experiments.graph",
    "repro.experiments.dag",
    "repro.experiments.parallel",
    "repro.experiments.persistence",
    "repro.experiments.results",
    "repro.experiments.store",
    "repro.stats",
}

ARRESTOR_FINGERPRINT = {
    "repro.core",
    "repro.memory",
    "repro.plant",
    "repro.rtos",
    "repro.injection",
    "repro.targets.base",
    "repro.targets.snapshot",
    "repro.targets.arrestor",
    "repro.experiments.testcases",
    "repro.arrestor",
    # The vectorized batch kernel is an alternate execution engine for
    # the same runs: its semantics must invalidate cached results too.
    "repro.targets.batch.core",
    "repro.targets.batch.arrestor",
} | ENGINE_FINGERPRINT

TANKLEVEL_FINGERPRINT = {
    "repro.core",
    "repro.memory",
    "repro.plant",
    "repro.rtos",
    "repro.injection",
    "repro.targets.base",
    "repro.targets.snapshot",
    "repro.experiments.testcases",
    "repro.targets.tanklevel",
    "repro.targets.batch.core",
    "repro.targets.batch.tanklevel",
} | ENGINE_FINGERPRINT


class TestFingerprintLists:
    def test_arrestor_list_pinned(self):
        assert set(get_target("arrestor").fingerprint_sources()) == (
            ARRESTOR_FINGERPRINT
        )

    def test_tanklevel_list_pinned(self):
        assert set(get_target("tanklevel").fingerprint_sources()) == (
            TANKLEVEL_FINGERPRINT
        )

    @pytest.mark.parametrize("name", ["arrestor", "tanklevel"])
    def test_import_closure_fully_covered(self, name):
        model = build_source_model(get_target(name))
        assert model.uncovered_imports == ()
        assert model.unresolved_entries == ()


class TestMemoryDeclaredSignals:
    """E1 error-set construction now reads MONITORED_SIGNALS off the memory."""

    def test_master_memory_declares_signals(self):
        from repro.arrestor.signals_map import MasterMemory
        from repro.injection.errors import build_e1_error_set

        errors = build_e1_error_set(MasterMemory())
        assert len(errors) == 112

    def test_tank_memory_declares_signals(self):
        from repro.injection.errors import build_e1_error_set
        from repro.targets.tanklevel.memory import TankMemory

        errors = build_e1_error_set(TankMemory())
        assert len(errors) == 80

    def test_memory_without_declaration_raises(self):
        from repro.injection.errors import build_e1_error_set

        class Bare:
            pass

        with pytest.raises(TypeError, match="MONITORED_SIGNALS"):
            build_e1_error_set(Bare())
