"""Unit-level differentials for the batch kernel building blocks.

Each vectorized primitive in :mod:`repro.targets.batch.core` mirrors a
serial component that is already pinned by its own tests; these tests
drive both sides over the same inputs and require elementwise equality,
so any semantic drift in either implementation is caught at the
primitive level before it can surface as a whole-run mismatch.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.core.classes import SignalClass
from repro.core.monitor import SignalMonitor
from repro.core.parameters import ContinuousParams, linear_transition_map
from repro.core.recovery import HoldLastValid
from repro.targets.batch.core import (
    BatchRunSpec,
    DetectionBook,
    VecMonitor,
    injection_stats,
    linear_cyclic_length,
)


def _drive_pair(signal_class, params, rows, recovery):
    """Run N serial monitors and one N-row VecMonitor over *rows*.

    *rows* is a list of per-row value sequences, all the same length.
    Asserts the returned (possibly recovered) values and the violation
    flags agree elementwise at every step, then returns the book.
    """
    n = len(rows)
    steps = len(rows[0])
    serial = [
        SignalMonitor(
            f"s{r}",
            signal_class,
            params,
            recovery=HoldLastValid() if recovery else None,
            monitor_id="EAx",
        )
        for r in range(n)
    ]
    vec = VecMonitor("EAx", params, n, recovery=recovery)
    book = DetectionBook(n)
    mask = np.ones(n, dtype=bool)
    for t in range(steps):
        values = np.array([rows[r][t] for r in range(n)], dtype=np.int64)
        before = [m.violations for m in serial]
        expected = [m.test(rows[r][t], time=t) for r, m in enumerate(serial)]
        flagged = [m.violations != b for m, b in zip(serial, before)]
        detected_before = book.detected.copy()
        count_before = book.count.copy()
        out = vec.test(values, t, mask, book)
        for r in range(n):
            assert out[r] == expected[r], (t, r)
            newly_counted = book.count[r] != count_before[r]
            assert newly_counted == flagged[r], (t, r)
        del detected_before
    return book


def test_continuous_hold_last_valid_matches_serial():
    params = ContinuousParams.random(0, 100, rmax_incr=10, rmax_decr=10)
    rows = [
        [5, 10, 14, 90, 91, 95, 99],  # one out-of-rate jump mid-sequence
        [5, 6, 7, 8, 9, 10, 11],  # never violates
        [120, 5, 6, 200, 7, 8, 9],  # violates on the very first sample
        [5, 5, 5, 5, 5, 5, 5],  # unchanged every step
    ]
    book = _drive_pair(SignalClass.CONTINUOUS_RANDOM, params, rows, True)
    assert book.row(1) == (False, None, 0, None)
    detected, first_ms, _count, monitor = book.row(0)
    assert detected and monitor == "EAx" and first_ms == 3


def test_continuous_no_recovery_adopts_observed_value():
    """Without recovery the erroneous sample becomes the new reference."""
    params = ContinuousParams.random(0, 100, rmax_incr=10, rmax_decr=10)
    rows = [[5, 50, 55, 60, 0, 5, 10]]
    _drive_pair(SignalClass.CONTINUOUS_RANDOM, params, rows, False)


def test_continuous_wrap_matches_serial():
    params = ContinuousParams(
        0, 7, rmin_incr=1, rmax_incr=1, wrap=True
    )
    rows = [
        [0, 1, 2, 3, 4, 5, 6, 7, 0, 1],  # clean wrap-around
        [0, 1, 5, 6, 7, 0, 1, 2, 3, 4],  # one bad jump, then clean again
    ]
    _drive_pair(
        SignalClass.CONTINUOUS_MONOTONIC_STATIC, params, rows, True
    )


def test_discrete_linear_cyclic_matches_serial():
    params = linear_transition_map(range(7), cyclic=True)
    assert linear_cyclic_length(params) == 7
    rows = [
        [0, 1, 2, 3, 4, 5, 6, 0, 1],  # clean cycle
        [0, 1, 2, 9, 4, 5, 6, 0, 1],  # out-of-domain spike
        [0, 2, 3, 4, 5, 6, 0, 1, 2],  # skipped step
    ]
    _drive_pair(
        SignalClass.DISCRETE_SEQUENTIAL_LINEAR, params, rows, True
    )


def test_discrete_no_recovery_matches_serial():
    params = linear_transition_map(range(7), cyclic=True)
    rows = [[0, 1, 5, 6, 0, 1, 2]]
    _drive_pair(SignalClass.DISCRETE_SEQUENTIAL_LINEAR, params, rows, False)


@pytest.mark.parametrize("start", [0, 1, 19, 20, 4990, 5000, 5001])
@pytest.mark.parametrize("period", [1, 7, 20])
def test_injection_stats_matches_brute_force(start, period):
    last_ms = 4999
    ticks = [
        now
        for now in range(last_ms + 1)
        if now >= start and (now - start) % period == 0
    ]
    first, count = injection_stats(start, period, last_ms)
    assert first == (ticks[0] if ticks else None)
    assert count == len(ticks)


def test_detection_book_orders_monitors_by_first_record():
    book = DetectionBook(2)
    none = np.zeros(2, dtype=bool)
    book.record(none, 10, "EA1")
    book.record(np.array([True, False]), 11, "EA2")
    book.record(np.array([True, True]), 12, "EA1")
    assert book.row(0) == (True, 11, 2, "EA2")
    assert book.row(1) == (True, 12, 1, "EA1")


def test_batch_run_spec_test_case_roundtrip():
    spec = BatchRunSpec(
        version="All",
        signal="tick",
        signal_bit=4,
        mass_kg=8000.0,
        velocity_mps=40.0,
    )
    case = spec.test_case()
    assert (case.mass_kg, case.velocity_mps) == (8000.0, 40.0)
