"""Property-based differential tests for the vectorized batch kernels.

Randomized (signal, bit, start, period, version, case) tuples at random
batch sizes — including N=1 and awkward non-divisible sizes — must
produce exactly the serial oracle's results, and a batch must behave as
if each row ran alone: reordering the specs reorders the results, and
splitting one batch into two sub-batches changes nothing (no cross-row
state bleed).

The properties run against the tank-level kernel, whose 5 000-tick runs
keep the serial oracle affordable per example; the arrestor kernel gets
the same treatment from the full-grid engine test in
``test_batch_equivalence.py`` plus the benchmark's equivalence gate.
"""

import pytest

np = pytest.importorskip("numpy")
hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.injection.injector import TimeTriggeredInjector
from repro.targets.batch.core import BatchRunSpec
from repro.targets.batch.tanklevel import run_batch, run_batch_detailed
from repro.targets.registry import get_target

TARGET = get_target("tanklevel")
ERROR_BY_LOCATION = {
    (error.signal, error.signal_bit): error for error in TARGET.e1_error_set()
}
CASES = TARGET.test_cases()

spec_strategy = st.builds(
    BatchRunSpec,
    version=st.sampled_from(TARGET.versions),
    signal=st.sampled_from(TARGET.monitored_signals),
    signal_bit=st.integers(min_value=0, max_value=15),
    mass_kg=st.sampled_from([case.mass_kg for case in CASES]),
    velocity_mps=st.sampled_from([case.velocity_mps for case in CASES]),
    injection_period_ms=st.sampled_from([10, 20, 50]),
    # Past-the-end starts are legal: the run simply never injects.
    injection_start_ms=st.integers(min_value=0, max_value=5200),
)

# One list shape exercises N=1 and odd, non-divisible batch sizes alike.
specs_strategy = st.lists(spec_strategy, min_size=1, max_size=5)

common = settings(
    max_examples=12,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


def _serial_outcome(spec):
    """Run one spec through the serial system, the oracle for every row."""
    case = next(
        c
        for c in CASES
        if c.mass_kg == spec.mass_kg and c.velocity_mps == spec.velocity_mps
    )
    system = TARGET.boot(case, spec.version)
    injector = TimeTriggeredInjector(
        ERROR_BY_LOCATION[(spec.signal, spec.signal_bit)],
        period_ms=spec.injection_period_ms,
        start_ms=spec.injection_start_ms,
    )
    result = system.run(injector)
    events = system.detection_log.events
    return result, (events[0].monitor_id if events else None)


@common
@given(specs=specs_strategy)
def test_batch_equals_serial_row_for_row(specs):
    outcomes = run_batch_detailed(specs)
    assert len(outcomes) == len(specs)
    for spec, outcome in zip(specs, outcomes):
        result, first_monitor = _serial_outcome(spec)
        assert outcome.result == result, spec
        assert outcome.first_monitor == first_monitor, spec


@settings(
    max_examples=6,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(specs=specs_strategy, data=st.data())
def test_batch_composition_invariance(specs, data):
    """Each row behaves as if it ran alone: no cross-row state bleed.

    One batch run is the baseline; a shuffled batch must return the
    same results in the shuffled order, and the shuffled batch split at
    an arbitrary point into two sub-batches (including an empty one)
    must return them unchanged again.
    """
    baseline = run_batch(specs)
    order = data.draw(st.permutations(range(len(specs))))
    shuffled_specs = [specs[i] for i in order]
    expected = [baseline[i] for i in order]
    assert run_batch(shuffled_specs) == expected
    split = data.draw(st.integers(min_value=0, max_value=len(specs)))
    parts = run_batch(shuffled_specs[:split]) + run_batch(shuffled_specs[split:])
    assert parts == expected


def test_single_row_batch_matches_serial():
    """The N=1 degenerate batch is exactly one serial run."""
    spec = BatchRunSpec(
        version="All",
        signal=TARGET.monitored_signals[0],
        signal_bit=3,
        mass_kg=CASES[0].mass_kg,
        velocity_mps=CASES[0].velocity_mps,
        injection_start_ms=100,
    )
    (outcome,) = run_batch_detailed([spec])
    result, first_monitor = _serial_outcome(spec)
    assert outcome.result == result
    assert outcome.first_monitor == first_monitor
