"""Tests for the target protocol and the scenario registry."""

import pytest

from repro.targets.base import Target, TestCase, validate_target
from repro.targets.registry import (
    DEFAULT_TARGET,
    TARGET_ENV_VAR,
    default_target_name,
    get_target,
    register_target,
    target_names,
    unregister_target,
)


class _StubTarget(Target):
    """Minimal concrete target for registry tests."""

    name = "stub"
    description = "a stub workload"

    @property
    def versions(self):
        return ("EA1", "All")

    @property
    def monitored_signals(self):
        return ("sig",)

    def memory(self):  # pragma: no cover - not exercised
        raise NotImplementedError

    def test_cases(self):
        return [TestCase(1.0, 1.0)]

    def boot(self, test_case, version="All", run_config=None, classifier=None):
        raise NotImplementedError  # pragma: no cover

    def timeout_summary(self, test_case, duration_s):
        raise NotImplementedError  # pragma: no cover

    def lint_target(self):
        raise NotImplementedError  # pragma: no cover


class TestRegistry:
    def test_builtins_are_registered(self):
        names = target_names()
        assert names[0] == "arrestor"
        assert "tanklevel" in names

    def test_default_is_arrestor(self, monkeypatch):
        monkeypatch.delenv(TARGET_ENV_VAR, raising=False)
        assert default_target_name() == DEFAULT_TARGET == "arrestor"
        assert get_target(None).name == "arrestor"

    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv(TARGET_ENV_VAR, "tanklevel")
        assert default_target_name() == "tanklevel"
        assert get_target(None).name == "tanklevel"

    def test_get_by_name_is_cached(self):
        assert get_target("tanklevel") is get_target("tanklevel")

    def test_get_passes_instances_through(self):
        target = get_target("arrestor")
        assert get_target(target) is target

    def test_unknown_name_raises_with_catalogue(self):
        with pytest.raises(KeyError, match="arrestor"):
            get_target("nosuch")

    def test_register_and_unregister(self):
        register_target("stub", _StubTarget)
        try:
            assert "stub" in target_names()
            assert get_target("stub").description == "a stub workload"
            with pytest.raises(ValueError, match="already registered"):
                register_target("stub", _StubTarget)
            register_target("stub", _StubTarget, replace=True)
        finally:
            unregister_target("stub")
        assert "stub" not in target_names()

    def test_bad_names_rejected(self):
        with pytest.raises(ValueError, match="simple identifier"):
            register_target("no spaces", _StubTarget)
        with pytest.raises(ValueError, match="simple identifier"):
            register_target("", _StubTarget)

    def test_builtins_cannot_be_unregistered(self):
        with pytest.raises(ValueError, match="built-in"):
            unregister_target("arrestor")


class TestValidateTarget:
    def test_accepts_builtin_targets(self):
        for name in target_names():
            assert validate_target(get_target(name)).name == name

    def test_rejects_missing_all_version(self):
        class NoAll(_StubTarget):
            @property
            def versions(self):
                return ("EA1",)

        with pytest.raises(ValueError, match="'All' version"):
            validate_target(NoAll())

    def test_rejects_empty_name(self):
        class NoName(_StubTarget):
            name = ""

        with pytest.raises(ValueError, match="non-empty name"):
            validate_target(NoName())

    def test_rejects_duplicate_signals(self):
        class DupSignals(_StubTarget):
            @property
            def monitored_signals(self):
                return ("sig", "sig")

        with pytest.raises(ValueError, match="duplicate monitored signals"):
            validate_target(DupSignals())


class TestTargetSurface:
    """The protocol surface every registered target must honour."""

    @pytest.fixture(params=["arrestor", "tanklevel"])
    def target(self, request):
        return get_target(request.param)

    def test_versions_cover_each_mechanism(self, target):
        versions = target.versions
        assert versions[-1] == "All"
        assert len(versions) == len(set(versions))

    def test_version_eas(self, target):
        assert target.version_eas("All") is None
        first = target.versions[0]
        assert target.version_eas(first) == (first,)

    def test_memory_surface(self, target):
        mem = target.memory()
        for signal in target.monitored_signals:
            var = mem.signal_variable(signal)
            assert mem.map.region_of(var.address) is not None

    def test_e1_error_set_covers_all_signal_bits(self, target):
        errors = target.e1_error_set()
        assert len(errors) == 16 * len(target.monitored_signals)
        assert {e.signal for e in errors} == set(target.monitored_signals)

    def test_e2_error_set_is_seeded(self, target):
        assert [
            (e.address, e.bit) for e in target.e2_error_set(seed=7)
        ] == [(e.address, e.bit) for e in target.e2_error_set(seed=7)]

    def test_lint_target_is_clean(self, target):
        from repro.analysis.engine import analyze_plan

        plan, fmeca = target.lint_target()
        report = analyze_plan(plan, fmeca)
        assert report.clean, report.format_text()

    def test_test_cases_form_the_grid(self, target):
        cases = target.test_cases()
        assert len(cases) == 25


class TestCheckAllTargets:
    def test_every_registered_target_lints_clean(self):
        from repro.analysis.selfcheck import check_all_targets

        reports = check_all_targets()
        assert set(reports) == set(target_names())
        for name, report in reports.items():
            assert report.clean, f"{name}: {report.format_text()}"
