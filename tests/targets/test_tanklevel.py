"""Tests for the tank-level reference workload."""

import dataclasses

import pytest

from repro.arrestor.system import RunConfig as ArrestorRunConfig
from repro.injection.errors import ErrorSpec
from repro.injection.injector import TimeTriggeredInjector
from repro.targets.base import TestCase
from repro.targets.registry import get_target
from repro.targets.tanklevel import TankPlant, TankRunConfig, TankSystem
from repro.targets.tanklevel.plant import (
    LEVEL_TOLERANCE_MM,
    TARGET_LEVEL_MM,
    demand_for,
    initial_level_for,
)

_CASE = TestCase(mass_kg=14000.0, velocity_mps=55.0)


def _injector(signal, bit, period_ms=20):
    mem = get_target("tanklevel").memory()
    var = mem.signal_variable(signal)
    spec = ErrorSpec(
        f"probe_{signal}_{bit}",
        var.address + bit // 8,
        bit % 8,
        "ram",
        signal=signal,
        signal_bit=bit,
    )
    return TimeTriggeredInjector(spec, period_ms=period_ms)


class TestPlant:
    def test_reinterprets_the_shared_grid(self):
        assert demand_for(3600.0) == pytest.approx(1.0)
        assert initial_level_for(40.0) == pytest.approx(500.0)

    def test_level_integrates_and_clamps(self):
        from repro.targets.tanklevel.plant import TANK_HEIGHT_MM

        plant = TankPlant(demand_lps=0.1, initial_level_mm=1249.0)
        plant.advance(1.0, valve_counts=1023, trim_lps=0.0)
        assert plant.level_mm == TANK_HEIGHT_MM
        plant = TankPlant(demand_lps=5.0, initial_level_mm=1.0)
        plant.advance(1.0, valve_counts=0, trim_lps=0.5)
        assert plant.level_mm == 0.0


class TestFaultFree:
    def test_full_grid_regulates_without_false_alarms(self):
        target = get_target("tanklevel")
        for case in target.test_cases():
            result = target.boot(case).run(None)
            assert not result.detected, (case, result.detection_count)
            assert not result.failed, (case, result.verdict)
            assert result.summary.settled
            assert (
                abs(result.summary.final_level_mm - TARGET_LEVEL_MM)
                <= LEVEL_TOLERANCE_MM
            )

    def test_detection_log_is_per_boot(self):
        target = get_target("tanklevel")
        first = target.boot(_CASE)
        second = target.boot(_CASE)
        assert first.detection_log is not second.detection_log


class TestInjection:
    @pytest.mark.parametrize("signal", get_target("tanklevel").monitored_signals)
    def test_high_bit_errors_are_detected(self, signal):
        result = get_target("tanklevel").boot(_CASE).run(_injector(signal, 15))
        assert result.detected, signal
        assert result.first_detection_ms is not None

    def test_disabled_mechanism_does_not_detect(self):
        # EA2 guards `level`; a version with only EA1 must miss level errors.
        result = (
            get_target("tanklevel")
            .boot(_CASE, version="EA1")
            .run(_injector("level", 15))
        )
        assert not result.detected

    def test_recovery_restores_regulation(self):
        config = TankRunConfig(with_recovery=True)
        result = (
            get_target("tanklevel")
            .boot(_CASE, run_config=config)
            .run(_injector("level", 15))
        )
        assert result.detected
        assert not result.failed

    def test_injection_metadata_propagates(self):
        result = get_target("tanklevel").boot(_CASE).run(_injector("tick", 0))
        assert result.injection_count > 0
        assert result.first_injection_ms == 0


class TestRunConfig:
    def test_rejects_foreign_run_config(self):
        with pytest.raises(TypeError, match="TankRunConfig"):
            get_target("tanklevel").boot(_CASE, run_config=ArrestorRunConfig())

    def test_version_overrides_run_config_eas(self):
        system = get_target("tanklevel").boot(
            _CASE, version="EA3", run_config=TankRunConfig(enabled_eas=("EA1",))
        )
        assert system.config.enabled_eas == ("EA3",)

    def test_validation(self):
        with pytest.raises(ValueError, match="observe_ms"):
            TankRunConfig(observe_ms=0)

    def test_direct_construction_matches_boot(self):
        direct = TankSystem(_CASE).run(None)
        booted = get_target("tanklevel").boot(_CASE).run(None)
        assert dataclasses.astuple(direct) == dataclasses.astuple(booted)


class TestTimeout:
    def test_timeout_summary_is_unsettled(self):
        summary = get_target("tanklevel").timeout_summary(_CASE, duration_s=2.0)
        assert not summary.settled
        assert summary.duration_s == 2.0
