"""The arrestor adapter must be behaviourally identical to direct wiring."""

from repro.arrestor.signals_map import MONITORED_SIGNALS, MasterMemory
from repro.arrestor.system import RunConfig, TargetSystem, TestCase
from repro.injection.errors import ErrorSpec
from repro.injection.injector import TimeTriggeredInjector
from repro.targets.registry import get_target

_CASE = TestCase(mass_kg=14000.0, velocity_mps=55.0)


def _result_key(result):
    return (
        result.detected,
        result.first_detection_ms,
        result.detection_count,
        result.failed,
        result.wedged,
        result.duration_ms,
        result.summary,
    )


def _mscnt_injector():
    mem = MasterMemory()
    var = mem.signal_variable("mscnt")
    spec = ErrorSpec("probe", var.address + 1, 7, "ram", signal="mscnt", signal_bit=15)
    return TimeTriggeredInjector(spec, period_ms=20)


class TestAdapterEquivalence:
    def test_static_surface_matches_arrestor_modules(self):
        target = get_target("arrestor")
        assert target.monitored_signals == MONITORED_SIGNALS
        assert target.versions[-1] == "All"
        assert len(target.versions) == 8

    def test_fault_free_run_identical(self):
        direct = TargetSystem(_CASE).run(None)
        adapted = get_target("arrestor").boot(_CASE).run(None)
        assert _result_key(adapted) == _result_key(direct)

    def test_injected_run_identical(self):
        direct = TargetSystem(_CASE).run(_mscnt_injector())
        adapted = get_target("arrestor").boot(_CASE).run(_mscnt_injector())
        assert adapted.detected and direct.detected
        assert _result_key(adapted) == _result_key(direct)

    def test_version_selection_matches_enabled_eas(self):
        direct = TargetSystem(_CASE, enabled_eas=("EA6",)).run(_mscnt_injector())
        adapted = get_target("arrestor").boot(_CASE, version="EA6").run(
            _mscnt_injector()
        )
        assert _result_key(adapted) == _result_key(direct)

    def test_run_config_passes_through(self):
        config = RunConfig(with_recovery=True, observe_ms_max=4000)
        system = get_target("arrestor").boot(_CASE, run_config=config)
        assert system.config.with_recovery
        assert system.config.observe_ms_max == 4000

    def test_timeout_summary_is_a_non_stop(self):
        summary = get_target("arrestor").timeout_summary(_CASE, duration_s=1.5)
        assert not summary.stopped
        assert summary.duration_s == 1.5
