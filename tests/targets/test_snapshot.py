"""Snapshot layer: restored runs must be byte-identical to cold runs.

The warm-target cache (:mod:`repro.targets.snapshot`) underpins the
campaign engine's acceleration; these tests pin its core promises:

* a run on a snapshot-restored system equals a cold run — full
  :class:`RunResult` plus the detection-event list — for every built-in
  target, on both the boot-snapshot and prefix-fast-forward paths;
* one snapshot serves many runs without any run leaking corrupted
  state into the next (the hypothesis property);
* the LRU cache accounts hits/misses/evictions and is bounded.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.injection.fic import CampaignController, clear_reference_memo
from repro.targets import booted_system, cache_stats, clear_cache, prefixed_system
from repro.targets.base import Snapshot
from repro.targets.registry import get_target
from repro.targets.snapshot import (
    SnapshotCache,
    _cache_key,
    snapshots_enabled_default,
)

TARGETS = ("arrestor", "tanklevel")

#: Per-target first-injection time exercising the prefix fast-forward.
PREFIX_MS = {"arrestor": 2000, "tanklevel": 1000}


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_cache()
    clear_reference_memo()
    yield
    clear_cache()
    clear_reference_memo()


class TestColdVsRestored:
    @pytest.mark.parametrize("name", TARGETS)
    def test_fault_free_run_identical(self, name):
        target = get_target(name)
        case = target.test_cases()[0]
        cold_system = target.boot(case, "All")
        cold = cold_system.run()

        warm_system = booted_system(target, case, "All")
        warm = warm_system.run()

        assert warm == cold
        assert warm_system.detection_log.events == cold_system.detection_log.events

    @pytest.mark.parametrize("name", TARGETS)
    def test_injected_run_identical_on_miss_and_hit(self, name):
        target = get_target(name)
        case = target.test_cases()[0]
        error = target.e1_error_set()[0]

        cold = CampaignController(target=name, snapshots=False)
        reference = cold.run_injection(error, case, "All").result

        warm = CampaignController(target=name, snapshots=True)
        miss = warm.run_injection(error, case, "All").result  # capture + restore
        hit = warm.run_injection(error, case, "All").result  # pure restore
        assert miss == reference
        assert hit == reference

    @pytest.mark.parametrize("name", TARGETS)
    def test_prefix_fast_forward_identical(self, name):
        target = get_target(name)
        case = target.test_cases()[1]
        error = target.e1_error_set()[3]
        start = PREFIX_MS[name]

        cold = CampaignController(
            target=name, snapshots=False, injection_start_ms=start
        )
        reference = cold.run_injection(error, case, "All").result
        assert reference.first_injection_ms is None or (
            reference.first_injection_ms >= start
        )

        warm = CampaignController(
            target=name, snapshots=True, injection_start_ms=start
        )
        for _ in range(2):  # prefix-miss, then prefix-hit
            assert warm.run_injection(error, case, "All").result == reference

    @pytest.mark.parametrize("name", TARGETS)
    def test_prefixed_system_resumes_like_cold(self, name):
        # The raw snapshot API, without the controller: restoring a
        # prefix snapshot and finishing fault-free equals one cold run.
        target = get_target(name)
        case = target.test_cases()[2]
        cold = target.boot(case, "All").run()
        resumed = prefixed_system(target, case, "All", PREFIX_MS[name]).run()
        assert resumed == cold

    @pytest.mark.parametrize("name", TARGETS)
    def test_reference_memoization_identical(self, name):
        target = get_target(name)
        case = target.test_cases()[0]
        cold = CampaignController(target=name, snapshots=False)
        reference = cold.run_reference(case, "All").result
        warm = CampaignController(target=name, snapshots=True)
        first = warm.run_reference(case, "All").result
        memoized = warm.run_reference(case, "All").result
        assert first == reference
        assert memoized == reference
        assert warm.runs_executed == 2  # memoized calls still count


class TestNoStateLeak:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(error_index=st.integers(min_value=0, max_value=15), case_index=st.integers(min_value=0, max_value=4))
    def test_injected_run_never_corrupts_later_restores(self, error_index, case_index):
        # Property: however an injected run corrupts its restored system,
        # the *next* restore from the same snapshot is pristine — its
        # fault-free run matches a cold boot's exactly.
        target = get_target("tanklevel")
        cases = target.test_cases()
        case = cases[case_index % len(cases)]
        errors = target.e1_error_set()
        error = errors[error_index % len(errors)]

        cold_reference = target.boot(case, "All").run()

        controller = CampaignController(target="tanklevel", snapshots=True)
        controller.run_injection(error, case, "All")  # corrupts its own copy

        pristine = booted_system(target, case, "All").run()
        assert pristine == cold_reference


class TestCache:
    def test_stats_count_misses_and_hits(self):
        target = get_target("tanklevel")
        case = target.test_cases()[0]
        booted_system(target, case, "All")
        booted_system(target, case, "All")
        prefixed_system(target, case, "All", 500)
        prefixed_system(target, case, "All", 500)
        stats = cache_stats().as_dict()
        assert stats["boot_misses"] == 1
        assert stats["boot_hits"] == 1
        assert stats["prefix_misses"] == 1
        assert stats["prefix_hits"] == 1

    def test_lru_eviction_is_bounded_and_counted(self):
        cache = SnapshotCache(maxsize=2)
        target = get_target("tanklevel")
        cases = target.test_cases()[:3]
        keys = [_cache_key(target, "All", case, None, 0) for case in cases]
        for key in keys:
            cache.put(key, Snapshot(codec="deepcopy", payload=object()))
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.get(keys[0]) is None  # the oldest entry was evicted
        assert cache.get(keys[2]) is not None

    def test_cache_rejects_nonpositive_size(self):
        with pytest.raises(ValueError, match="maxsize"):
            SnapshotCache(maxsize=0)

    def test_snapshot_codec_validated(self):
        with pytest.raises(ValueError, match="codec"):
            Snapshot(codec="tarball", payload=b"")

    def test_deepcopy_fallback_for_unpicklable_system(self):
        class Unpicklable:
            def __init__(self):
                self.hook = lambda: None  # lambdas do not pickle

        target = get_target("tanklevel")
        snapshot = target.snapshot(Unpicklable())
        assert snapshot.codec == "deepcopy"
        restored = target.restore(snapshot)
        assert restored is not snapshot.payload  # independent copy per call


class TestDefaults:
    def test_env_var_disables_snapshots(self, monkeypatch):
        for raw in ("0", "false", "off", "no", "OFF"):
            monkeypatch.setenv("REPRO_SNAPSHOTS", raw)
            assert snapshots_enabled_default() is False
        for raw in ("", "1", "true", "on"):
            monkeypatch.setenv("REPRO_SNAPSHOTS", raw)
            assert snapshots_enabled_default() is True
        monkeypatch.delenv("REPRO_SNAPSHOTS")
        assert snapshots_enabled_default() is True

    def test_controller_with_custom_classifier_bypasses_cache(self):
        from repro.plant.failure import FailureClassifier

        target = get_target("arrestor")
        case = target.test_cases()[0]
        controller = CampaignController(
            target="arrestor", snapshots=True, classifier=FailureClassifier()
        )
        controller.run_reference(case, "All")
        stats = cache_stats().as_dict()
        assert stats["boot_misses"] == 0  # cold boot, cache untouched
