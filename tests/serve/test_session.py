"""Session-level serving: one streamed instance vs the offline loop."""

import pytest

from repro.injection.errors import ErrorSpec
from repro.injection.fic import CampaignController
from repro.injection.injector import TimeTriggeredInjector
from repro.serve.session import (
    Frame,
    ServeError,
    Session,
    SessionClosed,
    SessionSpec,
    events_key,
    require_servable,
    resolve_flip,
)
from repro.targets.registry import get_target


def _offline(target, spec):
    """One campaign-path run of *spec*'s schedule: (result, event key)."""
    controller = CampaignController(
        target=target,
        injection_period_ms=spec.period_ms,
        injection_start_ms=spec.start_ms,
    )
    system = controller._build_system(spec.test_case(), spec.version,
                                      fast_forward=True)
    variable = target.memory().signal_variable(spec.signal)
    error = ErrorSpec(
        name="t",
        address=variable.address + (spec.signal_bit >> 3),
        bit=spec.signal_bit & 7,
        area="ram",
        signal=spec.signal,
        signal_bit=spec.signal_bit,
    )
    injector = TimeTriggeredInjector(
        error, period_ms=spec.period_ms, start_ms=spec.start_ms
    )
    result = system.run(injector)
    key = [
        (e.time, e.monitor_id, e.signal, e.value, e.previous)
        for e in system.detection_log.events
    ]
    return result, key


class TestSessionSpec:
    def test_signal_without_bit_rejected(self):
        with pytest.raises(ValueError, match="signal_bit"):
            SessionSpec(session_id="s", signal="tick")

    def test_signal_bit_zero_accepted(self):
        spec = SessionSpec(session_id="s", signal="tick", signal_bit=0)
        assert spec.injects

    def test_signal_bit_out_of_range(self):
        with pytest.raises(ValueError, match="signal_bit"):
            SessionSpec(session_id="s", signal="tick", signal_bit=16)

    def test_signal_and_address_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            SessionSpec(
                session_id="s", signal="tick", signal_bit=1, address=10, bit=0
            )

    def test_address_without_bit_rejected(self):
        with pytest.raises(ValueError, match="bit"):
            SessionSpec(session_id="s", address=10)

    def test_fault_free_spec(self):
        spec = SessionSpec(session_id="s")
        assert not spec.injects

    def test_empty_session_id_rejected(self):
        with pytest.raises(ValueError, match="session_id"):
            SessionSpec(session_id="")


class TestResolveFlip:
    def test_signal_resolves_to_variable_byte(self):
        target = get_target("tanklevel")
        signal = target.monitored_signals[0]
        variable = target.memory().signal_variable(signal)
        spec = SessionSpec(session_id="s", signal=signal, signal_bit=11)
        assert resolve_flip(target, spec) == (variable.address + 1, 3)

    def test_unknown_signal_is_clean_error(self):
        target = get_target("tanklevel")
        spec = SessionSpec(session_id="s", signal="no_such", signal_bit=0)
        with pytest.raises(ServeError, match="no monitored signal"):
            resolve_flip(target, spec)

    def test_fault_free_resolves_to_none(self):
        target = get_target("tanklevel")
        assert resolve_flip(target, SessionSpec(session_id="s")) is None


class TestRequireServable:
    def test_snapshotless_target_is_clean_error(self):
        class NoSnapshots:
            name = "legacy"

            def supports_snapshots(self):
                return False

        with pytest.raises(ServeError, match="does not support snapshots"):
            require_servable(NoSnapshots())


class TestSessionStream:
    @pytest.mark.parametrize("frame_ticks", [1, 7, 20, 333])
    def test_streamed_equals_offline(self, frame_ticks):
        target = get_target("tanklevel")
        spec = SessionSpec(
            session_id="s",
            target="tanklevel",
            signal=target.monitored_signals[0],
            signal_bit=3,
            period_ms=20,
        )
        offline_result, offline_key = _offline(target, spec)

        session = Session(spec)
        while not session.finished:
            session.feed(Frame(session_id="s", ticks=frame_ticks))
        result = session.close()

        assert events_key(session.events) == offline_key
        assert result.detected == offline_result.detected
        assert result.first_detection_ms == offline_result.first_detection_ms
        assert result.injection_count == offline_result.injection_count
        assert result.first_injection_ms == offline_result.first_injection_ms
        assert result.duration_ms == offline_result.duration_ms

    def test_close_completes_remaining_window(self):
        target = get_target("tanklevel")
        spec = SessionSpec(
            session_id="s",
            target="tanklevel",
            signal=target.monitored_signals[0],
            signal_bit=3,
        )
        offline_result, offline_key = _offline(target, spec)

        session = Session(spec)
        session.feed(Frame(session_id="s", ticks=100))
        result = session.close(complete=True)
        assert result.duration_ms == offline_result.duration_ms
        assert events_key(session.events) == offline_key

    def test_partial_close_reflects_stream_only(self):
        spec = SessionSpec(
            session_id="s", target="tanklevel", signal="tick", signal_bit=0
        )
        session = Session(spec)
        session.feed(Frame(session_id="s", ticks=100))
        result = session.close(complete=False)
        assert result.duration_ms == 100
        assert not session.finished

    def test_ad_hoc_flips_inject(self):
        target = get_target("tanklevel")
        variable = target.memory().signal_variable("tick")
        spec = SessionSpec(session_id="s", target="tanklevel")
        session = Session(spec)
        session.feed(Frame(session_id="s", ticks=40))
        session.feed(
            Frame(session_id="s", ticks=40, flips=((variable.address, 6),))
        )
        assert session.first_injection_ms == 40
        result = session.close(complete=False)
        assert result.injection_count == 1
        assert result.first_injection_ms == 40
        # A 64-step jump of the schedule's tick counter trips the online
        # monitors within the very next control slot.
        assert session.events

    def test_feed_after_close_raises(self):
        session = Session(SessionSpec(session_id="s", target="tanklevel"))
        session.close(complete=False)
        with pytest.raises(SessionClosed):
            session.feed(Frame(session_id="s", ticks=1))
        with pytest.raises(SessionClosed):
            session.close()

    def test_fault_free_session_runs_clean(self):
        session = Session(SessionSpec(session_id="s", target="tanklevel"))
        while not session.finished:
            session.feed(Frame(session_id="s", ticks=500))
        result = session.close()
        assert result.injection_count == 0
        assert not result.detected
        assert session.events == []
