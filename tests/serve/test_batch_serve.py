"""The vectorized serving layer: resumable kernel, groups, eligibility."""

import pytest

from repro.serve.batchserve import BatchGroup, batch_eligible, batch_kernel_factory
from repro.serve.session import SessionSpec
from repro.targets.registry import get_target

numpy = pytest.importorskip("numpy")

from repro.targets.batch.core import DetectionBook  # noqa: E402
from repro.targets.batch.core import BatchRunSpec  # noqa: E402
from repro.targets.batch.tanklevel import (  # noqa: E402
    OBSERVE_MS,
    TankBatchKernel,
)


def _batch_specs(count=4):
    target = get_target("tanklevel")
    case = target.test_cases()[0]
    signals = target.monitored_signals
    return [
        BatchRunSpec(
            version="All",
            signal=signals[i % len(signals)],
            signal_bit=(3 * i + 1) % 16,
            mass_kg=case.mass_kg,
            velocity_mps=case.velocity_mps,
            injection_start_ms=0,
            injection_period_ms=20,
        )
        for i in range(count)
    ]


class TestResumableKernel:
    def test_chunked_advance_equals_one_shot(self):
        specs = _batch_specs()
        whole = TankBatchKernel(specs)
        whole.advance(OBSERVE_MS)
        chunked = TankBatchKernel(specs)
        while not chunked.finished:
            chunked.advance(7)
        assert whole.now_ms == chunked.now_ms == OBSERVE_MS
        for row in range(len(specs)):
            a = whole.outcome(row).result
            b = chunked.outcome(row).result
            assert a.detected == b.detected
            assert a.first_detection_ms == b.first_detection_ms
            assert a.detection_count == b.detection_count
            assert a.injection_count == b.injection_count

    def test_advance_clamps_at_window_end(self):
        kernel = TankBatchKernel(_batch_specs(2))
        kernel.advance(OBSERVE_MS * 10)
        assert kernel.now_ms == OBSERVE_MS
        assert kernel.finished

    def test_event_capture_off_by_default(self):
        kernel = TankBatchKernel(_batch_specs(2))
        kernel.advance(200)
        assert kernel.drain_events() == []

    def test_event_capture_records_rows(self):
        kernel = TankBatchKernel(_batch_specs(2), capture_events=True)
        kernel.advance(OBSERVE_MS)
        events = kernel.drain_events()
        assert events
        rows = {row for row, _, _ in events}
        assert rows <= {0, 1}
        times = [t for _, t, _ in events]
        assert times == sorted(times)
        # Draining pops: a second drain is empty.
        assert kernel.drain_events() == []


class TestDetectionBook:
    def test_capture_appends_tuples(self):
        book = DetectionBook(3, capture_events=True)
        violation = numpy.array([True, False, True])
        book.record(violation, now_ms=42, monitor_id="EA5")
        assert book.drain_events() == [(0, 42, "EA5"), (2, 42, "EA5")]

    def test_capture_off_costs_nothing(self):
        book = DetectionBook(3)
        book.record(numpy.array([True, True, True]), now_ms=1, monitor_id="EA5")
        assert book.events is None
        assert book.drain_events() == []


class TestEligibility:
    def test_signal_schedule_eligible(self):
        target = get_target("tanklevel")
        spec = SessionSpec(session_id="s", target="tanklevel",
                           signal="tick", signal_bit=3)
        assert batch_eligible(target, spec)

    def test_fault_free_not_eligible(self):
        target = get_target("tanklevel")
        assert not batch_eligible(target, SessionSpec(session_id="s"))

    def test_raw_address_not_eligible(self):
        target = get_target("tanklevel")
        spec = SessionSpec(session_id="s", target="tanklevel", address=10, bit=0)
        assert not batch_eligible(target, spec)

    def test_target_without_kernel_not_eligible(self):
        target = get_target("arrestor")
        spec = SessionSpec(
            session_id="s",
            target="arrestor",
            signal=target.monitored_signals[0],
            signal_bit=0,
        )
        assert not batch_eligible(target, spec)
        assert batch_kernel_factory("arrestor") is None


class TestBatchGroup:
    def test_group_seals_on_first_advance(self):
        target = get_target("tanklevel")
        group = BatchGroup(target)
        group.add(SessionSpec(session_id="a", target="tanklevel",
                              signal="tick", signal_bit=1))
        assert group.accepting
        group.advance(20)
        assert group.sealed
        assert not group.accepting
        with pytest.raises(Exception):
            group.add(SessionSpec(session_id="b", target="tanklevel",
                                  signal="tick", signal_bit=2))

    def test_max_rows_stops_accepting(self):
        target = get_target("tanklevel")
        group = BatchGroup(target, max_rows=2)
        for sid in ("a", "b"):
            group.add(SessionSpec(session_id=sid, target="tanklevel",
                                  signal="tick", signal_bit=1))
        assert not group.accepting

    def test_deactivated_member_leaves_group_running(self):
        target = get_target("tanklevel")
        group = BatchGroup(target)
        for sid in ("a", "b"):
            group.add(SessionSpec(session_id=sid, target="tanklevel",
                                  signal="tick", signal_bit=6))
        group.advance(40)
        group.deactivate("a")
        events = group.advance(40)
        assert all(e.session_id == "b" for e in events)
        assert group.clock_ms == 80
