"""Fleet scheduler: placement, backpressure, eviction, accounting."""

import asyncio

import pytest

from repro.serve.fleet import Fleet, FleetConfig, HashRing
from repro.serve.session import Frame, ServeError, SessionSpec
from repro.targets.registry import register_target, unregister_target


def _spec(index, target="tanklevel", **kwargs):
    kwargs.setdefault("signal", "tick")
    kwargs.setdefault("signal_bit", index % 16)
    return SessionSpec(session_id=f"s{index:03d}", target=target, **kwargs)


def _config(**kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("batch", False)
    return FleetConfig(**kwargs)


class TestHashRing:
    def test_deterministic(self):
        a = HashRing(["w0", "w1", "w2"])
        b = HashRing(["w0", "w1", "w2"])
        keys = [f"k{i}" for i in range(100)]
        assert [a.node_for(k) for k in keys] == [b.node_for(k) for k in keys]

    def test_all_nodes_used(self):
        ring = HashRing(["w0", "w1", "w2"])
        hit = {ring.node_for(f"k{i}") for i in range(300)}
        assert hit == {"w0", "w1", "w2"}

    def test_adding_a_node_remaps_a_minority(self):
        keys = [f"k{i}" for i in range(1000)]
        before = HashRing(["w0", "w1", "w2"])
        after = HashRing(["w0", "w1", "w2", "w3"])
        moved = sum(
            1 for k in keys if before.node_for(k) != after.node_for(k)
        )
        # Consistent hashing: roughly 1/4 of keys move, never most of them.
        assert moved < len(keys) // 2

    def test_empty_ring_rejected(self):
        with pytest.raises(ValueError):
            HashRing([])


class TestFleetLifecycle:
    def test_open_ingest_close(self):
        async def main():
            async with Fleet(_config()) as fleet:
                await fleet.open_session(_spec(0))
                assert fleet.sessions_active == 1
                assert await fleet.ingest(Frame(session_id="s000", ticks=20))
                assert await fleet.flush() == 0
                outcome = await fleet.close_session("s000", complete=False)
                assert outcome.result.duration_ms == 20
                assert fleet.sessions_active == 0

        asyncio.run(main())

    def test_duplicate_session_id_rejected(self):
        async def main():
            async with Fleet(_config()) as fleet:
                await fleet.open_session(_spec(0))
                with pytest.raises(ServeError, match="duplicate"):
                    await fleet.open_session(_spec(0))

        asyncio.run(main())

    def test_unknown_session_frame_dropped(self):
        async def main():
            async with Fleet(_config()) as fleet:
                assert not await fleet.ingest(Frame(session_id="ghost"))
                assert fleet.metrics.counter("frames_dropped_total").value == 1

        asyncio.run(main())

    def test_unknown_session_close_rejected(self):
        async def main():
            async with Fleet(_config()) as fleet:
                with pytest.raises(ServeError, match="unknown"):
                    await fleet.close_session("ghost")

        asyncio.run(main())

    def test_placement_spreads_shards(self):
        async def main():
            async with Fleet(_config(workers=4)) as fleet:
                for i in range(32):
                    await fleet.open_session(_spec(i))
                shards = {shard.name for shard in fleet._where.values()}
                assert len(shards) > 1

        asyncio.run(main())

    def test_snapshotless_target_clean_error(self):
        class NoSnapshots:
            name = "noserve"
            description = "test-only"
            versions = ("All",)
            monitored_signals = ("tick",)

            def supports_snapshots(self):
                return False

        register_target("noserve", NoSnapshots, replace=True)
        try:

            async def main():
                async with Fleet(_config()) as fleet:
                    with pytest.raises(ServeError, match="snapshots"):
                        await fleet.open_session(
                            SessionSpec(session_id="x", target="noserve")
                        )

            asyncio.run(main())
        finally:
            unregister_target("noserve")


class TestBackpressure:
    def test_ingest_blocks_when_queue_full(self):
        async def main():
            fleet = Fleet(_config(workers=1, queue_depth=1))
            # Not started: no worker drains, so the queue genuinely fills.
            await fleet.open_session(_spec(0))
            assert await fleet.ingest(Frame(session_id="s000", ticks=1))
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(
                    fleet.ingest(Frame(session_id="s000", ticks=1)), timeout=0.2
                )
            # Inline flush drains the queue; ingress unblocks.
            assert await fleet.flush() == 0
            assert await fleet.ingest(Frame(session_id="s000", ticks=1))

        asyncio.run(main())

    def test_flush_reports_stuck_batch_frames(self):
        async def main():
            async with Fleet(FleetConfig(workers=1, batch=True)) as fleet:
                numpy_sessions = [_spec(0), _spec(1)]
                for spec in numpy_sessions:
                    await fleet.open_session(spec)
                if not fleet._where["s000"].handles["s000"].is_batch:
                    return  # numpy unavailable: the serial fallback drains
                # Only one member of the lockstep group gets a frame: the
                # round cannot fire, and flush says so instead of hanging.
                await fleet.ingest(Frame(session_id="s000", ticks=20))
                assert await fleet.flush() == 1
                await fleet.ingest(Frame(session_id="s001", ticks=20))
                assert await fleet.flush() == 0

        asyncio.run(main())


class TestLRUEviction:
    def test_eviction_order_and_counter(self):
        async def main():
            async with Fleet(_config(workers=1, max_sessions=2)) as fleet:
                await fleet.open_session(_spec(0))
                await fleet.open_session(_spec(1))
                # Touch s000 so s001 becomes least-recently-used.
                await fleet.ingest(Frame(session_id="s000", ticks=20))
                await fleet.flush()
                await fleet.open_session(_spec(2))
                assert not fleet.is_open("s001")
                assert fleet.is_open("s000")
                assert fleet.is_open("s002")
                assert fleet.metrics.counter("sessions_evicted_total").value == 1
                evicted = fleet.pop_outcome("s001")
                assert evicted is not None
                assert evicted.evicted
                assert not evicted.completed

        asyncio.run(main())

    def test_untouched_fleet_evicts_oldest(self):
        async def main():
            async with Fleet(_config(workers=1, max_sessions=3)) as fleet:
                for i in range(5):
                    await fleet.open_session(_spec(i))
                assert fleet.sessions_active == 3
                assert sorted(fleet._where) == ["s002", "s003", "s004"]
                assert fleet.metrics.counter("sessions_evicted_total").value == 2

        asyncio.run(main())


class TestBatchPath:
    def test_flips_rejected_on_batch_sessions(self):
        async def main():
            async with Fleet(FleetConfig(workers=1, batch=True)) as fleet:
                await fleet.open_session(_spec(0))
                if not fleet._where["s000"].handles["s000"].is_batch:
                    return  # numpy unavailable
                with pytest.raises(ServeError, match="batch path"):
                    await fleet.ingest(
                        Frame(session_id="s000", ticks=20, flips=((0, 0),))
                    )

        asyncio.run(main())

    def test_heterogeneous_ticks_rejected(self):
        async def main():
            async with Fleet(FleetConfig(workers=1, batch=True)) as fleet:
                await fleet.open_session(_spec(0))
                await fleet.open_session(_spec(1))
                if not fleet._where["s000"].handles["s000"].is_batch:
                    return  # numpy unavailable
                await fleet.ingest(Frame(session_id="s000", ticks=20))
                await fleet.ingest(Frame(session_id="s001", ticks=40))
                with pytest.raises(ServeError, match="lockstep"):
                    await fleet.flush()

        asyncio.run(main())


class TestMetrics:
    def test_counters_track_a_run(self):
        async def main():
            async with Fleet(_config(workers=1)) as fleet:
                await fleet.open_session(_spec(0, signal_bit=6))
                for _ in range(5):
                    await fleet.ingest(Frame(session_id="s000", ticks=20))
                await fleet.flush()
                await fleet.close_session("s000", complete=False)
                metrics = fleet.metrics
                assert metrics.counter("sessions_opened_total").value == 1
                assert metrics.counter("sessions_closed_total").value == 1
                assert metrics.counter("frames_ingested_total").value == 5
                assert metrics.counter("frames_processed_total").value == 5
                stats = fleet.stats()
                assert stats["sessions_active"] == 0
                assert stats["queued_frames"] == 0
                assert stats["counters"]["frames_ingested_total"] == 5

        asyncio.run(main())
