"""Online serving must reproduce the offline campaign path exactly.

The acceptance gate for the serving engine: for the same injection
schedule, the fleet's detection-event sequence is event-for-event
identical to a fresh system driven by ``TimeTriggeredInjector`` — on
both registered targets, on both serving paths.
"""

import pytest

from repro.injection.errors import ErrorSpec
from repro.injection.fic import CampaignController
from repro.injection.injector import TimeTriggeredInjector
from repro.serve import FleetConfig, SessionSpec, serve_replay
from repro.serve.session import events_key
from repro.targets.registry import get_target, target_names


def _offline(target, spec):
    controller = CampaignController(
        target=target,
        injection_period_ms=spec.period_ms,
        injection_start_ms=spec.start_ms,
    )
    system = controller._build_system(spec.test_case(), spec.version,
                                      fast_forward=True)
    variable = target.memory().signal_variable(spec.signal)
    error = ErrorSpec(
        name="t",
        address=variable.address + (spec.signal_bit >> 3),
        bit=spec.signal_bit & 7,
        area="ram",
        signal=spec.signal,
        signal_bit=spec.signal_bit,
    )
    injector = TimeTriggeredInjector(
        error, period_ms=spec.period_ms, start_ms=spec.start_ms
    )
    result = system.run(injector)
    key = [
        (e.time, e.monitor_id, e.signal, e.value, e.previous)
        for e in system.detection_log.events
    ]
    return result, key


def _specs(target_name, count=3):
    target = get_target(target_name)
    signals = target.monitored_signals
    return [
        SessionSpec(
            session_id=f"{target_name}-{i}",
            target=target_name,
            signal=signals[i % len(signals)],
            signal_bit=(5 * i + 1) % 16,
            period_ms=20,
            start_ms=0,
        )
        for i in range(count)
    ]


def _assert_matches_offline(outcome, offline_result, offline_key, batch):
    served = events_key(outcome.events)
    if batch:
        # The vectorized detection book records (time, monitor, signal).
        assert [(t, m, s) for (t, m, s, _, _) in served] == [
            (t, m, s) for (t, m, s, _, _) in offline_key
        ]
    else:
        assert served == offline_key
    result = outcome.result
    assert result.detected == offline_result.detected
    assert result.first_detection_ms == offline_result.first_detection_ms
    assert result.detection_count == offline_result.detection_count
    assert result.first_injection_ms == offline_result.first_injection_ms
    assert result.injection_count == offline_result.injection_count
    assert result.duration_ms == offline_result.duration_ms
    assert result.failed == offline_result.failed


@pytest.mark.parametrize("target_name", sorted(target_names()))
def test_serial_fleet_matches_offline_campaign(target_name):
    target = get_target(target_name)
    specs = _specs(target_name)
    report = serve_replay(
        specs, FleetConfig(workers=2, batch=False), frame_ticks=20
    )
    detected_any = False
    for spec in specs:
        offline_result, offline_key = _offline(target, spec)
        outcome = report.outcomes[spec.session_id]
        assert outcome.completed
        _assert_matches_offline(outcome, offline_result, offline_key, batch=False)
        detected_any = detected_any or offline_result.detected
    # The sample must actually exercise the detection path.
    assert detected_any


def test_batch_fleet_matches_offline_campaign():
    target = get_target("tanklevel")
    if not target.supports_batch():
        pytest.skip("numpy unavailable: no vectorized serving path")
    specs = _specs("tanklevel", count=4)
    report = serve_replay(
        specs, FleetConfig(workers=1, batch=True), frame_ticks=20
    )
    for spec in specs:
        offline_result, offline_key = _offline(target, spec)
        _assert_matches_offline(
            report.outcomes[spec.session_id], offline_result, offline_key,
            batch=True,
        )


def test_batch_and_serial_paths_agree_per_frame():
    target = get_target("tanklevel")
    if not target.supports_batch():
        pytest.skip("numpy unavailable: no vectorized serving path")
    specs = _specs("tanklevel", count=4)
    serial = serve_replay(specs, FleetConfig(workers=1, batch=False),
                          frame_ticks=50)
    batch = serve_replay(specs, FleetConfig(workers=1, batch=True),
                         frame_ticks=50)
    for spec in specs:
        a = serial.outcomes[spec.session_id]
        b = batch.outcomes[spec.session_id]
        assert [(e.time_ms, e.monitor_id, e.signal) for e in a.events] == [
            (e.time_ms, e.monitor_id, e.signal) for e in b.events
        ]
        assert a.result.detected == b.result.detected
        assert a.result.injection_count == b.result.injection_count
        assert a.result.duration_ms == b.result.duration_ms


def test_frame_size_does_not_change_events():
    target = get_target("tanklevel")
    spec = _specs("tanklevel", count=1)[0]
    offline_result, offline_key = _offline(target, spec)
    for frame_ticks in (1, 13, 250):
        report = serve_replay(
            [spec], FleetConfig(workers=1, batch=False), frame_ticks=frame_ticks
        )
        _assert_matches_offline(
            report.outcomes[spec.session_id], offline_result, offline_key,
            batch=False,
        )
