"""The newline-JSON ingestion protocol (stdin/socket adapter core)."""

import asyncio
import json

from repro.serve.adapters import iter_lines, serve_lines
from repro.serve.fleet import FleetConfig


def _run(lines, config=None):
    written = []
    if config is None:
        config = FleetConfig(workers=1, batch=False)
    ops = asyncio.run(serve_lines(iter_lines(lines), written.append, config))
    return ops, [json.loads(line) for line in written]


class TestProtocol:
    def test_open_frame_close_lifecycle(self):
        lines = [
            json.dumps(
                {
                    "op": "open",
                    "session": "s1",
                    "target": "tanklevel",
                    "signal": "tick",
                    "signal_bit": 6,
                }
            ),
            json.dumps({"op": "frame", "session": "s1", "ticks": 100}),
            json.dumps({"op": "close", "session": "s1", "complete": False}),
        ]
        ops, replies = _run(lines)
        assert ops == 3
        assert replies[0] == {"ok": True, "op": "open", "session": "s1"}
        result = replies[-1]
        assert result["event"] == "result"
        assert result["session"] == "s1"
        assert result["duration_ms"] == 100
        assert result["injections"] == 5
        # An injected tick-counter fault detects within the first 100 ms:
        # the detection push precedes the close reply.
        detections = [r for r in replies if r.get("event") == "detection"]
        assert detections
        assert detections[0]["session"] == "s1"
        assert result["detected"]

    def test_blank_lines_skipped(self):
        ops, replies = _run(["", "   ", "\n"])
        assert ops == 0
        assert replies == []

    def test_bad_json_keeps_stream_alive(self):
        lines = [
            "{not json",
            json.dumps({"op": "open", "session": "s1", "target": "tanklevel"}),
        ]
        ops, replies = _run(lines)
        assert ops == 2
        assert replies[0]["ok"] is False
        assert replies[1]["ok"] is True

    def test_unknown_op_reported(self):
        ops, replies = _run([json.dumps({"op": "warp"})])
        assert replies[0]["ok"] is False
        assert "warp" in replies[0]["error"]

    def test_frame_for_unknown_session(self):
        ops, replies = _run([json.dumps({"op": "frame", "session": "ghost"})])
        assert replies[0]["ok"] is False
        assert "unknown session" in replies[0]["error"]

    def test_open_error_is_reported_not_fatal(self):
        lines = [
            json.dumps({"op": "open", "session": "s1", "target": "tanklevel",
                        "signal": "tick"}),  # signal without signal_bit
            json.dumps({"op": "stats"}),
        ]
        ops, replies = _run(lines)
        assert replies[0]["ok"] is False
        assert "signal_bit" in replies[0]["error"]
        assert replies[1]["ok"] is True
        assert replies[1]["stats"]["sessions_active"] == 0

    def test_session_id_alias_accepted(self):
        lines = [
            json.dumps({"op": "open", "session_id": "s9", "target": "tanklevel"}),
            json.dumps({"op": "close", "session": "s9", "complete": False}),
        ]
        ops, replies = _run(lines)
        assert replies[0] == {"ok": True, "op": "open", "session": "s9"}
        assert replies[1]["session"] == "s9"

    def test_stats_reports_counters(self):
        lines = [
            json.dumps({"op": "open", "session": "s1", "target": "tanklevel"}),
            json.dumps({"op": "frame", "session": "s1", "ticks": 20}),
            json.dumps({"op": "stats"}),
        ]
        ops, replies = _run(lines)
        stats = replies[-1]["stats"]
        assert stats["sessions_active"] == 1
        assert stats["counters"]["frames_ingested_total"] == 1
