"""The ``python -m repro.serve`` CLI surface."""

import json

from repro.serve.__main__ import main


class TestListTargets:
    def test_lists_registered_targets(self, capsys):
        assert main(["--list-targets"]) == 0
        out = capsys.readouterr().out
        assert "arrestor" in out
        assert "tanklevel" in out
        assert "(default)" in out


class TestSyntheticRun:
    def test_tiny_run_prints_summary(self, capsys):
        code = main(
            [
                "--target", "tanklevel",
                "--sessions", "4",
                "--horizon-ms", "100",
                "--frame-ticks", "20",
                "--workers", "1",
                "--no-batch",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "served 4 sessions on tanklevel" in out
        assert "frame latency" in out

    def test_json_summary(self, capsys):
        code = main(
            [
                "--target", "tanklevel",
                "--sessions", "2",
                "--horizon-ms", "60",
                "--workers", "1",
                "--json",
            ]
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["sessions"] == 2
        assert summary["dropped_frames"] == 0
        assert summary["frames"] == summary["rounds"] * 2

    def test_metrics_flag_renders_registry(self, capsys):
        code = main(
            [
                "--target", "tanklevel",
                "--sessions", "2",
                "--horizon-ms", "60",
                "--workers", "1",
                "--metrics",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "frames_ingested_total" in out


class TestErrors:
    def test_unknown_target_exits_2(self, capsys):
        assert main(["--target", "no-such-target", "--sessions", "1"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_listen_spec_exits_2(self, capsys):
        assert main(["--listen", "nonsense"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_bad_sessions_exits_2(self, capsys):
        assert main(["--sessions", "0"]) == 2
        assert "error:" in capsys.readouterr().err
