"""Sink behaviour: ring buffer, JSONL writer, null sink, read_trace."""

import pytest

from repro.obs import (
    JSONLSink,
    NullSink,
    RingBufferSink,
    TraceBus,
    TraceEvent,
    read_trace,
)


class TestNullSink:
    def test_swallows_events(self):
        sink = NullSink()
        sink.emit(TraceEvent("monitor", "detection"))  # no state, no error


class TestRingBufferSink:
    def test_unbounded_by_default(self):
        sink = RingBufferSink()
        for seq in range(1000):
            sink.emit(TraceEvent("monitor", "detection", seq=seq))
        assert len(sink) == 1000

    def test_capacity_keeps_most_recent(self):
        sink = RingBufferSink(capacity=3)
        for seq in range(10):
            sink.emit(TraceEvent("monitor", "detection", seq=seq))
        assert [e.seq for e in sink] == [7, 8, 9]
        assert sink.events == list(sink)

    def test_clear(self):
        sink = RingBufferSink()
        sink.emit(TraceEvent("monitor", "detection"))
        sink.clear()
        assert len(sink) == 0

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)


class TestJSONLSink:
    def test_round_trip_through_read_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        events = [
            TraceEvent("campaign", "run-start", run_id="r", seq=0),
            TraceEvent(
                "monitor", "detection", run_id="r", time_ms=5.0, seq=1,
                data={"signal": "i"},
            ),
        ]
        with JSONLSink(path) as sink:
            for event in events:
                sink.emit(event)
        assert read_trace(path) == events

    def test_append_mode_preserves_existing_events(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JSONLSink(path, mode="w") as sink:
            sink.emit(TraceEvent("campaign", "run-start", seq=0))
        with JSONLSink(path, mode="a") as sink:
            sink.emit(TraceEvent("campaign", "run-end", seq=1))
        assert [e.kind for e in read_trace(path)] == ["run-start", "run-end"]

    def test_write_mode_truncates(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JSONLSink(path, mode="w") as sink:
            sink.emit(TraceEvent("campaign", "run-start"))
        with JSONLSink(path, mode="w") as sink:
            sink.emit(TraceEvent("campaign", "campaign-end"))
        assert [e.kind for e in read_trace(path)] == ["campaign-end"]

    def test_write_raw_merges_part_file_text(self, tmp_path):
        part = tmp_path / "trace.jsonl.part0"
        with JSONLSink(part) as sink:
            sink.emit(TraceEvent("monitor", "detection", seq=3))

        main = tmp_path / "trace.jsonl"
        with JSONLSink(main) as sink:
            sink.write_raw(part.read_text(encoding="utf-8"))
            sink.write_raw("")  # empty part: no-op
        assert [e.seq for e in read_trace(main)] == [3]

    def test_write_raw_adds_missing_trailing_newline(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        line = TraceEvent("monitor", "detection").to_json()
        with JSONLSink(path) as sink:
            sink.write_raw(line)  # no trailing newline
            sink.write_raw(line + "\n")
        assert len(read_trace(path)) == 2

    def test_rejects_unknown_mode(self, tmp_path):
        with pytest.raises(ValueError):
            JSONLSink(tmp_path / "t.jsonl", mode="r")

    def test_double_close_is_safe(self, tmp_path):
        sink = JSONLSink(tmp_path / "t.jsonl")
        sink.close()
        sink.close()

    def test_read_trace_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        line = TraceEvent("monitor", "detection").to_json()
        path.write_text(f"{line}\n\n{line}\n", encoding="utf-8")
        assert len(read_trace(path)) == 2


class TestBusSinkIntegration:
    def test_bus_to_file_to_events(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceBus([JSONLSink(path)]) as bus:
            bus.run_id = "r1"
            bus.emit("campaign", "run-start", time_ms=0.0)
            bus.emit("monitor", "detection", time_ms=12.0, signal="i", value=9)
        events = read_trace(path)
        assert [e.seq for e in events] == [0, 1]
        assert events[1].data == {"signal": "i", "value": 9}
