"""reconcile_trace: the CSV-vs-trace audit on synthetic fixtures."""

import dataclasses
from typing import Optional

from repro.obs import TraceEvent, reconcile_trace, run_id_for


@dataclasses.dataclass
class FakeRecord:
    """Duck-typed stand-in for an experiments RunRecord."""

    version: str = "All"
    error_name: str = "i_b31"
    mass_kg: float = 14000.0
    velocity_mps: float = 55.0
    detected: bool = True
    latency_ms: Optional[float] = 20.0
    wedged: bool = False

    @property
    def run_id(self) -> str:
        return run_id_for(self.version, self.error_name, self.mass_kg, self.velocity_mps)


def _trace_for(record, detection_ms=(120.0,), first_injection_ms=100.0, seq=0):
    """A minimal consistent trace for *record*."""
    rid = record.run_id
    events = [TraceEvent("campaign", "run-start", run_id=rid, time_ms=0.0, seq=seq)]
    for offset, time_ms in enumerate(detection_ms):
        events.append(
            TraceEvent(
                "monitor", "detection", run_id=rid, time_ms=time_ms, seq=seq + 1 + offset
            )
        )
    events.append(
        TraceEvent(
            "campaign",
            "run-end",
            run_id=rid,
            time_ms=500.0,
            seq=seq + 1 + len(detection_ms),
            data={
                "detected": record.detected,
                "wedged": record.wedged,
                "first_injection_ms": first_injection_ms,
            },
        )
    )
    return events


class TestConsistentTraces:
    def test_agreeing_artifacts_yield_no_issues(self):
        record = FakeRecord()
        assert reconcile_trace(_trace_for(record), [record]) == []

    def test_undetected_run_without_detection_events(self):
        record = FakeRecord(detected=False, latency_ms=None)
        assert reconcile_trace(_trace_for(record, detection_ms=()), [record]) == []

    def test_record_without_trace_events_is_skipped(self):
        # Checkpoint-restored runs predate the current trace file.
        assert reconcile_trace([], [FakeRecord()]) == []

    def test_latency_uses_first_detection(self):
        record = FakeRecord(latency_ms=20.0)
        events = _trace_for(record, detection_ms=(120.0, 480.0))
        assert reconcile_trace(events, [record]) == []

    def test_timed_out_run_checks_lifecycle_only(self):
        record = FakeRecord(detected=False, latency_ms=None, wedged=True)
        rid = record.run_id
        events = [
            TraceEvent("campaign", "run-start", run_id=rid, time_ms=0.0, seq=0),
            # detections before the wall-clock abort are legitimate
            TraceEvent("monitor", "detection", run_id=rid, time_ms=50.0, seq=1),
            TraceEvent(
                "campaign", "run-timeout", run_id=rid, seq=2,
                data={"timeout_ms": 1000.0},
            ),
        ]
        assert reconcile_trace(events, [record]) == []

    def test_unidentified_events_are_ignored(self):
        campaign_level = [
            TraceEvent("campaign", "campaign-start", seq=0),
            TraceEvent("campaign", "campaign-end", seq=1),
        ]
        assert reconcile_trace(campaign_level, []) == []


class TestDiscrepancies:
    def test_csv_detected_but_no_detection_events(self):
        record = FakeRecord(detected=True)
        events = _trace_for(record, detection_ms=())
        events[-1].data["detected"] = True  # keep run-end self-consistent
        issues = reconcile_trace(events, [record])
        assert any("detection events" in issue for issue in issues)

    def test_run_end_detected_field_mismatch(self):
        record = FakeRecord(detected=True)
        events = _trace_for(record)
        events[-1] = dataclasses.replace(
            events[-1], data={**events[-1].data, "detected": False}
        )
        issues = reconcile_trace(events, [record])
        assert any("run-end detected" in issue for issue in issues)

    def test_latency_mismatch(self):
        record = FakeRecord(latency_ms=99.0)  # trace says 20.0
        issues = reconcile_trace(_trace_for(record), [record])
        assert any("latency" in issue for issue in issues)

    def test_missing_run_start(self):
        record = FakeRecord()
        events = [e for e in _trace_for(record) if e.kind != "run-start"]
        issues = reconcile_trace(events, [record])
        assert any("run-start" in issue for issue in issues)

    def test_duplicate_terminal_events(self):
        record = FakeRecord()
        events = _trace_for(record)
        events.append(dataclasses.replace(events[-1], seq=99))
        issues = reconcile_trace(events, [record])
        assert any("terminal" in issue for issue in issues)

    def test_wedged_record_with_healthy_run_end(self):
        record = FakeRecord(wedged=True)
        events = _trace_for(record)
        events[-1] = dataclasses.replace(
            events[-1], data={**events[-1].data, "wedged": False}
        )
        issues = reconcile_trace(events, [record])
        assert any("wedged" in issue for issue in issues)

    def test_traced_run_missing_from_records(self):
        orphan = FakeRecord(error_name="orphan")
        issues = reconcile_trace(_trace_for(orphan), [])
        assert any("missing from the result records" in issue for issue in issues)
